#!/usr/bin/env python3
"""Roll the current ``BENCH_*.json`` results into ``BENCH_HISTORY.json``.

The smoke benches write one machine-readable ``BENCH_<name>.json`` each
(see ``benchmarks/bench_util.record_bench``).  This script appends a
snapshot of all of them to the committed roll-up that tracks the perf
trajectory across PRs — format documented in
``docs/ARCHITECTURE.md#bench-results``.

Rules:

* the history is append-only: existing entries are validated and never
  rewritten; a malformed history file is an error, not an overwrite;
* an append whose metrics are identical to the last entry is skipped
  (re-rolling the same results is a no-op);
* entries are stamped with UTC time and, when available, the current
  git commit.

Usage::

    python scripts/roll_bench_history.py --bench-dir bench-results
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path

HISTORY_VERSION = 1


def load_history(path: Path) -> dict:
    """Load and validate an existing history file (fresh skeleton if absent)."""
    if not path.exists():
        return {"version": HISTORY_VERSION, "entries": []}
    try:
        history = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if (
        not isinstance(history, dict)
        or history.get("version") != HISTORY_VERSION
        or not isinstance(history.get("entries"), list)
        or not all(
            isinstance(e, dict) and isinstance(e.get("benches"), dict)
            for e in history["entries"]
        )
    ):
        raise SystemExit(f"error: {path} is not a version-{HISTORY_VERSION} bench history")
    return history


def collect_benches(bench_dir: Path) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` in *bench_dir*, keyed by bench name."""
    benches: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_HISTORY.json":
            continue  # the roll-up lives beside the results it rolls up
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot read {path}: {exc}")
        if not isinstance(payload, dict):
            raise SystemExit(f"error: {path} does not hold a JSON object")
        name = payload.get("bench") or path.stem.removeprefix("BENCH_")
        benches[name] = payload
    return benches


def current_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def roll(bench_dir: Path, history_path: Path, *, commit: str | None = None) -> bool:
    """Append a snapshot; returns True when an entry was written."""
    history = load_history(history_path)
    benches = collect_benches(bench_dir)
    if not benches:
        raise SystemExit(f"error: no BENCH_*.json files in {bench_dir}")
    if history["entries"] and history["entries"][-1]["benches"] == benches:
        return False
    history["entries"].append({
        "recorded": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0).isoformat(),
        "commit": commit if commit is not None else current_commit(),
        "benches": benches,
    })
    history_path.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir", type=Path, default=Path("."),
                        help="directory holding the BENCH_*.json files (default: .)")
    parser.add_argument("--history", type=Path, default=Path("BENCH_HISTORY.json"),
                        help="history file to append to (default: BENCH_HISTORY.json)")
    parser.add_argument("--commit", default=None,
                        help="commit id to stamp (default: git rev-parse --short HEAD)")
    args = parser.parse_args(argv)
    if roll(args.bench_dir, args.history, commit=args.commit):
        print(f"appended entry to {args.history}")
    else:
        print(f"{args.history} already up to date (identical metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
