"""The whole-program layer: module graph, layer map, incremental cache.

Three contracts under test:

* **module graph** — ``module_name_for`` + ``summarise`` resolve the
  imports that actually execute at import time (absolute, relative,
  package-``__init__`` re-exports) and exclude the ones that do not
  (function-local lazy imports, ``if TYPE_CHECKING:`` blocks), so the
  cycle detector reports only cycles Python would too;
* **layer map** — the ```` ```layers ```` block in ``docs/LINT.md`` is
  the single source of truth and the compiled-in fallback is pinned
  byte-equivalent to it, so the doc cannot drift from the enforcement;
* **cache** — a warm run re-analyses only changed files, any engine-key
  mismatch or corruption degrades to a full re-analysis (never to stale
  results), and cached runs report identical findings.
"""

import ast
import json
import shutil
from pathlib import Path

from repro.lint import run_lint
from repro.lint.baseline import Baseline
from repro.lint.project import (
    DEFAULT_CACHE_NAME,
    FileRecord,
    ModuleSummary,
    ProjectUnderLint,
    SuppressionIndex,
    module_name_for,
    summarise,
)
from repro.lint.rules.import_layering import (
    DEFAULT_ISOLATED,
    DEFAULT_LAYERS,
    load_layer_map,
    parse_layer_map,
)

REPO_ROOT = Path(__file__).parent.parent
DEMO = Path(__file__).parent / "data" / "lint_fixtures" / "project_demo"


# -- module naming ----------------------------------------------------------

def test_module_name_for_real_and_fixture_layouts():
    assert module_name_for(Path("src/repro/idn/folding.py")) == "repro.idn.folding"
    assert module_name_for(Path("src/repro/idn/__init__.py")) == "repro.idn"
    assert module_name_for(Path("src/repro/cli.py")) == "repro.cli"
    assert module_name_for(
        Path("tests/data/lint_fixtures/project_demo/src/repro/unicode/blocks.py")
    ) == "repro.unicode.blocks"
    assert module_name_for(Path("tests/test_lint_project.py")) is None
    assert module_name_for(Path("benchmarks/bench_scan.py")) is None


# -- summary extraction -----------------------------------------------------

def _summary(source, module="repro.pkg.mod", is_package=False):
    return summarise(ast.parse(source), module, is_package)


def test_summarise_collects_absolute_and_relative_imports():
    summary = _summary(
        "from repro.unicode.blocks import block_tag\n"
        "from . import sibling\n"
        "from ..dns import resolver\n",
        module="repro.idn.folding",
    )
    assert [site.module for site in summary.imports] == [
        "repro.unicode.blocks", "repro.idn", "repro.dns",
    ]


def test_summarise_relative_import_inside_package_init():
    summary = _summary("from . import punycode\n",
                       module="repro.idn", is_package=True)
    assert [site.module for site in summary.imports] == ["repro.idn"]
    assert summary.imports[0].names == ("punycode",)


def test_function_local_imports_are_not_graph_edges():
    # The lazy-import idiom breaks cycles at runtime; treating it as an
    # edge would report cycles Python never executes.
    summary = _summary(
        "def build():\n"
        "    from repro.detection.stream import scan\n"
        "    return scan\n"
    )
    assert summary.imports == []
    assert "scan" in summary.referenced


def test_type_checking_imports_are_references_not_edges():
    summary = _summary(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.measurement.results import ScanResult\n"
    )
    assert summary.imports == []
    assert "ScanResult" in summary.referenced


def test_exports_cover_defs_classes_constants_and_reexports():
    summary = _summary(
        "from .folding import fold_label\n"
        "LIMIT = 3\n"
        "def public(): ...\n"
        "def _private(): ...\n"
        "@decorated\n"
        "def registered(): ...\n"
        "class Thing: ...\n",
        module="repro.idn", is_package=True,
    )
    by_name = {site.name: site for site in summary.exports}
    assert by_name["fold_label"].kind == "re-export"
    assert by_name["LIMIT"].kind == "constant"
    assert by_name["public"].kind == "function"
    assert by_name["Thing"].kind == "class"
    assert by_name["registered"].decorated
    assert "_private" not in by_name


def test_signature_defaults_and_annotations_count_as_references():
    summary = _summary(
        "def scan(limit: int = DEFAULT_LIMIT) -> ScanResult: ...\n"
    )
    assert "DEFAULT_LIMIT" in summary.referenced
    assert "ScanResult" in summary.referenced


def test_identifier_strings_count_as_references():
    # __all__ lists, getattr() strings, registry keys.
    summary = _summary('__all__ = ["fold_label"]\nx = "not an identifier!"\n')
    assert "fold_label" in summary.referenced
    assert "not an identifier!" not in summary.referenced


def test_contract_facts_skip_the_main_guard():
    summary = _summary(
        "import sys\n"
        "def run():\n"
        "    print('status')\n"
        "    sys.exit(1)\n"
        "if __name__ == '__main__':\n"
        "    print('fine here')\n"
        "    sys.exit(run())\n"
    )
    assert sorted(site.kind for site in summary.contracts) == [
        "print-stdout", "sys-exit",
    ]


def test_print_to_stderr_is_not_a_contract_fact():
    summary = _summary(
        "import sys\n"
        "def warn():\n"
        "    print('careful', file=sys.stderr)\n"
    )
    assert summary.contracts == []


# -- the module graph -------------------------------------------------------

def _record(rel_path, source, module, is_package=False):
    return FileRecord(
        path=Path(rel_path), rel_path=rel_path, sha256="0",
        summary=summarise(ast.parse(source), module, is_package),
        suppressions=SuppressionIndex(),
    )


def test_import_cycles_finds_a_mutual_import():
    project = ProjectUnderLint(Path("."), [
        _record("src/repro/a.py", "from repro import b\n", "repro.a"),
        _record("src/repro/b.py", "from repro import a\n", "repro.b"),
        _record("src/repro/c.py", "from repro import a\n", "repro.c"),
    ])
    assert project.import_cycles() == [["repro.a", "repro.b"]]


def test_reexport_pattern_is_not_a_cycle():
    # The standard idiom: __init__ re-exports from .folding, a sibling
    # does ``from repro.idn import fold_label``.  Python executes this
    # happily; the resolver must not invent an __init__ edge for the
    # ``from pkg import submodule`` form.
    project = ProjectUnderLint(Path("."), [
        _record("src/repro/idn/__init__.py",
                "from .folding import fold_label\n", "repro.idn",
                is_package=True),
        _record("src/repro/idn/folding.py",
                "from repro.idn import punycode\n", "repro.idn.folding"),
        _record("src/repro/idn/punycode.py", "X = 1\n", "repro.idn.punycode"),
    ])
    assert project.import_cycles() == []
    # But importing a plain *symbol* from the package does execute
    # __init__, so that edge exists.
    edges = project.resolved_imports()
    assert [target for target, _ in edges["repro.idn.folding"]] \
        == ["repro.idn.punycode"]


def test_referenced_names_is_the_global_union():
    project = ProjectUnderLint(
        Path("."),
        [_record("src/repro/a.py", "x = helper()\n", "repro.a")],
        extra_referenced=frozenset({"from_tests"}),
    )
    assert "helper" in project.referenced_names
    assert "from_tests" in project.referenced_names


# -- the layer map ----------------------------------------------------------

def test_parse_layer_map_round_trip():
    text = (
        "prose before\n"
        "```layers\n"
        "# comment line\n"
        "0: base other\n"
        "1: top\n"
        "isolated: island\n"
        "```\n"
        "prose after\n"
    )
    parsed = parse_layer_map(text)
    assert parsed == ({"base": 0, "other": 0, "top": 1},
                      frozenset({"island"}))
    assert parse_layer_map("no block here") is None


def test_docs_layer_block_matches_the_compiled_in_fallback():
    """docs/LINT.md is the single source of truth; the fallback compiled
    into import_layering.py must stay byte-equivalent, or the doc and
    the enforcement silently diverge."""
    text = (REPO_ROOT / "docs" / "LINT.md").read_text(encoding="utf-8")
    parsed = parse_layer_map(text)
    assert parsed is not None, "docs/LINT.md lost its ```layers block"
    assert parsed == (DEFAULT_LAYERS, DEFAULT_ISOLATED)
    assert load_layer_map(REPO_ROOT) == (DEFAULT_LAYERS, DEFAULT_ISOLATED)


def test_load_layer_map_falls_back_without_docs(tmp_path):
    assert load_layer_map(tmp_path) == (DEFAULT_LAYERS, DEFAULT_ISOLATED)


def test_every_src_package_is_in_the_layer_map():
    packages = sorted(
        entry.name for entry in (REPO_ROOT / "src" / "repro").iterdir()
        if entry.is_dir() and (entry / "__init__.py").exists()
    )
    mapped = set(DEFAULT_LAYERS) | set(DEFAULT_ISOLATED)
    assert set(packages) <= mapped, (
        f"packages missing from the docs/LINT.md layer map: "
        f"{sorted(set(packages) - mapped)}"
    )


# -- the incremental cache --------------------------------------------------

def _demo_copy(tmp_path):
    root = tmp_path / "demo"
    shutil.copytree(DEMO, root)
    return root


def _run(root, **kwargs):
    kwargs.setdefault("reference_roots", ())
    return run_lint([root], root=root, **kwargs)


def test_warm_cache_reuses_every_unchanged_file(tmp_path):
    root = _demo_copy(tmp_path)
    cache_path = root / DEFAULT_CACHE_NAME

    cold = _run(root, cache_path=cache_path)
    assert cold.cache_enabled
    assert cold.files_parsed == cold.files_scanned
    assert cold.files_reused == 0
    assert cache_path.exists()

    warm = _run(root, cache_path=cache_path)
    assert warm.files_parsed == 0
    assert warm.files_reused == warm.files_scanned
    # Cached runs report identical findings — including the project-rule
    # findings recomputed from cached summaries.
    assert [f.render() for f in warm.new] == [f.render() for f in cold.new]


def test_touching_one_file_reanalyses_only_that_file(tmp_path):
    root = _demo_copy(tmp_path)
    cache_path = root / DEFAULT_CACHE_NAME
    cold = _run(root, cache_path=cache_path)

    target = root / "src" / "repro" / "unicode" / "blocks.py"
    target.write_text(target.read_text(encoding="utf-8") + "\n# touched\n",
                      encoding="utf-8")

    warm = _run(root, cache_path=cache_path)
    assert warm.files_parsed == 1
    assert warm.files_reused == cold.files_scanned - 1
    assert [f.render() for f in warm.new] == [f.render() for f in cold.new]


def test_engine_key_mismatch_invalidates_the_whole_cache(tmp_path):
    root = _demo_copy(tmp_path)
    cache_path = root / DEFAULT_CACHE_NAME
    cold = _run(root, cache_path=cache_path)

    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    payload["key"]["analysis"] = -1
    cache_path.write_text(json.dumps(payload), encoding="utf-8")

    rerun = _run(root, cache_path=cache_path)
    assert rerun.files_parsed == cold.files_scanned
    assert rerun.files_reused == 0


def test_selected_rules_are_part_of_the_cache_key(tmp_path):
    root = _demo_copy(tmp_path)
    cache_path = root / DEFAULT_CACHE_NAME
    _run(root, cache_path=cache_path)
    narrowed = _run(root, cache_path=cache_path, rules=["import-layering"])
    assert narrowed.files_reused == 0, (
        "a cache built under one rule selection must not satisfy another"
    )


def test_corrupt_cache_degrades_to_a_full_run(tmp_path):
    root = _demo_copy(tmp_path)
    cache_path = root / DEFAULT_CACHE_NAME
    cache_path.write_text("not json {", encoding="utf-8")
    result = _run(root, cache_path=cache_path)
    assert result.files_parsed == result.files_scanned
    # And the run repaired the file on the way out.
    assert json.loads(cache_path.read_text(encoding="utf-8"))["files"]


def test_cache_is_off_by_default_in_the_library(tmp_path):
    root = _demo_copy(tmp_path)
    first = _run(root)
    second = _run(root)
    assert not first.cache_enabled and not second.cache_enabled
    assert second.files_parsed == second.files_scanned
    assert not (root / DEFAULT_CACHE_NAME).exists()


def test_syntax_error_finding_is_one_based(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    result = run_lint([broken], root=tmp_path)
    assert len(result.new) == 1
    finding = result.new[0]
    assert finding.rule == "pragma"
    assert finding.line >= 1 and finding.col == 1
    assert "does not parse" in finding.message


# -- summary round-trip through the cache -----------------------------------

def test_module_summary_survives_json_round_trip():
    summary = _summary(
        "from repro.unicode.blocks import block_tag\n"
        "LIMIT = 3\n"
        "def public(x: int = LIMIT): ...\n",
        module="repro.idn.folding",
    )
    restored = ModuleSummary.from_dict(
        json.loads(json.dumps(summary.as_dict()))
    )
    assert restored.module == summary.module
    assert restored.imports == summary.imports
    assert restored.exports == summary.exports
    assert restored.referenced == summary.referenced
    assert restored.contracts == summary.contracts
    assert restored.calls == summary.calls


# -- baseline merge ---------------------------------------------------------

def test_merged_with_preserves_previous_justifications():
    from repro.lint.baseline import BaselineEntry

    previous = Baseline(entries=[
        BaselineEntry(rule="r", path="p", message="m",
                      justification="hand-written reason"),
        BaselineEntry(rule="r", path="gone", message="m",
                      justification="obsolete"),
    ])
    current = Baseline(entries=[
        BaselineEntry(rule="r", path="p", message="m",
                      justification="TODO: justify or fix"),
        BaselineEntry(rule="r", path="new", message="m",
                      justification="TODO: justify or fix"),
    ])
    merged = current.merged_with(previous)
    by_path = {entry.path: entry for entry in merged.entries}
    assert by_path["p"].justification == "hand-written reason"
    assert by_path["new"].justification == "TODO: justify or fix"
    assert "gone" not in by_path  # dropped entries stay dropped
