"""Tests for the streaming scan subsystem (detection/stream.py).

Covers the resilience guarantees the zone-scale pipeline advertises:
checkpoint/resume after a killed run, detection and reporting of
truncated/corrupt JSONL sink lines, and ``skipped_count`` propagating
through the streaming path exactly as through the in-memory one.
"""

from __future__ import annotations

import json

import pytest

from repro.detection.shamfinder import ShamFinder
from repro.detection.stream import (
    ScanCheckpoint,
    ScanResumeError,
    ScanStats,
    SinkError,
    StreamingScanner,
    file_fingerprint,
    read_sink,
    recover_sink,
)
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.domain import DomainName

REFERENCES = ["google.com", "amazon.com", "apple.com"]

#: Unparsable junk a zone dump may contain (bad Punycode in the A-label).
JUNK = "xn--zzzz-!!!.com"


@pytest.fixture(scope="module")
def stream_finder():
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    return ShamFinder(db)


@pytest.fixture(scope="module")
def corpus():
    """A small synthetic zone dump: homographs, plain names, junk, comments."""
    homographs = [
        DomainName("gоogle.com").ascii,
        DomainName("аmаzon.com").ascii,
        DomainName("аpple.com").ascii,
    ]
    lines = []
    for i in range(30):
        lines.append(homographs[i % len(homographs)])
        lines.append(f"plain{i}.com")
        if i % 10 == 0:
            lines.append(JUNK)
        if i % 7 == 0:
            lines.append("")
            lines.append("# comment line")
    return lines


@pytest.fixture()
def corpus_file(tmp_path, corpus):
    path = tmp_path / "domains.txt"
    path.write_text("\n".join(corpus) + "\n", encoding="utf-8")
    return path


def _scan(finder, corpus_file, out, **kwargs):
    scanner = StreamingScanner(finder, REFERENCES, chunk_size=8, **kwargs)
    return scanner, scanner.scan_file(corpus_file, out)


# -- equivalence with the in-memory path -------------------------------------


def test_scan_file_matches_in_memory_detect(stream_finder, corpus, corpus_file, tmp_path):
    out = tmp_path / "results.jsonl"
    _, stats = _scan(stream_finder, corpus_file, out)

    idns = [line for line in corpus if "xn--" in line]
    report, timing = stream_finder.detect_with_timing(idns, REFERENCES)

    assert read_sink(out).as_dicts() == report.as_dicts()
    assert stats.detection_count == len(report)
    assert stats.skipped_count == timing.skipped_count
    assert stats.idn_count == timing.idn_count


def test_parallel_scan_is_byte_identical(stream_finder, corpus_file, tmp_path):
    serial_out = tmp_path / "serial.jsonl"
    parallel_out = tmp_path / "parallel.jsonl"
    _, serial_stats = _scan(stream_finder, corpus_file, serial_out, jobs=1)
    _, parallel_stats = _scan(stream_finder, corpus_file, parallel_out, jobs=3)
    assert serial_out.read_bytes() == parallel_out.read_bytes()
    serial_counts = {k: v for k, v in serial_stats.as_dict().items() if k != "elapsed_seconds"}
    parallel_counts = {k: v for k, v in parallel_stats.as_dict().items() if k != "elapsed_seconds"}
    assert serial_counts == parallel_counts


def test_scan_to_report_matches_sink(stream_finder, corpus, corpus_file, tmp_path):
    out = tmp_path / "results.jsonl"
    scanner, _ = _scan(stream_finder, corpus_file, out)
    report, stats = scanner.scan_to_report(corpus)
    assert report.as_dicts() == read_sink(out).as_dicts()
    assert stats.detection_count == len(report)
    assert stats.lines_done == len(corpus)


# -- skipped_count propagation ------------------------------------------------


def test_skipped_count_propagates_through_streaming(stream_finder, corpus, corpus_file, tmp_path):
    junk_lines = sum(1 for line in corpus if line == JUNK)
    assert junk_lines >= 3
    _, stats = _scan(stream_finder, corpus_file, tmp_path / "r.jsonl")
    assert stats.skipped_count == junk_lines
    # Blank/comment lines are input noise, not skipped candidates.
    assert stats.domains_seen == sum(
        1 for line in corpus if line.strip() and not line.startswith("#")
    )


# -- checkpoint/resume --------------------------------------------------------


class _Killed(Exception):
    pass


def _kill_after(chunks: int):
    def bomb(stats: ScanStats) -> None:
        if stats.chunks_done >= chunks:
            raise _Killed
    return bomb


def test_resume_after_killed_run_is_identical(stream_finder, corpus_file, tmp_path):
    full_out = tmp_path / "full.jsonl"
    _, full_stats = _scan(stream_finder, corpus_file, full_out)

    out = tmp_path / "resumable.jsonl"
    scanner = StreamingScanner(stream_finder, REFERENCES, chunk_size=8)
    with pytest.raises(_Killed):
        scanner.scan_file(corpus_file, out, progress=_kill_after(3))

    checkpoint = ScanCheckpoint.load(str(out) + ".checkpoint")
    assert checkpoint is not None
    assert checkpoint.chunks_done == 3

    stats = scanner.scan_file(corpus_file, out, resume=True)
    assert out.read_bytes() == full_out.read_bytes()
    assert stats.resumed_lines == checkpoint.lines_done
    assert stats.lines_done == full_stats.lines_done
    assert stats.detection_count == full_stats.detection_count
    assert stats.skipped_count == full_stats.skipped_count
    assert stats.domains_seen == full_stats.domains_seen


def test_resume_with_lost_checkpoint_refuses_to_clobber_sink(
    stream_finder, corpus_file, tmp_path
):
    out = tmp_path / "r.jsonl"
    _scan(stream_finder, corpus_file, out)
    before = out.read_bytes()
    (tmp_path / "r.jsonl.checkpoint").unlink()
    scanner = StreamingScanner(stream_finder, REFERENCES, chunk_size=8)
    # The checkpoint is gone but durable results exist: a fresh start would
    # silently destroy them, so --resume must refuse and leave them intact.
    with pytest.raises(ScanResumeError):
        scanner.scan_file(corpus_file, out, resume=True)
    assert out.read_bytes() == before


def test_resume_with_no_prior_run_starts_fresh(stream_finder, corpus_file, tmp_path):
    out = tmp_path / "r.jsonl"
    scanner = StreamingScanner(stream_finder, REFERENCES, chunk_size=8)
    stats = scanner.scan_file(corpus_file, out, resume=True)
    assert stats.resumed_lines == 0
    assert stats.detection_count == len(read_sink(out))


def test_corrupt_checkpoint_reads_as_missing(tmp_path):
    path = tmp_path / "cp.json"
    path.write_text("{not json", encoding="utf-8")
    assert ScanCheckpoint.load(path) is None
    path.write_text(json.dumps({"version": 999, "lines_done": 1}), encoding="utf-8")
    assert ScanCheckpoint.load(path) is None
    # Valid JSON that is not an object is corruption too, not a crash.
    path.write_text("[]", encoding="utf-8")
    assert ScanCheckpoint.load(path) is None
    path.write_text('"checkpoint"', encoding="utf-8")
    assert ScanCheckpoint.load(path) is None


def test_resume_refuses_changed_input(stream_finder, corpus_file, tmp_path):
    out = tmp_path / "r.jsonl"
    scanner = StreamingScanner(stream_finder, REFERENCES, chunk_size=8)
    with pytest.raises(_Killed):
        scanner.scan_file(corpus_file, out, progress=_kill_after(1))
    with open(corpus_file, "a", encoding="utf-8") as handle:
        handle.write("freshly-registered.com\n")
    with pytest.raises(ScanResumeError):
        scanner.scan_file(corpus_file, out, resume=True)


# -- sink corruption ----------------------------------------------------------


def test_resume_recovers_corrupt_and_uncheckpointed_sink_lines(
    stream_finder, corpus_file, tmp_path
):
    full_out = tmp_path / "full.jsonl"
    _scan(stream_finder, corpus_file, full_out)

    out = tmp_path / "r.jsonl"
    scanner = StreamingScanner(stream_finder, REFERENCES, chunk_size=8)
    with pytest.raises(_Killed):
        scanner.scan_file(corpus_file, out, progress=_kill_after(2))

    with open(out, "a", encoding="utf-8") as handle:
        # A valid line flushed after the last checkpoint (its chunk will be
        # re-run by the resume) and a write cut off mid-line by the kill.
        handle.write(json.dumps({
            "idn": "xn--x.com", "unicode": "x.com", "reference": "google.com",
            "substitutions": [], "sources": [],
        }) + "\n")
        handle.write('{"idn": "xn--trunc')

    stats = scanner.scan_file(corpus_file, out, resume=True)
    assert stats.recovered_drop == 2
    assert out.read_bytes() == full_out.read_bytes()


def test_resume_refuses_sink_damaged_before_checkpoint(stream_finder, corpus_file, tmp_path):
    out = tmp_path / "r.jsonl"
    scanner = StreamingScanner(stream_finder, REFERENCES, chunk_size=8)
    with pytest.raises(_Killed):
        scanner.scan_file(corpus_file, out, progress=_kill_after(3))
    lines = out.read_text(encoding="utf-8").splitlines(keepends=True)
    assert len(lines) >= 2
    # Corrupt a line *inside* the checkpointed prefix: the durable results
    # no longer match the checkpoint, so resuming must refuse — without
    # truncating away the still-salvageable lines after the damage.
    lines[0] = '{"corrupted\n'
    out.write_text("".join(lines), encoding="utf-8")
    damaged = out.read_bytes()
    with pytest.raises(ScanResumeError):
        scanner.scan_file(corpus_file, out, resume=True)
    assert out.read_bytes() == damaged


def test_recover_sink_dry_run_inspects_without_modifying(tmp_path):
    path = tmp_path / "sink.jsonl"
    good = json.dumps({"idn": "a", "reference": "b"})
    content = good + "\n" + '{"idn": "half'
    path.write_text(content, encoding="utf-8")
    recovery = recover_sink(path, dry_run=True)
    assert recovery.valid_count == 1
    assert recovery.dropped_corrupt == 1
    assert path.read_text(encoding="utf-8") == content


def test_recover_sink_reports_truncated_tail(tmp_path):
    path = tmp_path / "sink.jsonl"
    good = json.dumps({"idn": "a", "reference": "b"})
    path.write_text(good + "\n" + good + "\n" + '{"idn": "half', encoding="utf-8")
    recovery = recover_sink(path)
    assert recovery.valid_count == 2
    assert recovery.dropped_corrupt == 1
    assert recovery.dropped_uncheckpointed == 0
    assert path.read_text(encoding="utf-8") == good + "\n" + good + "\n"


def test_recover_sink_caps_at_checkpointed_count(tmp_path):
    path = tmp_path / "sink.jsonl"
    good = json.dumps({"idn": "a", "reference": "b"})
    path.write_text((good + "\n") * 5, encoding="utf-8")
    recovery = recover_sink(path, expected_lines=3)
    assert recovery.valid_count == 3
    assert recovery.dropped_uncheckpointed == 2
    assert path.read_text(encoding="utf-8") == (good + "\n") * 3


def test_read_sink_raises_naming_the_bad_line(tmp_path):
    path = tmp_path / "sink.jsonl"
    good = json.dumps({
        "idn": "xn--a.com", "unicode": "a.com", "reference": "b.com",
        "substitutions": [], "sources": [],
    })
    path.write_text(good + "\n" + "garbage\n" + good + "\n", encoding="utf-8")
    with pytest.raises(SinkError, match="line 2"):
        read_sink(path)
    # Well-formed JSON that is not a detection payload is also named.
    path.write_text(good + "\n" + '{"idn": "x.com", "reference": "y.com"}\n',
                    encoding="utf-8")
    with pytest.raises(SinkError, match="line 2"):
        read_sink(path)


# -- misc ---------------------------------------------------------------------


def test_file_fingerprint_tracks_content(tmp_path):
    path = tmp_path / "input.txt"
    path.write_text("one.com\n", encoding="utf-8")
    first = file_fingerprint(path)
    assert file_fingerprint(path) == first
    path.write_text("two.com\n", encoding="utf-8")
    assert file_fingerprint(path) != first


def test_scanner_validates_arguments(stream_finder):
    with pytest.raises(ValueError):
        StreamingScanner(stream_finder, REFERENCES, chunk_size=0)
    with pytest.raises(ValueError):
        StreamingScanner(stream_finder, REFERENCES, jobs=0)


def test_step_ii_filter_keys_on_the_registrable_label(stream_finder, tmp_path):
    # Matching happens on the registrable label, so an ASCII name under an
    # IDN TLD is not a candidate, while a subdomain-carrying IDN is.
    from repro.detection.stream import is_idn_candidate
    assert not is_idn_candidate("example.xn--p1ai")
    assert not is_idn_candidate("plain.com")
    assert is_idn_candidate("xn--gogle-jye.com")
    assert is_idn_candidate("mail.xn--gogle-jye.com")
    assert is_idn_candidate("XN--GOGLE-JYE.com.")

    inp = tmp_path / "d.txt"
    inp.write_text("example.xn--p1ai\nmail.xn--gogle-jye.com\n", encoding="utf-8")
    scanner = StreamingScanner(stream_finder, REFERENCES, idn_only=True)
    stats = scanner.scan_file(inp, tmp_path / "r.jsonl")
    assert stats.domains_seen == 2
    assert stats.idn_count == 1
    assert stats.detection_count == 1          # gоogle label still matches


def test_all_domains_mode_matches_non_idn_candidates(stream_finder, tmp_path):
    # In idn_only mode an ASCII-only lookalike is filtered by Step II; with
    # --all-domains it reaches the matcher (and still only matches when the
    # database says so).
    inp = tmp_path / "d.txt"
    inp.write_text("google.com\n", encoding="utf-8")
    idn_scanner = StreamingScanner(stream_finder, REFERENCES, idn_only=True)
    all_scanner = StreamingScanner(stream_finder, REFERENCES, idn_only=False)
    idn_stats = idn_scanner.scan_file(inp, tmp_path / "a.jsonl")
    all_stats = all_scanner.scan_file(inp, tmp_path / "b.jsonl")
    assert idn_stats.idn_count == 0
    assert all_stats.idn_count == 1
    assert all_stats.detection_count == 0      # identical label is not a homograph


# -- measurement-study integration -------------------------------------------


def test_study_streaming_detection_equals_direct(study):
    direct, _timing = study.detect_homographs()
    streamed, timing, stats = study.detect_homographs_streaming(chunk_size=500, jobs=2)
    assert sorted(d.idn for d in streamed) == sorted(d.idn for d in direct)
    assert {json.dumps(d, sort_keys=True) for d in streamed.as_dicts()} == {
        json.dumps(d, sort_keys=True) for d in direct.as_dicts()
    }
    assert timing.skipped_count == stats.skipped_count
    assert stats.chunks_done >= 1


def test_study_run_streaming_populates_scan_stats(study):
    results = study.run(streaming=True, chunk_size=500, jobs=1)
    assert results.scan_stats is not None
    assert results.scan_stats.detection_count == len(results.detection_report)
    assert results.detection_counts == results.detection_report.count_by_database()
