"""Tests for the longitudinal tracking subsystem (measurement/longitudinal.py).

Covers the guarantees the daily-tracking pipeline advertises: incremental
day-over-day scans byte-identical to full rescans, timeline lifecycle
(appear / retire / reappear, Section 6.4 revert targets), forced full
rescans on reference-list changes, and a killed-then-resumed run producing
the same timeline store bytes as an uninterrupted one.
"""

from __future__ import annotations

import json

import pytest

from repro.detection.shamfinder import ShamFinder
from repro.detection.stream import is_idn_candidate
from repro.dns.zonediff import read_delegations
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.domain import DomainName
from repro.measurement.longitudinal import (
    DayReport,
    LongitudinalTracker,
    TimelineError,
    TrackCheckpoint,
    TrackResumeError,
    read_timeline,
    reference_fingerprint,
)
from repro.measurement.reporting import render_tracking_report

REFERENCES = ["google.com", "amazon.com", "apple.com"]

GOOGLE = DomainName("gоogle.com").ascii      # Cyrillic о
AMAZON = DomainName("аmаzon.com").ascii      # Cyrillic а
PLAIN_IDN = "xn--fiqs8s.com"                 # 中国 — an IDN, not a homograph


@pytest.fixture(scope="module")
def track_finder():
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    return ShamFinder(db)


def _write_snapshot(tmp_path, date: str, delegations: dict[str, list[str]]):
    path = tmp_path / f"{date}.zone"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"; .com snapshot {date}\n")
        for domain, nameservers in delegations.items():
            for ns in nameservers:
                handle.write(f"{domain}.\t172800\tIN\tNS\t{ns}.\n")
    return (date, path)


@pytest.fixture()
def snapshots(tmp_path):
    """Four days: appear day 2, NS change day 3, retire day 4."""
    base = {"plain.com": ["ns1.host.net"], PLAIN_IDN: ["ns1.cn.example"]}
    return [
        _write_snapshot(tmp_path, "2019-05-01", {**base, GOOGLE: ["ns1.a.net"]}),
        _write_snapshot(tmp_path, "2019-05-02",
                        {**base, GOOGLE: ["ns1.a.net"], AMAZON: ["ns1.b.net"]}),
        _write_snapshot(tmp_path, "2019-05-03",
                        {**base, GOOGLE: ["ns2.a.net"], AMAZON: ["ns1.b.net"]}),
        _write_snapshot(tmp_path, "2019-05-04", {**base, AMAZON: ["ns1.b.net"]}),
    ]


def _tracker(track_finder, tmp_path, name="state", **kwargs):
    return LongitudinalTracker(
        track_finder, REFERENCES, tmp_path / name, chunk_size=4, **kwargs)


# -- timeline lifecycle --------------------------------------------------------


def test_lifecycle_appear_retire(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    result = tracker.track(snapshots)

    assert [e.idn for e in result.timeline.active_entries()] == [AMAZON]
    amazon = result.timeline.entries[AMAZON]
    assert amazon.first_seen == "2019-05-02"
    assert amazon.last_seen == "2019-05-04"
    assert amazon.revert == "amazon.com"
    assert amazon.references == ["amazon.com"]

    google = result.timeline.entries[GOOGLE]
    assert not google.active
    assert google.first_seen == "2019-05-01"
    assert google.last_seen == "2019-05-03"     # NS change does not retire it
    assert google.retired_on == "2019-05-04"
    assert google.revert == "google.com"

    # Only day 1 is a full scan; later days scan just the added IDNs.
    assert [r.full_rescan for r in result.day_reports] == [True, False, False, False]
    assert [r.scanned for r in result.day_reports] == [2, 1, 0, 0]
    assert [r.ns_changed for r in result.day_reports] == [0, 0, 1, 0]
    assert result.stats.full_rescans == 1
    assert result.stats.domains_scanned == 3


def test_incremental_matches_full_rescan_each_day(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    result = tracker.track(snapshots)

    for date, path in snapshots:
        idns = sorted(d for d, _ in read_delegations(path) if is_idn_candidate(d))
        full_report, _ = tracker.scanner.scan_to_report(idns)
        full = sorted(
            (d.as_dict() for d in full_report),
            key=lambda payload: (payload["idn"], payload["reference"]),
        )
        assert result.detections_on(date) == full


def test_reappearance_starts_a_new_lifecycle(track_finder, tmp_path):
    base = {PLAIN_IDN: ["ns1.cn.example"]}
    days = [
        _write_snapshot(tmp_path, "2019-05-01", {**base, GOOGLE: ["ns1.a.net"]}),
        _write_snapshot(tmp_path, "2019-05-02", base),
        _write_snapshot(tmp_path, "2019-05-03", {**base, GOOGLE: ["ns1.a.net"]}),
    ]
    result = _tracker(track_finder, tmp_path).track(days)
    google = result.timeline.entries[GOOGLE]
    assert google.active
    assert google.first_seen == "2019-05-03"    # restarted, old lifecycle in the log
    retire_events = [e for e in result.timeline.events if e["event"] == "retire"]
    assert [e["date"] for e in retire_events] == ["2019-05-02"]


# -- resume ---------------------------------------------------------------------


def test_resume_skips_processed_days_and_extends(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:2])
    resumed = tracker.track(snapshots, resume=True)
    assert resumed.stats.days_resumed == 2
    assert resumed.stats.days_done == 2

    reference = _tracker(track_finder, tmp_path, "reference-state").track(snapshots)
    assert (tmp_path / "state" / "timeline.jsonl").read_bytes() == \
        (tmp_path / "reference-state" / "timeline.jsonl").read_bytes()
    assert [e.as_dict() for e in resumed.timeline.active_entries()] == \
        [e.as_dict() for e in reference.timeline.active_entries()]


def test_killed_run_resumes_to_identical_store_bytes(track_finder, tmp_path, snapshots):
    class _Killed(Exception):
        pass

    def bomb(report: DayReport) -> None:
        if report.date == "2019-05-02":
            raise _Killed

    tracker = _tracker(track_finder, tmp_path)
    with pytest.raises(_Killed):
        tracker.track(snapshots, progress=bomb)
    resumed = tracker.track(snapshots, resume=True)
    assert resumed.stats.days_resumed == 2

    reference = _tracker(track_finder, tmp_path, "reference-state").track(snapshots)
    assert (tmp_path / "state" / "timeline.jsonl").read_bytes() == \
        (tmp_path / "reference-state" / "timeline.jsonl").read_bytes()


def test_uncheckpointed_tail_is_dropped_on_resume(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:3])
    store = tmp_path / "state" / "timeline.jsonl"
    with open(store, "a", encoding="utf-8") as handle:
        # A flushed-but-never-checkpointed event plus a torn partial write.
        handle.write(json.dumps({"date": "2019-05-04", "event": "retire",
                                 "idn": GOOGLE, "reason": "expired"}) + "\n")
        handle.write('{"date": "2019-05-04", "ev')
    resumed = tracker.track(snapshots, resume=True)
    assert resumed.stats.recovered_drop == 2

    reference = _tracker(track_finder, tmp_path, "reference-state").track(snapshots)
    assert store.read_bytes() == \
        (tmp_path / "reference-state" / "timeline.jsonl").read_bytes()


def test_resume_refuses_damage_inside_checkpointed_prefix(
        track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:2])
    store = tmp_path / "state" / "timeline.jsonl"
    lines = store.read_bytes().splitlines(keepends=True)
    store.write_bytes(b"".join(lines[:-1]) + b'{"torn\n')
    before = store.read_bytes()
    with pytest.raises(TrackResumeError, match="damaged inside the checkpointed"):
        tracker.track(snapshots, resume=True)
    assert store.read_bytes() == before        # refused read-only, file untouched


def test_resume_refuses_unprocessed_date_inside_covered_range(
        track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    # Process days 1 and 3 only; day 2 was never part of the timeline.
    tracker.track([snapshots[0], snapshots[2]])
    with pytest.raises(TrackResumeError, match="never processed"):
        tracker.track(snapshots, resume=True)


def test_missing_snapshot_rejected_before_state_is_touched(
        track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    with pytest.raises(ValueError, match="not found"):
        tracker.track([("2019-05-01", tmp_path / "missing.zone")])
    assert not tracker.timeline_path.exists()      # fresh store was never truncated

    tracker.track(snapshots[:2])
    before = tracker.timeline_path.read_bytes()
    with pytest.raises(ValueError, match="not found"):
        tracker.track(snapshots[:2] + [("2019-05-09", tmp_path / "typo.zone")],
                      resume=True)
    assert tracker.timeline_path.read_bytes() == before


def test_reference_change_with_no_new_snapshot_refuses(
        track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:2])
    narrowed = LongitudinalTracker(
        track_finder, ["amazon.com"], tmp_path / "state", chunk_size=4)
    # Resuming over only already-processed dates cannot rescan against the
    # new reference list, so reporting the stored timeline would be stale.
    with pytest.raises(TrackResumeError, match="no new snapshot"):
        narrowed.track(snapshots[:2], resume=True)


def test_resume_refuses_changed_last_snapshot(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:2])
    date, path = snapshots[1]
    path.write_text(path.read_text(encoding="utf-8") +
                    "extra.com.\t172800\tIN\tNS\tns1.new.net.\n", encoding="utf-8")
    with pytest.raises(TrackResumeError, match="changed since the checkpoint"):
        tracker.track(snapshots, resume=True)


def test_resume_without_checkpoint_refuses_to_clobber(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:2])
    tracker.checkpoint_path.unlink()
    with pytest.raises(TrackResumeError, match="no usable checkpoint"):
        tracker.track(snapshots, resume=True)


def test_resume_with_no_prior_state_starts_fresh(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    result = tracker.track(snapshots[:1], resume=True)
    assert result.stats.days_done == 1


def test_corrupt_checkpoint_reads_as_missing(tmp_path):
    path = tmp_path / "state.json"
    path.write_text("{not json", encoding="utf-8")
    assert TrackCheckpoint.load(path) is None
    path.write_text(json.dumps({"version": 999}), encoding="utf-8")
    assert TrackCheckpoint.load(path) is None


# -- reference-list changes -----------------------------------------------------


def test_reference_change_forces_full_rescan(track_finder, tmp_path, snapshots):
    tracker = _tracker(track_finder, tmp_path)
    tracker.track(snapshots[:2])

    # Same state dir, narrower reference list: google is no longer a target
    # although its delegation is still in the day-3 zone.
    narrowed = LongitudinalTracker(
        track_finder, ["amazon.com"], tmp_path / "state", chunk_size=4)
    assert narrowed.reference_fingerprint != tracker.reference_fingerprint
    result = narrowed.track(snapshots[:3], resume=True)

    assert result.day_reports[-1].full_rescan
    assert result.stats.full_rescans == 1
    google = result.timeline.entries[GOOGLE]
    assert google.retired_on == "2019-05-03"
    rescans = [e for e in result.timeline.events if e["event"] == "rescan"]
    assert len(rescans) == 1
    assert rescans[0]["fingerprint"] == reference_fingerprint(["amazon.com"])
    assert result.timeline.reference_fingerprint == rescans[0]["fingerprint"]
    retire = [e for e in result.timeline.events
              if e["event"] == "retire" and e["idn"] == GOOGLE]
    assert retire[0]["reason"] == "reference-change"
    assert [e.idn for e in result.timeline.active_entries()] == [AMAZON]


# -- store and reporting ---------------------------------------------------------


def test_read_timeline_rejects_corrupt_store(tmp_path):
    path = tmp_path / "timeline.jsonl"
    path.write_text('{"date": "2019-05-01", "event": "day"', encoding="utf-8")
    with pytest.raises(TimelineError, match="line 1"):
        read_timeline(path)


def test_snapshot_argument_validation(track_finder, tmp_path):
    tracker = _tracker(track_finder, tmp_path)
    with pytest.raises(ValueError, match="YYYY-MM-DD"):
        tracker.track([("May 1st", tmp_path / "x.zone")])
    with pytest.raises(ValueError, match="duplicate snapshot date"):
        tracker.track([("2019-05-01", tmp_path / "a.zone"),
                       ("2019-05-01", tmp_path / "b.zone")])


def test_tracking_report_renders_tables(track_finder, tmp_path, snapshots):
    result = _tracker(track_finder, tmp_path).track(snapshots)
    report = render_tracking_report(result)
    assert "Per-day zone churn" in report
    assert "2019-05-04" in report
    assert "gоogle.com" in report               # retired section
    assert "amazon.com" in report               # revert target column
    assert report.count("| 2019-05-0") >= 4
