"""Non-Latin homograph detection (paper Sections 2.2 and 7.1).

The paper stresses that homograph attacks are not limited to Latin targets:
an attacker can imitate a CJK domain with a Katakana lookalike (工業大学 vs
エ業大学), and browsers' mixed-script policies do not flag Latin+CJK mixes.
These tests exercise that path end to end through the public API.
"""

from repro.countermeasure.browser_policy import DisplayDecision, MixedScriptPolicy
from repro.detection.shamfinder import ShamFinder
from repro.idn.domain import DomainName
from repro.idn.idna_codec import to_ascii_label


def _domain(label: str) -> str:
    return f"{to_ascii_label(label)}.com"


def test_katakana_cjk_homograph_detected(finder):
    # 工業大学 (institute of technology) imitated with Katakana エ.
    reference = [_domain("工業大学"), _domain("東京大学")]
    candidate = _domain("エ業大学")
    report = finder.detect([candidate], reference)
    assert len(report) == 1
    detection = list(report)[0]
    assert detection.reference == _domain("工業大学")
    substitution = detection.substitutions[0]
    assert substitution.candidate_char == "エ"
    assert substitution.reference_char == "工"


def test_cjk_near_shape_homograph_detected(finder):
    # 未来 imitated with 末来 (末 vs 未 stroke-length confusion).
    reference = [_domain("未来")]
    candidate = _domain("末来")
    report = finder.detect([candidate], reference)
    assert len(report) == 1


def test_unrelated_cjk_domains_not_flagged(finder):
    reference = [_domain("工業大学")]
    candidate = _domain("東京大学")
    assert len(finder.detect([candidate], reference)) == 0


def test_browser_policy_does_not_flag_non_latin_homographs():
    # The Katakana/CJK mix is an allowed combination, so the browser displays
    # Unicode — exactly the gap the paper points out.
    policy = MixedScriptPolicy()
    candidate = DomainName(_domain("エ業大学"))
    assert policy.decide(candidate) is DisplayDecision.UNICODE
    assert not policy.catches(candidate)


def test_extract_idns_includes_cjk_registrations():
    domains = [_domain("工業大学"), "plain-ascii.com", _domain("エ業大学")]
    idns = ShamFinder.extract_idns(domains)
    assert len(idns) == 2
    assert all(name.has_idn_registrable_label for name in idns)


def test_non_latin_warning_names_the_substitution(finder, union_db):
    from repro.countermeasure.warning import WarningGenerator

    generator = WarningGenerator(union_db, [_domain("工業大学")])
    warning = generator.warning_for(_domain("エ業大学"))
    assert warning is not None
    assert warning.suspected_original == "工業大学.com"
    assert any(a.suspicious_char == "エ" and a.original_char == "工"
               for a in warning.annotations)
