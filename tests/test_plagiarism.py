"""Tests for the homoglyph-obfuscated plagiarism detector (paper Section 9)."""

import pytest

from repro.applications.plagiarism import PlagiarismDetector
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase

ORIGINAL = "the quick brown fox jumps over the lazy dog"
# The same sentence with Cyrillic е/о/а substituted (as a plagiarist would).
OBFUSCATED = "the quick brоwn fоx jumps оver the lаzy dоg"
UNRELATED = "completely different text about network measurement"


def _detector():
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("e", "е", source=SOURCE_UC)
    db.add_pair("ж", "җ", source=SOURCE_UC)     # non-ASCII-only cluster
    return PlagiarismDetector(db)


def test_canonical_char_mapping():
    detector = _detector()
    assert detector.canonical_char("о") == "o"
    assert detector.canonical_char("O") == "o"
    assert detector.canonical_char("x") == "x"
    assert detector.canonical_char("җ") in ("ж", "җ")
    assert detector.canonical_char("中") == "中"


def test_normalise_recovers_original_text():
    detector = _detector()
    assert detector.normalise(OBFUSCATED) == ORIGINAL


def test_find_obfuscations_positions():
    detector = _detector()
    findings = detector.find_obfuscations(OBFUSCATED)
    assert len(findings) == OBFUSCATED.count("о") + OBFUSCATED.count("а")
    assert all(f.canonical in ("o", "a") for f in findings)
    assert OBFUSCATED[findings[0].position] == findings[0].found
    assert "stands in for" in findings[0].describe()
    assert detector.find_obfuscations(ORIGINAL) == []


def test_similarity_with_and_without_normalisation():
    detector = _detector()
    raw = detector.similarity(OBFUSCATED, ORIGINAL, normalise=False)
    normalised = detector.similarity(OBFUSCATED, ORIGINAL, normalise=True)
    assert normalised == pytest.approx(1.0)
    assert raw < 0.8
    assert detector.similarity(UNRELATED, ORIGINAL) < 0.2
    assert detector.similarity("", "") == 1.0
    assert detector.similarity("abc", "") == 0.0


def test_compare_ranks_the_copied_source_first():
    detector = _detector()
    matches = detector.compare(OBFUSCATED, [UNRELATED, ORIGINAL])
    assert matches[0].source_index == 1
    assert matches[0].is_suspicious
    assert matches[0].hidden_by_homoglyphs > 0.1
    assert not matches[1].is_suspicious
    assert len(matches[0].obfuscations) > 0


def test_clean_copy_is_not_flagged_as_homoglyph_obfuscation():
    detector = _detector()
    matches = detector.compare(ORIGINAL, [ORIGINAL])
    # Identical text is similar, but nothing was hidden by homoglyphs.
    assert matches[0].normalised_similarity == pytest.approx(1.0)
    assert matches[0].hidden_by_homoglyphs == pytest.approx(0.0)
    assert not matches[0].is_suspicious


def test_detector_works_with_simchar_database(union_db):
    detector = PlagiarismDetector(union_db)
    text = "meаsurement pаper".replace("a", "а")   # Cyrillic а
    assert detector.normalise(text) == "measurement paper".replace("a", "a")
    assert detector.similarity(text, "measurement paper") == pytest.approx(1.0)


def test_ngram_size_validation():
    with pytest.raises(ValueError):
        PlagiarismDetector(HomoglyphDatabase(), ngram_size=0)
