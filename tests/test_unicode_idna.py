"""Tests for the RFC 5892 derived-property computation."""

import pytest

from repro.unicode.idna import (
    DerivedProperty,
    classify_codepoints,
    derived_property,
    is_idna_permitted,
    is_pvalid,
    iter_pvalid,
    pvalid_count,
)


@pytest.mark.parametrize("char", list("abcdefghijklmnopqrstuvwxyz0123456789-"))
def test_ldh_is_pvalid(char):
    assert is_pvalid(ord(char))


@pytest.mark.parametrize("char", list("ABCDEFGHIJKLMNOPQRSTUVWXYZ"))
def test_uppercase_ascii_is_not_pvalid(char):
    # Uppercase folds to lowercase, hence unstable, hence DISALLOWED.
    assert not is_pvalid(ord(char))


@pytest.mark.parametrize(
    "codepoint",
    [0x00E9, 0x00DF, 0x0430, 0x03B1, 0x0585, 0x05D0, 0x0627, 0x3042, 0x30A8,
     0x4E00, 0xAC00, 0x0B32, 0x0ED0, 0xA500],
)
def test_letters_used_in_idns_are_pvalid(codepoint):
    assert is_pvalid(codepoint), hex(codepoint)


@pytest.mark.parametrize(
    "codepoint",
    [0x0020, 0x002E, 0x00A0, 0x2028, 0x200B, 0xFEFF, 0x1F600, 0xFF01, 0x2160],
)
def test_symbols_and_spaces_are_not_pvalid(codepoint):
    assert not is_pvalid(codepoint), hex(codepoint)


def test_exceptions_from_rfc5892():
    assert derived_property(0x00DF) is DerivedProperty.PVALID      # sharp s
    assert derived_property(0x03C2) is DerivedProperty.PVALID      # final sigma
    assert derived_property(0x00B7) is DerivedProperty.CONTEXTO    # middle dot
    assert derived_property(0x200D) is DerivedProperty.CONTEXTJ    # ZWJ
    assert derived_property(0x0640) is DerivedProperty.DISALLOWED  # tatweel
    assert derived_property(0x302E) is DerivedProperty.DISALLOWED  # Hangul tone mark


def test_unassigned_and_surrogates():
    assert derived_property(0x0378) is DerivedProperty.UNASSIGNED
    assert derived_property(0xD800) is DerivedProperty.DISALLOWED


def test_contextual_acceptance_flag():
    assert not is_idna_permitted(0x200D)
    assert is_idna_permitted(0x200D, allow_contextual=True)
    assert is_idna_permitted(0x0061)


def test_fullwidth_letters_are_disallowed_but_mapped():
    # Fullwidth 'a' normalises to 'a' (unstable), so it is not PVALID itself.
    assert not is_pvalid(0xFF41)


def test_derived_property_out_of_range():
    with pytest.raises(ValueError):
        derived_property(-1)
    with pytest.raises(ValueError):
        derived_property(0x110000)


def test_iter_and_count_pvalid_on_latin1():
    pvalid = list(iter_pvalid(0x0000, 0x00FF))
    assert ord("a") in pvalid and ord("z") in pvalid
    assert ord("A") not in pvalid
    assert 0x00E9 in pvalid
    assert pvalid_count(0x0000, 0x00FF) == len(pvalid)
    # Lowercase a-z + digits + hyphen + the Latin-1 lowercase letters.
    assert 60 <= len(pvalid) <= 80


def test_classify_codepoints_histogram():
    histogram = classify_codepoints([ord("a"), ord("A"), 0x0378, 0x200D, 0x00B7])
    assert histogram[DerivedProperty.PVALID] == 1
    assert histogram[DerivedProperty.DISALLOWED] == 1
    assert histogram[DerivedProperty.UNASSIGNED] == 1
    assert histogram[DerivedProperty.CONTEXTJ] == 1
    assert histogram[DerivedProperty.CONTEXTO] == 1
