"""Tests for the curated invisible-character table and the text sanitizer."""

import pickle

from repro.applications.sanitizer import TextSanitizer
from repro.homoglyph.database import HomoglyphDatabase, HomoglyphPair
from repro.homoglyph.invisible import (
    INVISIBLE_TABLE_VERSION,
    InvisibleFinding,
    InvisibleTable,
    default_invisible_table,
)

ZWSP, ZWNJ, ZWJ = "​", "‌", "‍"
RLO = "‮"
ACUTE, GRAVE = "́", "̀"


def test_default_table_covers_the_curated_classes():
    table = default_invisible_table()
    assert table.category_of(ZWJ) == "zero-width"
    assert table.category_of(ZWNJ) == "zero-width"
    assert table.category_of(ZWSP) == "zero-width"
    assert table.category_of("﻿") == "zero-width"
    assert table.category_of(RLO) == "bidi-control"
    assert table.category_of("⁦") == "bidi-control"
    assert table.category_of("⁡") == "invisible-operator"
    assert table.category_of("­") == "soft-hyphen"
    assert table.category_of("️") == "variation-selector"
    assert table.category_of("a") is None
    assert ZWJ in table and "a" not in table
    assert len(table) > 30
    assert table.version == INVISIBLE_TABLE_VERSION


def test_findings_report_positions_and_categories():
    table = default_invisible_table()
    findings = table.findings(f"goo{ZWJ}gle{RLO}")
    assert [f.position for f in findings] == [3, 7]
    assert findings[0].category == "zero-width"
    assert findings[1].category == "bidi-control"
    assert "U+200D" in findings[0].describe()


def test_single_combining_mark_is_not_a_finding():
    table = default_invisible_table()
    assert table.findings(f"cafe{ACUTE}") == ()
    assert table.strip(f"cafe{ACUTE}") == f"cafe{ACUTE}"


def test_combining_stack_is_found_and_stripped_entirely():
    table = default_invisible_table()
    label = f"googl{ACUTE}{GRAVE}e"
    findings = table.findings(label)
    assert [f.position for f in findings] == [5, 6]
    assert {f.category for f in findings} == {"combining-stack"}
    assert table.strip(label) == "google"


def test_strip_with_positions_maps_back_to_original_indices():
    table = default_invisible_table()
    label = f"g{ZWJ}oogle"
    stripped, positions = table.strip_with_positions(label)
    assert stripped == "google"
    assert positions == [0, 2, 3, 4, 5, 6]
    # the map recovers original positions for every stripped-form index
    assert all(label[positions[i]] == stripped[i] for i in range(len(stripped)))


def test_findings_roundtrip_and_digest_stability():
    finding = InvisibleFinding(3, ZWJ, "zero-width")
    assert InvisibleFinding.from_dict(finding.as_dict()) == finding

    a, b = default_invisible_table(), default_invisible_table()
    assert a.content_digest() == b.content_digest()
    assert a.content_digest() != InvisibleTable({0x200B: "zero-width"}).content_digest()


def test_table_is_picklable():
    # The serving worker pool ships the finder (and its table) into worker
    # processes via executor initargs.
    table = default_invisible_table()
    clone = pickle.loads(pickle.dumps(table))
    assert len(clone) == len(table)
    assert clone.category_of(ZWJ) == "zero-width"


# -- the sanitizer entry point -----------------------------------------------


def _database() -> HomoglyphDatabase:
    return HomoglyphDatabase.from_pairs([
        HomoglyphPair("о", "o", frozenset({"UC"})),       # Cyrillic о
        HomoglyphPair("а", "a", frozenset({"SimChar"})),  # Cyrillic а
    ])


def test_sanitizer_strips_and_normalises():
    sanitizer = TextSanitizer(_database())
    result = sanitizer.sanitize(f"pа{ZWSP}ypаl")
    assert result.stripped == "pаypаl"
    assert result.normalised == "paypal"
    assert not result.is_clean
    assert [f.category for f in result.invisibles] == ["zero-width"]
    assert {o.found for o in result.obfuscations} == {"а"}
    assert result.as_dict()["is_clean"] is False


def test_sanitizer_clean_text_passes_through():
    sanitizer = TextSanitizer(_database())
    result = sanitizer.sanitize("paypal")
    assert result.is_clean
    assert result.normalised == "paypal"
    assert sanitizer.clean("paypal") == "paypal"


def test_sanitizer_handles_combining_stacks():
    sanitizer = TextSanitizer(_database())
    assert sanitizer.clean(f"googl{ACUTE}{GRAVE}e") == "google"
