"""Tests for the website classifier (Tables 12-13)."""

from repro.web.blacklist import Blacklist, BlacklistAggregator
from repro.web.classifier import WebsiteClassifier
from repro.web.hosting import RedirectIntent, SiteCategory, SyntheticWeb, WebsiteProfile


def _setup():
    web = SyntheticWeb([
        WebsiteProfile("parked-by-ns.com", category=SiteCategory.NORMAL,
                       parking_ns="ns1.sedoparking.com",
                       nameservers=("ns1.sedoparking.com",)),
        WebsiteProfile("parked-by-body.com", category=SiteCategory.PARKED,
                       nameservers=("ns1.custom.net",)),
        WebsiteProfile("sale.com", category=SiteCategory.FOR_SALE),
        WebsiteProfile("normal.com", category=SiteCategory.NORMAL),
        WebsiteProfile("empty.com", category=SiteCategory.EMPTY),
        WebsiteProfile("broken.com", category=SiteCategory.ERROR),
        WebsiteProfile("dead.com", registered=False),
        WebsiteProfile("brandprot.com", category=SiteCategory.REDIRECT, redirect_target="google.com"),
        WebsiteProfile("legit-redir.com", category=SiteCategory.REDIRECT, redirect_target="somewhere.com"),
        WebsiteProfile("evil-redir.com", category=SiteCategory.REDIRECT,
                       redirect_target="landing.com", malicious=True),
    ])
    blacklists = BlacklistAggregator([Blacklist("hpHosts", {"evil-redir.com"})])
    return WebsiteClassifier(
        web,
        blacklists=blacklists,
        reference_targets={"brandprot.com": "google.com", "evil-redir.com": "google.com",
                           "legit-redir.com": "google.com"},
    )


def test_parking_detected_by_ns_before_crawling():
    classifier = _setup()
    site = classifier.classify("parked-by-ns.com")
    assert site.category is SiteCategory.PARKED
    assert site.parking_provider == "sedoparking.com"


def test_parking_detected_by_page_template():
    classifier = _setup()
    assert classifier.classify("parked-by-body.com").category is SiteCategory.PARKED


def test_for_sale_normal_empty_error():
    classifier = _setup()
    assert classifier.classify("sale.com").category is SiteCategory.FOR_SALE
    assert classifier.classify("normal.com").category is SiteCategory.NORMAL
    assert classifier.classify("empty.com").category is SiteCategory.EMPTY
    assert classifier.classify("broken.com").category is SiteCategory.ERROR
    assert classifier.classify("dead.com").category is SiteCategory.ERROR


def test_redirect_intents():
    classifier = _setup()
    brand = classifier.classify("brandprot.com")
    assert brand.category is SiteCategory.REDIRECT
    assert brand.redirect_intent is RedirectIntent.BRAND_PROTECTION
    assert brand.redirect_target == "google.com"
    legit = classifier.classify("legit-redir.com")
    assert legit.redirect_intent is RedirectIntent.LEGITIMATE
    evil = classifier.classify("evil-redir.com")
    assert evil.redirect_intent is RedirectIntent.MALICIOUS


def test_classify_all_report():
    classifier = _setup()
    report = classifier.classify_all([
        "parked-by-ns.com", "sale.com", "normal.com", "empty.com", "broken.com",
        "brandprot.com", "legit-redir.com", "evil-redir.com",
    ])
    assert len(report) == 8
    counts = report.category_counts()
    assert counts[SiteCategory.PARKED.value] == 1
    assert counts[SiteCategory.REDIRECT.value] == 3
    intents = report.redirect_intent_counts()
    assert intents[RedirectIntent.BRAND_PROTECTION.value] == 1
    assert intents[RedirectIntent.MALICIOUS.value] == 1
    rows = report.as_table_rows()
    assert rows[-1] == ("Total", 8)
    labels = [label for label, _count in rows[:-1]]
    assert labels == ["Domain parking", "For sale", "Redirect", "Normal", "Empty", "Error"]
    assert len(report.sites_in_category(SiteCategory.REDIRECT)) == 3
