"""Tests for the simulated DNS resolver and passive DNS."""

from repro.dns.passive_dns import ClientPopulation, PassiveDNSCollector
from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import AuthoritativeStore, ResponseCode, StubResolver


def _store():
    store = AuthoritativeStore()
    store.add_many([
        ResourceRecord("example.com", RRType.NS, "ns1.example.net"),
        ResourceRecord("example.com", RRType.A, "203.0.113.1"),
        ResourceRecord("mail.example.com", RRType.MX, "10 mx.example.com"),
        ResourceRecord("noaddress.com", RRType.NS, "ns1.noaddress.com"),
    ])
    return store


def test_store_lookup_and_exists():
    store = _store()
    assert store.exists("example.com")
    assert not store.exists("missing.com")
    assert len(store.lookup("example.com", RRType.NS)) == 1
    assert store.lookup("example.com", RRType.MX) == []
    assert "example.com" in store.names()
    assert len(store) == 4


def test_store_remove_name():
    store = _store()
    store.remove_name("example.com")
    assert not store.exists("example.com")
    assert store.lookup("example.com", RRType.A) == []
    assert store.exists("noaddress.com")


def test_resolver_answers_and_rcodes():
    resolver = StubResolver(_store())
    ok = resolver.query("example.com", RRType.A)
    assert ok.rcode is ResponseCode.NOERROR and not ok.is_empty
    nodata = resolver.query("noaddress.com", "A")
    assert nodata.rcode is ResponseCode.NOERROR and nodata.is_empty
    missing = resolver.query("missing.com", RRType.A)
    assert missing.rcode is ResponseCode.NXDOMAIN and missing.is_empty


def test_resolver_cache_and_counters():
    resolver = StubResolver(_store())
    resolver.query("example.com", RRType.A)
    resolver.query("example.com", RRType.A)
    assert resolver.queries_sent == 1
    assert resolver.cache_hits == 1
    resolver.clear_cache()
    resolver.query("example.com", RRType.A)
    assert resolver.queries_sent == 2


def test_resolver_predicates():
    resolver = StubResolver(_store())
    assert resolver.has_ns("example.com")
    assert resolver.has_a("example.com")
    assert not resolver.has_a("noaddress.com")
    assert not resolver.has_mx("example.com")
    assert resolver.has_mx("mail.example.com")


def test_store_generation_counts_mutations():
    store = AuthoritativeStore()
    assert store.generation == 0
    store.add(ResourceRecord("a.com", RRType.NS, "ns1.a.net"))
    first = store.generation
    assert first > 0
    store.remove_name("a.com")
    assert store.generation > first
    # Removing an absent name is a no-op and must not invalidate caches.
    unchanged = store.generation
    store.remove_name("never-there.com")
    assert store.generation == unchanged


def test_resolver_cache_invalidated_by_expiration():
    # Regression: the resolver used to serve cached answers forever, so an
    # expire-then-reprobe sequence between pipeline stages saw stale NS/A.
    store = _store()
    resolver = StubResolver(store)
    assert resolver.has_ns("example.com")
    assert resolver.has_a("example.com")
    store.remove_name("example.com")
    assert not resolver.has_ns("example.com")
    assert not resolver.has_a("example.com")


def test_resolver_cache_invalidated_by_new_records():
    store = _store()
    resolver = StubResolver(store)
    assert not resolver.has_a("noaddress.com")
    store.add(ResourceRecord("noaddress.com", RRType.A, "203.0.113.9"))
    assert resolver.has_a("noaddress.com")


def test_resolver_cache_still_hits_while_store_is_stable():
    resolver = StubResolver(_store())
    resolver.query("example.com", RRType.A)
    resolver.query("example.com", RRType.A)
    assert resolver.cache_hits == 1


def test_resolver_batch_registration_status():
    resolver = StubResolver(_store())
    status = resolver.registration_status(
        ["example.com", "noaddress.com", "missing.com"]
    )
    assert status == [(True, True), (True, False), (False, False)]
    # An expired domain is never address-probed (the Section 6.1 funnel):
    # only the two delegated domains got an A query.
    a_queries = resolver.queries_sent - 3  # 3 NS queries above
    assert a_queries == 2


def test_query_many_orders_match_input():
    resolver = StubResolver(_store())
    responses = resolver.query_many(["example.com", "missing.com"], RRType.A)
    assert [r.name for r in responses] == ["example.com", "missing.com"]
    assert not responses[0].is_empty and responses[1].is_empty


def test_passive_dns_observes_resolver():
    resolver = StubResolver(_store())
    collector = PassiveDNSCollector()
    collector.attach_to(resolver)
    resolver.query("example.com", RRType.A, use_cache=False)
    resolver.query("example.com", RRType.A, use_cache=False)
    resolver.query("example.com", RRType.NS, use_cache=False)   # non-A not counted
    assert collector.resolution_count("example.com") == 2
    assert collector.resolution_count("missing.com") == 0


def test_passive_dns_bulk_and_top():
    collector = PassiveDNSCollector()
    collector.bulk_load({"a.com": 100, "b.com": 50, "c.com": 10})
    collector.record_lookups("b.com", 75)
    assert collector.top_domains(2) == [("b.com", 125), ("a.com", 100)]
    assert collector.top_domains(5, within=["c.com"]) == [("c.com", 10)]
    assert collector.total_observations() == 235
    assert len(collector) == 3


def test_client_population_distribution_is_deterministic():
    population = ClientPopulation(seed=1)
    domains = [f"d{i}.com" for i in range(50)]
    first = population.lookup_counts(domains, total_lookups=10_000)
    second = ClientPopulation(seed=1).lookup_counts(domains, total_lookups=10_000)
    assert first == second
    assert sum(first.values()) == 10_000
    assert ClientPopulation().lookup_counts([], total_lookups=10) == {}


def test_client_population_respects_popularity():
    population = ClientPopulation(seed=2)
    domains = ["popular.com", "obscure.com"]
    counts = population.lookup_counts(
        domains, total_lookups=10_000, popularity={"popular.com": 0.99, "obscure.com": 0.01}
    )
    assert counts["popular.com"] > counts["obscure.com"]
