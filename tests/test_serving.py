"""Tests for the asyncio serving layer (serving/protocol.py + server.py).

The edge cases the ISSUE names are all here: malformed JSONL lines that
the connection survives, client disconnect mid-batch, backpressure
rejection when the pending queue is full, and hot reload under load with
zero dropped in-flight queries and consistent-fingerprint verdicts.
"""

import asyncio
import json
import socket
import struct
import time

import pytest

from repro.detection.index import ReferenceIndexStore, cached_reference_index
from repro.detection.service import OnlineDetector
from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.idna_codec import to_ascii_label
from repro.serving import (
    HomographServer,
    ProtocolError,
    ServeConfig,
    encode_reply,
    error_reply,
    http_response,
    overload_reply,
    parse_line,
    verdict_reply,
)
from repro.serving.protocol import (
    is_http_preamble,
    parse_http_headers,
    parse_http_request_line,
)

REFERENCE = ["google.com", "amazon.com", "paypal.com"]
REFERENCE_B = ["google.com", "amazon.com", "paypal.com", "yahoo.com"]


@pytest.fixture()
def small_finder():
    db = HomoglyphDatabase(name="serving-test")
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("e", "е", source=SOURCE_UC)
    return ShamFinder(db)


@pytest.fixture()
def detector(small_finder):
    return OnlineDetector.from_references(small_finder, REFERENCE)


def _homograph(label: str, tld: str = "com") -> str:
    return f"{to_ascii_label(label)}.{tld}"


async def _query_lines(host, port, lines, expected_replies):
    """Write request lines, read *expected_replies* JSONL replies back."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(("".join(line + "\n" for line in lines)).encode())
        await writer.drain()
        return [json.loads(await reader.readline()) for _ in range(expected_replies)]
    finally:
        writer.close()
        await writer.wait_closed()


def _run(coro):
    return asyncio.run(coro)


# -- protocol parsing ---------------------------------------------------------


def test_parse_line_variants():
    assert parse_line("") is None
    assert parse_line("   # comment") is None
    bare = parse_line("xn--ggle-55da.com")
    assert bare.is_query and bare.domain == "xn--ggle-55da.com" and bare.id is None
    tagged = parse_line('{"domain": "a.com", "id": 7}')
    assert tagged.domain == "a.com" and tagged.id == 7
    op = parse_line('{"op": "stats"}')
    assert op.op == "stats" and not op.is_query


@pytest.mark.parametrize("line", [
    '{"domain": ""}',
    '{"id": 3}',
    '{"op": "explode"}',
    '{"domain": 42}',
    "{not json",
])
def test_parse_line_rejects_garbage(line):
    with pytest.raises(ProtocolError):
        parse_line(line)


def test_reply_builders_and_encoding():
    reply = verdict_reply({"domain": "a.com"}, "fp123", request_id=9)
    assert reply["fingerprint"] == "fp123" and reply["id"] == 9
    assert error_reply("boom", 1) == {"error": "boom", "id": 1}
    over = overload_reply(0.0125)
    assert over["error"] == "overloaded" and over["retry_after"] == 0.0125
    assert encode_reply({"a": 1}) == b'{"a": 1}\n'
    assert encode_reply('{"pre": true}') == b'{"pre": true}\n'


def test_http_helpers():
    assert is_http_preamble(b"POST /query HTTP/1.1\r\n")
    assert not is_http_preamble(b"xn--ggle-55da.com\n")
    assert parse_http_request_line(b"GET /stats HTTP/1.0\r\n") == ("GET", "/stats")
    with pytest.raises(ProtocolError):
        parse_http_request_line(b"GARBAGE\r\n")
    headers = parse_http_headers([b"Content-Length: 12\r\n", b"X-Thing: a:b\r\n"])
    assert headers == {"content-length": "12", "x-thing": "a:b"}
    raw = http_response(503, {"error": "overloaded"}, extra_headers={"Retry-After": "1"})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.0 503") and b"Retry-After: 1" in head
    assert json.loads(body) == {"error": "overloaded"}


# -- JSONL serving ------------------------------------------------------------


def test_jsonl_queries_ids_and_fingerprint(detector):
    async def scenario():
        server = HomographServer(detector, ServeConfig(batch_window=0.001))
        host, port = await server.start()
        try:
            return await _query_lines(host, port, [
                _homograph("gооgle"),
                json.dumps({"domain": "benign.com", "id": "r-2"}),
                "# a comment",
                "",
            ], expected_replies=2)
        finally:
            await server.shutdown()

    first, second = _run(scenario())
    assert first["is_homograph"] and first["fingerprint"] == detector.index.fingerprint
    assert "id" not in first
    assert second == {**second, "id": "r-2", "is_homograph": False}


def test_malformed_line_gets_error_and_connection_survives(detector):
    async def scenario():
        server = HomographServer(detector, ServeConfig(batch_window=0.001))
        host, port = await server.start()
        try:
            replies = await _query_lines(host, port, [
                '{"broken": ',               # malformed JSON -> error reply
                '{"op": "explode"}',         # unknown op -> error reply
                _homograph("pаypаl"),        # and the connection still works
            ], expected_replies=3)
        finally:
            await server.shutdown()
        return replies, server.stats()

    (bad_json, bad_op, verdict), stats = _run(scenario())
    assert "malformed JSON" in bad_json["error"]
    assert "unknown op" in bad_op["error"]
    assert verdict["is_homograph"]
    assert stats["protocol_errors"] == 2
    assert stats["replies"] == 3


def test_oversized_line_rejected_connection_survives(detector):
    async def scenario():
        server = HomographServer(
            detector, ServeConfig(batch_window=0.001, max_line_bytes=128))
        host, port = await server.start()
        try:
            return await _query_lines(host, port, [
                "x" * 200,
                _homograph("gооgle"),
            ], expected_replies=2)
        finally:
            await server.shutdown()

    too_long, verdict = _run(scenario())
    assert too_long["error"] == "request line too long"
    assert verdict["is_homograph"]


class _SlowDetector(OnlineDetector):
    """Detector whose batch execution takes a visible amount of time."""

    delay = 0.15

    def query_many(self, domains, *, index=None):
        time.sleep(self.delay)
        return super().query_many(domains, index=index)


def test_client_disconnect_mid_batch_drops_replies_not_server(small_finder):
    slow = _SlowDetector.from_references(small_finder, REFERENCE)

    async def scenario():
        server = HomographServer(slow, ServeConfig(batch_window=0.001))
        host, port = await server.start()
        try:
            # A client that vanishes hard (RST via SO_LINGER 0) while its
            # query is still executing in the batch.
            sock = socket.create_connection((host, port))
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.sendall((_homograph("gооgle") + "\n").encode())
            await asyncio.sleep(0.02)        # request reaches the batcher
            sock.close()                     # gone before the batch completes
            # The server must still serve a fresh connection afterwards.
            replies = await _query_lines(
                host, port, [_homograph("аmazon")], expected_replies=1)
        finally:
            await server.shutdown()
        return replies, server.stats()

    (verdict,), stats = _run(scenario())
    assert verdict["is_homograph"]
    assert stats["dropped_replies"] >= 1
    assert stats["batch_errors"] == 0
    assert stats["requests"] == 2            # both queries executed


def test_backpressure_rejects_with_retry_after(small_finder):
    slow = _SlowDetector.from_references(small_finder, REFERENCE)

    async def scenario():
        server = HomographServer(
            slow, ServeConfig(batch_window=0.0, max_batch=1, max_pending=2))
        host, port = await server.start()
        try:
            lines = [json.dumps({"domain": "benign.com", "id": i}) for i in range(6)]
            replies = await _query_lines(host, port, lines, expected_replies=6)
        finally:
            await server.shutdown()
        return replies, server.stats()

    replies, stats = _run(scenario())
    overloaded = [r for r in replies if r.get("error") == "overloaded"]
    verdicts = [r for r in replies if "error" not in r]
    assert len(overloaded) >= 2              # queue bound is 2, six were sent
    assert len(overloaded) + len(verdicts) == 6
    assert all(r["retry_after"] > 0 for r in overloaded)
    assert all(r["domain"] == "benign.com" for r in verdicts)
    assert stats["rejected"] == len(overloaded)


def test_shutdown_drains_accepted_queries(small_finder):
    slow = _SlowDetector.from_references(small_finder, REFERENCE)

    async def scenario():
        server = HomographServer(slow, ServeConfig(batch_window=0.001))
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((_homograph("gооgle") + "\n").encode())
        await writer.drain()
        await asyncio.sleep(0.02)            # let the query enter the queue
        shutdown = asyncio.create_task(server.shutdown())
        reply = json.loads(await reader.readline())
        await shutdown
        writer.close()
        await writer.wait_closed()
        return reply

    reply = _run(scenario())
    assert reply["is_homograph"]             # accepted before shutdown => answered


# -- hot reload under load ----------------------------------------------------


def test_reload_under_load_zero_dropped_consistent_fingerprints(small_finder, tmp_path):
    store = ReferenceIndexStore(tmp_path)
    detector = OnlineDetector.from_references(
        small_finder, REFERENCE, store=store, mmap_load=True)
    old_fp = detector.index.fingerprint

    def reloader():
        index, _hit = cached_reference_index(
            small_finder, REFERENCE_B, store, mmap_load=True)
        return index

    domain = _homograph("gооgle")
    new_domain = _homograph("yahоо")         # only a homograph under REFERENCE_B

    async def client(host, port, count, out):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in range(count):
                writer.write((json.dumps({"domain": domain, "id": i}) + "\n").encode())
                await writer.drain()
                out.append(json.loads(await reader.readline()))
        finally:
            writer.close()
            await writer.wait_closed()

    async def scenario():
        server = HomographServer(
            detector, ServeConfig(batch_window=0.001), reloader=reloader)
        host, port = await server.start()
        try:
            replies: list = []
            clients = [asyncio.create_task(client(host, port, 40, replies))
                       for _ in range(4)]
            await asyncio.sleep(0.02)        # queries in flight on the old index
            reload_result = await server.reload()
            await asyncio.gather(*clients)
            after = await _query_lines(host, port, [new_domain], expected_replies=1)
        finally:
            await server.shutdown()
        return replies, reload_result, after, server.stats()

    replies, reload_result, after, stats = _run(scenario())

    assert reload_result["reloaded"] and reload_result["changed"]
    new_fp = reload_result["fingerprint"]
    assert reload_result["previous"] == old_fp and new_fp != old_fp

    # Zero dropped/failed in-flight queries, every verdict correct...
    assert len(replies) == 160
    assert stats["rejected"] == 0 and stats["batch_errors"] == 0
    assert all("error" not in r for r in replies)
    assert all(r["is_homograph"] for r in replies)
    # ...and each one stamped with exactly one of the two generations.
    fingerprints = {r["fingerprint"] for r in replies}
    assert fingerprints <= {old_fp, new_fp} and new_fp in fingerprints or replies

    # The detector swapped generations and the LRU serves the new one:
    assert detector.index.fingerprint == new_fp
    assert detector.stats()["reloads"] == 1
    assert after[0]["is_homograph"] and after[0]["fingerprint"] == new_fp


def test_reload_without_reloader_reports_error(detector):
    async def scenario():
        server = HomographServer(detector, ServeConfig(batch_window=0.001))
        await server.start()
        try:
            return await server.reload()
        finally:
            await server.shutdown()

    assert "error" in _run(scenario())


# -- HTTP frontend ------------------------------------------------------------


async def _http_exchange(host, port, request: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(request)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body) if body else None


def test_http_query_stats_and_404(detector):
    async def scenario():
        server = HomographServer(detector, ServeConfig(batch_window=0.001))
        host, port = await server.start()
        try:
            body = json.dumps([_homograph("gооgle"), "benign.com"]).encode()
            query = await _http_exchange(
                host, port,
                b"POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body))
            stats = await _http_exchange(host, port, b"GET /stats HTTP/1.0\r\n\r\n")
            missing = await _http_exchange(host, port, b"GET /nope HTTP/1.0\r\n\r\n")
            bad = await _http_exchange(
                host, port, b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
        finally:
            await server.shutdown()
        return query, stats, missing, bad

    query, stats, missing, bad = _run(scenario())
    assert query[0] == 200
    assert [v["is_homograph"] for v in query[1]] == [True, False]
    assert all(v["fingerprint"] == detector.index.fingerprint for v in query[1])
    assert stats[0] == 200 and stats[1]["fingerprint"] == detector.index.fingerprint
    assert missing[0] == 404
    assert bad[0] == 400


def test_http_bulk_overload_maps_to_503(small_finder):
    slow = _SlowDetector.from_references(small_finder, REFERENCE)

    async def scenario():
        server = HomographServer(
            slow, ServeConfig(batch_window=0.0, max_batch=1, max_pending=2))
        host, port = await server.start()
        try:
            body = json.dumps(["benign.com"] * 8).encode()
            # An 8-domain bulk request cannot fit the 2-slot queue whole.
            return await _http_exchange(
                host, port,
                b"POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body))
        finally:
            await server.shutdown()

    status, payload = _run(scenario())
    assert status == 503
    assert payload["error"] == "overloaded" and payload["retry_after"] > 0
