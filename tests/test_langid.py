"""Tests for the language identifier."""

from collections import Counter

from repro.langid.classifier import LanguageIdentifier, identify, language_histogram


def test_script_decisive_languages():
    identifier = LanguageIdentifier()
    assert identifier.classify("北京大学").code == "zh"
    assert identifier.classify("서울대학교").code == "ko"
    assert identifier.classify("ドメインめい").code == "ja"
    assert identifier.classify("пример").code == "ru"
    assert identifier.classify("παράδειγμα").code == "el"
    assert identifier.classify("מבחן").code == "he"
    assert identifier.classify("مثال").code == "ar"
    assert identifier.classify("ตัวอย่าง").code == "th"


def test_han_plus_kana_is_japanese_not_chinese():
    identifier = LanguageIdentifier()
    assert identifier.classify("工業大学の").code == "ja"
    assert identifier.classify("工業大学").code == "zh"


def test_latin_languages_by_markers():
    identifier = LanguageIdentifier()
    assert identifier.classify("straßenbahn").code == "de"
    assert identifier.classify("kötüoğlu").code == "tr"
    assert identifier.classify("señoríañández").code in ("es", "pt")
    assert identifier.classify("château-élevage").code == "fr"


def test_plain_ascii_falls_back_to_a_latin_language():
    guess = identify("onlineshop")
    assert guess.code in ("en", "de", "nl", "it", "fr", "es", "sv")
    assert 0.0 <= guess.confidence <= 1.0


def test_rank_returns_ordered_guesses():
    identifier = LanguageIdentifier()
    ranked = identifier.rank("müllerstraße", limit=3)
    assert len(ranked) == 3
    assert ranked[0].confidence >= ranked[1].confidence >= ranked[2].confidence
    assert ranked[0].code == "de"


def test_empty_string():
    guess = identify("")
    assert guess.code == "en"


def test_supported_language_inventory():
    identifier = LanguageIdentifier()
    codes = identifier.supported_languages()
    assert len(codes) >= 40
    for code in ("zh", "ko", "ja", "de", "tr", "ru", "ar"):
        assert code in codes


def test_language_histogram_shape():
    labels = ["北京大学", "서울대학교", "ドメインめい", "straße", "château", "пример", "例子"]
    histogram = language_histogram(labels)
    assert isinstance(histogram, Counter)
    assert histogram["Chinese"] == 2
    assert histogram["Korean"] == 1
    assert sum(histogram.values()) == len(labels)
