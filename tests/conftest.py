"""Shared fixtures for the test suite.

Expensive artefacts (SimChar builds, the synthetic population, the full
measurement study) are built once per session and shared; tests that need
to mutate state build their own copies.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.detection.shamfinder import ShamFinder
from repro.fonts.synthetic import SyntheticFont
from repro.homoglyph.confusables import load_confusables
from repro.homoglyph.simchar import SimCharBuilder
from repro.measurement.domainlists import ZoneConfig, generate_population
from repro.measurement.study import MeasurementStudy

#: Small block set used by the fast SimChar fixture (keeps the pairwise scan
#: in the tens of milliseconds while covering the interesting scripts).
FAST_BLOCKS = (
    "Basic Latin",
    "Latin-1 Supplement",
    "Latin Extended-A",
    "IPA Extensions",
    "Greek and Coptic",
    "Cyrillic",
    "Armenian",
    "Combining Diacritical Marks",
)


def pytest_configure(config):
    """Honour ``SHAMFINDER_TEST_START_METHOD`` for the whole session.

    CI runs a dedicated job with this set to ``spawn`` so every pool the
    suite creates (scan, serve, SimChar shards) bootstraps its workers the
    way macOS/Windows would, instead of only ever exercising Linux fork.
    """
    method = os.environ.get("SHAMFINDER_TEST_START_METHOD")
    if method:
        multiprocessing.set_start_method(method, force=True)


@pytest.fixture(scope="session")
def font():
    """The deterministic synthetic font."""
    return SyntheticFont()


@pytest.fixture(scope="session")
def fast_builder(font):
    """A SimChar builder over a small repertoire (fast)."""
    return SimCharBuilder(font, repertoire_blocks=FAST_BLOCKS, limit_per_block=300)


@pytest.fixture(scope="session")
def simchar_result(fast_builder):
    """A built SimChar result over the fast repertoire."""
    return fast_builder.build()


@pytest.fixture(scope="session")
def simchar_db(simchar_result):
    """The SimChar database of the fast build."""
    return simchar_result.database


@pytest.fixture(scope="session")
def uc_table():
    """The embedded UC confusables table."""
    return load_confusables()


@pytest.fixture(scope="session")
def uc_db(uc_table):
    """UC as a homoglyph database (all characters)."""
    return uc_table.to_database()


@pytest.fixture(scope="session")
def uc_idna_db(uc_db):
    """UC restricted to IDNA-permitted characters."""
    return uc_db.restricted_to_idna(name="UC∩IDNA")


@pytest.fixture(scope="session")
def union_db(simchar_db, uc_idna_db):
    """UC ∪ SimChar — the database ShamFinder uses."""
    return simchar_db.union(uc_idna_db, name="UC∪SimChar")


@pytest.fixture(scope="session")
def finder(union_db, uc_idna_db, simchar_db):
    """A ShamFinder over the session databases."""
    return ShamFinder(union_db, uc_database=uc_idna_db, simchar_database=simchar_db)


@pytest.fixture(scope="session")
def population():
    """A small synthetic .com population."""
    return generate_population(ZoneConfig.small())


@pytest.fixture(scope="session")
def study(population, finder):
    """A measurement study wired over the small population."""
    return MeasurementStudy(population, finder)


@pytest.fixture(scope="session")
def study_results(study):
    """The full study results (runs the whole pipeline once per session)."""
    return study.run()
