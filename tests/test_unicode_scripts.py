"""Tests for script classification and mixed-script detection."""

import pytest

from repro.unicode.scripts import (
    HIGHLY_CONFUSABLE_SCRIPTS,
    KNOWN_SCRIPTS,
    dominant_script,
    is_mixed_script,
    script_of,
    scripts_of_text,
)


@pytest.mark.parametrize(
    "char, expected",
    [
        ("a", "Latin"),
        ("Z", "Latin"),
        ("é", "Latin"),
        ("а", "Cyrillic"),
        ("ο", "Greek"),
        ("օ", "Armenian"),
        ("ا", "Arabic"),
        ("א", "Hebrew"),
        ("あ", "Hiragana"),
        ("エ", "Katakana"),
        ("中", "Han"),
        ("한", "Hangul"),
        ("ท", "Thai"),
        ("໐", "Lao"),
        ("Ꭰ"[0], "Cherokee"),
        ("5", "Common"),
        ("-", "Common"),
        ("́", "Inherited"),
    ],
)
def test_script_of_single_characters(char, expected):
    assert script_of(char) == expected


def test_script_of_accepts_codepoints():
    assert script_of(0x0430) == "Cyrillic"
    assert script_of(0x4E00) == "Han"


def test_script_of_rejects_multichar_and_out_of_range():
    with pytest.raises(ValueError):
        script_of("ab")
    with pytest.raises(ValueError):
        script_of(0x110000)


def test_scripts_of_text_ignores_common_by_default():
    assert scripts_of_text("google123") == {"Latin"}
    assert scripts_of_text("123-") == set()
    assert "Common" in scripts_of_text("google123", ignore_common=False)


def test_mixed_script_detection():
    assert not is_mixed_script("google")
    assert not is_mixed_script("facébook")          # all Latin
    assert is_mixed_script("gооgle")                 # Cyrillic о inside Latin
    assert is_mixed_script("工業大学エ")              # Han + Katakana mix
    assert not is_mixed_script("пример")             # pure Cyrillic


def test_dominant_script():
    assert dominant_script("google") == "Latin"
    assert dominant_script("gооgle") == "Latin"      # 4 Latin vs 2 Cyrillic
    assert dominant_script("ооgооо") == "Cyrillic"
    assert dominant_script("1234-") == "Common"


def test_known_scripts_cover_confusable_scripts():
    assert HIGHLY_CONFUSABLE_SCRIPTS <= KNOWN_SCRIPTS
    for name in ("Latin", "Han", "Hangul", "Hiragana", "Katakana", "Vai", "Oriya"):
        assert name in KNOWN_SCRIPTS


def test_fullwidth_latin_is_latin():
    assert script_of("ａ") == "Latin"
    assert script_of("ア") == "Katakana"
