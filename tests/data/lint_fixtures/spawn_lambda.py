"""Seeded regression for the spawn-safety rule (PR 8's bug class).

A lambda initializer pickles fine nowhere: it works under fork, then
breaks macOS/Windows (spawn) where the pool must pickle it into each
child.  Same for the locally-defined task function.
"""

from multiprocessing import Pool


def scan(domains: list) -> list:
    table = {"a": "а"}

    def fold_one(domain: str) -> str:
        return "".join(table.get(ch, ch) for ch in domain)

    with Pool(2, initializer=lambda: None) as pool:
        return pool.map(fold_one, domains)
