"""Renamed-variable fold escape: the v1 name heuristic missed this.

The label flows through a bland rename before being folded, so no
label-flavoured identifier appears at the sink — only the taint
dataflow sees that the *value* is label-tainted.
"""


def substitution_positions(candidate_label: str, reference: str) -> list:
    s = candidate_label  # rename that escaped the v1 identifier heuristic
    folded = s.lower()
    return [i for i, (a, b) in enumerate(zip(folded, reference)) if a != b]
