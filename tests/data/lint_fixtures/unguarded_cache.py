"""Seeded regression for the lock-discipline rule (OnlineDetector's bug).

``lookup`` touches the LRU cache without holding the declared lock: it
passes every single-threaded test and corrupts the dict under the real
thread pool.
"""

import threading


class VerdictCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cache: dict = {}   # guarded-by: _lock

    def store(self, domain: str, verdict: str) -> None:
        with self._lock:
            self._cache[domain] = verdict

    def lookup(self, domain: str):
        return self._cache.get(domain)
