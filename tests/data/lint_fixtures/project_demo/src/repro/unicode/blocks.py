"""Clean lowest-layer module: legitimately imported by everyone."""

__all__ = ["block_tag"]


def block_tag(codepoint: int) -> str:
    return f"U+{codepoint:04X}"
