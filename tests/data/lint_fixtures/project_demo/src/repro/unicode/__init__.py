"""Demo unicode package (layer 0)."""
