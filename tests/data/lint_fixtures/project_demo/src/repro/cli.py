"""The demo CLI: the one layer allowed to print and exit."""

import sys

__all__ = ["render_banner", "main"]


def render_banner(text: str) -> str:
    return f"== {text} =="


def main() -> int:
    print(render_banner("demo"))
    sys.exit(0)
