"""Upward-import regression: a layer-1 module importing detection.

Dependencies must point down the layer DAG; idn (layer 1) reaching into
detection (layer 4) inverts it.
"""

from repro.detection.skeleton import join_skeletons

__all__ = ["fold_and_join"]


def fold_and_join(parts: list) -> str:
    return join_skeletons(parts)
