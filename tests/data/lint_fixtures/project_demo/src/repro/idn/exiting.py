"""Exception-contract regression: a library module owning the terminal.

Library modules raise library exceptions; printing to stdout, calling
sys.exit, and raising CLIError are all the cli layer's business.
"""

import sys

__all__ = ["load_tld_table", "require_tld"]


class CLIError(RuntimeError):
    """Stand-in for the real CLI error type."""


def load_tld_table(path: str) -> dict:
    print(f"loading {path}")
    if not path:
        sys.exit(2)
    return {}


def require_tld(tld: str) -> str:
    if not tld:
        raise CLIError("missing tld")
    return tld
