"""Demo idn package (layer 1)."""
