"""Demo measurement package (layer 6)."""
