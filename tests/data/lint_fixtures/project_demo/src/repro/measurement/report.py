"""Imports-of-cli regression: nothing imports the CLI, ever."""

from repro.cli import render_banner

__all__ = ["summarise_run"]


def summarise_run(count: int) -> str:
    return render_banner(f"{count} domains scanned")
