"""Mini repro tree exercised by the project-rule fixture tests."""
