"""Demo homoglyph package (layer 3)."""
