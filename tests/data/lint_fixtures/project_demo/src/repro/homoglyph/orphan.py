"""Dead-export regression: a public symbol nothing references."""


def orphan_export(table: dict) -> list:
    return sorted(table)
