"""Clean detection-layer module, imported (illegally) from idn."""

__all__ = ["join_skeletons"]


def join_skeletons(parts: list) -> str:
    return "".join(parts)
