"""Demo detection package (layer 4)."""
