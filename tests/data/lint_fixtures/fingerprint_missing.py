"""Seeded regression for the fingerprint-completeness rule (PR 7's bug).

``build_key`` forgets to thread ``threshold`` into the fingerprint, so
two builders differing only in threshold collide on one cached artifact
(the dataclass default hides the omission at runtime).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ArtifactKey:
    font_id: str
    repertoire_hash: str
    threshold: int = 32


# lint: fingerprint(ArtifactKey)
def build_key(font_id: str, repertoire_hash: str) -> ArtifactKey:
    return ArtifactKey(
        font_id=font_id,
        repertoire_hash=repertoire_hash,
    )
