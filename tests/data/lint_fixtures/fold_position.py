"""Seeded regression for the fold-safety rule (PR 2's U+0130 bug).

``str.lower`` is not length-preserving: ``"İ".lower()`` is two code
points, so folding a label and then indexing by position desynchronises
the fold from the original.  The repo's ``fold_label`` exists precisely
so call sites never do this.
"""


def highlight_confusable(label: str, position: int) -> str:
    folded = label.lower()
    # Position-indexed use of a folded label: off by one after U+0130.
    return folded[position]
