"""Seeded regression for the broad-except rule.

The bare ``except Exception: pass`` swallows every failure — including
the ones the caller needed to see — without re-raising, logging, or
replying with the error.
"""


def enrich(record: dict) -> dict:
    try:
        record["asn"] = int(record["asn_raw"])
    except Exception:
        pass
    return record
