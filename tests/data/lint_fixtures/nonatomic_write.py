"""Seeded regression for the atomic-write rule (pre-PR 6 ``.idx`` write).

Writing the reference index in place means a crash mid-write leaves a
torn artifact that every later reader mmaps; the fix is temp name +
``os.replace``.
"""

import json


def save_index(idx_path: str, payload: dict) -> None:
    with open(idx_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
