"""Tests for the persistable reference-index artifact (detection/index.py)."""

import hashlib
import json
from dataclasses import asdict

import pytest

from repro.detection.index import (
    INDEX_FORMAT_VERSION,
    INDEX_MAGIC,
    IndexKey,
    MmapPreparedReferences,
    ReferenceIndexStore,
    build_reference_index,
    cached_reference_index,
    key_for,
    reference_list_hash,
)
from repro.detection.shamfinder import ShamFinder
from repro.detection.skeleton import PACK_SEPARATOR
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.idna_codec import to_ascii_label


@pytest.fixture()
def small_finder():
    db = HomoglyphDatabase(name="idx-test")
    db.add_pair("o", "о", source=SOURCE_UC)   # Cyrillic о
    db.add_pair("a", "а", source=SOURCE_UC)   # Cyrillic а
    db.add_pair("e", "е", source=SOURCE_UC)   # Cyrillic е
    return ShamFinder(db)


REFERENCE = ["google.com", "amazon.com", "paypal.com", "apple.net", "google.net"]

HOMOGRAPHS = [
    to_ascii_label("gооgle") + ".com",
    to_ascii_label("аmazon") + ".com",
    to_ascii_label("applе") + ".net",
]


def _detect(finder, prepared):
    detections, idn_count, skipped = finder.detect_prepared(HOMOGRAPHS + ["benign.com"], prepared)
    return [d.as_dict() for d in detections], idn_count, skipped


# -- fingerprinting -----------------------------------------------------------


def test_reference_hash_tracks_content_and_order():
    assert reference_list_hash(["a.com", "b.com"]) == reference_list_hash(["a.com", "b.com"])
    assert reference_list_hash(["a.com"]) != reference_list_hash(["a.com", "b.com"])
    # Order-sensitive by design: a reordered list rebuilds (safe, just not free).
    assert reference_list_hash(["a.com", "b.com"]) != reference_list_hash(["b.com", "a.com"])


def test_key_changes_with_database_and_references(small_finder):
    key = key_for(small_finder, REFERENCE)
    assert key == key_for(small_finder, list(REFERENCE))
    assert key != key_for(small_finder, REFERENCE[:-1])

    other_db = HomoglyphDatabase(name="other")
    other_db.add_pair("o", "о", source=SOURCE_UC)
    assert key != key_for(ShamFinder(other_db), REFERENCE)


def test_database_digest_ignores_name_but_not_pairs():
    first = HomoglyphDatabase(name="one")
    second = HomoglyphDatabase(name="two")
    for db in (first, second):
        db.add_pair("o", "о", source=SOURCE_UC)
    assert first.content_digest() == second.content_digest()
    second.add_pair("a", "а", source=SOURCE_UC)
    assert first.content_digest() != second.content_digest()


# -- round trip ---------------------------------------------------------------


def test_store_load_round_trip_is_detection_identical(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    built, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert not hit and not built.from_cache

    loaded, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert hit and loaded.from_cache
    assert loaded.fingerprint == built.fingerprint
    assert loaded.domain_count == built.domain_count
    assert sorted(loaded.prepared.labels) == sorted(built.prepared.labels)
    assert _detect(small_finder, loaded.prepared) == _detect(small_finder, built.prepared)


def test_loaded_references_are_canonical(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    store.store(build_reference_index(small_finder, REFERENCE))
    loaded = store.load(key_for(small_finder, REFERENCE), small_finder)
    refs = [ref for label in loaded.prepared.labels
            for ref in loaded.prepared.references_for(label)]
    assert sorted(refs) == sorted(REFERENCE)
    # tld filtering (used by detect_prepared) must survive the round trip
    assert {r.rpartition(".")[2] for r in refs} == {"com", "net"}


def test_store_none_degrades_to_in_memory_build(small_finder):
    index, hit = cached_reference_index(small_finder, REFERENCE, None)
    assert not hit and not index.from_cache
    assert index.domain_count == len(REFERENCE)


def test_force_rebuild_skips_read_but_refreshes(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    first, _ = cached_reference_index(small_finder, REFERENCE, store)
    path = store.path_for(first.key)
    before = path.stat().st_mtime_ns
    forced, hit = cached_reference_index(small_finder, REFERENCE, store, force=True)
    assert not hit and not forced.from_cache
    assert path.stat().st_mtime_ns >= before
    # And the refreshed artifact still loads.
    assert store.load(first.key, small_finder) is not None


# -- corruption -> rebuild ----------------------------------------------------


def _stored_path(tmp_path, finder):
    store = ReferenceIndexStore(tmp_path)
    index = build_reference_index(finder, REFERENCE)
    return store, index, store.store(index)


def test_missing_artifact_is_a_miss(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    assert store.load(key_for(small_finder, REFERENCE), small_finder) is None


def test_truncated_artifact_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    assert store.load(index.key, small_finder) is None
    # cached_reference_index transparently rebuilds and re-persists
    rebuilt, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert not hit
    assert store.load(index.key, small_finder) is not None


def test_garbage_header_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    lines = path.read_text(encoding="utf-8").splitlines()
    path.write_text("not json at all\n" + "\n".join(lines[1:]) + "\n", encoding="utf-8")
    assert store.load(index.key, small_finder) is None


def test_wrong_magic_or_version_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    lines = path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])

    header["magic"] = "something-else"
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n", encoding="utf-8")
    assert store.load(index.key, small_finder) is None

    header["magic"] = "shamfinder-reference-index"
    header["version"] = INDEX_FORMAT_VERSION + 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n", encoding="utf-8")
    assert store.load(index.key, small_finder) is None


def test_mismatched_key_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    other_key = IndexKey(database_digest="0" * 16, reference_hash=index.key.reference_hash)
    # Pretend the same file answers for a different key (e.g. copied around).
    path.rename(store.path_for(other_key))
    assert store.load(other_key, small_finder) is None


def test_label_count_mismatch_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    lines = path.read_text(encoding="utf-8").splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")  # drop one entry
    assert store.load(index.key, small_finder) is None


def test_unwritable_store_degrades_to_a_warning(tmp_path, small_finder):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory", encoding="utf-8")
    store = ReferenceIndexStore(target)
    with pytest.warns(UserWarning, match="could not persist reference index"):
        index, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert not hit
    assert index.domain_count == len(REFERENCE)


def test_entries_and_clear(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    assert store.entries() == [path]
    assert store.clear() == 1
    assert store.entries() == []


# -- mmap load path (format v2) ----------------------------------------------


def test_mmap_load_is_detection_identical(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    mapped = store.load_mmap(index.key, small_finder, verify=True)
    assert mapped is not None and mapped.mapped and mapped.from_cache
    assert mapped.fingerprint == index.fingerprint
    assert isinstance(mapped.prepared, MmapPreparedReferences)
    assert mapped.prepared.path == path

    # Same label/bucket content through the mapping view...
    assert sorted(mapped.prepared.labels) == sorted(index.prepared.labels)
    assert mapped.label_count == index.label_count
    assert mapped.domain_count == index.domain_count
    for label in index.prepared.labels:
        assert label in mapped.prepared.labels
        assert mapped.prepared.references_for(label) == tuple(
            index.prepared.references_for(label))
    assert "no-such-label" not in mapped.prepared.labels
    assert mapped.prepared.references_for("no-such-label") == ()

    # ...and byte-identical detections through the probe surface.
    assert _detect(small_finder, mapped.prepared) == _detect(small_finder, index.prepared)
    mapped.prepared.close()


def test_mmap_skeleton_index_probe_surface(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    mapped = store.load_mmap(index.key, small_finder)
    probe = mapped.prepared.index
    assert len(probe) == len(index.prepared.index)
    assert probe.bucket_count == len(dict(index.prepared.index.buckets()))
    assert dict(probe.buckets()) == dict(index.prepared.index.buckets())
    # candidates_for goes through skeletonize + binary search on the map.
    for label in index.prepared.labels:
        assert sorted(probe.candidates_for(label)) == sorted(
            index.prepared.index.candidates_for(label))
    assert probe.candidates_for("zzzzzz-unbucketed") == []
    mapped.prepared.close()


def test_load_path_takes_key_from_header(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    mapped = store.load_path(path, small_finder)
    assert mapped is not None and mapped.mapped
    assert mapped.key == index.key
    assert store.load_path(tmp_path / "refindex-missing.idx", small_finder) is None


def test_mmap_structural_corruption_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    data = path.read_bytes()

    path.write_bytes(data[:-3])               # truncated: section math breaks
    assert store.load_mmap(index.key, small_finder) is None

    # A directory whose terminal offset disagrees with its section length
    # (the file ends with the last directory's fixed-width final entry).
    corrupted = bytearray(data)
    corrupted[-1] = ord("9") if corrupted[-1] != ord("9") else ord("8")
    path.write_bytes(bytes(corrupted))
    assert store.load_mmap(index.key, small_finder) is None


def test_mmap_verify_catches_bit_rot(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    data = bytearray(path.read_bytes())
    # Flip one letter inside the first label record: structurally sound,
    # so only the checksum pass can notice.
    body_at = data.find(b"\n") + 1
    data[body_at] = ord("q") if data[body_at] != ord("q") else ord("z")
    path.write_bytes(bytes(data))
    assert store.load_mmap(index.key, small_finder, verify=True) is None
    # Without verification the open trusts the structure — that is the
    # documented tradeoff that makes worker attach O(header).
    lax = store.load_mmap(index.key, small_finder, verify=False)
    assert lax is not None
    lax.prepared.close()


def test_cached_reference_index_mmap_load(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    built, hit = cached_reference_index(small_finder, REFERENCE, store, mmap_load=True)
    assert not hit and built.mapped            # fresh build, re-opened as a map
    again, hit = cached_reference_index(small_finder, REFERENCE, store, mmap_load=True)
    assert hit and again.mapped
    assert again.fingerprint == built.fingerprint
    assert _detect(small_finder, again.prepared) == _detect(small_finder, built.prepared)


# -- format-version-1 fallback ------------------------------------------------


def _write_v1_artifact(store: ReferenceIndexStore, finder, reference):
    """Write a pre-mmap four-section artifact exactly as PR 5 stored it."""
    index = build_reference_index(finder, reference)
    prepared = index.prepared
    labels = list(prepared.labels)
    groups = [prepared.labels[label] for label in labels]
    buckets = dict(prepared.index.buckets())
    sections = [
        PACK_SEPARATOR.join(labels),
        "\x1e".join(groups),
        PACK_SEPARATOR.join(buckets),
        "\x1e".join(PACK_SEPARATOR.join(members) for members in buckets.values()),
    ]
    body = "\n".join(sections)
    v1_key = IndexKey(database_digest=index.key.database_digest,
                      reference_hash=index.key.reference_hash, format_version=1)
    header = {
        "magic": INDEX_MAGIC,
        "version": 1,
        "key": v1_key.as_dict(),
        "label_count": len(labels),
        "bucket_count": len(buckets),
        "entry_count": sum(len(members) for members in buckets.values()),
        "domain_count": prepared.domain_count,
        "body_sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
    }
    store.index_dir.mkdir(parents=True, exist_ok=True)
    path = store.path_for(v1_key)
    path.write_text(json.dumps(header, ensure_ascii=False) + "\n" + body,
                    encoding="utf-8")
    return index, v1_key, path


def test_v1_artifact_is_read_via_fallback(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    built, v1_key, path = _write_v1_artifact(store, small_finder, REFERENCE)
    key = key_for(small_finder, REFERENCE)
    assert key.format_version == INDEX_FORMAT_VERSION
    assert store.path_for(key) != path         # different digest, different file

    loaded = store.load(key, small_finder)
    assert loaded is not None and loaded.from_cache
    assert loaded.key == v1_key                # served under the v1 identity
    assert _detect(small_finder, loaded.prepared) == _detect(small_finder, built.prepared)


def test_v1_hit_upgrades_to_current_format(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    built, v1_key, v1_path = _write_v1_artifact(store, small_finder, REFERENCE)

    index, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert hit                                 # the fallback counts as a hit...
    assert index.key.format_version == INDEX_FORMAT_VERSION
    current_path = store.path_for(index.key)
    assert current_path.exists()               # ...and was rewritten in-format
    assert _detect(small_finder, index.prepared) == _detect(small_finder, built.prepared)

    # From now on the current-format artifact answers directly — including
    # through the mmap path, which never reads v1 bodies.
    mapped, hit = cached_reference_index(small_finder, REFERENCE, store, mmap_load=True)
    assert hit and mapped.mapped
    assert _detect(small_finder, mapped.prepared) == _detect(small_finder, built.prepared)


def test_corrupt_v1_fallback_is_a_miss(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    _built, _v1_key, path = _write_v1_artifact(store, small_finder, REFERENCE)
    data = path.read_text(encoding="utf-8")
    path.write_text(data[: len(data) - 5], encoding="utf-8")
    assert store.load(key_for(small_finder, REFERENCE), small_finder) is None
