"""Tests for the persistable reference-index artifact (detection/index.py)."""

import json

import pytest

from repro.detection.index import (
    INDEX_FORMAT_VERSION,
    IndexKey,
    ReferenceIndexStore,
    build_reference_index,
    cached_reference_index,
    key_for,
    reference_list_hash,
)
from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.idna_codec import to_ascii_label


@pytest.fixture()
def small_finder():
    db = HomoglyphDatabase(name="idx-test")
    db.add_pair("o", "о", source=SOURCE_UC)   # Cyrillic о
    db.add_pair("a", "а", source=SOURCE_UC)   # Cyrillic а
    db.add_pair("e", "е", source=SOURCE_UC)   # Cyrillic е
    return ShamFinder(db)


REFERENCE = ["google.com", "amazon.com", "paypal.com", "apple.net", "google.net"]

HOMOGRAPHS = [
    to_ascii_label("gооgle") + ".com",
    to_ascii_label("аmazon") + ".com",
    to_ascii_label("applе") + ".net",
]


def _detect(finder, prepared):
    detections, idn_count, skipped = finder.detect_prepared(HOMOGRAPHS + ["benign.com"], prepared)
    return [d.as_dict() for d in detections], idn_count, skipped


# -- fingerprinting -----------------------------------------------------------


def test_reference_hash_tracks_content_and_order():
    assert reference_list_hash(["a.com", "b.com"]) == reference_list_hash(["a.com", "b.com"])
    assert reference_list_hash(["a.com"]) != reference_list_hash(["a.com", "b.com"])
    # Order-sensitive by design: a reordered list rebuilds (safe, just not free).
    assert reference_list_hash(["a.com", "b.com"]) != reference_list_hash(["b.com", "a.com"])


def test_key_changes_with_database_and_references(small_finder):
    key = key_for(small_finder, REFERENCE)
    assert key == key_for(small_finder, list(REFERENCE))
    assert key != key_for(small_finder, REFERENCE[:-1])

    other_db = HomoglyphDatabase(name="other")
    other_db.add_pair("o", "о", source=SOURCE_UC)
    assert key != key_for(ShamFinder(other_db), REFERENCE)


def test_database_digest_ignores_name_but_not_pairs():
    first = HomoglyphDatabase(name="one")
    second = HomoglyphDatabase(name="two")
    for db in (first, second):
        db.add_pair("o", "о", source=SOURCE_UC)
    assert first.content_digest() == second.content_digest()
    second.add_pair("a", "а", source=SOURCE_UC)
    assert first.content_digest() != second.content_digest()


# -- round trip ---------------------------------------------------------------


def test_store_load_round_trip_is_detection_identical(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    built, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert not hit and not built.from_cache

    loaded, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert hit and loaded.from_cache
    assert loaded.fingerprint == built.fingerprint
    assert loaded.domain_count == built.domain_count
    assert sorted(loaded.prepared.labels) == sorted(built.prepared.labels)
    assert _detect(small_finder, loaded.prepared) == _detect(small_finder, built.prepared)


def test_loaded_references_are_canonical(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    store.store(build_reference_index(small_finder, REFERENCE))
    loaded = store.load(key_for(small_finder, REFERENCE), small_finder)
    refs = [ref for label in loaded.prepared.labels
            for ref in loaded.prepared.references_for(label)]
    assert sorted(refs) == sorted(REFERENCE)
    # tld filtering (used by detect_prepared) must survive the round trip
    assert {r.rpartition(".")[2] for r in refs} == {"com", "net"}


def test_store_none_degrades_to_in_memory_build(small_finder):
    index, hit = cached_reference_index(small_finder, REFERENCE, None)
    assert not hit and not index.from_cache
    assert index.domain_count == len(REFERENCE)


def test_force_rebuild_skips_read_but_refreshes(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    first, _ = cached_reference_index(small_finder, REFERENCE, store)
    path = store.path_for(first.key)
    before = path.stat().st_mtime_ns
    forced, hit = cached_reference_index(small_finder, REFERENCE, store, force=True)
    assert not hit and not forced.from_cache
    assert path.stat().st_mtime_ns >= before
    # And the refreshed artifact still loads.
    assert store.load(first.key, small_finder) is not None


# -- corruption -> rebuild ----------------------------------------------------


def _stored_path(tmp_path, finder):
    store = ReferenceIndexStore(tmp_path)
    index = build_reference_index(finder, REFERENCE)
    return store, index, store.store(index)


def test_missing_artifact_is_a_miss(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    assert store.load(key_for(small_finder, REFERENCE), small_finder) is None


def test_truncated_artifact_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    assert store.load(index.key, small_finder) is None
    # cached_reference_index transparently rebuilds and re-persists
    rebuilt, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert not hit
    assert store.load(index.key, small_finder) is not None


def test_garbage_header_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    lines = path.read_text(encoding="utf-8").splitlines()
    path.write_text("not json at all\n" + "\n".join(lines[1:]) + "\n", encoding="utf-8")
    assert store.load(index.key, small_finder) is None


def test_wrong_magic_or_version_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    lines = path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])

    header["magic"] = "something-else"
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n", encoding="utf-8")
    assert store.load(index.key, small_finder) is None

    header["magic"] = "shamfinder-reference-index"
    header["version"] = INDEX_FORMAT_VERSION + 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n", encoding="utf-8")
    assert store.load(index.key, small_finder) is None


def test_mismatched_key_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    other_key = IndexKey(database_digest="0" * 16, reference_hash=index.key.reference_hash)
    # Pretend the same file answers for a different key (e.g. copied around).
    path.rename(store.path_for(other_key))
    assert store.load(other_key, small_finder) is None


def test_label_count_mismatch_is_a_miss(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    lines = path.read_text(encoding="utf-8").splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")  # drop one entry
    assert store.load(index.key, small_finder) is None


def test_unwritable_store_degrades_to_a_warning(tmp_path, small_finder):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory", encoding="utf-8")
    store = ReferenceIndexStore(target)
    with pytest.warns(UserWarning, match="could not persist reference index"):
        index, hit = cached_reference_index(small_finder, REFERENCE, store)
    assert not hit
    assert index.domain_count == len(REFERENCE)


def test_entries_and_clear(tmp_path, small_finder):
    store, index, path = _stored_path(tmp_path, small_finder)
    assert store.entries() == [path]
    assert store.clear() == 1
    assert store.entries() == []
