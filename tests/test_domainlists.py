"""Tests for the synthetic .com population generator."""

import pytest

from repro.measurement.domainlists import (
    ATTACKER_SUBSTITUTIONS,
    ZoneConfig,
    generate_population,
)
from repro.web.hosting import SiteCategory


def test_attacker_substitutions_cover_all_letters():
    assert set(ATTACKER_SUBSTITUTIONS) == set("abcdefghijklmnopqrstuvwxyz") - {"f"} or \
        set("abcdefghijklmnopqrstuvwxyz") >= set(ATTACKER_SUBSTITUTIONS)
    for letter, alternatives in ATTACKER_SUBSTITUTIONS.items():
        assert alternatives, letter
        assert all(alt != letter for alt in alternatives)


def test_generation_is_deterministic(population):
    again = generate_population(ZoneConfig.small())
    assert again.all_domains == population.all_domains
    assert [h.domain_ascii for h in again.homographs] == [
        h.domain_ascii for h in population.homographs
    ]


def test_population_sizes_respect_config(population):
    config = population.config
    assert len(population.all_domains) == pytest.approx(config.total_domains, rel=0.05)
    assert len(population.homographs) == config.homograph_count
    assert len(population.reference) == config.reference_size


def test_idn_fraction_in_range(population):
    idns = [d for d in population.all_domains if d.split(".")[0].startswith("xn--")]
    fraction = len(idns) / len(population.all_domains)
    assert fraction == pytest.approx(population.config.idn_fraction, rel=0.35)


def test_headline_homographs_present(population):
    unicode_domains = {h.domain_unicode for h in population.homographs}
    assert "gmaıl.com" in unicode_domains
    assert "döviz.com" in unicode_domains
    gmail_phish = population.web.get("xn--gmal-yqa.com") or population.web.get(
        [h.domain_ascii for h in population.homographs if h.domain_unicode == "gmaıl.com"][0]
    )
    assert gmail_phish is not None
    assert gmail_phish.category is SiteCategory.PHISHING
    assert gmail_phish.lookups == 615_447
    assert gmail_phish.cloaking


def test_homographs_target_paper_domains(population):
    targets = [h.reference for h in population.homographs]
    counts = {d: targets.count(d) for d in set(targets)}
    # The boosted targets dominate.
    assert counts.get("myetherwallet.com", 0) >= 3
    assert counts.get("google.com", 0) >= 2


def test_homograph_ascii_forms_are_idns(population):
    for homograph in population.homographs:
        assert homograph.domain_ascii.split(".")[0].startswith("xn--")
        assert homograph.domain_ascii.endswith(".com")
        assert homograph.reference.endswith(".com")


def test_zone_and_domainlists_overlap(population):
    zone = set(population.zone_domains)
    lists = set(population.domainlists_domains)
    union = set(population.all_domains)
    assert zone <= union and lists <= union
    assert len(zone & lists) > 0.9 * min(len(zone), len(lists))
    assert union == zone | lists


def test_dataset_table_shape(population):
    table = population.dataset_table()
    assert [row[0] for row in table] == ["zone file", "domainlists.io", "Total (union)"]
    for _source, domains, idns in table:
        assert idns <= domains
    assert table[2][1] >= max(table[0][1], table[1][1])


def test_zone_file_delegations_match_zone_domains(population):
    assert population.zone.domain_count() == len(population.zone_domains)
    sample = population.zone_domains[0]
    assert population.zone.nameservers_of(sample)


def test_web_profiles_cover_homographs_and_reference(population):
    for homograph in population.homographs:
        assert population.web.get(homograph.domain_ascii) is not None
    assert population.web.get("google.com") is not None
    assert population.web.get("google.com").has_mx


def test_blacklists_contain_some_homographs(population):
    listed = population.blacklists.union_hits(
        [h.domain_ascii for h in population.homographs]
    )
    assert listed, "expected at least one blacklisted homograph"
    counts = population.blacklists.hit_counts([h.domain_ascii for h in population.homographs])
    assert counts["hpHosts"] >= counts["GSB"] >= counts["Symantec"]


def test_expired_homographs_exist(population):
    unregistered = [
        h for h in population.homographs
        if population.web.get(h.domain_ascii) is not None
        and not population.web.get(h.domain_ascii).registered
    ]
    assert unregistered, "some homograph registrations should have expired"


def test_paper_scaled_config():
    config = ZoneConfig.paper_scaled(scale=0.01)
    assert config.total_domains == 1400
    assert config.homograph_count >= 3
    assert config.reference_size == 100
