"""Tests for zone snapshot diffing (dns/zonediff.py).

The hypothesis property suite pins the algebra the longitudinal tracker
relies on: ``apply(diff(a, b), a) == b``, a zone diffed with itself is
empty, and the zone presentation format round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.zonediff import (
    DelegationChange,
    ZoneDelta,
    ZoneDeltaError,
    apply_delta,
    diff_delegations,
    diff_zones,
    read_delegations,
)
from repro.dns.zonefile import ZoneFile

# -- strategies ----------------------------------------------------------------

_LABELS = st.text(alphabet="abcdxyz", min_size=1, max_size=8)
_NAMESERVERS = st.sampled_from(
    ["ns1.example.net", "ns2.example.net", "ns1.parked.example", "ns.other.org"]
)

#: domain -> nameserver set; the abstract content of one zone snapshot.
_ZONE_MAPS = st.dictionaries(
    _LABELS.map(lambda label: f"{label}.com"),
    st.frozensets(_NAMESERVERS, min_size=1, max_size=3),
    max_size=25,
)


def _build_zone(delegations: dict[str, frozenset[str]]) -> ZoneFile:
    zone = ZoneFile(tld="com")
    for domain, nameservers in delegations.items():
        zone.add_delegation(domain, sorted(nameservers))
    return zone


# -- property suite --------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(_ZONE_MAPS)
def test_diff_with_itself_is_empty(delegations):
    zone = _build_zone(delegations)
    delta = diff_zones(zone, zone)
    assert delta.is_empty
    assert len(delta) == 0


@settings(max_examples=60, deadline=None)
@given(_ZONE_MAPS, _ZONE_MAPS)
def test_apply_diff_reconstructs_newer_zone(older_map, newer_map):
    older = _build_zone(older_map)
    newer = _build_zone(newer_map)
    delta = diff_zones(older, newer)
    rebuilt = apply_delta(older, delta)
    assert list(rebuilt.delegations()) == list(newer.delegations())


@settings(max_examples=60, deadline=None)
@given(_ZONE_MAPS)
def test_zone_lines_roundtrip(delegations):
    zone = _build_zone(delegations)
    loaded = ZoneFile.from_lines("com", zone.to_lines())
    assert list(loaded.delegations()) == list(zone.delegations())
    assert loaded.domains() == zone.domains()


# -- unit tests -------------------------------------------------------------------


def test_delta_classification():
    older = _build_zone({
        "stays.com": frozenset({"ns1.example.net"}),
        "leaves.com": frozenset({"ns1.example.net"}),
        "moves.com": frozenset({"ns1.example.net"}),
    })
    newer = _build_zone({
        "stays.com": frozenset({"ns1.example.net"}),
        "moves.com": frozenset({"ns2.example.net"}),
        "arrives.com": frozenset({"ns1.parked.example"}),
    })
    delta = diff_zones(older, newer)
    assert delta.added_domains == ["arrives.com"]
    assert delta.removed_domains == ["leaves.com"]
    assert delta.ns_changed_domains == ["moves.com"]
    assert delta.added[0].is_added and not delta.added[0].is_removed
    assert delta.removed[0].is_removed
    assert delta.ns_changed[0].before == ("ns1.example.net",)
    assert delta.ns_changed[0].after == ("ns2.example.net",)
    assert len(delta) == 3


def test_unsorted_stream_is_rejected():
    sorted_side = [("a.com", ("ns1.example.net",)), ("b.com", ("ns1.example.net",))]
    unsorted_side = list(reversed(sorted_side))
    with pytest.raises(ZoneDeltaError, match="not strictly sorted"):
        diff_delegations(unsorted_side, sorted_side)
    with pytest.raises(ZoneDeltaError, match="not strictly sorted"):
        diff_delegations(sorted_side, unsorted_side)


def test_diff_zones_requires_matching_tld():
    with pytest.raises(ZoneDeltaError, match="different TLDs"):
        diff_zones(ZoneFile(tld="com"), ZoneFile(tld="net"))


def test_apply_rejects_mismatched_delta():
    zone = _build_zone({"exists.com": frozenset({"ns1.example.net"})})
    conflicting_add = ZoneDelta(
        (DelegationChange("exists.com", (), ("ns2.example.net",)),), (), ())
    with pytest.raises(ZoneDeltaError, match="already delegated"):
        apply_delta(zone, conflicting_add)
    wrong_remove = ZoneDelta(
        (), (DelegationChange("exists.com", ("ns9.example.net",), ()),), ())
    with pytest.raises(ZoneDeltaError, match="does not match"):
        apply_delta(zone, wrong_remove)
    wrong_change = ZoneDelta(
        (), (), (DelegationChange("missing.com", ("ns1.example.net",),
                                  ("ns2.example.net",)),))
    with pytest.raises(ZoneDeltaError, match="does not match"):
        apply_delta(zone, wrong_change)


def test_read_delegations_parses_only_ns_records(tmp_path):
    zone = ZoneFile(tld="com")
    zone.add_delegation("example.com", ["NS1.Example.NET.", "ns2.example.net"])
    zone.add_delegation("xn--fiqs8s.com", ["ns1.cn.example"])
    path = tmp_path / "com.zone"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("; header comment\n")
        for line in zone.to_lines():
            handle.write(line + "\n")
        handle.write("ns1.example.net.\t3600\tIN\tA\t203.0.113.1\n")  # glue, skipped
        handle.write("com.\t172800\tIN\tNS\ta.gtld-servers.net.\n")   # apex, skipped
        handle.write("\n")
    assert read_delegations(path) == [
        ("example.com", ("ns1.example.net", "ns2.example.net")),
        ("xn--fiqs8s.com", ("ns1.cn.example",)),
    ]
    # The light parser and the full ZoneFile agree (the apex NS owner is not
    # a delegation for either, so the Table 6 domain counts match too).
    assert read_delegations(path) == list(ZoneFile.load("com", path).delegations())
    counts: dict[str, int] = {}
    read_delegations(path, domain_filter=lambda d: False, counts=counts)
    assert counts["domains"] == ZoneFile.load("com", path).domain_count()
