"""Tests for zone file handling."""

import pytest

from repro.dns.records import RRType, ResourceRecord
from repro.dns.zonefile import ZoneFile


def _zone():
    zone = ZoneFile(tld="com")
    zone.add_delegation("example.com", ["ns1.example.net", "ns2.example.net"])
    zone.add_delegation("xn--facbook-dya.com", ["ns1.parked.example"])
    zone.add_delegation("xn--tsta8290bfzd.com", ["ns1.cn.example"])
    zone.add_record(ResourceRecord("ns1.example.net", RRType.A, "203.0.113.1"))
    return zone


def test_delegations_and_domains():
    zone = _zone()
    assert zone.domain_count() == 3
    assert "example.com" in zone
    assert "missing.com" not in zone
    assert zone.nameservers_of("example.com") == ["ns1.example.net", "ns2.example.net"]
    assert len(zone) == 3
    assert sorted(zone) == zone.domains()


def test_delegation_must_belong_to_zone():
    zone = ZoneFile(tld="com")
    with pytest.raises(ValueError):
        zone.add_delegation("example.net", ["ns1.example.net"])


def test_idn_extraction_and_fraction():
    zone = _zone()
    idns = zone.idns()
    assert set(idns) == {"xn--facbook-dya.com", "xn--tsta8290bfzd.com"}
    assert zone.idn_fraction() == pytest.approx(2 / 3)
    assert ZoneFile(tld="com").idn_fraction() == 0.0


def test_save_and_load_roundtrip(tmp_path):
    zone = _zone()
    path = tmp_path / "com.zone"
    zone.save(path)
    loaded = ZoneFile.load("com", path)
    assert loaded.domains() == zone.domains()
    assert loaded.nameservers_of("example.com") == zone.nameservers_of("example.com")


def test_from_lines_skips_comments():
    lines = [
        "; comment",
        "example.com.\t172800\tIN\tNS\tns1.example.net.",
        "",
    ]
    zone = ZoneFile.from_lines("com", lines)
    assert zone.domains() == ["example.com"]


def test_nameservers_normalized_and_deduped():
    zone = ZoneFile(tld="com")
    # Case variants and trailing dots of the same NS target must collapse
    # into one record instead of making nameservers_of inconsistent.
    zone.add_delegation("example.com", [
        "NS1.Example.NET.", "ns1.example.net", "ns1.example.net.",
        "NS2.EXAMPLE.NET",
    ])
    assert zone.nameservers_of("example.com") == ["ns1.example.net", "ns2.example.net"]
    assert len(zone.records.lookup("example.com", RRType.NS)) == 2
    assert list(zone.delegations()) == [
        ("example.com", ("ns1.example.net", "ns2.example.net")),
    ]


def test_views_memoized_until_records_change():
    zone = _zone()
    generation = zone.records.generation
    first = zone.domains()
    assert zone.records.generation == generation   # reading does not mutate
    assert zone.domains() == first
    assert len(zone) == 3                          # O(1) on the memoized view

    zone.add_delegation("new.com", ["ns1.example.net"])
    assert zone.records.generation > generation    # mutation bumps the counter
    assert "new.com" in zone.domains()
    assert len(zone) == 4
    assert zone.idns() == ["xn--facbook-dya.com", "xn--tsta8290bfzd.com"]

    zone.records.remove_name("new.com")
    assert len(zone) == 3


def test_noop_mutations_do_not_bump_generation():
    zone = _zone()
    generation = zone.records.generation
    # Re-adding an identical delegation and removing a missing name change
    # nothing, so the memoized views must stay valid.
    zone.add_delegation("example.com", ["ns1.example.net"])
    assert zone.records.remove_name("not-there.com") == 0
    assert zone.records.generation == generation


def test_direct_record_mutation_invalidates_views():
    zone = _zone()
    assert zone.domain_count() == 3
    zone.records.add(ResourceRecord("direct.com", RRType.NS, "ns1.example.net"))
    assert zone.domain_count() == 4
    assert "direct.com" in zone.domains()
