"""Tests for zone file handling."""

import pytest

from repro.dns.records import RRType, ResourceRecord
from repro.dns.zonefile import ZoneFile


def _zone():
    zone = ZoneFile(tld="com")
    zone.add_delegation("example.com", ["ns1.example.net", "ns2.example.net"])
    zone.add_delegation("xn--facbook-dya.com", ["ns1.parked.example"])
    zone.add_delegation("xn--tsta8290bfzd.com", ["ns1.cn.example"])
    zone.add_record(ResourceRecord("ns1.example.net", RRType.A, "203.0.113.1"))
    return zone


def test_delegations_and_domains():
    zone = _zone()
    assert zone.domain_count() == 3
    assert "example.com" in zone
    assert "missing.com" not in zone
    assert zone.nameservers_of("example.com") == ["ns1.example.net", "ns2.example.net"]
    assert len(zone) == 3
    assert sorted(zone) == zone.domains()


def test_delegation_must_belong_to_zone():
    zone = ZoneFile(tld="com")
    with pytest.raises(ValueError):
        zone.add_delegation("example.net", ["ns1.example.net"])


def test_idn_extraction_and_fraction():
    zone = _zone()
    idns = zone.idns()
    assert set(idns) == {"xn--facbook-dya.com", "xn--tsta8290bfzd.com"}
    assert zone.idn_fraction() == pytest.approx(2 / 3)
    assert ZoneFile(tld="com").idn_fraction() == 0.0


def test_save_and_load_roundtrip(tmp_path):
    zone = _zone()
    path = tmp_path / "com.zone"
    zone.save(path)
    loaded = ZoneFile.load("com", path)
    assert loaded.domains() == zone.domains()
    assert loaded.nameservers_of("example.com") == zone.nameservers_of("example.com")


def test_from_lines_skips_comments():
    lines = [
        "; comment",
        "example.com.\t172800\tIN\tNS\tns1.example.net.",
        "",
    ]
    zone = ZoneFile.from_lines("com", lines)
    assert zone.domains() == ["example.com"]
