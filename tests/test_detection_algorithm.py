"""Tests for Algorithm 1 (the homograph matcher)."""

from repro.detection.algorithm import HomographMatcher, fold_label
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase


def _matcher():
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_UC)       # Cyrillic o
    db.add_pair("e", "é", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("工", "エ", source=SOURCE_UC)
    return HomographMatcher(db)


def test_exact_match_is_not_a_homograph():
    matcher = _matcher()
    assert not matcher.match("google", "google").is_homograph
    assert not matcher.is_homograph("google", "google")


def test_single_substitution_detected():
    matcher = _matcher()
    result = matcher.match("gоogle", "google")
    assert result.is_homograph
    assert result.substitution_count == 1
    sub = result.substitutions[0]
    assert sub.position == 1
    assert sub.candidate_char == "о"
    assert sub.reference_char == "o"
    assert "U+043E" in sub.describe()


def test_multiple_substitutions_detected():
    matcher = _matcher()
    result = matcher.match("gооglé", "google")
    assert result.is_homograph
    assert result.substitution_count == 3


def test_mismatch_not_in_database_rejected():
    matcher = _matcher()
    assert not matcher.match("gxogle", "google").is_homograph
    # One substitutable and one non-substitutable difference: still rejected.
    assert not matcher.match("gоxgle", "google").is_homograph


def test_length_mismatch_and_empty_rejected():
    matcher = _matcher()
    assert not matcher.match("googl", "google").is_homograph
    assert not matcher.match("", "").is_homograph


def test_non_latin_homograph_detection():
    # The paper's 工業大学 vs エ業大学 example.
    matcher = _matcher()
    assert matcher.is_homograph("エ業大学", "工業大学")


def test_matching_is_case_insensitive():
    matcher = _matcher()
    assert matcher.is_homograph("GОOGLE".lower(), "google")
    assert matcher.match("GОogle", "Google").is_homograph


def test_match_against_and_reference_index():
    matcher = _matcher()
    references = ["google", "amazon", "facebook", "apple"]
    index = matcher.build_reference_index(references)
    assert set(index) == {6, 8, 5}
    matches = matcher.match_with_index("gоogle", index)
    assert [m.reference for m in matches] == ["google"]
    assert matcher.match_against("аmazon", references)[0].reference == "amazon"
    assert matcher.match_against("nomatch", references) == []


def test_find_homographs_many_to_many():
    matcher = _matcher()
    candidates = ["gоogle", "аmazon", "plain", "аpple"]
    references = ["google", "amazon", "apple"]
    results = matcher.find_homographs(candidates, references)
    assert {(r.candidate, r.reference) for r in results} == {
        ("gоogle", "google"), ("аmazon", "amazon"), ("аpple", "apple"),
    }


def test_symmetry_of_database_pairs():
    # The database stores unordered pairs, so either direction matches.
    matcher = _matcher()
    assert matcher.is_homograph("gоogle", "google")
    assert matcher.is_homograph("google", "gоogle")


# -- length-preserving case folding (U+0130 regression) ------------------------


def test_fold_label_preserves_length():
    # str.lower() turns U+0130 "İ" into "i" + a combining dot (two chars);
    # fold_label keeps such characters unfolded so indices stay valid.
    assert len("İx".lower()) == 3
    assert fold_label("İx") == "İx"
    assert fold_label("GOOGLE") == "google"
    assert fold_label("GОOGLE") == "gоogle"    # Cyrillic О folds too
    assert fold_label("") == ""


def test_expanding_case_fold_does_not_shift_positions():
    db = HomoglyphDatabase()
    db.add_pair("İ", "i", source=SOURCE_UC)
    db.add_pair("o", "о", source=SOURCE_UC)
    matcher = HomographMatcher(db)
    # Before the fix, "İxо".lower() was 4 characters long, so the length
    # check rejected the pair outright; now it matches, and the reported
    # positions are valid indices into the *original* labels.
    result = matcher.match("İxо", "ixo")
    assert result.is_homograph
    assert [s.position for s in result.substitutions] == [0, 2]
    assert result.substitutions[0].candidate_char == "İ"
    assert "İxо"[result.substitutions[0].position] == "İ"


def test_uppercase_candidate_still_matches_after_fold_fix():
    matcher = _matcher()
    result = matcher.match("GОOGLE", "google")
    assert result.is_homograph
    assert result.substitutions[0].position == 1
