"""Tests for IDNA label/domain conversion."""

import pytest

from repro.idn.idna_codec import (
    ACE_PREFIX,
    IDNAError,
    decode_domain,
    encode_domain,
    is_ace_label,
    to_ascii_label,
    to_unicode_label,
    validate_ulabel,
)


def test_ace_prefix_detection():
    assert is_ace_label("xn--80ak6aa92e")
    assert is_ace_label("XN--80AK6AA92E")
    assert not is_ace_label("google")
    assert ACE_PREFIX == "xn--"


def test_to_ascii_label_unicode():
    assert to_ascii_label("阿里巴巴") == "xn--tsta8290bfzd"
    assert to_ascii_label("facébook") == "xn--facbook-dya"
    assert to_ascii_label("Google") == "google"
    assert to_ascii_label("bücher") == "xn--bcher-kva"


def test_to_ascii_label_already_encoded_is_canonicalised():
    assert to_ascii_label("XN--FACBOOK-DYA") == "xn--facbook-dya"


def test_to_ascii_label_normalisation_can_produce_ascii():
    # ß case-folds to ss, yielding a plain ASCII label (no ACE prefix).
    assert to_ascii_label("straße") == "strasse"


def test_to_unicode_label():
    assert to_unicode_label("xn--tsta8290bfzd") == "阿里巴巴"
    assert to_unicode_label("google") == "google"
    with pytest.raises(IDNAError):
        to_unicode_label("xn--")                    # empty payload
    with pytest.raises(IDNAError):
        to_unicode_label("xn--google-")             # decodes to pure ASCII
    with pytest.raises(IDNAError):
        to_unicode_label("xn--a-ecp!")              # invalid punycode digit


def test_validate_ulabel_rejects_disallowed_codepoints():
    assert validate_ulabel("пример") == "пример"
    with pytest.raises(IDNAError):
        validate_ulabel("ex ample")                 # space
    with pytest.raises(IDNAError):
        validate_ulabel("exämple™")                 # trademark sign
    with pytest.raises(IDNAError):
        validate_ulabel("")
    # Contextual code points are allowed only when requested.
    with pytest.raises(IDNAError):
        validate_ulabel("a‍b", allow_contextual=False)
    assert validate_ulabel("a‍b", allow_contextual=True)


def test_hyphen_rules():
    with pytest.raises(IDNAError):
        to_ascii_label("-leading")
    with pytest.raises(IDNAError):
        to_ascii_label("trailing-")
    with pytest.raises(IDNAError):
        to_ascii_label("ab--cd")                    # hyphens in positions 3-4
    assert to_ascii_label("foo-bar") == "foo-bar"


def test_label_length_limit():
    with pytest.raises(IDNAError):
        to_ascii_label("a" * 64)
    assert to_ascii_label("a" * 63) == "a" * 63


def test_encode_decode_domain():
    assert encode_domain("facébook.com") == "xn--facbook-dya.com"
    assert decode_domain("xn--facbook-dya.com") == "facébook.com"
    assert encode_domain("пример.испытание".replace("испытание", "com")) == "xn--e1afmkfd.com"
    assert encode_domain("GOOGLE.COM.") == "google.com"


def test_domain_accepts_ideographic_dots():
    assert encode_domain("例え。com") == encode_domain("例え.com")


def test_empty_domain_rejected():
    with pytest.raises(IDNAError):
        encode_domain("")
    with pytest.raises(IDNAError):
        encode_domain("...")


def test_domain_total_length_limit():
    long_domain = ".".join(["a" * 60] * 5)
    with pytest.raises(IDNAError):
        encode_domain(long_domain)


# -- robustness: oversized A-labels, length-preserving fold --------------------


def test_to_unicode_label_rejects_oversized_ace_labels():
    # A real A-label never exceeds 63 octets; a crafted multi-kilobyte
    # payload used to reach the quadratic Punycode decoder.
    with pytest.raises(IDNAError, match="63 octets"):
        to_unicode_label("xn--" + "a" * 500_000)


def test_to_unicode_label_accepts_mixed_case_ace():
    assert to_unicode_label("XN--TSTA8290BFZD") == "阿里巴巴"
    assert to_unicode_label("xn--BCHER-kva") == "bücher"


def test_to_unicode_label_is_length_preserving_for_unicode_input():
    from repro.idn.idna_codec import fold_label

    # U+0130 "İ" lowers to two characters under str.lower(); the non-ACE
    # path must keep the label's length so position-indexed consumers
    # (matcher substitutions, warning annotations) stay aligned.
    label = "İstanbul"
    folded = to_unicode_label(label)
    assert len(folded) == len(label)
    assert folded == fold_label(label) == "İstanbul".replace("Stanbul", "stanbul")
    assert folded[1:] == "stanbul"
    assert folded[0] == "İ"                      # kept unfolded, not expanded
    assert to_unicode_label("GOOGLE") == "google"   # plain folding still applies


def test_fold_label_exported_from_idn_layer():
    from repro.detection.algorithm import fold_label as detection_fold
    from repro.idn.idna_codec import fold_label

    assert detection_fold is fold_label
    assert fold_label("ẞ") == "ß"                # single-char lowercase is fine
    assert fold_label("ß") == "ß"                # and ß itself never expands
    assert len(fold_label("İX")) == 2
