"""Tests for IDNA label/domain conversion."""

import pytest

from repro.idn.idna_codec import (
    ACE_PREFIX,
    IDNAError,
    decode_domain,
    encode_domain,
    is_ace_label,
    to_ascii_label,
    to_unicode_label,
    validate_ulabel,
)


def test_ace_prefix_detection():
    assert is_ace_label("xn--80ak6aa92e")
    assert is_ace_label("XN--80AK6AA92E")
    assert not is_ace_label("google")
    assert ACE_PREFIX == "xn--"


def test_to_ascii_label_unicode():
    assert to_ascii_label("阿里巴巴") == "xn--tsta8290bfzd"
    assert to_ascii_label("facébook") == "xn--facbook-dya"
    assert to_ascii_label("Google") == "google"
    assert to_ascii_label("bücher") == "xn--bcher-kva"


def test_to_ascii_label_already_encoded_is_canonicalised():
    assert to_ascii_label("XN--FACBOOK-DYA") == "xn--facbook-dya"


def test_to_ascii_label_normalisation_can_produce_ascii():
    # ß case-folds to ss, yielding a plain ASCII label (no ACE prefix).
    assert to_ascii_label("straße") == "strasse"


def test_to_unicode_label():
    assert to_unicode_label("xn--tsta8290bfzd") == "阿里巴巴"
    assert to_unicode_label("google") == "google"
    with pytest.raises(IDNAError):
        to_unicode_label("xn--")                    # empty payload
    with pytest.raises(IDNAError):
        to_unicode_label("xn--google-")             # decodes to pure ASCII
    with pytest.raises(IDNAError):
        to_unicode_label("xn--a-ecp!")              # invalid punycode digit


def test_validate_ulabel_rejects_disallowed_codepoints():
    assert validate_ulabel("пример") == "пример"
    with pytest.raises(IDNAError):
        validate_ulabel("ex ample")                 # space
    with pytest.raises(IDNAError):
        validate_ulabel("exämple™")                 # trademark sign
    with pytest.raises(IDNAError):
        validate_ulabel("")
    # Contextual code points are allowed only when requested.
    with pytest.raises(IDNAError):
        validate_ulabel("a‍b", allow_contextual=False)
    assert validate_ulabel("a‍b", allow_contextual=True)


def test_hyphen_rules():
    with pytest.raises(IDNAError):
        to_ascii_label("-leading")
    with pytest.raises(IDNAError):
        to_ascii_label("trailing-")
    with pytest.raises(IDNAError):
        to_ascii_label("ab--cd")                    # hyphens in positions 3-4
    assert to_ascii_label("foo-bar") == "foo-bar"


def test_label_length_limit():
    with pytest.raises(IDNAError):
        to_ascii_label("a" * 64)
    assert to_ascii_label("a" * 63) == "a" * 63


def test_encode_decode_domain():
    assert encode_domain("facébook.com") == "xn--facbook-dya.com"
    assert decode_domain("xn--facbook-dya.com") == "facébook.com"
    assert encode_domain("пример.испытание".replace("испытание", "com")) == "xn--e1afmkfd.com"
    assert encode_domain("GOOGLE.COM.") == "google.com"


def test_domain_accepts_ideographic_dots():
    assert encode_domain("例え。com") == encode_domain("例え.com")


def test_empty_domain_rejected():
    with pytest.raises(IDNAError):
        encode_domain("")
    with pytest.raises(IDNAError):
        encode_domain("...")


def test_domain_total_length_limit():
    long_domain = ".".join(["a" * 60] * 5)
    with pytest.raises(IDNAError):
        encode_domain(long_domain)
