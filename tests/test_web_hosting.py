"""Tests for the synthetic web hosting model."""

from repro.dns.records import RRType
from repro.dns.resolver import AuthoritativeStore
from repro.web.hosting import RedirectIntent, SiteCategory, SyntheticWeb, WebsiteProfile


def test_profile_normalisation_and_flags():
    profile = WebsiteProfile("Example.COM.", category=SiteCategory.NORMAL)
    assert profile.domain == "example.com"
    assert profile.reachable
    assert not profile.is_parked
    parked = WebsiteProfile("parked.com", parking_ns="ns1.sedoparking.com")
    assert parked.is_parked


def test_unregistered_profile_clears_everything():
    profile = WebsiteProfile("gone.com", registered=False)
    assert not profile.has_ns and not profile.has_a
    assert profile.open_ports == frozenset()
    assert profile.category is SiteCategory.UNREGISTERED
    assert not profile.reachable


def test_profile_without_address_has_no_ports():
    profile = WebsiteProfile("dark.com", has_a=False)
    assert profile.open_ports == frozenset()


def test_web_add_get_iterate():
    web = SyntheticWeb([WebsiteProfile("a.com"), WebsiteProfile("b.com")])
    assert len(web) == 2
    assert "a.com" in web and "c.com" not in web
    assert web.get("A.COM").domain == "a.com"
    assert web.get("missing.com") is None
    assert web.domains() == ["a.com", "b.com"]
    assert {p.domain for p in web} == {"a.com", "b.com"}


def test_open_ports_host_model():
    web = SyntheticWeb([
        WebsiteProfile("up.com", open_ports=frozenset({80})),
        WebsiteProfile("down.com", registered=False),
    ])
    assert web.open_ports("up.com") == {80}
    assert web.open_ports("down.com") == set()
    assert web.open_ports("unknown.com") == set()


def test_publish_dns():
    web = SyntheticWeb([
        WebsiteProfile("site.com", has_mx=True, nameservers=("ns1.host.net",)),
        WebsiteProfile("parkedsite.com", parking_ns="ns1.sedoparking.com", nameservers=()),
        WebsiteProfile("expired.com", registered=False),
    ])
    store = AuthoritativeStore()
    web.publish_dns(store)
    assert store.lookup("site.com", RRType.NS)[0].rdata == "ns1.host.net"
    assert store.lookup("site.com", RRType.A)
    assert store.lookup("site.com", RRType.MX)
    assert store.lookup("parkedsite.com", RRType.NS)[0].rdata == "ns1.sedoparking.com"
    assert not store.exists("expired.com")


def test_lookup_counts_and_category_views():
    web = SyntheticWeb([
        WebsiteProfile("hot.com", lookups=100, category=SiteCategory.PHISHING),
        WebsiteProfile("cold.com", lookups=0, category=SiteCategory.PARKED),
    ])
    assert web.lookup_counts() == {"hot.com": 100}
    assert [p.domain for p in web.profiles_by_category(SiteCategory.PARKED)] == ["cold.com"]


def test_redirect_intent_enum_values():
    assert RedirectIntent.BRAND_PROTECTION.value == "Brand protection"
    assert SiteCategory.PARKED.value == "Domain parking"
    assert SiteCategory.FOR_SALE.value == "For sale"
