"""Tests for the simulated crawler."""

from repro.web.crawler import Crawler
from repro.web.hosting import SiteCategory, SyntheticWeb, WebsiteProfile


def _web():
    return SyntheticWeb([
        WebsiteProfile("normal.com", category=SiteCategory.NORMAL, page_title="Welcome"),
        WebsiteProfile("parked.com", category=SiteCategory.PARKED),
        WebsiteProfile("sale.com", category=SiteCategory.FOR_SALE),
        WebsiteProfile("empty.com", category=SiteCategory.EMPTY),
        WebsiteProfile("error.com", category=SiteCategory.ERROR),
        WebsiteProfile("redir.com", category=SiteCategory.REDIRECT, redirect_target="normal.com"),
        WebsiteProfile("offsite.com", category=SiteCategory.REDIRECT, redirect_target="elsewhere.org"),
        WebsiteProfile("phish.com", category=SiteCategory.PHISHING, target_of="gmail.com"),
        WebsiteProfile("cloaked.com", category=SiteCategory.PHISHING, cloaking=True, target_of="gmail.com"),
        WebsiteProfile("httponly.com", category=SiteCategory.NORMAL, open_ports=frozenset({80})),
        WebsiteProfile("down.com", registered=False),
    ])


def test_fetch_normal_page():
    crawler = Crawler(_web())
    result = crawler.fetch("normal.com")
    assert result.error is None
    assert result.final_response.ok
    assert "Welcome" in result.final_response.body
    assert not result.redirected_offsite
    assert result.screenshot_signature


def test_fetch_unreachable_and_https_failure():
    crawler = Crawler(_web())
    assert crawler.fetch("down.com").error == "connection refused"
    assert crawler.fetch("unknown.com").error == "connection refused"
    assert crawler.fetch("httponly.com", scheme="https").error == "tls handshake failed"
    assert crawler.fetch("httponly.com", scheme="http").error is None


def test_fetch_follows_redirects():
    crawler = Crawler(_web())
    internal = crawler.fetch("redir.com")
    assert internal.responses[0].is_redirect
    assert internal.final_url.startswith("http://normal.com")
    assert internal.redirected_offsite
    offsite = crawler.fetch("offsite.com")
    assert offsite.redirected_offsite
    assert offsite.final_response.ok


def test_template_bodies_by_category():
    crawler = Crawler(_web())
    assert "parked" in crawler.fetch("parked.com").final_response.body.lower()
    assert "for sale" in crawler.fetch("sale.com").final_response.body.lower()
    assert crawler.fetch("error.com").final_response.status == 503
    body = crawler.fetch("empty.com").final_response.body
    assert "<body></body>" in body
    assert "gmail.com" in crawler.fetch("phish.com").final_response.body


def test_cloaking_depends_on_user_agent():
    crawler = Crawler(_web())
    victim = crawler.fetch("cloaked.com", user_agent="Mozilla/5.0 (iPhone)")
    assert victim.responses[0].is_redirect
    bot = crawler.fetch("cloaked.com", user_agent="Googlebot/2.1")
    assert bot.final_response.ok and not bot.responses[0].is_redirect


def test_crawl_all_schemes():
    crawler = Crawler(_web())
    results = crawler.crawl_all(["normal.com", "httponly.com"])
    assert set(results) == {"normal.com", "httponly.com"}
    assert set(results["normal.com"]) == {"http", "https"}
    assert results["httponly.com"]["https"].error == "tls handshake failed"


def test_screenshot_signature_distinguishes_pages():
    crawler = Crawler(_web())
    assert (crawler.fetch("parked.com").screenshot_signature
            != crawler.fetch("sale.com").screenshot_signature)
