"""Tests for ``scripts/roll_bench_history.py`` and the committed roll-up.

The history format is documented in ``docs/ARCHITECTURE.md``; these
tests pin the script's contract (append-only, idempotent on identical
metrics, refuse malformed input) and that the committed
``BENCH_HISTORY.json`` actually follows the format.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "roll_bench_history.py"

spec = importlib.util.spec_from_file_location("roll_bench_history", SCRIPT)
roll_bench_history = importlib.util.module_from_spec(spec)
spec.loader.exec_module(roll_bench_history)


def _write_bench(directory: Path, name: str, metrics: dict) -> None:
    payload = {"bench": name, "python": "3.11", "platform": "linux", **metrics}
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


def test_seeds_fresh_history(tmp_path: Path) -> None:
    _write_bench(tmp_path, "serve", {"p99_ms": 6.5})
    _write_bench(tmp_path, "query", {"speedup": 12.0})
    history_path = tmp_path / "BENCH_HISTORY.json"

    assert roll_bench_history.roll(tmp_path, history_path, commit="abc123") is True

    history = json.loads(history_path.read_text(encoding="utf-8"))
    assert history["version"] == roll_bench_history.HISTORY_VERSION
    [entry] = history["entries"]
    assert entry["commit"] == "abc123"
    assert entry["recorded"].endswith("+00:00")
    assert set(entry["benches"]) == {"serve", "query"}
    assert entry["benches"]["serve"]["p99_ms"] == 6.5


def test_identical_metrics_do_not_append(tmp_path: Path) -> None:
    _write_bench(tmp_path, "serve", {"p99_ms": 6.5})
    history_path = tmp_path / "BENCH_HISTORY.json"
    assert roll_bench_history.roll(tmp_path, history_path, commit="a") is True
    assert roll_bench_history.roll(tmp_path, history_path, commit="b") is False
    history = json.loads(history_path.read_text(encoding="utf-8"))
    assert len(history["entries"]) == 1


def test_changed_metrics_append_and_keep_old_entries(tmp_path: Path) -> None:
    _write_bench(tmp_path, "serve", {"p99_ms": 6.5})
    history_path = tmp_path / "BENCH_HISTORY.json"
    roll_bench_history.roll(tmp_path, history_path, commit="a")
    _write_bench(tmp_path, "serve", {"p99_ms": 4.2})
    assert roll_bench_history.roll(tmp_path, history_path, commit="b") is True

    history = json.loads(history_path.read_text(encoding="utf-8"))
    first, second = history["entries"]
    assert first["benches"]["serve"]["p99_ms"] == 6.5
    assert second["benches"]["serve"]["p99_ms"] == 4.2


def test_refuses_malformed_history(tmp_path: Path) -> None:
    _write_bench(tmp_path, "serve", {"p99_ms": 6.5})
    history_path = tmp_path / "BENCH_HISTORY.json"
    history_path.write_text('{"version": 99, "entries": "nope"}', encoding="utf-8")
    with pytest.raises(SystemExit):
        roll_bench_history.roll(tmp_path, history_path)
    # the malformed file is left untouched, never overwritten
    assert json.loads(history_path.read_text(encoding="utf-8"))["version"] == 99


def test_refuses_empty_bench_dir(tmp_path: Path) -> None:
    with pytest.raises(SystemExit):
        roll_bench_history.roll(tmp_path, tmp_path / "BENCH_HISTORY.json")


def test_committed_history_is_valid() -> None:
    history = roll_bench_history.load_history(REPO_ROOT / "BENCH_HISTORY.json")
    assert history["entries"], "committed BENCH_HISTORY.json must be seeded"
    for entry in history["entries"]:
        assert entry["benches"], "every entry snapshots at least one bench"
        for name, payload in entry["benches"].items():
            assert payload.get("bench") == name
