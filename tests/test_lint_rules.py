"""Each repro-lint rule fires on its seeded historical regression.

Every fixture under ``tests/data/lint_fixtures/`` re-creates one bug this
repo actually shipped (or nearly shipped) and later fixed by hand:

* ``fold_position.py`` — position-indexing a ``.lower()``-folded label
  (the U+0130 length-change bug ``fold_label`` exists to prevent);
* ``fingerprint_missing.py`` — a cache-key field not threaded through
  the fingerprint function (PR 7's source_config omission);
* ``nonatomic_write.py`` — an artifact written in place instead of
  temp + ``os.replace``;
* ``spawn_lambda.py`` — a lambda initializer / closure task function
  that breaks under the spawn start method (PR 8);
* ``unguarded_cache.py`` — a declared-guarded cache read outside its
  lock;
* ``silent_except.py`` — ``except Exception: pass``.

The companion guarantee — that the rules stay *silent* on the current
tree — is ``test_src_tree_is_clean`` in ``test_lint_engine.py``.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"

# fixture file -> (rule expected to fire, fragment of the message)
SEEDED = {
    "fold_position.py": ("fold-safety", "position indexing"),
    "fingerprint_missing.py": ("fingerprint-completeness", "threshold"),
    "nonatomic_write.py": ("atomic-write", "os.replace"),
    "spawn_lambda.py": ("spawn-safety", "spawn start method"),
    "unguarded_cache.py": ("lock-discipline", "self._cache"),
    "silent_except.py": ("broad-except", "silently"),
}


@pytest.mark.parametrize("fixture,expected", sorted(SEEDED.items()))
def test_rule_fires_on_seeded_regression(fixture, expected):
    rule_name, fragment = expected
    result = run_lint([FIXTURES / fixture], rules=[rule_name])
    assert not result.ok, f"{rule_name} stayed silent on {fixture}"
    assert all(f.rule == rule_name for f in result.new)
    assert any(fragment in f.message for f in result.new), (
        f"no {rule_name} message mentioning {fragment!r}: "
        f"{[f.message for f in result.new]}"
    )


def test_no_rule_cross_fires_on_other_fixtures():
    """Each fixture trips exactly its own rule — no false positives from
    the other five on intentionally-bad-but-unrelated code."""
    for fixture, (rule_name, _) in SEEDED.items():
        result = run_lint([FIXTURES / fixture])
        fired = {f.rule for f in result.new}
        assert fired == {rule_name}, (
            f"{fixture}: expected only {rule_name}, got {sorted(fired)}"
        )


def test_every_registered_rule_has_a_seeded_fixture():
    from repro.lint.engine import all_rules

    covered = {rule for rule, _ in SEEDED.values()}
    assert covered == set(all_rules()), (
        "rules without a seeded-regression fixture: add one to "
        "tests/data/lint_fixtures/ (and to SEEDED above)"
    )


@pytest.mark.parametrize("fixture", sorted(SEEDED))
def test_allow_pragma_silences_each_rule(fixture, tmp_path):
    """The documented escape hatch works for every rule: the same seeded
    regression plus an allow-pragma above the flagged line is clean."""
    rule_name, _ = SEEDED[fixture]
    baseline_result = run_lint([FIXTURES / fixture], rules=[rule_name])
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    lines = source.splitlines(keepends=True)
    # Append a trailing pragma to every flagged line (covers its own line).
    for finding in baseline_result.new:
        index = finding.line - 1
        lines[index] = (lines[index].rstrip("\n")
                        + f"  # lint: allow-{rule_name}(fixture test)\n")
    patched = tmp_path / fixture
    patched.write_text("".join(lines), encoding="utf-8")

    result = run_lint([patched], rules=[rule_name])
    assert result.ok, [f.render() for f in result.new]
    assert result.pragma_suppressed == len(baseline_result.new)


def test_fingerprint_exempt_field_is_not_required(tmp_path):
    source = (FIXTURES / "fingerprint_missing.py").read_text(encoding="utf-8")
    source = source.replace(
        "    threshold: int = 32",
        "    # lint: fingerprint-exempt(fixture: constant, not a builder input)\n"
        "    threshold: int = 32",
    )
    patched = tmp_path / "fingerprint_exempt.py"
    patched.write_text(source, encoding="utf-8")
    result = run_lint([patched], rules=["fingerprint-completeness"])
    assert result.ok, [f.render() for f in result.new]


def test_lock_discipline_accepts_guarded_access(tmp_path):
    source = (FIXTURES / "unguarded_cache.py").read_text(encoding="utf-8")
    source = source.replace(
        "    def lookup(self, domain: str):\n        return self._cache.get(domain)",
        "    def lookup(self, domain: str):\n"
        "        with self._lock:\n"
        "            return self._cache.get(domain)",
    )
    patched = tmp_path / "guarded_cache.py"
    patched.write_text(source, encoding="utf-8")
    result = run_lint([patched], rules=["lock-discipline"])
    assert result.ok, [f.render() for f in result.new]


def test_atomic_write_accepts_temp_and_replace(tmp_path):
    patched = tmp_path / "atomic_write_ok.py"
    patched.write_text(
        '"""Fixed form of nonatomic_write.py: temp name + os.replace."""\n'
        "import json\n"
        "import os\n"
        "\n"
        "\n"
        "def save_index(idx_path: str, payload: dict) -> None:\n"
        '    temp_path = idx_path + ".tmp"\n'
        '    with open(temp_path, "w", encoding="utf-8") as handle:\n'
        "        json.dump(payload, handle)\n"
        "    os.replace(temp_path, idx_path)\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["atomic-write"])
    assert result.ok, [f.render() for f in result.new]


def test_spawn_safety_accepts_module_level_functions(tmp_path):
    patched = tmp_path / "spawn_ok.py"
    patched.write_text(
        '"""Fixed form of spawn_lambda.py: module-level worker functions."""\n'
        "from multiprocessing import Pool\n"
        "\n"
        "\n"
        "def _init_worker() -> None:\n"
        "    pass\n"
        "\n"
        "\n"
        "def fold_one(domain: str) -> str:\n"
        "    return domain\n"
        "\n"
        "\n"
        "def scan(domains: list) -> list:\n"
        "    with Pool(2, initializer=_init_worker) as pool:\n"
        "        return pool.map(fold_one, domains)\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["spawn-safety"])
    assert result.ok, [f.render() for f in result.new]


def test_broad_except_accepts_reraise_and_warn(tmp_path):
    patched = tmp_path / "except_ok.py"
    patched.write_text(
        '"""Fixed forms of silent_except.py: re-raise or surface."""\n'
        "import warnings\n"
        "\n"
        "\n"
        "def enrich_reraise(record: dict) -> dict:\n"
        "    try:\n"
        '        record["asn"] = int(record["asn_raw"])\n'
        "    except Exception as exc:\n"
        '        raise ValueError("bad asn") from exc\n'
        "    return record\n"
        "\n"
        "\n"
        "def enrich_warn(record: dict) -> dict:\n"
        "    try:\n"
        '        record["asn"] = int(record["asn_raw"])\n'
        "    except Exception as exc:\n"
        '        warnings.warn(f"bad asn: {exc}", stacklevel=2)\n'
        "    return record\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["broad-except"])
    assert result.ok, [f.render() for f in result.new]


def test_fold_safety_accepts_fold_label_and_non_label_receivers(tmp_path):
    patched = tmp_path / "fold_ok.py"
    patched.write_text(
        '"""Fold-safety-clean code: fold_label, or receivers that are not labels."""\n'
        "from repro.idn.idna_codec import fold_label\n"
        "\n"
        "\n"
        "def highlight_confusable(label: str, position: int) -> str:\n"
        "    return fold_label(label)[position]\n"
        "\n"
        "\n"
        "def normalise_flag(flag: str) -> str:\n"
        "    return flag.lower()\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["fold-safety"])
    assert result.ok, [f.render() for f in result.new]
