"""Each repro-lint rule fires on its seeded historical regression.

Every fixture under ``tests/data/lint_fixtures/`` re-creates one bug this
repo actually shipped (or nearly shipped) and later fixed by hand:

* ``fold_position.py`` — position-indexing a ``.lower()``-folded label
  (the U+0130 length-change bug ``fold_label`` exists to prevent);
* ``fingerprint_missing.py`` — a cache-key field not threaded through
  the fingerprint function (PR 7's source_config omission);
* ``nonatomic_write.py`` — an artifact written in place instead of
  temp + ``os.replace``;
* ``spawn_lambda.py`` — a lambda initializer / closure task function
  that breaks under the spawn start method (PR 8);
* ``unguarded_cache.py`` — a declared-guarded cache read outside its
  lock;
* ``silent_except.py`` — ``except Exception: pass``;
* ``fold_rename.py`` — the rename that escaped fold-safety v1's
  name-matching (``s = candidate_label; s.lower()``), caught by the
  taint dataflow;
* ``project_demo/`` — a miniature ``src/repro`` tree seeding one
  violation per *project* rule: an upward import, an import of ``cli``,
  library-layer ``print``/``sys.exit``/``CLIError``, and a public
  function nothing references.

The companion guarantee — that the rules stay *silent* on the current
tree — is ``test_src_tree_is_clean`` in ``test_lint_engine.py``.
"""

import shutil
from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
DEMO = FIXTURES / "project_demo"

# fixture file -> (rule expected to fire, fragment of the message)
SEEDED = {
    "fold_position.py": ("fold-safety", "position indexing"),
    "fold_rename.py": ("fold-safety", "label-tainted"),
    "fingerprint_missing.py": ("fingerprint-completeness", "threshold"),
    "nonatomic_write.py": ("atomic-write", "os.replace"),
    "spawn_lambda.py": ("spawn-safety", "spawn start method"),
    "unguarded_cache.py": ("lock-discipline", "self._cache"),
    "silent_except.py": ("broad-except", "silently"),
}

# project rule -> [(path fragment, message fragment), ...] expected from
# linting the project_demo tree with that rule alone.
SEEDED_PROJECT = {
    "import-layering": [
        ("idn/folding.py", "upward import"),
        ("measurement/report.py", "nothing imports the cli layer"),
    ],
    "exception-contract": [
        ("idn/exiting.py", "print()"),
        ("idn/exiting.py", "sys.exit"),
        ("idn/exiting.py", "CLIError"),
    ],
    "dead-export": [
        ("homoglyph/orphan.py", "never referenced"),
    ],
}


def _run_demo(root, rules=None):
    return run_lint([root], rules=rules, root=root, reference_roots=())


@pytest.mark.parametrize("fixture,expected", sorted(SEEDED.items()))
def test_rule_fires_on_seeded_regression(fixture, expected):
    rule_name, fragment = expected
    result = run_lint([FIXTURES / fixture], rules=[rule_name])
    assert not result.ok, f"{rule_name} stayed silent on {fixture}"
    assert all(f.rule == rule_name for f in result.new)
    assert any(fragment in f.message for f in result.new), (
        f"no {rule_name} message mentioning {fragment!r}: "
        f"{[f.message for f in result.new]}"
    )


def test_no_rule_cross_fires_on_other_fixtures():
    """Each fixture trips exactly its own rule — no false positives from
    the other five on intentionally-bad-but-unrelated code."""
    for fixture, (rule_name, _) in SEEDED.items():
        result = run_lint([FIXTURES / fixture])
        fired = {f.rule for f in result.new}
        assert fired == {rule_name}, (
            f"{fixture}: expected only {rule_name}, got {sorted(fired)}"
        )


@pytest.mark.parametrize("rule_name", sorted(SEEDED_PROJECT))
def test_project_rule_fires_on_demo_tree(rule_name):
    result = _run_demo(DEMO, rules=[rule_name])
    assert not result.ok, f"{rule_name} stayed silent on project_demo/"
    assert all(f.rule == rule_name for f in result.new)
    for path_fragment, message_fragment in SEEDED_PROJECT[rule_name]:
        assert any(
            path_fragment in f.path and message_fragment in f.message
            for f in result.new
        ), (
            f"no {rule_name} finding at *{path_fragment} mentioning "
            f"{message_fragment!r}: {[f.render() for f in result.new]}"
        )


def test_project_demo_fires_exactly_the_seeded_findings():
    """The demo tree trips each project rule exactly where intended and
    nothing else — the project rules' no-false-positives guarantee."""
    result = _run_demo(DEMO)
    fired = sorted((f.rule, f.path.rpartition("/")[2]) for f in result.new)
    assert fired == [
        ("dead-export", "orphan.py"),
        ("exception-contract", "exiting.py"),
        ("exception-contract", "exiting.py"),
        ("exception-contract", "exiting.py"),
        ("import-layering", "folding.py"),
        ("import-layering", "report.py"),
    ], [f.render() for f in result.new]


def test_every_registered_rule_has_a_seeded_fixture():
    from repro.lint.engine import all_rules

    covered = {rule for rule, _ in SEEDED.values()} | set(SEEDED_PROJECT)
    assert covered == set(all_rules()), (
        "rules without a seeded-regression fixture: add one to "
        "tests/data/lint_fixtures/ (and to SEEDED or SEEDED_PROJECT above)"
    )


@pytest.mark.parametrize("fixture", sorted(SEEDED))
def test_allow_pragma_silences_each_rule(fixture, tmp_path):
    """The documented escape hatch works for every rule: the same seeded
    regression plus an allow-pragma above the flagged line is clean."""
    rule_name, _ = SEEDED[fixture]
    baseline_result = run_lint([FIXTURES / fixture], rules=[rule_name])
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    lines = source.splitlines(keepends=True)
    # Append a trailing pragma to every flagged line (covers its own line).
    for finding in baseline_result.new:
        index = finding.line - 1
        lines[index] = (lines[index].rstrip("\n")
                        + f"  # lint: allow-{rule_name}(fixture test)\n")
    patched = tmp_path / fixture
    patched.write_text("".join(lines), encoding="utf-8")

    result = run_lint([patched], rules=[rule_name])
    assert result.ok, [f.render() for f in result.new]
    assert result.pragma_suppressed == len(baseline_result.new)


def test_fingerprint_exempt_field_is_not_required(tmp_path):
    source = (FIXTURES / "fingerprint_missing.py").read_text(encoding="utf-8")
    source = source.replace(
        "    threshold: int = 32",
        "    # lint: fingerprint-exempt(fixture: constant, not a builder input)\n"
        "    threshold: int = 32",
    )
    patched = tmp_path / "fingerprint_exempt.py"
    patched.write_text(source, encoding="utf-8")
    result = run_lint([patched], rules=["fingerprint-completeness"])
    assert result.ok, [f.render() for f in result.new]


def test_lock_discipline_accepts_guarded_access(tmp_path):
    source = (FIXTURES / "unguarded_cache.py").read_text(encoding="utf-8")
    source = source.replace(
        "    def lookup(self, domain: str):\n        return self._cache.get(domain)",
        "    def lookup(self, domain: str):\n"
        "        with self._lock:\n"
        "            return self._cache.get(domain)",
    )
    patched = tmp_path / "guarded_cache.py"
    patched.write_text(source, encoding="utf-8")
    result = run_lint([patched], rules=["lock-discipline"])
    assert result.ok, [f.render() for f in result.new]


def test_atomic_write_accepts_temp_and_replace(tmp_path):
    patched = tmp_path / "atomic_write_ok.py"
    patched.write_text(
        '"""Fixed form of nonatomic_write.py: temp name + os.replace."""\n'
        "import json\n"
        "import os\n"
        "\n"
        "\n"
        "def save_index(idx_path: str, payload: dict) -> None:\n"
        '    temp_path = idx_path + ".tmp"\n'
        '    with open(temp_path, "w", encoding="utf-8") as handle:\n'
        "        json.dump(payload, handle)\n"
        "    os.replace(temp_path, idx_path)\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["atomic-write"])
    assert result.ok, [f.render() for f in result.new]


def test_spawn_safety_accepts_module_level_functions(tmp_path):
    patched = tmp_path / "spawn_ok.py"
    patched.write_text(
        '"""Fixed form of spawn_lambda.py: module-level worker functions."""\n'
        "from multiprocessing import Pool\n"
        "\n"
        "\n"
        "def _init_worker() -> None:\n"
        "    pass\n"
        "\n"
        "\n"
        "def fold_one(domain: str) -> str:\n"
        "    return domain\n"
        "\n"
        "\n"
        "def scan(domains: list) -> list:\n"
        "    with Pool(2, initializer=_init_worker) as pool:\n"
        "        return pool.map(fold_one, domains)\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["spawn-safety"])
    assert result.ok, [f.render() for f in result.new]


def test_broad_except_accepts_reraise_and_warn(tmp_path):
    patched = tmp_path / "except_ok.py"
    patched.write_text(
        '"""Fixed forms of silent_except.py: re-raise or surface."""\n'
        "import warnings\n"
        "\n"
        "\n"
        "def enrich_reraise(record: dict) -> dict:\n"
        "    try:\n"
        '        record["asn"] = int(record["asn_raw"])\n'
        "    except Exception as exc:\n"
        '        raise ValueError("bad asn") from exc\n'
        "    return record\n"
        "\n"
        "\n"
        "def enrich_warn(record: dict) -> dict:\n"
        "    try:\n"
        '        record["asn"] = int(record["asn_raw"])\n'
        "    except Exception as exc:\n"
        '        warnings.warn(f"bad asn: {exc}", stacklevel=2)\n'
        "    return record\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["broad-except"])
    assert result.ok, [f.render() for f in result.new]


def test_fold_safety_accepts_compare_only_folds(tmp_path):
    """Case-insensitive *comparison* never position-indexes, so the
    dataflow-backed rule proves it safe — the class of call sites that
    needed 41 allow-pragmas under the name-matching v1."""
    patched = tmp_path / "fold_compare.py"
    patched.write_text(
        '"""Compare-only folds of label-tainted values are safe."""\n'
        "\n"
        "\n"
        "def same_label(label: str, other: str) -> bool:\n"
        "    return label.lower() == other.lower()\n"
        "\n"
        "\n"
        "def lookup(table: dict, label: str):\n"
        "    key = label.casefold()\n"
        "    return table.get(key)\n"
        "\n"
        "\n"
        "def is_punycode(label: str) -> bool:\n"
        "    return label.lower().startswith('xn--')\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["fold-safety"])
    assert result.ok, [f.render() for f in result.new]


# -- project rules: fixed forms and the pragma escape hatch -----------------

def _demo_copy(tmp_path):
    root = tmp_path / "demo"
    shutil.copytree(DEMO, root)
    return root


def test_import_layering_accepts_downward_imports(tmp_path):
    root = _demo_copy(tmp_path)
    (root / "src" / "repro" / "idn" / "folding.py").write_text(
        '"""Fixed form: idn (layer 1) imports unicode (layer 0) only."""\n'
        "from repro.unicode.blocks import block_tag\n"
        "\n"
        "\n"
        "def fold_label(label: str) -> str:\n"
        "    return block_tag(label) + label\n",
        encoding="utf-8",
    )
    (root / "src" / "repro" / "measurement" / "report.py").write_text(
        '"""Fixed form: measurement renders its own banner."""\n'
        "\n"
        "\n"
        "def render_report(rows: list) -> str:\n"
        "    return '\\n'.join(str(row) for row in rows)\n",
        encoding="utf-8",
    )
    result = _run_demo(root, rules=["import-layering"])
    assert result.ok, [f.render() for f in result.new]


def test_exception_contract_accepts_stderr_and_raised_values(tmp_path):
    root = _demo_copy(tmp_path)
    exiting = root / "src" / "repro" / "idn" / "exiting.py"
    source = exiting.read_text(encoding="utf-8")
    source = source.replace("print(f\"loading {path}\")",
                            "print(f\"loading {path}\", file=sys.stderr)")
    source = source.replace("sys.exit(2)",
                            "raise FileNotFoundError(path)")
    source = source.replace("raise CLIError(\"missing tld\")",
                            "raise ValueError(\"missing tld\")")
    exiting.write_text(source, encoding="utf-8")
    result = _run_demo(root, rules=["exception-contract"])
    assert result.ok, [f.render() for f in result.new]


def test_dead_export_accepts_a_referenced_symbol(tmp_path):
    root = _demo_copy(tmp_path)
    orphan = root / "src" / "repro" / "homoglyph" / "orphan.py"
    # An identifier-valued string (the __all__ idiom) is a reference.
    orphan.write_text(orphan.read_text(encoding="utf-8")
                      + '\n__all__ = ["orphan_export"]\n',
                      encoding="utf-8")
    result = _run_demo(root, rules=["dead-export"])
    assert result.ok, [f.render() for f in result.new]


@pytest.mark.parametrize("rule_name", sorted(SEEDED_PROJECT))
def test_allow_pragma_silences_each_project_rule(rule_name, tmp_path):
    """The pragma escape hatch works for cross-module findings too: the
    suppression is looked up in the *flagged* file's pragma map."""
    root = _demo_copy(tmp_path)
    baseline_result = _run_demo(root, rules=[rule_name])
    assert baseline_result.new
    for finding in baseline_result.new:
        flagged = root / finding.path
        lines = flagged.read_text(encoding="utf-8").splitlines(keepends=True)
        index = finding.line - 1
        lines[index] = (lines[index].rstrip("\n")
                        + f"  # lint: allow-{rule_name}(fixture test)\n")
        flagged.write_text("".join(lines), encoding="utf-8")

    result = _run_demo(root, rules=[rule_name])
    assert result.ok, [f.render() for f in result.new]
    assert result.pragma_suppressed == len(baseline_result.new)


def test_fold_safety_accepts_fold_label_and_non_label_receivers(tmp_path):
    patched = tmp_path / "fold_ok.py"
    patched.write_text(
        '"""Fold-safety-clean code: fold_label, or receivers that are not labels."""\n'
        "from repro.idn.idna_codec import fold_label\n"
        "\n"
        "\n"
        "def highlight_confusable(label: str, position: int) -> str:\n"
        "    return fold_label(label)[position]\n"
        "\n"
        "\n"
        "def normalise_flag(flag: str) -> str:\n"
        "    return flag.lower()\n",
        encoding="utf-8",
    )
    result = run_lint([patched], rules=["fold-safety"])
    assert result.ok, [f.render() for f in result.new]
