"""Tests for the pluggable database-source registry.

Covers selection resolution, per-source provenance surviving the union all
the way into detection verdicts, and the fingerprint rule: the default
SimChar ∪ UC selection keeps the pre-registry artifact key byte-identical,
any other selection changes it.
"""

import pytest

from repro.detection.index import IndexKey, key_for
from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import HomoglyphDatabase, HomoglyphPair
from repro.homoglyph.invisible import default_invisible_table
from repro.homoglyph.registry import (
    DEFAULT_SOURCES,
    BuildContext,
    DatabaseRegistry,
    RegistryBuild,
    SourceBuild,
    UnknownSourceError,
    default_registry,
)

CYRILLIC_O = "о"
CYRILLIC_A = "а"


def _pairs_db(name: str, *pairs: HomoglyphPair) -> HomoglyphDatabase:
    return HomoglyphDatabase.from_pairs(pairs, name=name)


def _toy_registry() -> DatabaseRegistry:
    """A registry whose ``simchar``/``uc`` sources are tiny in-memory
    databases — same names as the real defaults, no font required."""
    registry = DatabaseRegistry()
    registry.register("uc", lambda ctx: SourceBuild(
        name="uc",
        database=_pairs_db("UC∩IDNA",
                           HomoglyphPair(CYRILLIC_O, "o", frozenset({"UC"}), delta=7)),
    ))
    registry.register("simchar", lambda ctx: SourceBuild(
        name="simchar",
        database=_pairs_db("SimChar",
                           HomoglyphPair(CYRILLIC_O, "o", frozenset({"SimChar"}), delta=2),
                           HomoglyphPair(CYRILLIC_A, "a", frozenset({"SimChar"}), delta=3)),
    ))
    registry.register("invisible", lambda ctx: SourceBuild(
        name="invisible",
        invisible=default_invisible_table(),
        config_token="invisible.v1",
    ))
    return registry


# -- resolution ---------------------------------------------------------------


def test_resolve_defaults_and_canonicalises():
    registry = _toy_registry()
    assert registry.resolve(None) == tuple(sorted(DEFAULT_SOURCES))
    assert registry.resolve(["UC", " simchar ", "uc"]) == ("simchar", "uc")
    assert registry.resolve(["invisible"]) == ("invisible",)


def test_resolve_rejects_unknown_and_empty_selections():
    registry = _toy_registry()
    with pytest.raises(UnknownSourceError) as excinfo:
        registry.resolve(["simchar", "tengwar"])
    assert "tengwar" in str(excinfo.value)
    assert "simchar" in str(excinfo.value)  # lists the known names
    with pytest.raises(ValueError):
        registry.resolve([])
    with pytest.raises(ValueError):
        registry.resolve(["  ", ""])


def test_register_validates_names():
    registry = DatabaseRegistry()
    with pytest.raises(ValueError):
        registry.register("SimChar", lambda ctx: SourceBuild(name="SimChar"))
    with pytest.raises(ValueError):
        registry.register("", lambda ctx: SourceBuild(name=""))


def test_default_registry_registers_the_standard_sources():
    assert default_registry().names() == ("invisible", "simchar", "uc")


# -- union provenance (satellite: merged_with/union must not drop sources) ---


def test_union_merges_sources_and_keeps_min_delta():
    built = _toy_registry().build(["simchar", "uc"])
    assert built.database.name == "UC∪SimChar"
    assert built.source_config == ""
    assert built.invisible is None

    merged = built.database.get(CYRILLIC_O, "o")
    assert merged is not None
    assert merged.sources == frozenset({"UC", "SimChar"})
    assert merged.delta == 2  # min of the two records' Δ

    only_simchar = built.database.get(CYRILLIC_A, "a")
    assert only_simchar is not None
    assert only_simchar.sources == frozenset({"SimChar"})


def test_union_provenance_reaches_detection_verdicts():
    """The merged per-pair sources must survive into QueryVerdict-level
    detection output — a pair known to both databases names both."""
    built = _toy_registry().build(["simchar", "uc"])
    finder = ShamFinder(
        built.database,
        uc_database=built.per_source.get("uc"),
        simchar_database=built.per_source.get("simchar"),
        source_config=built.source_config,
    )
    report = finder.detect(
        ["xn--ggle-55da.com", "xn--pypal-4ve.com"],  # gооgle / pаypal
        ["google.com", "paypal.com"],
    )
    by_reference = {d.reference: d for d in report}
    assert by_reference["google.com"].sources == frozenset({"UC", "SimChar"})
    assert by_reference["paypal.com"].sources == frozenset({"SimChar"})
    # provenance survives serialisation too
    assert by_reference["google.com"].as_dict()["sources"] == ["SimChar", "UC"]


def test_single_source_selection_is_not_the_default():
    built = _toy_registry().build(["uc"])
    assert built.selection == ("uc",)
    assert built.source_config == "uc"
    assert built.database.name == "uc"
    pair = built.database.get(CYRILLIC_O, "o")
    assert pair is not None and pair.sources == frozenset({"UC"})


def test_invisible_selection_carries_the_table_and_config_token():
    built = _toy_registry().build(["simchar", "uc", "invisible"])
    assert isinstance(built, RegistryBuild)
    assert built.invisible is not None
    assert built.source_config == "invisible.v1,simchar,uc"
    # union still carries both pair sources
    merged = built.database.get(CYRILLIC_O, "o")
    assert merged is not None and merged.sources == frozenset({"UC", "SimChar"})


def test_build_accepts_an_explicit_context():
    # BuildContext is passed through to the builders verbatim.
    seen = {}

    def probe(ctx: BuildContext) -> SourceBuild:
        seen["ctx"] = ctx
        return SourceBuild(name="probe", database=_pairs_db(
            "probe", HomoglyphPair(CYRILLIC_O, "o", frozenset({"UC"}))))

    registry = DatabaseRegistry()
    registry.register("probe", probe)
    context = BuildContext(cache_dir="/tmp/nowhere", force_rebuild=True)
    registry.build(["probe"], context=context)
    assert seen["ctx"] is context


# -- fingerprints -------------------------------------------------------------


def _reference_list() -> list[str]:
    return ["google.com", "paypal.com"]


def test_default_selection_keeps_the_legacy_index_key():
    """source_config == "" must reproduce the pre-registry IndexKey exactly:
    same digest, and no ``sources`` field in the serialised header."""
    built = _toy_registry().build(["simchar", "uc"])
    finder = ShamFinder(built.database, source_config=built.source_config)
    legacy = ShamFinder(built.database)  # how PR-6-era code built finders

    new_key = key_for(finder, _reference_list())
    legacy_key = key_for(legacy, _reference_list())
    assert new_key == legacy_key
    assert new_key.digest == legacy_key.digest
    assert "sources" not in new_key.as_dict()


def test_source_selection_changes_the_index_fingerprint():
    registry = _toy_registry()
    default = registry.build(["simchar", "uc"])
    extended = registry.build(["simchar", "uc", "invisible"])
    # the invisible source adds no pairs: the union digests are equal...
    assert default.database.content_digest() == extended.database.content_digest()

    default_finder = ShamFinder(default.database, source_config=default.source_config)
    extended_finder = ShamFinder(
        extended.database,
        invisible_table=extended.invisible,
        source_config=extended.source_config,
    )
    default_key = key_for(default_finder, _reference_list())
    extended_key = key_for(extended_finder, _reference_list())
    # ...so only the sources field separates the artifacts — it must.
    assert default_key.digest != extended_key.digest
    assert extended_key.as_dict()["sources"] == "invisible.v1,simchar,uc"


def test_index_key_digest_is_stable_for_equal_keys():
    a = IndexKey(database_digest="d" * 16, reference_hash="r" * 16, sources="uc")
    b = IndexKey(database_digest="d" * 16, reference_hash="r" * 16, sources="uc")
    c = IndexKey(database_digest="d" * 16, reference_hash="r" * 16)
    assert a.digest == b.digest
    assert a.digest != c.digest
