"""Skeleton-index matcher: unit and property tests.

The property suite is the safety net under the tentpole optimisation: over
random labels and random databases the skeleton hash-join must return
exactly what the legacy pairwise scan returns, skeletonisation must be
idempotent, and the class-representative choice must not depend on the
order pairs were inserted in.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.algorithm import HomographMatcher, fold_label
from repro.detection.skeleton import CharacterClasses, SkeletonIndex
from repro.homoglyph.database import SOURCE_SIMCHAR, HomoglyphDatabase

# A deliberately small alphabet so random pairs form chains (non-transitive
# closures) and random labels actually collide with the classes.  Mixed
# case exercises the fold path.
_ALPHABET = "abcdefgh" + "ABCД" + "абвгде" + "αβγδ"

chars = st.sampled_from(_ALPHABET)
char_pairs = st.tuples(chars, chars).filter(
    lambda t: fold_label(t[0]) != fold_label(t[1])
)
pair_lists = st.lists(char_pairs, max_size=25)
labels = st.text(alphabet=_ALPHABET, min_size=1, max_size=8)
label_lists = st.lists(labels, max_size=20)


def _database(pair_list) -> HomoglyphDatabase:
    db = HomoglyphDatabase()
    for first, second in pair_list:
        db.add_pair(first, second, source=SOURCE_SIMCHAR)
    return db


# -- unit: the closure and the index ----------------------------------------


def test_classes_union_chains():
    db = _database([("a", "b"), ("b", "c"), ("x", "y")])
    classes = CharacterClasses(db)
    assert classes.representative("a") == "a"
    assert classes.representative("b") == "a"
    assert classes.representative("c") == "a"     # via the chain, not a pair
    assert classes.representative("x") == "x"
    assert classes.representative("q") == "q"     # unknown chars map to themselves
    assert classes.class_of("c") == frozenset("abc")
    assert len(classes) == 5


def test_skeleton_index_buckets_by_skeleton():
    db = _database([("o", "о"), ("a", "а")])
    matcher = HomographMatcher(db)
    index = matcher.build_skeleton_index(["google", "gооgle", "amazon"])
    assert isinstance(index, SkeletonIndex)
    assert len(index) == 3
    assert index.bucket_count == 2               # google/gооgle share a skeleton
    assert index.candidates_for("gоogle") == ["google", "gооgle"]
    assert index.candidates_for("nomatch") == []


def test_skeleton_join_requires_exact_recheck():
    # a~b and b~c chain: "a" and "c" share a skeleton but are NOT homoglyphs,
    # so the bucket hit must be discarded by the exact Algorithm 1 check.
    db = _database([("a", "b"), ("b", "c")])
    matcher = HomographMatcher(db)
    assert matcher.classes.skeletonize("c") == matcher.classes.skeletonize("a")
    assert matcher.find_homographs(["c"], ["a"]) == []
    assert matcher.find_homographs(["b"], ["a"]) != []


# -- properties --------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(pair_lists, label_lists, label_lists)
def test_skeleton_path_identical_to_pairwise(pair_list, candidates, references):
    matcher = HomographMatcher(_database(pair_list))
    indexed = matcher.find_homographs(candidates, references)
    pairwise = matcher.find_homographs_pairwise(candidates, references)
    assert indexed == pairwise        # full MatchResult lists, order included


@settings(max_examples=200, deadline=None)
@given(pair_lists, labels)
def test_skeletonize_is_idempotent_and_length_preserving(pair_list, label):
    classes = CharacterClasses(_database(pair_list))
    skeleton = classes.skeletonize(label)
    assert len(skeleton) == len(label)
    assert classes.skeletonize(skeleton) == skeleton


@settings(max_examples=150, deadline=None)
@given(pair_lists, st.integers(0, 2**32 - 1))
def test_representative_choice_is_insertion_order_independent(pair_list, seed):
    shuffled = list(pair_list)
    random.Random(seed).shuffle(shuffled)
    original = CharacterClasses(_database(pair_list))
    reordered = CharacterClasses(_database(shuffled))
    assert original.representatives() == reordered.representatives()


@settings(max_examples=150, deadline=None)
@given(pair_lists)
def test_representative_is_lowest_codepoint_of_class(pair_list):
    classes = CharacterClasses(_database(pair_list))
    for char in classes.representatives():
        members = classes.class_of(char)
        assert classes.representative(char) == min(members, key=ord)
        # Every member agrees on the representative.
        assert {classes.representative(m) for m in members} == {
            classes.representative(char)
        }


@settings(max_examples=150, deadline=None)
@given(pair_lists, labels, label_lists)
def test_match_against_uses_index_and_agrees_with_single_match(pair_list, candidate, references):
    matcher = HomographMatcher(_database(pair_list))
    via_index = matcher.match_against(candidate, references)
    direct = [
        matcher.match(candidate, reference)
        for reference in references
        if matcher.match(candidate, reference).is_homograph
    ]
    assert via_index == direct
