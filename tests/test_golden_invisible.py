"""Golden regression test for invisible-character detection.

``tests/data/golden_invisible.json`` pins a corpus of attack candidates
carrying zero-width joiners, bidi overrides, zero-width spaces, and
combining-mark stacks (as raw ``xn--`` registrations — several of these
characters are IDNA-DISALLOWED and can only reach a resolver pre-encoded),
plus the exact detection output with per-source attribution when the
``invisible`` database source is enabled.

The companion fixture ``golden_detection.json`` (which runs *without* the
invisible table) is deliberately untouched by this feature: together the
two fixtures enforce that the default SimChar∪UC selection stays
byte-identical while the invisible selection catches the new attack class.

To regenerate after an *intentional* change::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_invisible.py

then review the fixture diff like any other code change.
"""

import json
import os
from pathlib import Path

from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import HomoglyphDatabase, HomoglyphPair
from repro.homoglyph.invisible import default_invisible_table

FIXTURE = Path(__file__).parent / "data" / "golden_invisible.json"


def _finder(payload) -> ShamFinder:
    database = HomoglyphDatabase.from_pairs(
        (HomoglyphPair.from_dict(entry) for entry in payload["pairs"]),
        name="golden-invisible",
    )
    return ShamFinder(
        database,
        invisible_table=default_invisible_table(),
        source_config="golden,invisible.v1",
    )


def _detection_key(entry: dict) -> tuple:
    return (
        entry["idn"],
        entry["reference"],
        tuple((s["position"], s["candidate"]) for s in entry["substitutions"]),
    )


def _actual(payload) -> dict:
    finder = _finder(payload)
    report, timing = finder.detect_with_timing(payload["candidates"], payload["references"])
    return json.loads(json.dumps({
        "detections": sorted(report.as_dicts(), key=_detection_key),
        "summary": report.summary(),
        "counters": {
            "reference_count": timing.reference_count,
            "idn_count": timing.idn_count,
            "skipped_count": timing.skipped_count,
        },
    }, ensure_ascii=False, sort_keys=True))


def test_golden_invisible_report():
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    actual = _actual(payload)

    if os.environ.get("GOLDEN_REGEN"):
        payload["expected"] = actual
        FIXTURE.write_text(
            json.dumps(payload, ensure_ascii=False, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    expected = json.loads(FIXTURE.read_text(encoding="utf-8"))["expected"]
    assert actual["counters"] == expected["counters"]
    assert actual["summary"] == expected["summary"]
    assert actual["detections"] == expected["detections"]


def test_golden_invisible_corpus_covers_the_attack_classes():
    """Guard the fixture itself: the corpus must keep exercising every
    invisible attack class the golden diff is supposed to pin down."""
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    detections = payload["expected"]["detections"]

    # Every verdict names at least one contributing source.
    assert all(d["sources"] for d in detections)

    # Pure-payload attack: identical after stripping, Invisible-only.
    assert any(d["sources"] == ["Invisible"] and not d["substitutions"]
               for d in detections)
    # Combined attack: homoglyph substitution + invisible payload.
    assert any("Invisible" in d["sources"] and "UC" in d["sources"]
               and d["substitutions"] for d in detections)

    categories = {f["category"] for d in detections
                  for f in d.get("invisibles", ())}
    assert {"zero-width", "bidi-control", "combining-stack"} <= categories

    # The clean look-alike (classic equal-length substitution) must still be
    # detected without any invisible finding riding on it.
    assert any("invisibles" not in d and d["substitutions"] for d in detections)


def test_invisible_detections_disappear_without_the_source():
    """The same corpus run WITHOUT the invisible table must only produce
    the classic detections — the new attack class needs opting in."""
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    database = HomoglyphDatabase.from_pairs(
        (HomoglyphPair.from_dict(entry) for entry in payload["pairs"]),
        name="golden-invisible",
    )
    finder = ShamFinder(database)
    report = finder.detect(payload["candidates"], payload["references"])
    dicts = report.as_dicts()
    assert all("invisibles" not in d for d in dicts)
    expected_classic = [d for d in payload["expected"]["detections"]
                        if "invisibles" not in d]
    assert sorted(dicts, key=_detection_key) == expected_classic


def test_golden_invisible_identical_through_batch_kernel():
    """The invisible corpus must survive the batch kernel unchanged: the
    kernel's invisible-risk mask routes every risky label to the scalar
    path, so detections match the fixture with the kernel on and off."""
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    finder = _finder(payload)
    prepared = finder.prepare_references(payload["references"])
    batch, batch_count, batch_skipped = finder.detect_prepared(
        payload["candidates"], prepared, batch_kernel=True)
    scalar, scalar_count, scalar_skipped = finder.detect_prepared(
        payload["candidates"], prepared, batch_kernel=False)
    assert (batch_count, batch_skipped) == (scalar_count, scalar_skipped)
    assert [d.as_dict() for d in batch] == [d.as_dict() for d in scalar]

    expected = payload["expected"]["detections"]
    actual = json.loads(json.dumps(
        sorted((d.as_dict() for d in batch), key=_detection_key),
        ensure_ascii=False, sort_keys=True))
    assert actual == expected
