"""Tests for the simulated human-perception study (Figures 9-11)."""

import math

import pytest

from repro.humanstudy.experiment import DatabaseComparisonExperiment, ThresholdExperiment
from repro.humanstudy.participants import LIKERT_LABELS, ParticipantPool, PerceptionModel
from repro.humanstudy.stats import ScoreDistribution


def test_likert_labels():
    assert LIKERT_LABELS[1] == "very distinct"
    assert LIKERT_LABELS[5] == "very confusing"
    assert len(LIKERT_LABELS) == 5


def test_perception_model_calibration():
    model = PerceptionModel()
    assert model.mean_score(0) > model.mean_score(4) > model.mean_score(5)
    assert model.mean_score(4) == pytest.approx(3.57, abs=0.2)
    assert model.mean_score(5) == pytest.approx(2.57, abs=0.2)
    assert model.mean_score(None) < 1.5
    assert model.mean_score(20) >= 1.0
    with pytest.raises(ValueError):
        model.mean_score(-1)


def test_participant_pool_recruitment_screening():
    pool = ParticipantPool(seed=3)
    workers = pool.recruit(25)
    assert len(workers) == 25
    assert all(w.approved_tasks >= 50 for w in workers)
    assert all(w.approval_rate >= 0.97 for w in workers)
    # Deterministic recruitment.
    assert [w.worker_id for w in ParticipantPool(seed=3).recruit(25)] == [
        w.worker_id for w in workers
    ]


def test_judgements_are_deterministic_and_in_range():
    pool = ParticipantPool(seed=5)
    worker = pool.recruit(1)[0]
    scores = pool.judgements(worker, [0, 4, 5, None])
    again = pool.judgements(worker, [0, 4, 5, None])
    assert scores == again
    assert all(1 <= s <= 5 for s in scores)


def test_score_distribution_statistics():
    dist = ScoreDistribution.from_scores([1, 2, 2, 3, 4, 4, 4, 5])
    assert dist.count == 8
    assert dist.mean == pytest.approx(3.125)
    assert dist.median == pytest.approx(3.5)
    assert dist.q1 <= dist.median <= dist.q3
    assert dist.whisker_low >= dist.q1 - 1.5 * dist.iqr
    assert dist.whisker_high <= dist.q3 + 1.5 * dist.iqr
    assert dist.fraction_at_least(4) == pytest.approx(0.5)
    assert dict(dist.histogram)[4] == 3
    low, q1, med, q3, high, mean = dist.boxplot_row()
    assert low <= q1 <= med <= q3 <= high
    empty = ScoreDistribution.from_scores([])
    assert empty.count == 0 and math.isnan(empty.mean)


@pytest.fixture(scope="module")
def exp1_result():
    experiment = ThresholdExperiment(seed=11)
    return experiment, experiment.run(participants=8, pairs_per_delta=8)


def test_threshold_experiment_reproduces_figure9(exp1_result):
    _experiment, result = exp1_result
    by_delta = ThresholdExperiment.scores_by_delta(result)
    assert 0 in by_delta and 4 in by_delta and 5 in by_delta
    # Score decreases as Δ increases; the 4→5 drop crosses the "confusing"
    # boundary (the paper's justification for θ = 4).
    assert by_delta[0].mean > by_delta[4].mean > by_delta[5].mean
    assert by_delta[4].mean > 3.0
    assert by_delta[5].mean < 3.2
    dummy = result.distribution("Random")
    assert dummy.mean < 2.0


def test_threshold_experiment_screens_careless_workers(exp1_result):
    _experiment, result = exp1_result
    # With a 12% careless rate and 8 retained workers, usually at least one
    # worker is removed across the recruitment attempts; at minimum the
    # accounting must be consistent.
    kept_responses = sum(len(scores) for scores in result.responses.values())
    assert result.effective_responses == kept_responses
    assert result.removed_participants >= 0


@pytest.fixture(scope="module")
def exp2_result(simchar_db, uc_idna_db):
    experiment = DatabaseComparisonExperiment(seed=13)
    return experiment, experiment.run(simchar_db, uc_idna_db, participants=20)


def test_database_comparison_reproduces_figure10(exp2_result):
    _experiment, result = exp2_result
    simchar = result.distribution("SimChar")
    uc = result.distribution("UC")
    random_pairs = result.distribution("Random")
    # Paper: both databases are perceived as confusing (median 4), SimChar
    # more so than UC, and random pairs as very distinct.
    assert simchar.mean > uc.mean > random_pairs.mean
    assert simchar.median >= 4
    assert random_pairs.median <= 2
    assert result.mean_by_group()["SimChar"] == pytest.approx(simchar.mean)


def test_most_distinct_uc_pairs(exp2_result):
    experiment, result = exp2_result
    distinct = experiment.most_distinct_uc_pairs(result, limit=3)
    assert len(distinct) <= 3
    if len(distinct) >= 2:
        # Ranked by increasing confusability (most distinct first).
        assert distinct[0][1] <= distinct[-1][1] + 1e-9
    for sample, mean in distinct:
        assert sample.group == "UC"
        assert 1.0 <= mean <= 5.0
