"""The ``repro-lint --json`` report schema is stable and machine-parseable.

CI uploads ``lint-report.json`` as an artifact and downstream tooling
(the same consumers that read ``scripts/roll_bench_history.py``'s
roll-ups) parses it, so the payload is a versioned contract:
``schema_version`` gates breaking changes, and this golden fixture pins
the exact shape over the seeded-regression fixtures — keys, ordering,
types, and summary arithmetic.

To regenerate after an *intentional* schema or rule-message change::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_lint_schema.py

then review the fixture diff like any other code change.
"""

import json
import os
from pathlib import Path

from repro.lint import run_lint
from repro.lint.engine import SCHEMA_VERSION, render_json

REPO_ROOT = Path(__file__).parent.parent
FIXTURES_DIR = Path("tests/data/lint_fixtures")
GOLDEN = Path(__file__).parent / "data" / "lint_report_golden.json"


def _actual_report() -> dict:
    # reference_roots=() keeps the report hermetic: with the default
    # auto-discovery, dead-export verdicts over the project_demo fixture
    # tree would flip whenever a test file happens to mention a fixture
    # symbol name.
    result = run_lint([REPO_ROOT / FIXTURES_DIR], root=REPO_ROOT,
                      reference_roots=())
    return result.as_dict()


def test_json_report_matches_golden():
    actual = _actual_report()

    if os.environ.get("GOLDEN_REGEN"):
        GOLDEN.write_text(
            json.dumps(actual, ensure_ascii=False, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert actual == expected


def test_json_report_schema_invariants():
    """Structural guarantees consumers may rely on, independent of the
    exact findings: stable top-level keys, typed fields, sorted order,
    and a summary whose arithmetic matches the findings list."""
    report = _actual_report()
    assert set(report) == {
        "tool", "schema_version", "rules", "files_scanned", "findings",
        "summary", "cache",
    }
    assert report["tool"] == "repro-lint"
    assert report["schema_version"] == SCHEMA_VERSION
    assert isinstance(report["files_scanned"], int)

    assert report["rules"] == sorted(report["rules"], key=lambda r: r["name"])
    for rule in report["rules"]:
        assert set(rule) == {"name", "description"}

    # "pragma" is the engine-level pseudo-rule (malformed pragmas,
    # unparseable files); everything else must be a registered rule.
    rule_names = {r["name"] for r in report["rules"]} | {"pragma"}
    for finding in report["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message",
                                "baselined"}
        assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert isinstance(finding["col"], int) and finding["col"] >= 1
        assert isinstance(finding["baselined"], bool)
        assert finding["rule"] in rule_names

    cache = report["cache"]
    assert set(cache) == {"enabled", "files_parsed", "files_reused",
                          "reference_files_parsed", "reference_files_reused"}
    assert cache["enabled"] is False  # the library default
    for key in ("files_parsed", "files_reused",
                "reference_files_parsed", "reference_files_reused"):
        assert isinstance(cache[key], int) and cache[key] >= 0

    new = [f for f in report["findings"] if not f["baselined"]]
    baselined = [f for f in report["findings"] if f["baselined"]]
    summary = report["summary"]
    assert set(summary) == {"total", "new", "baselined", "pragma_suppressed",
                            "stale_baseline"}
    assert summary["new"] == len(new)
    assert summary["baselined"] == len(baselined)
    assert summary["total"] == len(report["findings"])
    # New findings come first, each block sorted by (path, line, rule).
    ordering = [(f["path"], f["line"], f["rule"]) for f in new]
    assert ordering == sorted(ordering)


def test_render_json_is_parseable_and_stable():
    result = run_lint([REPO_ROOT / FIXTURES_DIR], root=REPO_ROOT,
                      reference_roots=())
    first = render_json(result)
    second = render_json(result)
    assert first == second
    assert json.loads(first) == result.as_dict()
    assert first.endswith("\n")
