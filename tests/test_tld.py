"""Tests for per-TLD IDN registration policies."""

import pytest

from repro.idn.tld import IDNTable, REGISTRY_POLICIES, policy_for, register_policy


def test_policy_lookup():
    assert policy_for("com").tld == "com"
    assert policy_for(".COM").tld == "com"
    with pytest.raises(KeyError):
        policy_for("nosuchtld")


def test_com_policy_is_permissive():
    com = policy_for("com")
    assert com.permits_codepoint(ord("a"))
    assert com.permits_codepoint(0x0430)      # Cyrillic
    assert com.permits_codepoint(0x4E00)      # Han
    assert com.permits_codepoint(0xAC00)      # Hangul
    assert com.permits_codepoint(0x0ED0)      # Lao digit zero
    assert com.permitted_block_count() > 40


def test_jp_policy_blocks_latin_homoglyph_attack():
    jp = policy_for("jp")
    # The paper: "ácm.jp" cannot be registered because .jp permits no
    # homoglyph of LDH.
    assert not jp.permits_codepoint(ord("á"))
    assert not jp.permits_codepoint(0x0430)
    assert jp.permits_codepoint(0x3042)       # Hiragana
    assert jp.permits_codepoint(0x4E00)       # CJK
    assert jp.permits_label("ひらがな")
    assert not jp.permits_label("ácm")
    assert jp.permits_label("acm")            # plain LDH always allowed


def test_policy_rejects_non_pvalid_even_in_permitted_block():
    com = policy_for("com")
    assert not com.permits_codepoint(ord("A"))     # uppercase not PVALID
    assert not com.permits_codepoint(0x0378)       # unassigned


def test_permits_domain_checks_tld_and_label():
    com = policy_for("com")
    assert com.permits_domain("xn--facbook-dya.com")
    assert not com.permits_domain("xn--facbook-dya.net") or policy_for("net").permits_domain(
        "xn--facbook-dya.net"
    )
    jp = policy_for("jp")
    assert not jp.permits_domain("xn--facbook-dya.com")   # wrong TLD for policy


def test_ru_policy_single_script():
    ru = policy_for("ru")
    assert ru.permits_label("пример")
    assert not ru.permits_codepoint(0x4E00)
    assert not ru.permits_codepoint(0x00E9)


def test_register_policy_roundtrip():
    table = IDNTable("example", frozenset({"Greek and Coptic"}), "test policy")
    register_policy(table)
    assert policy_for("example") is table
    assert policy_for("example").permits_codepoint(0x03B1)
    del REGISTRY_POLICIES["example"]


def test_extra_codepoints_override():
    table = IDNTable("x", frozenset(), extra_codepoints=frozenset({0x4E00}))
    assert table.permits_codepoint(0x4E00)
    assert not table.permits_codepoint(0x4E01)


def test_invalid_label_not_permitted():
    com = policy_for("com")
    assert not com.permits_label("")
    assert not com.permits_label("xn--zzzz!")
