"""Tests for the font registry and default-font selection."""

import pytest

from repro.fonts.hexfont import HexFont
from repro.fonts.registry import FontProtocol, FontRegistry, default_font
from repro.fonts.synthetic import SyntheticFont


def test_registry_register_and_get():
    registry = FontRegistry()
    font = SyntheticFont(name="synthfont")
    registry.register(font)
    assert registry.get("synthfont") is font
    assert "synthfont" in registry
    assert registry.names() == ["synthfont"]
    assert len(registry) == 1
    assert registry.default is font


def test_registry_default_selection():
    registry = FontRegistry()
    first = SyntheticFont(name="first")
    second = SyntheticFont(name="second")
    registry.register(first)
    registry.register(second, default=True)
    assert registry.default is second


def test_registry_missing_font():
    registry = FontRegistry()
    with pytest.raises(LookupError):
        _ = registry.default
    registry.register(SyntheticFont(name="a"))
    with pytest.raises(KeyError):
        registry.get("missing")


def test_default_font_is_synthetic_without_hex_file():
    font = default_font(refresh=True)
    assert isinstance(font, (SyntheticFont, HexFont))
    # In the offline environment no unifont .hex file ships with the repo.
    assert isinstance(font, SyntheticFont)
    # Cached on the second call.
    assert default_font() is font


def test_fonts_satisfy_protocol():
    assert isinstance(SyntheticFont(), FontProtocol)
    assert isinstance(HexFont(), FontProtocol)
