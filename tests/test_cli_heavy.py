"""CLI tests for the sub-commands that build databases or run the study.

These exercise the full default SimChar build, so they are slower than the
rest of the CLI tests (a few seconds each) but still well within unit-test
territory thanks to the laptop-scale repertoire.
"""

import json

import pytest

from repro.cli import main
from repro.homoglyph.database import HomoglyphDatabase


@pytest.mark.slow
def test_build_db_writes_union_database(tmp_path, capsys):
    output = tmp_path / "union.json"
    rc = main(["build-db", "--output", str(output)])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["output"] == str(output)
    assert summary["pairs"] > 0
    assert summary["merged_pairs"] >= summary["pairs"]

    database = HomoglyphDatabase.load(output)
    assert database.are_homoglyphs("o", "о")
    assert database.are_homoglyphs("e", "é")


@pytest.mark.slow
def test_build_db_without_uc(tmp_path, capsys):
    output = tmp_path / "simchar.json"
    rc = main(["build-db", "--output", str(output), "--no-uc", "--threshold", "2"])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["threshold"] == 2
    database = HomoglyphDatabase.load(output)
    # Without UC, every pair carries only the SimChar source.
    assert all(pair.sources == {"SimChar"} for pair in database)


@pytest.mark.slow
def test_build_db_cache_round_trip(tmp_path, capsys):
    output = tmp_path / "union.json"
    cache_dir = tmp_path / "cache"
    argv = ["build-db", "--output", str(output), "--cache-dir", str(cache_dir), "--jobs", "1"]

    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["cache"] == {"enabled": True, "hit": False, "dir": str(cache_dir)}
    assert cold["jobs"] == 1

    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["cache"]["hit"] is True
    assert warm["pairs"] == cold["pairs"]
    assert HomoglyphDatabase.load(output).pair_count == warm["merged_pairs"]

    assert main(argv + ["--force"]) == 0
    forced = json.loads(capsys.readouterr().out)
    assert forced["cache"]["hit"] is False


@pytest.mark.slow
def test_measure_text_output(capsys):
    rc = main(["measure", "--scale", "0.01", "--seed", "7"])
    assert rc == 0
    output = capsys.readouterr().out
    for heading in ("Table 6", "Table 7", "Table 8", "Table 9", "Table 10",
                    "Table 12", "Table 14"):
        assert heading in output


@pytest.mark.slow
def test_measure_json_output(capsys):
    rc = main(["measure", "--scale", "0.01", "--seed", "7", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert "detections" in payload and "blacklists" in payload
    assert payload["detections"]["UC ∪ SimChar"] >= payload["detections"]["UC"]
    assert [t["name"] for t in payload["stage_timings"]] == [
        "dns", "portscan", "popularity", "classify", "blacklist", "revert",
    ]


@pytest.mark.slow
def test_measure_streaming_pipeline_with_stage_subset(tmp_path, capsys):
    out_dir = tmp_path / "study"
    rc = main(["measure", "--scale", "0.01", "--seed", "7", "--json",
               "--streaming", "--jobs", "2", "--stages", "portscan,blacklist",
               "--output-dir", str(out_dir)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert {t["name"] for t in payload["stage_timings"]} == {
        "dns", "portscan", "blacklist",
    }
    assert (out_dir / "detections.jsonl").exists()
    assert (out_dir / "stages" / "stage_portscan.jsonl").exists()
    assert not (out_dir / "stages" / "stage_classify.jsonl").exists()

    # The same invocation with --resume skips everything already durable.
    rc = main(["measure", "--scale", "0.01", "--seed", "7", "--json",
               "--streaming", "--jobs", "2", "--stages", "portscan,blacklist",
               "--output-dir", str(out_dir), "--resume"])
    assert rc == 0
    resumed = json.loads(capsys.readouterr().out)
    assert all(t["resumed"] for t in resumed["stage_timings"])
    assert resumed["with_ns"] == payload["with_ns"]
    assert resumed["blacklists"] == payload["blacklists"]


@pytest.mark.slow
def test_measure_legacy_matches_pipeline(capsys):
    argv = ["measure", "--scale", "0.01", "--seed", "7", "--json"]
    assert main(argv) == 0
    piped = json.loads(capsys.readouterr().out)
    piped.pop("stage_timings")
    assert main(argv + ["--legacy"]) == 0
    legacy = json.loads(capsys.readouterr().out)
    assert legacy == piped
