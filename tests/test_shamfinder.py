"""Tests for the ShamFinder framework (Steps 1-3 and reverting)."""

import pytest

from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import SOURCE_SIMCHAR, SOURCE_UC, HomoglyphDatabase
from repro.idn.domain import DomainName, IDNAError


def test_extract_idns_filters_and_tolerates_junk():
    domains = [
        "google.com",
        "xn--facbook-dya.com",
        "xn--tsta8290bfzd.com",
        "mail.example.com",
        "xn--invalid-!!.com",          # undecodable punycode — skipped
        DomainName("xn--80ak6aa92e.com"),
    ]
    idns = ShamFinder.extract_idns(domains)
    ascii_forms = {idn.ascii for idn in idns}
    assert ascii_forms == {
        "xn--facbook-dya.com", "xn--tsta8290bfzd.com", "xn--80ak6aa92e.com",
    }


def test_detect_basic_homographs(finder):
    candidates = ["xn--facbook-dya.com", "xn--ggle-55da.com", "xn--tsta8290bfzd.com"]
    reference = ["facebook.com", "google.com", "amazon.com"]
    report = finder.detect(candidates, reference)
    pairs = {(d.idn, d.reference) for d in report}
    assert ("xn--facbook-dya.com", "facebook.com") in pairs
    assert ("xn--ggle-55da.com", "google.com") in pairs
    assert all(d.reference != "amazon.com" for d in report)


def test_detection_respects_tld(finder):
    # A homograph under a different TLD does not match a .com reference.
    report = finder.detect(["xn--ggle-55da.net"], ["google.com"])
    assert len(report) == 0


def test_detection_source_attribution(finder):
    report = finder.detect(["xn--facbook-dya.com"], ["facebook.com"])
    detection = list(report)[0]
    # The é→e substitution is a SimChar discovery (not in UC), the paper's
    # headline example of SimChar's added coverage.
    assert SOURCE_SIMCHAR in detection.sources
    assert detection.substitutions[0].reference_char == "e"
    assert detection.idn_unicode == "facébook.com"


def test_detect_with_timing(finder):
    report, timing = finder.detect_with_timing(
        ["xn--ggle-55da.com"], ["google.com", "amazon.com"]
    )
    assert len(report) == 1
    assert timing.reference_count == 2
    assert timing.idn_count == 1
    assert timing.total_seconds >= 0
    assert timing.seconds_per_reference == pytest.approx(timing.total_seconds / 2)


def test_detect_with_specific_database(finder, uc_idna_db):
    candidates = ["xn--facbook-dya.com", "xn--ggle-55da.com"]
    reference = ["facebook.com", "google.com"]
    uc_only = finder.detect_with_database(candidates, reference, uc_idna_db)
    union = finder.detect(candidates, reference)
    # UC alone misses the accented-e homograph; the union finds both.
    assert len(uc_only.detected_idns()) < len(union.detected_idns())


def test_revert_to_original(finder):
    assert finder.revert_to_original("xn--ggle-55da.com") == "google.com"
    assert finder.revert_to_original(DomainName("xn--facbook-dya.com")) == "facebook.com"
    assert finder.revert_to_original("example.com") is None


def test_databases_accessor(finder):
    databases = finder.databases()
    assert "union" in databases
    assert SOURCE_UC in databases and SOURCE_SIMCHAR in databases


def test_from_databases_requires_one():
    with pytest.raises(ValueError):
        ShamFinder.from_databases()
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_UC)
    finder = ShamFinder.from_databases(db)
    assert finder.detect(["xn--ggle-55da.com"], ["google.com"])


def test_invalid_references_are_skipped(finder):
    report = finder.detect(["xn--ggle-55da.com"], ["google.com", "bad domain!"])
    assert len(report) == 1


def test_skipped_idns_are_counted(finder):
    # A candidate whose registrable label fails to decode (junk zone data
    # can smuggle such names past construction-time checks) must be skipped
    # AND surface in the timing's skipped_count.
    undecodable = DomainName.__new__(DomainName)
    object.__setattr__(undecodable, "ascii", "xn--0.com")
    with pytest.raises(IDNAError):
        undecodable.registrable_unicode

    report, timing = finder.detect_with_timing(
        ["xn--ggle-55da.com", undecodable, "bad domain!"],
        ["google.com"],
    )
    assert len(report) == 1
    assert timing.idn_count == 2            # the unparseable string never made a DomainName
    assert timing.skipped_count == 2        # one bad string + one undecodable label


def test_undecodable_reference_does_not_crash_detection(finder):
    undecodable = DomainName.__new__(DomainName)
    object.__setattr__(undecodable, "ascii", "xn--0.com")
    report, timing = finder.detect_with_timing(
        ["xn--ggle-55da.com"], ["google.com", undecodable]
    )
    assert len(report) == 1
    assert timing.reference_count == 2


def test_skipped_count_zero_on_clean_input(finder):
    _report, timing = finder.detect_with_timing(["xn--ggle-55da.com"], ["google.com"])
    assert timing.skipped_count == 0
