"""Tests for the online query service (detection/service.py), including
concurrent-reader behaviour of the shared SkeletonIndex."""

import threading

import pytest

from repro.detection.algorithm import HomographMatcher, fold_label
from repro.detection.index import ReferenceIndexStore, build_reference_index
from repro.detection.service import OnlineDetector
from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.idna_codec import to_ascii_label


@pytest.fixture()
def small_finder():
    db = HomoglyphDatabase(name="svc-test")
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("e", "е", source=SOURCE_UC)
    return ShamFinder(db)


REFERENCE = ["google.com", "amazon.com", "paypal.com", "google.net"]


@pytest.fixture()
def detector(small_finder):
    return OnlineDetector.from_references(small_finder, REFERENCE)


def _homograph(label: str, tld: str = "com") -> str:
    return f"{to_ascii_label(label)}.{tld}"


# -- verdicts -----------------------------------------------------------------


def test_query_matches_batch_detection(small_finder, detector):
    domains = [_homograph("gооgle"), _homograph("аmazon"), "benign.com", _homograph("pаypаl")]
    prepared = small_finder.prepare_references(REFERENCE)
    batch, _count, _skipped = small_finder.detect_prepared(domains, prepared)
    online = [d for v in detector.query_many(domains) for d in v.detections]
    assert [d.as_dict() for d in online] == [d.as_dict() for d in batch]


def test_query_filters_by_tld(detector):
    assert detector.query(_homograph("gооgle", "com")).is_homograph
    assert detector.query(_homograph("gооgle", "net")).is_homograph
    assert not detector.query(_homograph("gооgle", "org")).is_homograph


def test_query_unparsable_domain_reports_error(detector):
    verdict = detector.query("..")
    assert verdict.error is not None
    assert not verdict.is_homograph
    assert verdict.as_dict() == {"domain": "..", "is_homograph": False, "error": verdict.error}
    assert detector.stats()["errors"] == 1


def test_identical_label_is_not_a_homograph(detector):
    assert not detector.query("google.com").is_homograph


def test_revert_target_inlined_when_enabled(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCE, include_revert=True)
    verdict = detector.query(_homograph("gооgle"))
    assert verdict.revert == "google.com"
    payload = verdict.as_dict()
    assert payload["revert"] == "google.com"
    # benign ASCII input: no revert, and the key is omitted entirely
    assert "revert" not in detector.query("benign.com").as_dict()


def test_verdict_json_round_trips(detector):
    import json

    verdict = detector.query(_homograph("gооgle"))
    payload = json.loads(json.dumps(verdict.as_dict(), ensure_ascii=False))
    assert payload["is_homograph"] is True
    assert payload["detections"][0]["reference"] == "google.com"


# -- the LRU cache ------------------------------------------------------------


def test_cache_hits_counted_and_shared_across_case(detector):
    upper = _homograph("gооgle").upper()
    detector.query(_homograph("gооgle"))
    detector.query(upper)                      # same folded label -> hit
    stats = detector.stats()
    assert stats["queries"] == 2
    assert stats["cache_hits"] == 1
    assert stats["cached_labels"] == 1


def test_cache_eviction_keeps_size_bounded(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCE, cache_size=2)
    for i in range(10):
        detector.query(f"label{i}.com")
    assert detector.stats()["cached_labels"] <= 2


def test_cache_disabled_with_size_zero(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCE, cache_size=0)
    detector.query(_homograph("gооgle"))
    detector.query(_homograph("gооgle"))
    stats = detector.stats()
    assert stats["cache_hits"] == 0
    assert stats["cached_labels"] == 0


def test_negative_cache_size_rejected(small_finder):
    index = build_reference_index(small_finder, REFERENCE)
    with pytest.raises(ValueError):
        OnlineDetector(small_finder, index, cache_size=-1)


def test_reload_index_invalidates_cache_on_fingerprint_change(small_finder, detector):
    detector.query(_homograph("gооgle"))
    assert detector.stats()["cached_labels"] == 1

    same = build_reference_index(small_finder, REFERENCE)
    assert detector.reload_index(same) is False          # same fingerprint: cache kept
    assert detector.stats()["cached_labels"] == 1

    changed = build_reference_index(small_finder, REFERENCE + ["new.com"])
    assert detector.reload_index(changed) is True        # new fingerprint: cache dropped
    assert detector.stats()["cached_labels"] == 0
    assert detector.stats()["index_fingerprint"] == changed.fingerprint


def test_reload_mid_query_does_not_reseed_cache_with_old_index(small_finder):
    # A query that computed its matches against the old index must not
    # insert them after reload_index() swapped the index and cleared the
    # cache — that would serve retired-reference verdicts indefinitely.
    detector = OnlineDetector.from_references(small_finder, REFERENCE)
    changed = build_reference_index(small_finder, REFERENCE + ["other.com"])
    original = detector.finder.matcher.match_with_skeleton_index

    def reload_mid_join(label, index):
        result = original(label, index)
        detector.reload_index(changed)
        return result

    detector.finder.matcher.match_with_skeleton_index = reload_mid_join
    try:
        assert detector.query(_homograph("gооgle")).is_homograph
    finally:
        detector.finder.matcher.match_with_skeleton_index = original
    assert detector.stats()["cached_labels"] == 0    # dropped, not stale-seeded
    # And the next query re-joins against the new index and caches normally.
    assert detector.query(_homograph("gооgle")).is_homograph
    assert detector.stats()["cached_labels"] == 1


def test_detector_from_store_cold_start(tmp_path, small_finder):
    store = ReferenceIndexStore(tmp_path)
    OnlineDetector.from_references(small_finder, REFERENCE, store=store)  # builds + persists
    warm = OnlineDetector.from_references(small_finder, REFERENCE, store=store)
    assert warm.index.from_cache
    assert warm.query(_homograph("gооgle")).is_homograph


# -- concurrency --------------------------------------------------------------


def _run_threads(worker, thread_count=8):
    errors: list[BaseException] = []
    barrier = threading.Barrier(thread_count)

    def wrapped(seed: int) -> None:
        try:
            barrier.wait()
            worker(seed)
        except BaseException as exc:   # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


def test_skeleton_index_safe_under_concurrent_readers(small_finder):
    matcher = HomographMatcher(small_finder.database)
    labels = [f"label{i}" for i in range(50)] + ["google", "amazon", "paypal"]
    index = matcher.build_skeleton_index(labels)
    expected = {label: matcher.match_with_skeleton_index(fold_label(label), index)
                for label in ("gооgle", "аmazon", "benign", "pаypаl")}

    def worker(seed: int) -> None:
        for _ in range(200):
            for label, want in expected.items():
                got = matcher.match_with_skeleton_index(fold_label(label), index)
                assert got == want

    _run_threads(worker)


def test_online_detector_concurrent_queries_match_serial(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCE, cache_size=3)
    domains = [_homograph("gооgle"), _homograph("аmazon"), "benign.com",
               _homograph("pаypаl"), _homograph("gооgle", "net"), "other.net"]
    serial = {d: detector.query(d).as_dict() for d in domains}

    def worker(seed: int) -> None:
        ordered = domains[seed % len(domains):] + domains[: seed % len(domains)]
        for _ in range(50):
            for domain in ordered:
                assert detector.query(domain).as_dict() == serial[domain]

    _run_threads(worker)
    stats = detector.stats()
    assert stats["queries"] == 8 * 50 * len(domains) + len(domains)
    assert stats["cached_labels"] <= 3


def test_concurrent_reload_does_not_corrupt_results(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCE)
    grown = build_reference_index(small_finder, REFERENCE + ["extra.com"])
    original = build_reference_index(small_finder, REFERENCE)
    stop = threading.Event()

    def reloader() -> None:
        while not stop.is_set():
            detector.reload_index(grown)
            detector.reload_index(original)

    flipper = threading.Thread(target=reloader)
    flipper.start()
    try:
        for _ in range(300):
            verdict = detector.query(_homograph("gооgle"))
            # Whichever index the query grabbed, the verdict is well-formed
            # and google.com is a member of both reference sets.
            assert verdict.is_homograph
            assert verdict.detections[0].reference == "google.com"
    finally:
        stop.set()
        flipper.join()
