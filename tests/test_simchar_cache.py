"""Tests for the SimChar build cache (fingerprinting, persistence, parallel identity)."""

import json

import pytest

from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.cache import (
    CACHE_DIR_ENV,
    SimCharCache,
    cached_build,
    font_fingerprint,
    key_for_builder,
    resolve_cache,
)
from repro.homoglyph.simchar import SimCharBuilder

REPERTOIRE = [ord(ch) for ch in "aoebc"] + [0x0430, 0x043E, 0x0435, 0x03BF, 0x00E9]


@pytest.fixture
def builder(font):
    return SimCharBuilder(font, repertoire=REPERTOIRE, jobs=1)


@pytest.fixture
def cache(tmp_path):
    return SimCharCache(tmp_path / "cache")


def test_cold_build_stores_and_warm_build_hits(builder, cache):
    cold, cold_hit = cached_build(builder, cache)
    assert not cold_hit
    assert cache.path_for(key_for_builder(builder)).is_file()

    warm, warm_hit = cached_build(builder, cache)
    assert warm_hit
    assert warm.from_cache and not cold.from_cache


def test_round_trip_equals_to_json(builder, cache):
    cold, _ = cached_build(builder, cache)
    warm, hit = cached_build(builder, cache)
    assert hit
    assert warm.database.to_json() == cold.database.to_json()
    assert warm.repertoire_size == cold.repertoire_size
    assert warm.raw_pair_count == cold.raw_pair_count
    assert warm.sparse_character_count == cold.sparse_character_count


def test_fingerprint_invalidation(font, builder):
    base = key_for_builder(builder)
    changed_threshold = SimCharBuilder(font, repertoire=REPERTOIRE, threshold=2, jobs=1)
    changed_repertoire = SimCharBuilder(font, repertoire=REPERTOIRE[:-1], jobs=1)
    changed_sparse = SimCharBuilder(font, repertoire=REPERTOIRE, sparse_min_pixels=5, jobs=1)
    digests = {
        base.digest,
        key_for_builder(changed_threshold).digest,
        key_for_builder(changed_repertoire).digest,
        key_for_builder(changed_sparse).digest,
    }
    assert len(digests) == 4


def test_changed_parameters_trigger_rebuild(font, builder, cache):
    cached_build(builder, cache)
    other = SimCharBuilder(font, repertoire=REPERTOIRE, threshold=2, jobs=1)
    _result, hit = cached_build(other, cache)
    assert not hit
    assert len(cache.entries()) == 2


def test_font_fingerprint_tracks_rendered_shapes(font):
    class ShiftedFont:
        name = font.name          # same identity on paper...
        glyph_size = font.glyph_size

        def covers(self, codepoint):
            return font.covers(codepoint)

        def render(self, codepoint):
            return font.render(codepoint).inverted()   # ...different pixels

    assert font_fingerprint(ShiftedFont()) != font_fingerprint(font)


def test_hit_honours_requested_name(builder, cache):
    cached_build(builder, cache)
    result, hit = cached_build(builder, cache, name="Custom")
    assert hit
    assert result.database.name == "Custom"


def test_coverage_change_invalidates_key(font, builder):
    class NarrowerFont:
        name = font.name
        glyph_size = font.glyph_size

        def covers(self, codepoint):
            return codepoint != REPERTOIRE[0] and font.covers(codepoint)

        def render(self, codepoint):
            return font.render(codepoint)

    narrower = SimCharBuilder(NarrowerFont(), repertoire=REPERTOIRE, jobs=1)
    assert key_for_builder(narrower).digest != key_for_builder(builder).digest


def test_hexfont_edit_invalidates_fingerprint():
    from repro.fonts.hexfont import HexFont

    cells = {cp: [[1] * 8] * 16 for cp in (0x61, 0x62, 0x63)}
    base = HexFont.from_glyphs(cells, name="edited")
    edited_cells = dict(cells)
    edited_cells[0x62] = [[1] * 8] * 15 + [[0] * 8]   # one row of one glyph
    edited = HexFont.from_glyphs(edited_cells, name="edited")
    # U+0062 'b' is not in the probe set; the full content digest still differs.
    assert font_fingerprint(base) != font_fingerprint(edited)


def test_add_cell_invalidates_memoized_digest():
    from repro.fonts.hexfont import HexFont

    f = HexFont.from_glyphs({0x61: [[1] * 8] * 16, 0x62: [[1] * 8] * 16})
    before = font_fingerprint(f)
    f.add_cell(0x62, [[0] * 8] * 16)
    assert font_fingerprint(f) != before


def test_jobs_parameter_does_not_affect_fingerprint(font):
    serial = SimCharBuilder(font, repertoire=REPERTOIRE, jobs=1)
    parallel = SimCharBuilder(font, repertoire=REPERTOIRE, jobs=4)
    assert key_for_builder(serial).digest == key_for_builder(parallel).digest


def test_corrupted_cache_falls_back_to_rebuild(builder, cache):
    cold, _ = cached_build(builder, cache)
    path = cache.path_for(key_for_builder(builder))

    for garbage in ("", "not json at all {{{", '{"magic": "wrong"}\n', "[1, 2]\n"):
        path.write_text(garbage, encoding="utf-8")
        result, hit = cached_build(builder, cache)
        assert not hit
        assert result.database.to_json() == cold.database.to_json()
        # The rebuild refreshed the entry, so the next call hits again.
        _result, hit = cached_build(builder, cache)
        assert hit


def test_truncated_pair_list_is_a_miss(builder, cache):
    cached_build(builder, cache)
    path = cache.path_for(key_for_builder(builder))
    lines = path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    assert header["pair_count"] == len(lines) - 1
    path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
    _result, hit = cached_build(builder, cache)
    assert not hit


def test_force_rebuilds_but_still_stores(builder, cache):
    cached_build(builder, cache)
    result, hit = cached_build(builder, cache, force=True)
    assert not hit and not result.from_cache
    _result, hit = cached_build(builder, cache)
    assert hit


def test_serial_and_parallel_builds_identical(font):
    serial = SimCharBuilder(font, repertoire=REPERTOIRE, jobs=1)
    parallel = SimCharBuilder(font, repertoire=REPERTOIRE, jobs=4)
    glyphs = serial.step_render(serial.repertoire())
    assert serial.step_pairwise(glyphs) == parallel.step_pairwise(glyphs)
    assert serial.build().database.to_json() == parallel.build().database.to_json()


def test_parallel_build_matches_on_larger_repertoire(fast_builder):
    # Cross the min_parallel_size threshold so worker processes actually run.
    glyphs = fast_builder.step_render(fast_builder.repertoire())
    parallel = SimCharBuilder(
        fast_builder.font,
        repertoire=sorted(glyphs),
        jobs=2,
    )
    assert fast_builder.step_pairwise(glyphs) == parallel.step_pairwise(glyphs)


def test_jobs_validation(font):
    with pytest.raises(ValueError):
        SimCharBuilder(font, jobs=0)


def test_resolve_cache(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert resolve_cache(None) is None
    explicit = resolve_cache(tmp_path)
    assert explicit is not None and explicit.cache_dir == tmp_path
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
    from_env = resolve_cache(None)
    assert from_env is not None and str(from_env.cache_dir).endswith("env")


def test_with_default_databases_uses_cache(font, tmp_path):
    builder = SimCharBuilder(font, repertoire=REPERTOIRE, jobs=1)
    cache_dir = tmp_path / "finder-cache"
    finder_cold = ShamFinder.with_default_databases(simchar_builder=builder, cache_dir=cache_dir)
    assert len(list(cache_dir.glob("simchar-*.jsonl"))) == 1
    finder_warm = ShamFinder.with_default_databases(simchar_builder=builder, cache_dir=cache_dir)
    assert (finder_warm.simchar_database.to_json()
            == finder_cold.simchar_database.to_json())


def test_unwritable_cache_degrades_to_in_memory_build(builder, tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a plain file where the cache dir should go")
    broken = SimCharCache(blocker / "cache")
    with pytest.warns(UserWarning, match="could not persist"):
        result, hit = cached_build(builder, broken)
    assert not hit
    assert result.database.pair_count > 0


def test_fork_pool_context_does_not_pin_global_start_method():
    import multiprocessing

    from repro.metrics.pixel import fork_pool_context

    before = multiprocessing.get_start_method(allow_none=True)
    with pytest.warns(DeprecationWarning):
        fork_pool_context()
    assert multiprocessing.get_start_method(allow_none=True) == before


def test_cache_clear(builder, cache):
    cached_build(builder, cache)
    assert cache.clear() == 1
    assert cache.entries() == []
    _result, hit = cached_build(builder, cache)
    assert not hit
