"""Tests for parking NS detection, blacklists, and the VirusTotal stand-in."""

import pytest

from repro.web.blacklist import DEFAULT_FEED_COVERAGE, Blacklist, BlacklistAggregator
from repro.web.hosting import SyntheticWeb, WebsiteProfile
from repro.web.parking import PARKING_NS_SUFFIXES, is_parking_nameserver, parking_provider_of
from repro.web.virustotal import VirusTotalClient


def test_parking_ns_list_matches_paper_size():
    assert len(PARKING_NS_SUFFIXES) == 17


def test_is_parking_nameserver():
    assert is_parking_nameserver("ns1.sedoparking.com")
    assert is_parking_nameserver("SEDOPARKING.COM.")
    assert not is_parking_nameserver("ns1.google.com")
    assert not is_parking_nameserver("notsedoparking.com.evil.net")


def test_parking_provider_of():
    assert parking_provider_of(["ns1.google.com", "ns2.bodis.com"]) == "bodis.com"
    assert parking_provider_of(["ns1.google.com"]) is None
    assert parking_provider_of([]) is None


def test_blacklist_basics():
    feed = Blacklist("hpHosts")
    feed.add("Evil.COM.")
    feed.add_many(["bad.com", "worse.com"])
    assert "evil.com" in feed
    assert "good.com" not in feed
    assert len(feed) == 3
    assert feed.hits(["evil.com", "good.com", "bad.com"]) == ["evil.com", "bad.com"]


def test_aggregator_feeds_and_queries():
    aggregator = BlacklistAggregator.with_default_feeds()
    assert set(aggregator.feed_names()) == set(DEFAULT_FEED_COVERAGE)
    aggregator.feed("hpHosts").add("evil.com")
    aggregator.feed("GSB").add("evil.com")
    aggregator.feed("GSB").add("phish.com")
    assert aggregator.is_listed("evil.com")
    assert not aggregator.is_listed("fine.com")
    assert aggregator.feeds_listing("evil.com") == ["GSB", "hpHosts"]
    counts = aggregator.hit_counts(["evil.com", "phish.com", "fine.com"])
    assert counts == {"GSB": 2, "Symantec": 0, "hpHosts": 1}
    assert aggregator.union_hits(["evil.com", "phish.com", "fine.com"]) == {"evil.com", "phish.com"}
    with pytest.raises(KeyError):
        aggregator.feed("unknown")


def test_aggregator_load_from_creates_feeds():
    aggregator = BlacklistAggregator()
    aggregator.load_from({"custom": ["a.com"], "other": ["b.com"]})
    assert aggregator.is_listed("a.com") and aggregator.is_listed("b.com")


def test_virustotal_flags_malicious_profiles():
    web = SyntheticWeb([
        WebsiteProfile("evil.com", malicious=True),
        WebsiteProfile("fine.com", malicious=False),
    ])
    client = VirusTotalClient(web)
    evil = client.scan("evil.com")
    fine = client.scan("fine.com")
    assert evil.is_malicious and evil.positives >= 2
    assert not fine.is_malicious
    assert evil.total == fine.total > 0
    # Deterministic: same result on rescan.
    assert client.scan("evil.com") == evil
    results = client.scan_all(["evil.com", "fine.com"])
    assert set(results) == {"evil.com", "fine.com"}


def test_virustotal_detection_rate_validation():
    web = SyntheticWeb()
    with pytest.raises(ValueError):
        VirusTotalClient(web, detection_rate=1.5)
