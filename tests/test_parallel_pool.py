"""Tests for the start-method-aware pool plumbing (repro/parallel/pool.py).

The contract under test: every parallel engine in the repo runs *parallel*
under every start method — fork inherits state, spawn rebuilds it from
picklable specs — and none silently degrades to serial the way the old
fork-only gate did.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.detection.index import ReferenceIndexStore, cached_reference_index
from repro.detection.service import OnlineDetector
from repro.detection.shamfinder import ShamFinder
from repro.detection.stream import StreamingScanner, read_sink
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.idn.domain import DomainName
from repro.parallel.pool import (
    fork_pool_context,
    pool_context,
    resolve_start_method,
    worker_pids,
)
from repro.serving import WorkerPool, verdict_reply

REFERENCES = ["google.com", "amazon.com", "apple.com"]


@pytest.fixture(scope="module")
def pool_finder():
    db = HomoglyphDatabase(name="pool-test")
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    return ShamFinder(db)


# -- context resolution -------------------------------------------------------

def test_resolve_start_method_explicit_and_invalid():
    for method in multiprocessing.get_all_start_methods():
        assert resolve_start_method(method) == method
    with pytest.raises(ValueError):
        resolve_start_method("teleport")


def test_resolve_start_method_honours_platform_default():
    method = resolve_start_method()
    assert method in multiprocessing.get_all_start_methods()
    # Resolving must not pin the global context as a side effect.
    assert resolve_start_method() == method


def test_pool_context_never_none():
    assert pool_context() is not None
    assert pool_context("spawn").get_start_method() == "spawn"


def test_fork_pool_context_shim_warns():
    with pytest.warns(DeprecationWarning):
        context = fork_pool_context()
    if resolve_start_method() in ("fork", "forkserver"):
        assert context is not None
    else:
        assert context is None


# -- demonstrable parallelism -------------------------------------------------

@pytest.mark.parametrize("method", ["spawn", "fork"])
def test_pool_runs_distinct_workers(method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{method} unavailable on this platform")
    with pool_context(method).Pool(2) as pool:
        pids = worker_pids(pool, 4)
    assert len(pids) == 4
    assert len(set(pids)) >= 2
    assert os.getpid() not in pids


# -- streaming scan under spawn ----------------------------------------------

def test_streaming_scan_spawn_identical_to_serial(pool_finder, tmp_path):
    lines = []
    for i in range(40):
        lines.append(DomainName("gоogle.com").ascii if i % 8 == 0 else f"plain{i}.com")
    input_path = tmp_path / "domains.txt"
    input_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    serial_out = tmp_path / "serial.jsonl"
    serial_stats = StreamingScanner(
        pool_finder, REFERENCES, chunk_size=10, jobs=1,
    ).scan_file(input_path, serial_out)

    spawn_out = tmp_path / "spawn.jsonl"
    spawn_stats = StreamingScanner(
        pool_finder, REFERENCES, chunk_size=10, jobs=2, start_method="spawn",
    ).scan_file(input_path, spawn_out)

    assert read_sink(spawn_out) == read_sink(serial_out)
    assert spawn_stats.detection_count == serial_stats.detection_count > 0
    assert spawn_stats.skipped_count == serial_stats.skipped_count


# -- serving worker pool under spawn ------------------------------------------

def test_worker_pool_serves_under_spawn(pool_finder, tmp_path):
    store = ReferenceIndexStore(tmp_path)
    built, _hit = cached_reference_index(pool_finder, REFERENCES, store)
    index = store.load_path(store.path_for(built.key), pool_finder)
    assert index is not None

    domains = [DomainName("gоogle.com").ascii, "benign.com",
               DomainName("аmаzon.com").ascii, "plain.com"]
    ids = list(range(len(domains)))
    detector = OnlineDetector(pool_finder, index, cache_size=0)
    expected = [
        json.dumps(
            verdict_reply(verdict.as_dict(), index.fingerprint, request_id),
            ensure_ascii=False,
        )
        for verdict, request_id in zip(
            detector.query_many(domains, index=index), ids)
    ]

    pool = WorkerPool(
        pool_finder, index.prepared.path, index.fingerprint,
        workers=2, start_method="spawn",
    )
    try:
        pool.warm(hold_seconds=0.05)
        replies = pool.submit(domains, ids, index.fingerprint, pool.index_path).result()
    finally:
        pool.close()
    assert replies == expected
    assert any('"is_homograph": true' in line or '"detections"' in line
               for line in replies)
