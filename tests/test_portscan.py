"""Tests for the simulated port scanner."""

from repro.dns.portscan import PortScanner, PortScanResult, PortScanSummary
from repro.web.hosting import SyntheticWeb, WebsiteProfile


def _web():
    return SyntheticWeb([
        WebsiteProfile("both.com", open_ports=frozenset({80, 443})),
        WebsiteProfile("httponly.com", open_ports=frozenset({80})),
        WebsiteProfile("httpsonly.com", open_ports=frozenset({443})),
        WebsiteProfile("closed.com", open_ports=frozenset()),
        WebsiteProfile("ssh.com", open_ports=frozenset({22})),
    ])


def test_scan_single_domain():
    scanner = PortScanner(_web())
    result = scanner.scan("both.com")
    assert isinstance(result, PortScanResult)
    assert result.http and result.https and result.reachable
    assert scanner.scan("closed.com").open_ports == frozenset()
    # Ports outside the scan set are ignored.
    assert not scanner.scan("ssh.com").reachable


def test_scan_unknown_domain_is_unreachable():
    scanner = PortScanner(_web())
    assert not scanner.scan("unknown.com").reachable


def test_summary_counts_match_paper_table_shape():
    scanner = PortScanner(_web())
    summary = scanner.scan_all(["both.com", "httponly.com", "httpsonly.com", "closed.com"])
    assert isinstance(summary, PortScanSummary)
    assert summary.http_count == 2
    assert summary.https_count == 2
    assert summary.both_count == 1
    assert summary.reachable_count == 3
    assert set(summary.reachable_domains()) == {"both.com", "httponly.com", "httpsonly.com"}
    rows = dict(summary.as_table_rows())
    assert rows["TCP/80"] == 2
    assert rows["TCP/443"] == 2
    assert rows["TCP/80 & TCP/443"] == 1
    assert rows["Total (unique)"] == 3


def test_custom_port_list():
    scanner = PortScanner(_web(), ports=(22,))
    assert scanner.scan("ssh.com").reachable
    assert not scanner.scan("both.com").reachable
