"""Tests for the CodePoint model."""

import pytest

from repro.unicode.codepoint import CodePoint, codepoints_of, format_codepoint, unique_codepoints
from repro.unicode.idna import DerivedProperty


def test_from_char_and_basic_views():
    cp = CodePoint.from_char("é")
    assert cp.value == 0x00E9
    assert cp.char == "é"
    assert cp.hex == "U+00E9"
    assert cp.name == "LATIN SMALL LETTER E WITH ACUTE"
    assert cp.category == "Ll"
    assert cp.block == "Latin-1 Supplement"
    assert cp.script == "Latin"
    assert cp.idna_property is DerivedProperty.PVALID
    assert cp.is_pvalid
    assert cp.is_bmp and cp.plane == 0


def test_parse_formats():
    assert CodePoint.parse("U+0061").value == 0x61
    assert CodePoint.parse("0x61").value == 0x61
    assert CodePoint.parse("97").value == 0x61
    assert CodePoint.parse("a").value == 0x61
    with pytest.raises(ValueError):
        CodePoint.parse("not-a-codepoint")


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        CodePoint(0x110000)
    with pytest.raises(ValueError):
        CodePoint(-1)
    with pytest.raises(ValueError):
        CodePoint.from_char("ab")


def test_decomposition_and_base_char():
    e_acute = CodePoint.from_char("é")
    assert e_acute.base_char == "e"
    assert e_acute.combining_marks == ("́",)
    o_multi = CodePoint.from_char("ộ")
    assert o_multi.base_char == "o"
    assert len(o_multi.combining_marks) == 2
    plain = CodePoint.from_char("x")
    assert plain.base_char == "x"
    assert plain.combining_marks == ()


def test_combining_mark_flag():
    assert CodePoint(0x0301).is_combining
    assert not CodePoint.from_char("a").is_combining


def test_ordering_and_equality():
    assert CodePoint(0x61) < CodePoint(0x62)
    assert CodePoint(0x61) == CodePoint(ord("a"))
    assert len({CodePoint(0x61), CodePoint(0x61)}) == 1


def test_describe_mentions_key_facts():
    description = CodePoint(0x0430).describe()
    assert "U+0430" in description
    assert "Cyrillic" in description
    assert "PVALID" in description


def test_codepoints_of_and_unique():
    cps = codepoints_of("gоogle")
    assert len(cps) == 6
    assert cps[1].script == "Cyrillic"
    unique = unique_codepoints(["aa", "ab"])
    assert {cp.char for cp in unique} == {"a", "b"}


def test_format_codepoint_width():
    assert format_codepoint(0x61) == "U+0061"
    assert format_codepoint(0x1F600) == "U+1F600"
