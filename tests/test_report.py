"""Tests for detection reports (Tables 8-9 views)."""

from repro.detection.algorithm import CharacterSubstitution
from repro.detection.report import DetectionReport, HomographDetection
from repro.homoglyph.database import SOURCE_SIMCHAR, SOURCE_UC


def _detection(idn, reference, sources):
    return HomographDetection(
        idn=idn,
        idn_unicode=idn.replace("xn--", "u-"),
        reference=reference,
        substitutions=(CharacterSubstitution(0, "о", "o"),),
        sources=frozenset(sources),
    )


def _report():
    report = DetectionReport()
    report.add(_detection("xn--ggle-1.com", "google.com", {SOURCE_UC, SOURCE_SIMCHAR}))
    report.add(_detection("xn--ggle-2.com", "google.com", {SOURCE_SIMCHAR}))
    report.add(_detection("xn--amzn-1.com", "amazon.com", {SOURCE_SIMCHAR}))
    report.add(_detection("xn--fb-1.com", "facebook.com", {SOURCE_UC}))
    # One IDN matching two references.
    report.add(_detection("xn--ggle-1.com", "googie.com", {SOURCE_UC}))
    return report


def test_counts_and_views():
    report = _report()
    assert len(report) == 5
    assert len(report.detected_idns()) == 4
    assert report.references_targeted() == ["amazon.com", "facebook.com", "googie.com", "google.com"]
    assert report.top_targets(1) == [("google.com", 2)]
    assert len(report.detections_for_reference("google.com")) == 2


def test_count_by_database():
    counts = _report().count_by_database()
    # Unique IDNs per database: xn--ggle-1 appears twice but counts once.
    assert counts["UC"] == 2
    assert counts["SimChar"] == 3
    assert counts["UC ∪ SimChar"] == 4
    assert counts["UC ∪ SimChar"] >= max(counts["UC"], counts["SimChar"])


def test_homograph_map_prefers_first_reference():
    mapping = _report().homograph_map()
    assert mapping["xn--ggle-1.com"] == "google.com"
    assert mapping["xn--amzn-1.com"] == "amazon.com"


def test_detection_flags_and_description():
    detection = _detection("xn--x.com", "x.com", {SOURCE_UC})
    assert detection.uses_uc and not detection.uses_simchar
    assert "imitates x.com" in detection.describe()


def test_summary_keys():
    summary = _report().summary()
    assert summary["detections"] == 5
    assert summary["unique_idns"] == 4
    assert "by_database" in summary and "top_targets" in summary


def test_extend_and_iter():
    report = DetectionReport()
    report.extend([_detection("xn--a.com", "a.com", {SOURCE_UC})])
    assert [d.idn for d in report] == ["xn--a.com"]
