"""Tests for the vectorized batch fold/skeleton kernel (detection/batchfold.py).

The kernel's contract is *soundness*, not completeness: wherever it claims
a certain miss, the scalar path must agree there is no match; everywhere
else it must defer to the scalar path.  The property suite drives
arbitrary labels — including the fold edge cases (U+0130, ß, Σ/σ/ς),
invisible characters, combining marks, and out-of-table code points that
force the scalar fallback — through both paths and checks agreement, and
the domain-level fast-parse is pinned against its executable regex oracle
:data:`~repro.detection.batchfold.FAST_DOMAIN_RE`.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.detection.algorithm import fold_label
from repro.detection.batchfold import (
    FAST_DOMAIN_RE,
    MAX_FAST_DOMAIN,
    BatchFoldKernel,
    FoldTable,
    fold_table_for,
    kernel_for,
)
from repro.detection.service import OnlineDetector, QueryVerdict, _fast_miss_verdict
from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import SOURCE_UC, HomoglyphDatabase
from repro.homoglyph.invisible import default_invisible_table
from repro.idn.idna_codec import to_ascii_label

REFERENCES = ["google.com", "amazon.com", "paypal.com", "secure-login.com"]


@pytest.fixture(scope="module")
def small_finder():
    db = HomoglyphDatabase(name="batchfold-test")
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("e", "е", source=SOURCE_UC)
    db.add_pair("i", "і", source=SOURCE_UC)
    return ShamFinder(db)


@pytest.fixture(scope="module")
def invisible_finder():
    db = HomoglyphDatabase(name="batchfold-invisible-test")
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_UC)
    return ShamFinder(db, invisible_table=default_invisible_table(),
                      source_config="uc,invisible.v1")


@pytest.fixture(scope="module")
def prepared(small_finder):
    return small_finder.prepare_references(REFERENCES)


@pytest.fixture(scope="module")
def kernel(small_finder, prepared):
    kernel = kernel_for(small_finder.matcher, prepared)
    assert kernel is not None
    return kernel


# Alphabet biased towards the interesting cases: reference letters, their
# Cyrillic twins, fold edge cases (İ lowers to i̇ — two code points — so the
# table must keep it as-is; ß and Σ/σ/ς; U+0130 itself), invisibles, a
# combining mark, and plain junk.
_LABEL_ALPHABET = st.sampled_from(list(
    "gogleamazonpy"           # reference letters
    "оаеі"                    # their homoglyph twins
    "İßΣσς"   # İ ß Σ σ ς
    "​‍⁠"      # ZWSP ZWJ WJ (invisible table entries)
    "́̈"            # combining marks
    "-._~!xyz0189"
))
labels = st.text(alphabet=_LABEL_ALPHABET, min_size=0, max_size=24)


@settings(max_examples=400, deadline=None)
@given(st.lists(labels, min_size=0, max_size=12))
@example(["gооgle", "google", "Σ", "", "İ", "goo​gle"])
def test_batch_skeletons_equal_scalar_pipeline(kernel, small_finder, batch):
    skeletons, decidable = kernel.skeletons(batch)
    classes = small_finder.matcher.classes
    for label, skeleton, ok in zip(batch, skeletons, decidable):
        if ok:
            assert skeleton == classes.skeletonize(fold_label(label))
        else:
            assert "Σ" in label or any(0xD800 <= ord(c) < 0xE000 for c in label)


@settings(max_examples=400, deadline=None)
@given(st.lists(labels, min_size=0, max_size=12))
@example(["gооgle", "google", "amazon", "аmazon", "Σcorp"])
@example(["goo​gle", "gógle", "benign"])
def test_certain_miss_is_sound_against_skeleton_index(kernel, small_finder, prepared, batch):
    """miss=True must imply the scalar skeleton join finds nothing."""
    miss = kernel.certain_miss_mask(batch)
    assert miss.shape == (len(batch),)
    for label, certain in zip(batch, miss):
        if certain:
            assert list(small_finder.matcher.match_with_skeleton_index(
                label, prepared.index)) == []


def test_sigma_always_falls_back(kernel):
    miss = kernel.certain_miss_mask(["Σ", "aΣb", "σok"])
    # Σ is out-of-table (undecidable) → never a certain miss; σ folds fine.
    assert not miss[0] and not miss[1]


def test_lone_surrogate_falls_back(kernel):
    label = "ab" + "\ud800" + "cd"
    miss = kernel.certain_miss_mask([label, "zzzz"])
    assert not miss[0]
    assert miss[1]


@settings(max_examples=300, deadline=None)
@given(st.lists(labels, min_size=0, max_size=10))
@example(["goo​gle", "g‍l", "benign", "gógle"])
def test_invisible_risk_suppresses_certain_miss(invisible_finder, batch):
    prepared = invisible_finder.prepare_references(REFERENCES)
    kernel = kernel_for(invisible_finder.matcher, prepared)
    miss = kernel.certain_miss_mask(
        batch, invisible_table=invisible_finder.invisible_table)
    for label, certain in zip(batch, miss):
        if certain:
            folded = fold_label(label)
            assert invisible_finder.invisible_table.findings(folded) == ()
            assert list(invisible_finder.matcher.match_with_skeleton_index(
                label, prepared.index)) == []


# -- domain-level fast parse vs. the regex oracle -----------------------------

_DOMAIN_ALPHABET = st.sampled_from(list("gole.amzn-_оа​ΣAZ%/\n09x"))
domains = st.text(alphabet=_DOMAIN_ALPHABET, min_size=0, max_size=40)


@settings(max_examples=500, deadline=None)
@given(st.lists(domains, min_size=0, max_size=12))
@example(["google.com", "gооgle.com", "xn--ggle-55da.com", "UPPER.com"])
@example(["", ".", "..", "a.", ".a", "a..b", "-a.com", "a-.com", "ab--cd.com"])
@example(["a\nb.com", "\n", "x" * 64 + ".com", ("a" * 49 + ".") * 5 + "com"])
@example(["www.go_gle.com", "sub.dom.google.com", "a.b"])
def test_domain_certain_miss_matches_oracle(kernel, batch):
    """Eligibility == FAST_DOMAIN_RE fullmatch + length cap; eligible
    domains get exactly the registrable label's certain-miss verdict."""
    got = kernel.domain_certain_miss(batch)
    for text, certain in zip(batch, got):
        eligible = (len(text) <= MAX_FAST_DOMAIN
                    and FAST_DOMAIN_RE.fullmatch(text) is not None)
        if not eligible:
            assert not certain
        else:
            registrable = text.rsplit(".", 2)[-2]
            expected = kernel.certain_miss_mask([registrable])[0]
            assert certain == expected


@settings(max_examples=300, deadline=None)
@given(st.lists(domains, min_size=0, max_size=10))
@example(["goo​gle.com", "google.com"])
def test_domain_certain_miss_with_invisible_table(invisible_finder, batch):
    prepared = invisible_finder.prepare_references(REFERENCES)
    kernel = kernel_for(invisible_finder.matcher, prepared)
    table = invisible_finder.invisible_table
    got = kernel.domain_certain_miss(batch, invisible_table=table)
    for text, certain in zip(batch, got):
        eligible = (len(text) <= MAX_FAST_DOMAIN
                    and FAST_DOMAIN_RE.fullmatch(text) is not None)
        if eligible:
            registrable = text.rsplit(".", 2)[-2]
            expected = kernel.certain_miss_mask(
                [registrable], invisible_table=table)[0]
            assert certain == expected
        else:
            assert not certain


# -- end-to-end equivalence ---------------------------------------------------

def _mixed_corpus(count: int = 40) -> list[str]:
    corpus = []
    hits = ["gооgle", "аmazon", "pаypаl", "secure-logіn"]
    for i in range(count):
        if i % 10 == 0:
            corpus.append(to_ascii_label(hits[(i // 10) % len(hits)]) + ".com")
        elif i % 7 == 0:
            corpus.append(f"UPPER{i}.com")          # scalar fallback (not LDH)
        elif i % 5 == 0:
            corpus.append(f"www.site{i}.co.uk")     # multi-label
        else:
            corpus.append(f"benign{i:02d}.com")
    return corpus


def test_detect_prepared_batch_equals_scalar(small_finder, prepared):
    corpus = _mixed_corpus()
    batch, batch_count, batch_skipped = small_finder.detect_prepared(
        corpus, prepared, batch_kernel=True)
    scalar, scalar_count, scalar_skipped = small_finder.detect_prepared(
        corpus, prepared, batch_kernel=False)
    assert (batch_count, batch_skipped) == (scalar_count, scalar_skipped)
    assert [d.as_dict() for d in batch] == [d.as_dict() for d in scalar]
    assert batch      # the corpus must actually contain detections


def test_query_many_batch_equals_scalar_loop(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCES)
    corpus = _mixed_corpus()
    batch = detector.query_many(corpus)
    scalar = [detector.query(domain) for domain in corpus]
    assert [v.as_dict() for v in batch] == [v.as_dict() for v in scalar]
    assert any(v.detections for v in batch)
    # The stats counter must advance once per query on both paths.
    assert detector.stats()["queries"] == 2 * len(corpus)


def test_query_many_small_batch_skips_kernel(small_finder):
    detector = OnlineDetector.from_references(small_finder, REFERENCES)
    few = ["benign.com", to_ascii_label("gооgle") + ".com"]
    assert [v.as_dict() for v in detector.query_many(few)] == [
        detector.query(d).as_dict() for d in few]


# -- the trivial-verdict constructor ------------------------------------------

def test_fast_miss_verdict_is_indistinguishable():
    text = "benign.com"
    fast = _fast_miss_verdict(text)
    slow = QueryVerdict(domain=text, ascii=text, unicode=text)
    assert fast == slow
    assert hash(fast) == hash(slow)
    assert fast.as_dict() == slow.as_dict()
    assert fast.detections == () and fast.error is None and not fast.is_idn
    assert pickle.loads(pickle.dumps(fast)) == slow
    with pytest.raises(Exception):
        fast.domain = "mutate"      # still frozen


# -- fold table build + persistence -------------------------------------------

def test_fold_table_roundtrip(tmp_path, small_finder):
    classes = small_finder.matcher.classes
    digest = small_finder.database.content_digest()
    table = FoldTable.build(classes, database_digest=digest)
    path = tmp_path / "fold.bin"
    table.save(path)
    loaded = FoldTable.load(path, database_digest=digest)
    assert loaded is not None
    for attribute in ("keys", "values", "fold_keys", "fold_values", "unsafe"):
        assert np.array_equal(getattr(loaded, attribute), getattr(table, attribute))


def test_fold_table_load_rejects_damage(tmp_path, small_finder):
    classes = small_finder.matcher.classes
    digest = small_finder.database.content_digest()
    table = FoldTable.build(classes, database_digest=digest)
    path = tmp_path / "fold.bin"
    table.save(path)

    assert FoldTable.load(path, database_digest="other") is None

    raw = path.read_bytes()
    truncated = tmp_path / "truncated.bin"
    truncated.write_bytes(raw[:-8])
    assert FoldTable.load(truncated, database_digest=digest) is None

    flipped = tmp_path / "flipped.bin"
    flipped.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
    assert FoldTable.load(flipped, database_digest=digest) is None

    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"not a fold table\n1234")
    assert FoldTable.load(garbage, database_digest=digest) is None

    assert FoldTable.load(tmp_path / "missing.bin", database_digest=digest) is None


def test_fold_table_sidecar_used_by_fold_table_for(tmp_path, small_finder):
    classes = small_finder.matcher.classes
    digest = small_finder.database.content_digest()
    # Clear the instance memo so the call actually consults the cache dir.
    if hasattr(classes, "_fold_table"):
        del classes._fold_table
    first = fold_table_for(classes, database_digest=digest, cache_dir=tmp_path)
    sidecars = list(tmp_path.glob("foldtable-*.bin"))
    assert len(sidecars) == 1
    # Drop the in-memory memo: the second call must come from the sidecar.
    del classes._fold_table
    second = fold_table_for(classes, database_digest=digest, cache_dir=tmp_path)
    assert np.array_equal(first.keys, second.keys)
    assert np.array_equal(first.values, second.values)


def test_kernel_for_duck_typed_index_returns_none(small_finder):
    class Odd:
        index = object()
    assert kernel_for(small_finder.matcher, Odd()) is None


def test_kernel_matches_manual_construction(small_finder, prepared, kernel):
    table = fold_table_for(
        small_finder.matcher.classes,
        database_digest=small_finder.database.content_digest())
    manual = BatchFoldKernel(table, prepared.index.skeletons())
    assert manual.bucket_count == kernel.bucket_count
    assert np.array_equal(manual.key_hashes, kernel.key_hashes)
