"""Tests for DNS resource records and record sets."""

import pytest

from repro.dns.records import DEFAULT_TTL, RecordSet, ResourceRecord, RRType


def test_rrtype_parse():
    assert RRType.parse("ns") is RRType.NS
    assert RRType.parse(" A ") is RRType.A
    with pytest.raises(ValueError):
        RRType.parse("BOGUS")


def test_record_normalisation():
    record = ResourceRecord("Example.COM.", RRType.NS, "ns1.example.net.")
    assert record.name == "example.com"
    assert record.rdata == "ns1.example.net"
    assert record.ttl == DEFAULT_TTL
    with pytest.raises(ValueError):
        ResourceRecord("example.com", RRType.A, "203.0.113.1", ttl=-1)


def test_zone_line_roundtrip():
    record = ResourceRecord("example.com", RRType.NS, "ns1.example.net", 172800)
    line = record.to_zone_line()
    assert "example.com." in line and "NS" in line and "ns1.example.net." in line
    parsed = ResourceRecord.from_zone_line(line)
    assert parsed == record


def test_zone_line_parse_errors():
    with pytest.raises(ValueError):
        ResourceRecord.from_zone_line("example.com. 3600 CH NS ns1.example.net.")
    with pytest.raises(ValueError):
        ResourceRecord.from_zone_line("example.com. 3600 IN")


def test_record_set_add_lookup_dedup():
    records = RecordSet()
    ns1 = ResourceRecord("example.com", RRType.NS, "ns1.example.net")
    records.add(ns1)
    records.add(ns1)                                     # duplicate ignored
    records.add(ResourceRecord("example.com", RRType.NS, "ns2.example.net"))
    records.add(ResourceRecord("example.com", RRType.A, "203.0.113.5"))
    assert len(records) == 3
    assert len(records.lookup("EXAMPLE.COM", RRType.NS)) == 2
    assert records.lookup("example.com", RRType.MX) == []
    assert records.names() == {"example.com"}
    assert ns1 in records


def test_record_set_iteration_sorted():
    records = RecordSet([
        ResourceRecord("b.com", RRType.A, "203.0.113.2"),
        ResourceRecord("a.com", RRType.A, "203.0.113.1"),
    ])
    assert [r.name for r in records] == ["a.com", "b.com"]


def test_record_set_remove_name_via_owner_index():
    records = RecordSet([
        ResourceRecord("a.com", RRType.NS, "ns1.a.net"),
        ResourceRecord("a.com", RRType.NS, "ns2.a.net"),
        ResourceRecord("a.com", RRType.A, "203.0.113.1"),
        ResourceRecord("b.com", RRType.A, "203.0.113.2"),
    ])
    assert records.remove_name("A.COM.") == 3            # normalised, all types
    assert len(records) == 1
    assert records.names() == {"b.com"}
    assert records.lookup("a.com", RRType.NS) == []
    assert records.remove_name("a.com") == 0             # idempotent
    # Re-adding after removal works and reindexes the owner.
    records.add(ResourceRecord("a.com", RRType.A, "203.0.113.3"))
    assert records.names() == {"a.com", "b.com"}
    assert records.remove_name("a.com") == 1
