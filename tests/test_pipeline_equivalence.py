"""Equivalence suite: legacy study == pipeline study == streaming+resume.

The acceptance bar of the enrichment-pipeline refactor: the serial
pre-pipeline ``MeasurementStudy.run_legacy()`` and every pipeline
configuration (in-memory, concurrent, sink-backed streaming, and a
killed-then-resumed run) must produce **byte-identical**
``StudyResults.summary()`` output and identical intermediate tables on the
golden population, and the per-stage JSONL sinks of a resumed run must be
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json

import pytest

from repro.measurement.results import StudyResults


def _summary_bytes(results) -> bytes:
    # No sort_keys: key insertion order must match too, the CLI prints it.
    return json.dumps(results.summary(), ensure_ascii=False, default=str).encode()


@pytest.fixture(scope="module")
def legacy_results(study):
    return study.run_legacy()


def _assert_equivalent(results, legacy):
    assert _summary_bytes(results) == _summary_bytes(legacy)
    assert results.popular_homographs == legacy.popular_homographs
    assert results.classification.sites == legacy.classification.sites
    assert results.portscan.results == legacy.portscan.results
    assert results.blacklist_table == legacy.blacklist_table
    assert results.reverted_outside_reference == legacy.reverted_outside_reference
    assert results.detected_idn_count == legacy.detected_idn_count


def test_pipeline_matches_legacy(study_results, legacy_results):
    # The session fixture runs the pipeline path; the legacy path must agree.
    _assert_equivalent(study_results, legacy_results)


def test_concurrent_pipeline_matches_legacy(study, legacy_results):
    results = study.run(jobs=4, batch_size=16)
    _assert_equivalent(results, legacy_results)
    assert {t.name for t in results.stage_timings} == {
        "dns", "portscan", "popularity", "classify", "blacklist", "revert",
    }


def test_streaming_sink_pipeline_matches_legacy(study, legacy_results, tmp_path):
    results = study.run(streaming=True, output_dir=tmp_path, jobs=2, batch_size=16)
    _assert_equivalent(results, legacy_results)
    assert results.scan_stats is not None
    assert (tmp_path / "detections.jsonl").exists()
    # Detections survive the sink round-trip.
    assert sorted(d.idn for d in results.detection_report) == \
        sorted(d.idn for d in legacy_results.detection_report)


def test_streaming_without_detection_report(study, legacy_results, tmp_path):
    results = study.run(streaming=True, output_dir=tmp_path, keep_detections=False)
    assert len(results.detection_report) == 0
    _assert_equivalent(results, legacy_results)


class _Killed(Exception):
    pass


def test_killed_then_resumed_run_is_byte_identical(study, legacy_results, tmp_path):
    clean_dir = tmp_path / "clean"
    study.run(streaming=True, output_dir=clean_dir, batch_size=8)

    resumable = tmp_path / "resumable"

    def bomb(event):
        if event.stage == "dns" and event.batches_done >= 1:
            raise _Killed

    with pytest.raises(_Killed):
        study.run(streaming=True, output_dir=resumable, batch_size=8, progress=bomb)

    results = study.run(streaming=True, output_dir=resumable, batch_size=8, resume=True)
    _assert_equivalent(results, legacy_results)
    assert any(t.resumed for t in results.stage_timings)

    clean_sinks = sorted((clean_dir / "stages").glob("stage_*.jsonl"))
    assert clean_sinks, "expected per-stage sinks"
    for clean in clean_sinks:
        resumed = resumable / "stages" / clean.name
        assert resumed.read_bytes() == clean.read_bytes(), clean.name


def test_stage_subset_pulls_dependencies(study):
    results = study.run(stages=["classify"])
    ran = {t.name for t in results.stage_timings}
    assert ran == {"dns", "portscan", "classify"}
    # Unselected stages leave their tables at defaults.
    assert results.blacklist_table == {}
    assert results.popular_homographs == []
    assert len(results.classification) > 0


def test_resume_without_output_dir_is_rejected(study):
    with pytest.raises(ValueError, match="output_dir"):
        study.run(resume=True)


def test_empty_results_summary_is_all_zero():
    # Satellite: summary() on a fresh StudyResults (e.g. a stage-subset run
    # that skipped the dataset step) must not crash on dataset_table[-1].
    summary = StudyResults().summary()
    assert summary["domains"] == 0
    assert summary["with_ns"] == 0
    assert summary["reachable"] == 0
    assert summary["blacklists"] == {}
