"""Tests for the DomainName model."""

import pytest

from repro.idn.domain import DomainName
from repro.idn.idna_codec import IDNAError


def test_ascii_domain_basics():
    name = DomainName("Google.COM")
    assert name.ascii == "google.com"
    assert name.unicode == "google.com"
    assert name.labels == ("google", "com")
    assert name.tld == "com"
    assert name.registrable_label == "google"
    assert name.sld_and_tld == "google.com"
    assert not name.is_idn
    assert str(name) == "google.com"


def test_idn_domain_both_faces():
    name = DomainName("阿里巴巴.com")
    assert name.ascii == "xn--tsta8290bfzd.com"
    assert name.unicode == "阿里巴巴.com"
    assert name.is_idn
    assert name.has_idn_registrable_label
    assert name.registrable_unicode == "阿里巴巴"
    assert "Han" in name.scripts


def test_parse_accepts_either_form():
    from_unicode = DomainName.parse("facébook.com")
    from_ascii = DomainName.parse("xn--facbook-dya.com")
    assert from_unicode == from_ascii
    assert from_unicode.unicode == "facébook.com"


def test_mixed_script_detection():
    cyrillic_o = DomainName("g" + chr(0x043E) + chr(0x043E) + "gle.com")
    assert cyrillic_o.is_mixed_script
    accented = DomainName("facébook.com")
    assert not accented.is_mixed_script
    ascii_only = DomainName("example.com")
    assert not ascii_only.is_mixed_script
    assert ascii_only.scripts == frozenset({"Latin"})


def test_subdomain_structure():
    name = DomainName("mail.xn--facbook-dya.com")
    assert name.tld == "com"
    assert name.registrable_label == "xn--facbook-dya"
    assert name.has_idn_registrable_label
    assert name.sld_and_tld == "xn--facbook-dya.com"


def test_single_label_domain():
    name = DomainName("localhost")
    assert name.registrable_label == "localhost"
    assert name.sld_and_tld == "localhost"


def test_invalid_domains_raise():
    with pytest.raises(IDNAError):
        DomainName("exa mple.com")
    with pytest.raises(IDNAError):
        DomainName("")
    with pytest.raises(IDNAError):
        DomainName("xn--zzzzzzzz!.com")


def test_equality_and_hash():
    assert DomainName("GOOGLE.com") == DomainName("google.com")
    assert len({DomainName("google.com"), DomainName("google.com")}) == 1


def test_repr_shows_unicode_for_idns():
    assert "facébook" in repr(DomainName("facébook.com"))
    assert "google.com" in repr(DomainName("google.com"))
