"""Tests for reverting homographs to their original domains (Section 6.4)."""

from repro.detection.revert import HomographReverter
from repro.homoglyph.database import SOURCE_SIMCHAR, SOURCE_UC, HomoglyphDatabase


def _reverter():
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_UC)
    db.add_pair("o", "ο", source=SOURCE_UC)
    db.add_pair("e", "é", source=SOURCE_SIMCHAR)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("l", "ӏ", source=SOURCE_UC)
    # A homoglyph pair between two non-ASCII characters only:
    db.add_pair("ж", "җ", source=SOURCE_UC)
    return HomographReverter(db)


def test_ascii_alternatives():
    reverter = _reverter()
    assert reverter.ascii_alternatives("о") == ["o"]
    assert reverter.ascii_alternatives("o") == ["o"]
    assert reverter.ascii_alternatives("ж") == []


def test_revert_single_substitution():
    reverter = _reverter()
    assert reverter.best_original("gоogle") == "google"
    assert reverter.best_original("facébook") == "facebook"


def test_revert_multiple_substitutions():
    reverter = _reverter()
    assert reverter.best_original("gооglе" .replace("е", "é")) == "google"
    assert reverter.best_original("аmаzоn") == "amazon"


def test_revert_label_candidates_ranked():
    reverter = _reverter()
    candidates = reverter.revert_label("gоogle")
    assert candidates
    assert candidates[0].original_label == "google"
    assert candidates[0].is_fully_ascii
    assert candidates[0].substitution_count == 1


def test_unmappable_character_keeps_label_non_ascii():
    reverter = _reverter()
    best = reverter.best_original("жurnal")
    # ж has no ASCII homoglyph, so no fully-ASCII original exists.
    assert best is None or not all(c.isascii() for c in best)


def test_pure_ascii_label_has_no_revert():
    reverter = _reverter()
    assert reverter.best_original("google") is None
    assert reverter.revert_label("google") == []


def test_targets_outside_reference():
    reverter = _reverter()
    labels = ["gоogle", "аllstate", "mуdomain".replace("у", "ο")]
    mapping = reverter.targets_outside_reference(labels, {"google"})
    assert "gоogle" not in mapping                     # reverts to a reference domain
    assert mapping.get("аllstate") == "allstate"       # outside the reference list


def test_u0130_fold_preserves_substitution_positions():
    # str.lower() turns U+0130 "İ" into "i" + a combining dot (two chars),
    # which used to shift every later substituted position off by one.  The
    # reverter now folds with the same length-preserving fold_label as the
    # matcher (the PR-2 regression, mirrored for Section 6.4).
    db = HomoglyphDatabase()
    db.add_pair("İ", "i", source=SOURCE_UC)
    db.add_pair("о", "o", source=SOURCE_UC)
    reverter = HomographReverter(db)

    label = "İxо"
    assert len(label.lower()) == 4             # the hazard being guarded against
    assert reverter.best_original(label) == "ixo"
    best = reverter.revert_label(label)[0]
    assert best.original_label == "ixo"
    assert best.substituted_positions == (0, 2)
    # Every substituted position indexes the *original* label's non-ASCII char.
    for position in best.substituted_positions:
        assert not label[position].isascii()


def test_max_candidates_bounds_combinatorics():
    db = HomoglyphDatabase()
    for partner in "оο0":
        if partner != "0":
            db.add_pair("o", partner, source=SOURCE_UC)
    reverter = HomographReverter(db, max_candidates=3)
    candidates = reverter.revert_label("оοоο")
    assert len(candidates) <= 3
