"""Tests for the command-line interface.

The CLI sub-commands that need the full default SimChar build are exercised
through lighter paths (pre-built database files, small scales) to keep the
suite fast.
"""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_subcommands():
    parser = build_parser()
    for argv in (["build-db", "-o", "x.json"],
                 ["detect", "example.com"],
                 ["inspect", "example.com"],
                 ["measure"]):
        args = parser.parse_args(argv)
        assert args.command == argv[0]


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_detect_with_prebuilt_database(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    rc = main([
        "detect",
        "xn--ggle-55da.com", "example.com",
        "--reference", "google.com", "amazon.com",
        "--database", str(db_path),
    ])
    assert rc == 0
    output = capsys.readouterr().out
    assert "google.com" in output
    assert "imitates" in output


def test_detect_json_output_and_files(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    candidates = tmp_path / "candidates.txt"
    candidates.write_text("xn--facbook-dya.com\n\n", encoding="utf-8")
    reference = tmp_path / "reference.txt"
    reference.write_text("facebook.com\n", encoding="utf-8")
    rc = main([
        "detect",
        "--candidates-file", str(candidates),
        "--reference-file", str(reference),
        "--database", str(db_path),
        "--json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["reference"] == "facebook.com"
    assert payload[0]["unicode"] == "facébook.com"
    assert payload[0]["sources"]


def test_detect_without_candidates_errors(capsys):
    rc = main(["detect"])
    assert rc == 2
    assert "no candidate domains" in capsys.readouterr().err


def test_detect_no_matches_message(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    rc = main(["detect", "example.com", "--reference", "google.com",
               "--database", str(db_path)])
    assert rc == 0
    assert "no homographs" in capsys.readouterr().out


def test_inspect_plain_domain(capsys):
    rc = main(["inspect", "google.com"])
    assert rc == 0
    output = capsys.readouterr().out
    assert "ascii:     google.com" in output
    assert "idn:       False" in output


def test_inspect_invalid_domain(capsys):
    rc = main(["inspect", "bad domain!"])
    assert rc == 2
    assert "invalid domain" in capsys.readouterr().err


def test_parser_accepts_measure_pipeline_options():
    parser = build_parser()
    args = parser.parse_args([
        "measure", "--streaming", "--jobs", "4", "--batch-size", "64",
        "--stages", "dns,classify", "--output-dir", "out", "--resume",
    ])
    assert args.streaming and args.resume
    assert args.jobs == 4 and args.batch_size == 64
    assert args.stages == "dns,classify"


def test_measure_resume_requires_output_dir(capsys):
    rc = main(["measure", "--resume"])
    assert rc == 2
    assert "--output-dir" in capsys.readouterr().err


def test_measure_legacy_rejects_pipeline_options(capsys):
    rc = main(["measure", "--legacy", "--stages", "dns"])
    assert rc == 2
    assert "--legacy" in capsys.readouterr().err


def test_parser_accepts_scan_options(tmp_path):
    parser = build_parser()
    args = parser.parse_args([
        "scan", "-i", "zone.txt", "-o", "out.jsonl",
        "--jobs", "4", "--chunk-size", "500", "--resume",
        "--checkpoint", "cp.json", "--all-domains", "--progress-every", "2",
    ])
    assert args.command == "scan"
    assert args.jobs == 4 and args.chunk_size == 500 and args.resume


def test_scan_subcommand_end_to_end(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    input_path = tmp_path / "zone.txt"
    input_path.write_text(
        "xn--ggle-55da.com\nexample.com\n# comment\nxn--facbook-dya.com\n",
        encoding="utf-8",
    )
    output_path = tmp_path / "results.jsonl"
    rc = main([
        "scan", "-i", str(input_path), "-o", str(output_path),
        "--reference", "google.com", "facebook.com",
        "--database", str(db_path),
        "--chunk-size", "2",
    ])
    assert rc == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["detection_count"] == 2
    assert stats["domains_seen"] == 3
    lines = [json.loads(line) for line in output_path.read_text("utf-8").splitlines()]
    assert {entry["reference"] for entry in lines} == {"google.com", "facebook.com"}
    assert (tmp_path / "results.jsonl.checkpoint").exists()


def test_parser_accepts_track_options():
    parser = build_parser()
    args = parser.parse_args([
        "track", "-s", "2019-05-01=day1.zone", "-s", "2019-05-02=day2.zone",
        "--state-dir", "state", "--jobs", "2", "--chunk-size", "100",
        "--resume", "--report", "report.md",
    ])
    assert args.command == "track"
    assert args.snapshot == ["2019-05-01=day1.zone", "2019-05-02=day2.zone"]
    assert args.jobs == 2 and args.resume


def test_track_rejects_malformed_snapshot_argument(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    rc = main(["track", "-s", "no-separator", "--state-dir", str(tmp_path / "state"),
               "--database", str(db_path), "--reference", "google.com"])
    assert rc == 2
    assert "DATE=PATH" in capsys.readouterr().err


def test_track_subcommand_end_to_end(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)

    def snapshot(date, domains):
        path = tmp_path / f"{date}.zone"
        path.write_text(
            "".join(f"{d}.\t172800\tIN\tNS\tns1.host.net.\n" for d in domains),
            encoding="utf-8",
        )
        return f"{date}={path}"

    day1 = snapshot("2019-05-01", ["example.com", "xn--ggle-55da.com"])
    day2 = snapshot("2019-05-02",
                    ["example.com", "xn--ggle-55da.com", "xn--facbook-dya.com"])
    state_dir = tmp_path / "state"
    report_path = tmp_path / "report.md"
    base = ["track", "-s", day1, "-s", day2, "--state-dir", str(state_dir),
            "--reference", "google.com", "facebook.com",
            "--database", str(db_path), "--report", str(report_path), "--json"]
    rc = main(base)
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["days_done"] == 2
    assert [day["new_homographs"] for day in payload["days"]] == [1, 1]
    assert {entry["idn"] for entry in payload["active"]} == {
        "xn--ggle-55da.com", "xn--facbook-dya.com"}
    assert (state_dir / "timeline.jsonl").exists()
    assert (state_dir / "state.json").exists()
    assert "Per-day zone churn" in report_path.read_text(encoding="utf-8")

    # A second resumed invocation skips both processed days.
    rc = main(base + ["--resume"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["days_resumed"] == 2
    assert payload["stats"]["days_done"] == 0


def test_scan_resume_refuses_changed_input(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    input_path = tmp_path / "zone.txt"
    input_path.write_text("xn--ggle-55da.com\n", encoding="utf-8")
    output_path = tmp_path / "results.jsonl"
    base = ["scan", "-i", str(input_path), "-o", str(output_path),
            "--reference", "google.com", "--database", str(db_path)]
    assert main(base) == 0
    capsys.readouterr()
    input_path.write_text("xn--ggle-55da.com\nmore.com\n", encoding="utf-8")
    rc = main(base + ["--resume"])
    assert rc == 2
    assert "cannot resume" in capsys.readouterr().err


# -- query / serve ------------------------------------------------------------


def _saved_db(tmp_path, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    return db_path


def test_query_text_and_exit_codes(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    rc = main(["query", "xn--ggle-55da.com", "example.com",
               "--reference", "google.com", "--database", str(db_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "homograph of google.com" in out
    assert "no homograph match" in out


def test_query_json_includes_detections_and_revert(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    rc = main(["query", "xn--ggle-55da.com", "--revert", "--json",
               "--reference", "google.com", "--database", str(db_path)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["is_homograph"] is True
    assert payload["detections"][0]["reference"] == "google.com"
    assert payload["revert"] == "google.com"


def test_query_invalid_domain_sets_exit_code(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    rc = main(["query", "..", "--reference", "google.com", "--database", str(db_path)])
    assert rc == 1
    assert "invalid" in capsys.readouterr().out


def test_query_stats_on_stderr(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    rc = main(["query", "xn--ggle-55da.com", "xn--GGLE-55da.com", "--stats",
               "--reference", "google.com", "--database", str(db_path)])
    assert rc == 0
    stats = json.loads(capsys.readouterr().err)
    assert stats["queries"] == 2
    assert stats["cache_hits"] == 1


def test_query_index_dir_builds_and_reuses_artifact(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    index_dir = tmp_path / "index"
    base = ["query", "xn--ggle-55da.com", "--reference", "google.com",
            "--database", str(db_path), "--index-dir", str(index_dir), "--stats"]

    # Missing dir without --build-index: one-line error, no traceback.
    assert main(base) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "--build-index" in err

    assert main(base + ["--build-index"]) == 0
    stats = json.loads(capsys.readouterr().err)
    assert stats["index_from_cache"] is False
    assert list(index_dir.glob("refindex-*.idx"))

    assert main(base) == 0
    stats = json.loads(capsys.readouterr().err)
    assert stats["index_from_cache"] is True


def test_query_missing_database_is_one_line_error(tmp_path, capsys):
    rc = main(["query", "example.com", "--reference", "google.com",
               "--database", str(tmp_path / "missing.json")])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert err.count("\n") == 1


def test_detect_missing_font_is_one_line_error(tmp_path, capsys):
    rc = main(["detect", "example.com", "--reference", "google.com",
               "--font", str(tmp_path / "missing.hex")])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read font file")
    assert err.count("\n") == 1


def test_serve_reads_file_and_emits_jsonl(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    input_path = tmp_path / "domains.txt"
    input_path.write_text(
        "xn--ggle-55da.com\n# comment\n\nexample.com\n", encoding="utf-8")
    rc = main(["serve", "-i", str(input_path), "--reference", "google.com",
               "--database", str(db_path), "--stats"])
    assert rc == 0
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in captured.out.splitlines()]
    assert len(lines) == 2
    assert lines[0]["is_homograph"] is True
    assert lines[1]["is_homograph"] is False
    assert json.loads(captured.err)["queries"] == 2


def test_serve_missing_input_is_one_line_error(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    rc = main(["serve", "-i", str(tmp_path / "missing.txt"),
               "--reference", "google.com", "--database", str(db_path)])
    assert rc == 2
    assert capsys.readouterr().err.startswith("error: cannot read")


def test_scan_reuses_index_dir(tmp_path, capsys, union_db):
    db_path = _saved_db(tmp_path, union_db)
    input_path = tmp_path / "zone.txt"
    input_path.write_text("xn--ggle-55da.com\nexample.com\n", encoding="utf-8")
    index_dir = tmp_path / "index"
    base = ["scan", "-i", str(input_path), "-o", str(tmp_path / "out.jsonl"),
            "--reference", "google.com", "--database", str(db_path),
            "--index-dir", str(index_dir)]

    assert main(base) == 2                      # missing dir: clear error
    assert "--build-index" in capsys.readouterr().err

    assert main(base + ["--build-index"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["detection_count"] == 1
    assert list(index_dir.glob("refindex-*.idx"))

    # Warm run: same results through the loaded artifact.
    assert main(["scan", "-i", str(input_path), "-o", str(tmp_path / "out2.jsonl"),
                 "--reference", "google.com", "--database", str(db_path),
                 "--index-dir", str(index_dir)]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["detection_count"] == 1
