"""Tests for the command-line interface.

The CLI sub-commands that need the full default SimChar build are exercised
through lighter paths (pre-built database files, small scales) to keep the
suite fast.
"""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_subcommands():
    parser = build_parser()
    for argv in (["build-db", "-o", "x.json"],
                 ["detect", "example.com"],
                 ["inspect", "example.com"],
                 ["measure"]):
        args = parser.parse_args(argv)
        assert args.command == argv[0]


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_detect_with_prebuilt_database(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    rc = main([
        "detect",
        "xn--ggle-55da.com", "example.com",
        "--reference", "google.com", "amazon.com",
        "--database", str(db_path),
    ])
    assert rc == 0
    output = capsys.readouterr().out
    assert "google.com" in output
    assert "imitates" in output


def test_detect_json_output_and_files(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    candidates = tmp_path / "candidates.txt"
    candidates.write_text("xn--facbook-dya.com\n\n", encoding="utf-8")
    reference = tmp_path / "reference.txt"
    reference.write_text("facebook.com\n", encoding="utf-8")
    rc = main([
        "detect",
        "--candidates-file", str(candidates),
        "--reference-file", str(reference),
        "--database", str(db_path),
        "--json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["reference"] == "facebook.com"
    assert payload[0]["unicode"] == "facébook.com"
    assert payload[0]["sources"]


def test_detect_without_candidates_errors(capsys):
    rc = main(["detect"])
    assert rc == 2
    assert "no candidate domains" in capsys.readouterr().err


def test_detect_no_matches_message(tmp_path, capsys, union_db):
    db_path = tmp_path / "db.json"
    union_db.save(db_path)
    rc = main(["detect", "example.com", "--reference", "google.com",
               "--database", str(db_path)])
    assert rc == 0
    assert "no homographs" in capsys.readouterr().out


def test_inspect_plain_domain(capsys):
    rc = main(["inspect", "google.com"])
    assert rc == 0
    output = capsys.readouterr().out
    assert "ascii:     google.com" in output
    assert "idn:       False" in output


def test_inspect_invalid_domain(capsys):
    rc = main(["inspect", "bad domain!"])
    assert rc == 2
    assert "invalid domain" in capsys.readouterr().err
