"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.algorithm import HomographMatcher
from repro.fonts.glyph import Glyph
from repro.fonts.synthetic import SyntheticFont
from repro.homoglyph.database import SOURCE_SIMCHAR, HomoglyphDatabase, HomoglyphPair
from repro.idn import punycode
from repro.idn.idna_codec import IDNAError, to_ascii_label, to_unicode_label
from repro.metrics.pixel import delta
from repro.metrics.psnr import psnr_from_delta
from repro.unicode.blocks import block_of
from repro.unicode.idna import derived_property
from repro.unicode.scripts import script_of

_FONT = SyntheticFont()

# --------------------------------------------------------------------------
# Unicode substrate
# --------------------------------------------------------------------------

codepoints = st.integers(min_value=0, max_value=0x10FFFF).filter(
    lambda cp: not (0xD800 <= cp <= 0xDFFF)
)


@settings(max_examples=300, deadline=None)
@given(codepoints)
def test_block_lookup_is_consistent(cp):
    block = block_of(cp)
    if block is not None:
        assert block.start <= cp <= block.end


@settings(max_examples=300, deadline=None)
@given(codepoints)
def test_derived_property_is_deterministic_and_total(cp):
    assert derived_property(cp) is derived_property(cp)


@settings(max_examples=200, deadline=None)
@given(codepoints)
def test_script_of_total(cp):
    assert isinstance(script_of(cp), str)


# --------------------------------------------------------------------------
# Glyphs and metrics
# --------------------------------------------------------------------------

bitmaps = st.lists(st.integers(0, 1), min_size=64, max_size=64).map(
    lambda bits: np.array(bits, dtype=np.uint8).reshape(8, 8)
)


@settings(max_examples=100, deadline=None)
@given(bitmaps, bitmaps)
def test_delta_is_a_metric(a_bits, b_bits):
    a = Glyph(0x61, a_bits)
    b = Glyph(0x62, b_bits)
    assert delta(a, a) == 0
    assert delta(a, b) == delta(b, a)
    assert 0 <= delta(a, b) <= 64


@settings(max_examples=100, deadline=None)
@given(bitmaps, bitmaps, bitmaps)
def test_delta_triangle_inequality(a_bits, b_bits, c_bits):
    a, b, c = Glyph(1, a_bits), Glyph(2, b_bits), Glyph(3, c_bits)
    assert delta(a, c) <= delta(a, b) + delta(b, c)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 2048), st.sampled_from([16, 32, 64]))
def test_psnr_decreases_with_delta(delta_value, size):
    if delta_value + 1 <= size * size:
        assert psnr_from_delta(delta_value, size) > psnr_from_delta(delta_value + 1, size)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from("abcdefghijklmnopqrstuvwxyz"), st.sampled_from("abcdefghijklmnopqrstuvwxyz"))
def test_synthetic_font_identity_vs_distinct(first, second):
    ga, gb = _FONT.render(ord(first)), _FONT.render(ord(second))
    if first == second:
        assert delta(ga, gb) == 0
    else:
        assert delta(ga, gb) > 4      # distinct letters never collapse into homoglyphs


# --------------------------------------------------------------------------
# Punycode / IDNA round trips
# --------------------------------------------------------------------------

labels = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=0x4FF,
                           exclude_categories=("Cs", "Cc", "Cn")),
    min_size=1, max_size=12,
)


@settings(max_examples=200, deadline=None)
@given(labels)
def test_punycode_roundtrip_property(text):
    assert punycode.decode(punycode.encode(text)) == text


@settings(max_examples=200, deadline=None)
@given(labels)
def test_idna_label_roundtrip_property(text):
    try:
        alabel = to_ascii_label(text)
    except IDNAError:
        return
    assert all(ord(ch) < 0x80 for ch in alabel)
    if alabel.startswith("xn--"):
        restored = to_unicode_label(alabel)
        assert to_ascii_label(restored) == alabel


# --------------------------------------------------------------------------
# Homoglyph database invariants
# --------------------------------------------------------------------------

pair_chars = st.characters(min_codepoint=0x61, max_codepoint=0x2FF,
                           exclude_categories=("Cs", "Cc", "Cn"))
pairs = st.tuples(pair_chars, pair_chars).filter(lambda t: t[0] != t[1])


@settings(max_examples=100, deadline=None)
@given(st.lists(pairs, min_size=0, max_size=40))
def test_database_symmetry_and_counts(pair_list):
    db = HomoglyphDatabase()
    for first, second in pair_list:
        db.add(HomoglyphPair(first, second, frozenset({SOURCE_SIMCHAR})))
    for first, second in pair_list:
        assert db.are_homoglyphs(first, second)
        assert db.are_homoglyphs(second, first)
        assert second in db.homoglyphs_of(first)
    assert db.pair_count <= len(pair_list)
    assert db.character_count <= 2 * db.pair_count if db.pair_count else db.character_count == 0
    # Serialisation roundtrip preserves everything.
    restored = HomoglyphDatabase.from_json(db.to_json())
    assert restored.pair_count == db.pair_count
    assert {p.key for p in restored} == {p.key for p in db}


@settings(max_examples=100, deadline=None)
@given(st.lists(pairs, min_size=1, max_size=20), st.lists(pairs, min_size=1, max_size=20))
def test_union_intersection_laws(first_list, second_list):
    a = HomoglyphDatabase.from_pairs(
        HomoglyphPair(x, y, frozenset({SOURCE_SIMCHAR})) for x, y in first_list
    )
    b = HomoglyphDatabase.from_pairs(
        HomoglyphPair(x, y, frozenset({SOURCE_SIMCHAR})) for x, y in second_list
    )
    union = a.union(b)
    intersection = a.intersection(b)
    assert union.pair_count <= a.pair_count + b.pair_count
    assert union.pair_count >= max(a.pair_count, b.pair_count)
    assert intersection.pair_count <= min(a.pair_count, b.pair_count)
    assert union.pair_count + intersection.pair_count == a.pair_count + b.pair_count


# --------------------------------------------------------------------------
# Matcher invariants
# --------------------------------------------------------------------------

ascii_labels = st.text(alphabet="abcdefgo", min_size=1, max_size=10)


@settings(max_examples=150, deadline=None)
@given(ascii_labels)
def test_matcher_never_flags_identical_or_plain_ascii(label):
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_SIMCHAR)
    matcher = HomographMatcher(db)
    assert not matcher.is_homograph(label, label)


@settings(max_examples=150, deadline=None)
@given(ascii_labels)
def test_matcher_detects_database_substitution(label):
    db = HomoglyphDatabase()
    db.add_pair("o", "о", source=SOURCE_SIMCHAR)
    matcher = HomographMatcher(db)
    if "o" not in label:
        return
    mutated = label.replace("o", "о", 1)
    result = matcher.match(mutated, label)
    assert result.is_homograph
    assert result.substitution_count == mutated.count("о")


# --------------------------------------------------------------------------
# Database digest invariants (registry fingerprints depend on these)
# --------------------------------------------------------------------------

_pair_codepoints = st.integers(min_value=0x21, max_value=0x24F)

homoglyph_pairs = st.tuples(_pair_codepoints, _pair_codepoints).filter(
    lambda cps: cps[0] != cps[1]
).map(lambda cps: HomoglyphPair(
    chr(cps[0]), chr(cps[1]),
    frozenset({SOURCE_SIMCHAR if (cps[0] + cps[1]) % 2 else "UC"}),
    delta=(cps[0] + cps[1]) % 7 or None,
))

pair_lists = st.lists(homoglyph_pairs, min_size=1, max_size=20)


@settings(max_examples=150, deadline=None)
@given(pair_lists, st.randoms(use_true_random=False))
def test_content_digest_is_insertion_order_independent(pairs, rnd):
    shuffled = list(pairs)
    rnd.shuffle(shuffled)
    a = HomoglyphDatabase.from_pairs(pairs)
    b = HomoglyphDatabase.from_pairs(shuffled)
    assert a.content_digest() == b.content_digest()
    assert a.pairs() == b.pairs()


@settings(max_examples=150, deadline=None)
@given(pair_lists, pair_lists)
def test_union_is_commutative_on_digest(left_pairs, right_pairs):
    left = HomoglyphDatabase.from_pairs(left_pairs, name="L")
    right = HomoglyphDatabase.from_pairs(right_pairs, name="R")
    ab = left.union(right)
    ba = right.union(left)
    assert ab.content_digest() == ba.content_digest()
    # merging is also lossless: every source tag from both sides survives
    for pair in left_pairs + right_pairs:
        merged = ab.get(pair.first, pair.second)
        assert merged is not None
        assert pair.sources <= merged.sources
