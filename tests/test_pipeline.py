"""Unit tests for the enrichment pipeline runner (measurement/pipeline.py).

Covers the stage-graph utilities (topological ordering, subset selection,
batch splitting), the generation-aware probe cache, and the durability
guarantees (per-stage JSONL sinks, checkpoint after every batch, resume
after a kill, refusal on damaged or changed inputs).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.measurement.pipeline import (
    DetectionSummary,
    GenerationCache,
    PipelineError,
    PipelineRunner,
    StageCheckpoint,
    StageResumeError,
    select_stages,
    split_batches,
    stage_input_fingerprint,
    topological_order,
)
from repro.measurement.results import StudyResults


class AddOneStage:
    """Test stage: consumes ints (or a dependency's records) and adds one."""

    batchable = True

    def __init__(self, name, *, deps=(), items=None, batchable=True):
        self.name = name
        self.dependencies = tuple(deps)
        self.batchable = batchable
        self._items = items
        self.enriched_batches: list[list] = []
        self.final_records: list[dict] | None = None

    def prepare(self, context):
        if self._items is not None:
            return list(self._items)
        return [r["value"] for r in context.records[self.dependencies[0]]]

    def enrich(self, batch):
        self.enriched_batches.append(list(batch))
        return [{"value": value + 1} for value in batch]

    def finalize(self, context, records):
        self.final_records = records


def _run(stages, **kwargs):
    progress = kwargs.pop("progress", None)
    runner = PipelineRunner(stages, **kwargs)
    runner.run(DetectionSummary(), StudyResults(), progress=progress)
    return runner


# -- graph utilities ----------------------------------------------------------


def test_topological_order_keeps_declaration_order_within_waves():
    a = AddOneStage("a", items=[])
    b = AddOneStage("b", items=[])
    c = AddOneStage("c", deps=("a", "b"))
    d = AddOneStage("d", deps=("c",))
    order = [s.name for s in topological_order([d, a, b, c])]
    assert order == ["a", "b", "c", "d"]


def test_topological_order_rejects_duplicates_unknowns_and_cycles():
    with pytest.raises(PipelineError, match="duplicate"):
        topological_order([AddOneStage("x", items=[]), AddOneStage("x", items=[])])
    with pytest.raises(PipelineError, match="unknown"):
        topological_order([AddOneStage("x", deps=("ghost",), items=[])])
    x = AddOneStage("x", deps=("y",), items=[])
    y = AddOneStage("y", deps=("x",), items=[])
    with pytest.raises(PipelineError, match="cycle"):
        topological_order([x, y])


def test_select_stages_pulls_transitive_dependencies():
    a = AddOneStage("a", items=[])
    b = AddOneStage("b", deps=("a",))
    c = AddOneStage("c", deps=("b",))
    other = AddOneStage("other", items=[])
    selected = select_stages([a, b, c, other], ["c"])
    assert [s.name for s in selected] == ["a", "b", "c"]
    with pytest.raises(PipelineError, match="unknown stage"):
        select_stages([a], ["nope"])


def test_split_batches():
    assert split_batches([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert split_batches([], 3) == []
    assert split_batches([1], 10) == [[1]]
    with pytest.raises(ValueError):
        split_batches([1], 0)


def test_stage_input_fingerprint_tracks_items_and_batching():
    base = stage_input_fingerprint(["a", "b"], batch_size=2)
    assert stage_input_fingerprint(["a", "b"], batch_size=2) == base
    assert stage_input_fingerprint(["a", "c"], batch_size=2) != base
    assert stage_input_fingerprint(["a", "b"], batch_size=3) != base
    assert stage_input_fingerprint(["a", "b"], batch_size=None) != base


# -- generation cache ---------------------------------------------------------


def test_generation_cache_invalidates_on_generation_change():
    generation = [0]
    cache = GenerationCache(lambda: generation[0])
    cache.put("k", 1)
    assert cache.get("k") == 1
    generation[0] += 1
    assert cache.get("k") is None
    assert cache.invalidations == 1
    cache.put("k", 2)
    assert len(cache) == 1


def test_generation_cache_without_source_never_invalidates():
    cache = GenerationCache()
    cache.put("k", 1)
    assert cache.get("k") == 1
    assert cache.invalidations == 0


# -- checkpoint ---------------------------------------------------------------


def test_stage_checkpoint_roundtrip(tmp_path):
    path = tmp_path / "cp"
    checkpoint = StageCheckpoint(
        stage="dns", batches_done=3, batch_count=5,
        records_written=700, input_fingerprint="abc", complete=False,
    )
    checkpoint.save(path)
    assert StageCheckpoint.load(path) == checkpoint
    assert StageCheckpoint.load(tmp_path / "missing") is None
    path.write_text("not json")
    assert StageCheckpoint.load(path) is None
    path.write_text(json.dumps({"version": 999, "stage": "dns"}))
    assert StageCheckpoint.load(path) is None


# -- execution ----------------------------------------------------------------


def test_records_stay_in_input_order_under_concurrency():
    stage = AddOneStage("a", items=list(range(100)))
    _run([stage], jobs=8, batch_size=7)
    assert stage.final_records == [{"value": v + 1} for v in range(100)]
    assert len(stage.enriched_batches) == 15


def test_dependent_stage_sees_upstream_records():
    a = AddOneStage("a", items=[1, 2, 3])
    b = AddOneStage("b", deps=("a",))
    _run([b, a], jobs=4, batch_size=2)
    assert b.final_records == [{"value": 3}, {"value": 4}, {"value": 5}]


def test_unbatchable_stage_gets_whole_input_in_one_batch():
    stage = AddOneStage("a", items=list(range(10)), batchable=False)
    _run([stage], batch_size=2)
    assert stage.enriched_batches == [list(range(10))]


def test_empty_input_stage_finalizes_with_no_records(tmp_path):
    stage = AddOneStage("a", items=[])
    _run([stage], output_dir=tmp_path)
    assert stage.final_records == []
    assert (tmp_path / "stage_a.jsonl").read_bytes() == b""
    checkpoint = StageCheckpoint.load(tmp_path / "stage_a.jsonl.checkpoint")
    assert checkpoint is not None and checkpoint.complete


def test_independent_stages_share_the_executor_concurrently():
    barrier = threading.Barrier(2, timeout=10)

    class MeetingStage(AddOneStage):
        def enrich(self, batch):
            barrier.wait()   # only passes when both stages are in flight
            return super().enrich(batch)

    a = MeetingStage("a", items=[1])
    b = MeetingStage("b", items=[2])
    _run([a, b], jobs=2)
    assert a.final_records and b.final_records


def test_intra_stage_batches_run_concurrently():
    barrier = threading.Barrier(2, timeout=10)

    class MeetingStage(AddOneStage):
        def enrich(self, batch):
            barrier.wait()
            return super().enrich(batch)

    stage = MeetingStage("a", items=[1, 2])
    _run([stage], jobs=2, batch_size=1)
    assert stage.final_records == [{"value": 2}, {"value": 3}]


def test_stage_error_propagates():
    class BoomStage(AddOneStage):
        def enrich(self, batch):
            raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        _run([BoomStage("a", items=[1])])


def test_timings_recorded_in_stage_order():
    a = AddOneStage("a", items=[1])
    b = AddOneStage("b", deps=("a",))
    runner = _run([a, b], batch_size=1)
    assert [t.name for t in runner.timings] == ["a", "b"]
    assert all(t.seconds >= 0 for t in runner.timings)
    assert runner.timings[0].records == 1


# -- durability + resume ------------------------------------------------------


class _Killed(Exception):
    pass


def _kill_when(stage_name, batches_done):
    def bomb(event):
        if event.stage == stage_name and event.batches_done >= batches_done:
            raise _Killed
    return bomb


def test_resume_after_kill_matches_uninterrupted_run(tmp_path):
    items = list(range(20))
    clean_dir = tmp_path / "clean"
    _run([AddOneStage("a", items=items)], batch_size=4, output_dir=clean_dir)

    resumable = tmp_path / "resumable"
    with pytest.raises(_Killed):
        _run([AddOneStage("a", items=items)], batch_size=4,
             output_dir=resumable, progress=_kill_when("a", 2))
    checkpoint = StageCheckpoint.load(resumable / "stage_a.jsonl.checkpoint")
    assert checkpoint is not None and checkpoint.batches_done == 2

    stage = AddOneStage("a", items=items)
    _run([stage], batch_size=4, output_dir=resumable, resume=True)
    # Only the 3 unfinished batches ran; the durable prefix was loaded.
    assert len(stage.enriched_batches) == 3
    assert stage.final_records == [{"value": v + 1} for v in items]
    assert (resumable / "stage_a.jsonl").read_bytes() == \
        (clean_dir / "stage_a.jsonl").read_bytes()


def test_resume_skips_completed_stage_entirely(tmp_path):
    items = [1, 2, 3]
    _run([AddOneStage("a", items=items)], output_dir=tmp_path)
    stage = AddOneStage("a", items=items)
    runner = _run([stage], output_dir=tmp_path, resume=True)
    assert stage.enriched_batches == []
    assert stage.final_records == [{"value": v + 1} for v in items]
    assert runner.timings[0].resumed


def test_resume_drops_uncheckpointed_trailing_lines(tmp_path):
    items = list(range(8))
    with pytest.raises(_Killed):
        _run([AddOneStage("a", items=items)], batch_size=2,
             output_dir=tmp_path, progress=_kill_when("a", 1))
    sink = tmp_path / "stage_a.jsonl"
    # Simulate a flush that the kill cut off mid-line, past the checkpoint.
    with open(sink, "a", encoding="utf-8") as handle:
        handle.write('{"value": 99}\n{"val')
    stage = AddOneStage("a", items=items)
    _run([stage], batch_size=2, output_dir=tmp_path, resume=True)
    assert stage.final_records == [{"value": v + 1} for v in items]
    lines = sink.read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[1]) == {"value": 2}
    assert len(lines) == len(items)


def test_resume_refuses_damage_inside_checkpointed_prefix(tmp_path):
    items = list(range(8))
    _run([AddOneStage("a", items=items)], batch_size=2, output_dir=tmp_path)
    sink = tmp_path / "stage_a.jsonl"
    sink.write_text("garbage\n", encoding="utf-8")
    with pytest.raises(StageResumeError, match="damaged inside"):
        _run([AddOneStage("a", items=items)], batch_size=2,
             output_dir=tmp_path, resume=True)


def test_resume_refuses_lost_checkpoint_with_nonempty_sink(tmp_path):
    items = [1, 2]
    _run([AddOneStage("a", items=items)], output_dir=tmp_path)
    (tmp_path / "stage_a.jsonl.checkpoint").unlink()
    before = (tmp_path / "stage_a.jsonl").read_bytes()
    with pytest.raises(StageResumeError, match="no usable checkpoint"):
        _run([AddOneStage("a", items=items)], output_dir=tmp_path, resume=True)
    assert (tmp_path / "stage_a.jsonl").read_bytes() == before


def test_resume_refuses_changed_input(tmp_path):
    _run([AddOneStage("a", items=[1, 2, 3])], batch_size=1, output_dir=tmp_path)
    with pytest.raises(StageResumeError, match="input changed"):
        _run([AddOneStage("a", items=[1, 2, 4])], batch_size=1,
             output_dir=tmp_path, resume=True)


def test_resume_requires_output_dir():
    with pytest.raises(ValueError, match="resume requires"):
        PipelineRunner([AddOneStage("a", items=[])], resume=True)


def test_fresh_run_clears_stale_checkpoint(tmp_path):
    _run([AddOneStage("a", items=[1, 2])], output_dir=tmp_path)
    # A fresh (non-resume) run overwrites the sink and the old checkpoint
    # can never pair with the new sink.
    stage = AddOneStage("a", items=[9])
    _run([stage], output_dir=tmp_path)
    assert stage.final_records == [{"value": 10}]
    checkpoint = StageCheckpoint.load(tmp_path / "stage_a.jsonl.checkpoint")
    assert checkpoint is not None and checkpoint.records_written == 1
