"""Tests for HomoglyphPair and HomoglyphDatabase."""

import pytest

from repro.homoglyph.database import (
    SOURCE_SIMCHAR,
    SOURCE_UC,
    HomoglyphDatabase,
    HomoglyphPair,
)


def test_pair_normalises_order():
    pair = HomoglyphPair("о", "o")      # Cyrillic then Latin
    assert ord(pair.first) < ord(pair.second)
    assert pair.key == (ord("o"), 0x043E)
    assert pair == HomoglyphPair("o", "о")
    assert hash(pair) == hash(HomoglyphPair("o", "о"))


def test_pair_validation():
    with pytest.raises(ValueError):
        HomoglyphPair("a", "a")
    with pytest.raises(ValueError):
        HomoglyphPair("ab", "c")


def test_pair_other_and_idna_filter():
    pair = HomoglyphPair("o", "о", frozenset({SOURCE_UC}))
    assert pair.other("o") == "о"
    assert pair.other("о") == "o"
    with pytest.raises(ValueError):
        pair.other("x")
    assert pair.involves_idna_only()
    assert not HomoglyphPair("O", "0").involves_idna_only()


def test_pair_merge_keeps_min_delta_and_sources():
    first = HomoglyphPair("o", "о", frozenset({SOURCE_UC}), delta=None)
    second = HomoglyphPair("o", "о", frozenset({SOURCE_SIMCHAR}), delta=3)
    merged = first.merged_with(second)
    assert merged.sources == {SOURCE_UC, SOURCE_SIMCHAR}
    assert merged.delta == 3
    with pytest.raises(ValueError):
        first.merged_with(HomoglyphPair("a", "а"))


def test_pair_serialisation_roundtrip():
    pair = HomoglyphPair("o", "о", frozenset({SOURCE_UC}), delta=2)
    assert HomoglyphPair.from_dict(pair.as_dict()) == pair


def _sample_db():
    db = HomoglyphDatabase(name="test")
    db.add_pair("o", "о", source=SOURCE_UC)                       # Cyrillic o
    db.add_pair("o", "օ", source=SOURCE_SIMCHAR, delta=1)          # Armenian oh
    db.add_pair("e", "é", source=SOURCE_SIMCHAR, delta=2)
    db.add_pair("a", "а", source=SOURCE_UC)
    db.add_pair("a", "а", source=SOURCE_SIMCHAR, delta=0)          # duplicate, merged
    db.add_pair("工", "エ", source=SOURCE_SIMCHAR, delta=1)
    return db


def test_database_counts_and_lookup():
    db = _sample_db()
    assert db.pair_count == 5
    assert db.character_count == 9
    assert db.are_homoglyphs("o", "о")
    assert db.are_homoglyphs("о", "o")
    assert not db.are_homoglyphs("o", "e")
    assert not db.are_homoglyphs("o", "o")
    assert db.homoglyphs_of("o") == {"о", "օ"}
    assert db.homoglyphs_of("ж") == set()
    assert ("o", "о") in db
    assert db.get("а", "a").sources == {SOURCE_UC, SOURCE_SIMCHAR}
    assert db.get("x", "y") is None


def test_database_set_algebra():
    db = _sample_db()
    other = HomoglyphDatabase.from_pairs([
        HomoglyphPair("o", "о", frozenset({SOURCE_UC})),
        HomoglyphPair("s", "ѕ", frozenset({SOURCE_UC})),
    ], name="other")
    union = db.union(other)
    assert union.pair_count == 6
    intersection = db.intersection(other)
    assert intersection.pair_count == 1
    difference = db.difference(other)
    assert difference.pair_count == 4
    assert ("s", "ѕ") not in difference
    assert db.shared_characters(other) == {"o", "о"}


def test_restricted_to_idna_drops_disallowed_members():
    db = HomoglyphDatabase.from_pairs([
        HomoglyphPair("o", "о", frozenset({SOURCE_UC})),
        HomoglyphPair("O", "О", frozenset({SOURCE_UC})),     # uppercase: not PVALID
    ])
    restricted = db.restricted_to_idna()
    assert restricted.pair_count == 1
    assert restricted.are_homoglyphs("o", "о")


def test_latin_homoglyph_counts():
    db = _sample_db()
    counts = db.latin_homoglyph_counts()
    assert counts["o"] == 2
    assert counts["e"] == 1
    assert counts["a"] == 1
    assert counts["z"] == 0
    assert db.latin_homoglyph_total() == 4


def test_block_histogram_and_top_blocks():
    db = _sample_db()
    histogram = db.block_histogram()
    assert histogram["Cyrillic"] == 2
    assert histogram["Armenian"] == 1
    assert "Basic Latin" not in histogram
    top = db.top_blocks(2)
    assert len(top) == 2
    assert top[0][1] >= top[1][1]


def test_summary_keys():
    summary = _sample_db().summary()
    assert set(summary) == {"name", "characters", "pairs", "latin_homoglyphs", "top_blocks"}


def test_json_roundtrip(tmp_path):
    db = _sample_db()
    restored = HomoglyphDatabase.from_json(db.to_json())
    assert restored.pair_count == db.pair_count
    assert restored.are_homoglyphs("工", "エ")
    path = tmp_path / "db.json"
    db.save(path)
    loaded = HomoglyphDatabase.load(path)
    assert loaded.get("e", "é").delta == 2
    assert loaded.name == db.name


def test_iteration_is_deterministic():
    db = _sample_db()
    assert [p.key for p in db.pairs()] == sorted(p.key for p in db)
