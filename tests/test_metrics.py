"""Tests for the image similarity metrics (Δ, MSE, PSNR, SSIM)."""

import math

import numpy as np
import pytest

from repro.fonts.glyph import Glyph
from repro.metrics.pixel import (
    candidate_pairs_within,
    delta,
    delta_matrix,
    mse,
    nearest_neighbours,
    pack_bitmap_rows,
    pack_glyphs,
    packed_candidate_pairs,
    pairwise_deltas,
    popcount_rows,
    stack_glyphs,
)
from repro.metrics.psnr import psnr, psnr_from_delta
from repro.metrics.ssim import ssim


def _glyph(codepoint, pixels, size=16):
    return Glyph.blank(codepoint, size).with_pixels(pixels)


def test_delta_and_mse():
    a = _glyph(0x61, [(0, 0), (1, 1)])
    b = _glyph(0x62, [(0, 0), (2, 2)])
    assert delta(a, a) == 0
    assert delta(a, b) == 2
    assert mse(a, b) == pytest.approx(2 / 256)


def test_delta_accepts_arrays_and_checks_shapes():
    a = np.zeros((4, 4), dtype=np.uint8)
    b = np.ones((4, 4), dtype=np.uint8)
    assert delta(a, b) == 16
    with pytest.raises(ValueError):
        delta(a, np.zeros((5, 5), dtype=np.uint8))


def test_psnr_relationship_with_delta():
    # PSNR = 20 log10(N) - 10 log10(Δ)
    value = psnr_from_delta(4, 32)
    assert value == pytest.approx(20 * math.log10(32) - 10 * math.log10(4))
    assert psnr_from_delta(0, 32) == math.inf
    a = _glyph(0x61, [(0, 0)], size=32)
    b = _glyph(0x61, [(1, 1)], size=32)
    assert psnr(a, b) == pytest.approx(psnr_from_delta(2, 32))
    with pytest.raises(ValueError):
        psnr_from_delta(-1, 32)
    with pytest.raises(ValueError):
        psnr_from_delta(1, 0)


def test_ssim_bounds_and_identity():
    a = _glyph(0x61, [(i, i) for i in range(8)])
    b = _glyph(0x61, [(i, (i + 1) % 16) for i in range(8)])
    assert ssim(a, a) == pytest.approx(1.0)
    assert -1.0 <= ssim(a, b) < 1.0
    with pytest.raises(ValueError):
        ssim(a, Glyph.blank(0x61, 8))


def test_ssim_monotone_with_similarity():
    base = _glyph(0x61, [(i, j) for i in range(4, 12) for j in range(4, 12)])
    near = base.with_pixels([(0, 0)])
    far = base.inverted()
    assert ssim(base, near) > ssim(base, far)


def test_stack_glyphs_shape():
    glyphs = [_glyph(0x61 + i, [(i, i)]) for i in range(3)]
    stacked = stack_glyphs(glyphs)
    assert stacked.shape == (3, 256)
    assert stack_glyphs([]).shape == (0, 0)
    with pytest.raises(ValueError):
        stack_glyphs([glyphs[0], Glyph.blank(0x70, 8)])


def test_delta_matrix_and_pairwise_agree():
    glyphs = [_glyph(0x61 + i, [(i, j) for j in range(i + 1)]) for i in range(5)]
    matrix = delta_matrix(glyphs)
    assert matrix.shape == (5, 5)
    assert (matrix.diagonal() == 0).all()
    assert (matrix == matrix.T).all()
    for i, j, value in pairwise_deltas(glyphs):
        assert matrix[i, j] == value


def test_candidate_pairs_within_matches_bruteforce():
    glyphs = [_glyph(0x61 + i, [(i % 4, j) for j in range(3 + (i % 5))]) for i in range(12)]
    threshold = 4
    expected = {
        (i, j): value
        for i, j, value in pairwise_deltas(glyphs)
        if value <= threshold
    }
    found = {(i, j): value for i, j, value in candidate_pairs_within(glyphs, threshold)}
    assert found == expected
    with pytest.raises(ValueError):
        list(candidate_pairs_within(glyphs, -1))


def test_candidate_pairs_empty_input():
    assert list(candidate_pairs_within([], 4)) == []


def test_nearest_neighbours():
    glyphs = [_glyph(0x61 + i, [(0, j) for j in range(i + 1)]) for i in range(4)]
    neighbours = nearest_neighbours(glyphs, limit=2)
    assert set(neighbours) == {0, 1, 2, 3}
    # The closest neighbour of glyph 0 is glyph 1 (Δ = 1).
    assert neighbours[0][0] == (1, 1)


def test_pack_bitmap_rows_round_trip_popcount():
    rng = np.random.default_rng(7)
    flat = (rng.random((5, 32 * 32)) < 0.3).astype(np.uint8)
    packed = pack_bitmap_rows(flat)
    assert packed.dtype == np.uint64
    assert packed.shape == (5, 16)                   # 1024 bits / 64
    assert np.array_equal(popcount_rows(packed), flat.sum(axis=1))


def test_pack_bitmap_rows_pads_odd_widths():
    # 20 bits per row -> padded to one uint64 word; popcount unchanged.
    flat = np.ones((3, 20), dtype=np.uint8)
    packed = pack_bitmap_rows(flat)
    assert packed.shape == (3, 1)
    assert np.array_equal(popcount_rows(packed), [20, 20, 20])


def test_packed_xor_popcount_equals_delta():
    a = _glyph(0x61, [(0, 0), (1, 1), (5, 9)])
    b = _glyph(0x62, [(0, 0), (2, 2)])
    packed = pack_glyphs([a, b])
    xor_counts = popcount_rows(packed[0:1] ^ packed[1:2])
    assert int(xor_counts[0]) == delta(a, b)


def test_packed_candidate_pairs_matches_legacy_scan():
    rng = np.random.default_rng(11)
    glyphs = [
        Glyph(i, (rng.random((16, 16)) < 0.2).astype(np.uint8))
        for i in range(40)
    ]
    for threshold in (0, 3, 10):
        legacy = sorted(candidate_pairs_within(glyphs, threshold))
        assert packed_candidate_pairs(glyphs, threshold, jobs=1) == legacy
        assert packed_candidate_pairs(
            glyphs, threshold, jobs=2, min_parallel_size=1
        ) == legacy


def test_packed_candidate_pairs_parallel_under_spawn():
    # Spawn platforms used to silently degrade to a serial scan; the shard
    # initargs are plain numpy arrays, so a forced spawn context must run a
    # real pool and produce identical pairs.
    rng = np.random.default_rng(13)
    glyphs = [
        Glyph(i, (rng.random((16, 16)) < 0.2).astype(np.uint8))
        for i in range(30)
    ]
    want = packed_candidate_pairs(glyphs, 5, jobs=1)
    got = packed_candidate_pairs(
        glyphs, 5, jobs=2, min_parallel_size=1, start_method="spawn"
    )
    assert got == want


def test_packed_candidate_pairs_validation_and_edges():
    assert packed_candidate_pairs([], 4) == []
    assert packed_candidate_pairs([_glyph(0x61, [(0, 0)])], 4) == []
    with pytest.raises(ValueError):
        packed_candidate_pairs([], -1)
    with pytest.raises(ValueError):
        packed_candidate_pairs([], 4, jobs=0)
