"""Integration tests: the full measurement study over the small population.

These tests assert the *shape* of the paper's findings (who wins, rough
ratios), not absolute counts, because the synthetic population is three
orders of magnitude smaller than the real .com zone.
"""

from repro.web.hosting import SiteCategory


def test_dataset_table(study_results, population):
    table = study_results.dataset_table
    assert [row[0] for row in table] == ["zone file", "domainlists.io", "Total (union)"]
    assert table[2][2] == study_results.idn_count
    assert study_results.idn_count >= population.config.homograph_count * 0.8


def test_language_table_shape(study_results):
    languages = [row[0] for row in study_results.language_table]
    assert "Chinese" in languages[:3]
    fractions = [row[2] for row in study_results.language_table]
    assert all(0 <= f <= 100 for f in fractions)
    assert sum(fractions) <= 100.001
    # Chinese is the most common language, as in the paper's Table 7.
    assert study_results.language_table[0][0] == "Chinese"


def test_detection_counts_shape(study_results, population):
    counts = study_results.detection_counts
    # SimChar detects several times more homographs than UC, and the union is
    # at least as large as either (paper Table 8: 436 / 3110 / 3280).
    assert counts["SimChar"] > counts["UC"]
    assert counts["UC ∪ SimChar"] >= counts["SimChar"]
    assert counts["UC ∪ SimChar"] >= 0.8 * population.config.homograph_count
    # Detection should not invent homographs that were never injected
    # (a small surplus is possible when a homograph matches two references).
    assert counts["UC ∪ SimChar"] <= len(population.homographs) + 10


def test_detection_finds_injected_homographs(study_results, population):
    detected = set(study_results.detection_report.detected_idns())
    injected = {h.domain_ascii for h in population.homographs}
    recall = len(detected & injected) / len(injected)
    assert recall >= 0.8
    # Essentially everything detected was injected (no false positives on the
    # synthetic population).
    assert len(detected - injected) <= 2


def test_top_targets_match_paper_ranking(study_results):
    top = dict(study_results.top_targets)
    assert "myetherwallet.com" in top or "google.com" in top
    # The most-targeted domain has several homographs.
    assert study_results.top_targets[0][1] >= 3


def test_probe_and_portscan_funnel(study_results):
    detected = len(study_results.detection_report.detected_idns())
    assert study_results.ns_count <= detected
    assert study_results.no_a_count <= study_results.ns_count
    reachable = study_results.portscan.reachable_count
    addressed = study_results.ns_count - study_results.no_a_count
    assert reachable <= addressed
    assert reachable > 0
    assert study_results.portscan.http_count >= study_results.portscan.both_count
    assert study_results.portscan.https_count >= study_results.portscan.both_count


def test_popular_homographs_table(study_results):
    rows = study_results.popular_homographs
    assert rows, "expected at least one active popular homograph"
    resolutions = [row.resolutions for row in rows]
    assert resolutions == sorted(resolutions, reverse=True)
    top = rows[0]
    assert top.domain_unicode == "gmaıl.com"
    assert top.category == SiteCategory.PHISHING.value
    assert top.resolutions > 100_000


def test_classification_table(study_results):
    counts = study_results.classification.category_counts()
    total = sum(counts.values())
    assert total == study_results.portscan.reachable_count
    # Parking and for-sale together form a large share (the paper: 42%).
    business = counts.get(SiteCategory.PARKED.value, 0) + counts.get(SiteCategory.FOR_SALE.value, 0)
    assert business >= 0.2 * total


def test_redirect_intents(study_results):
    intents = study_results.redirect_intents
    if intents:
        assert intents.get("Brand protection", 0) >= intents.get("Malicious website", 0)


def test_blacklist_table_shape(study_results):
    table = study_results.blacklist_table
    assert set(table) == {"UC", "SimChar", "UC ∪ SimChar"}
    for feeds in table.values():
        assert set(feeds) == {"GSB", "Symantec", "hpHosts"}
        assert feeds["hpHosts"] >= feeds["GSB"] >= feeds["Symantec"]
    # More malicious homographs are caught when SimChar is part of the DB
    # (paper Table 14).
    assert table["UC ∪ SimChar"]["hpHosts"] >= table["UC"]["hpHosts"]


def test_detection_timing_recorded(study_results):
    timing = study_results.detection_timing
    assert timing is not None
    assert timing.total_seconds > 0
    assert timing.seconds_per_reference < 1.0


def test_summary_is_json_like(study_results):
    summary = study_results.summary()
    assert summary["idns"] == study_results.idn_count
    assert isinstance(summary["categories"], dict)
    assert isinstance(summary["blacklists"], dict)


def test_revert_analysis_maps_to_ascii(study_results):
    for homograph, original in study_results.reverted_outside_reference.items():
        assert homograph != original
        assert all(ord(ch) < 128 for ch in original)
