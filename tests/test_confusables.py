"""Tests for the UC confusables table and parser."""

from repro.homoglyph.confusables import (
    EMBEDDED_CONFUSABLES,
    ConfusablesTable,
    load_confusables,
    parse_confusables,
)


def test_parse_basic_lines():
    table = parse_confusables([
        "0430 ; 0061 ; MA # CYRILLIC SMALL A -> a",
        "FF41 ;\t0061 ; MA",
        "# a comment line",
        "",
    ])
    assert len(table) == 2
    assert table.prototype("а") == "a"
    assert table.prototype("ａ") == "a"
    assert table.prototype("x") == "x"


def test_parse_skips_malformed_and_multichar_sources():
    table = parse_confusables([
        "ZZZZ ; 0061 ; MA",               # bad hex
        "0430 0431 ; 0061 ; MA",          # multi-char source: skipped
        "0431",                            # missing fields
        "0432 ; D800 ; MA",               # surrogate target
        "0435 ; 0065 ; MA",               # valid
    ])
    assert len(table) == 1
    assert table.prototype("е") == "e"


def test_skeleton_and_confusability():
    table = load_confusables()
    assert table.skeleton("gооgle") == "google"        # Cyrillic о
    assert table.are_confusable("gооgle", "google")
    assert not table.are_confusable("googel", "google")
    assert table.skeleton("аррle") == "apple"          # Cyrillic а and р


def test_embedded_seed_loads():
    table = load_confusables()
    assert len(table) > 150
    # Every confusable named in the paper's examples is present.
    assert table.prototype("а") == "a"
    assert table.prototype("օ") == "o"
    assert table.prototype("ı") == "i"
    assert "а" in table
    assert len(table.characters()) > 200


def test_embedded_seed_contains_non_idna_entries():
    # UC covers far more than the IDNA-permitted repertoire (paper Table 1).
    table = load_confusables()
    db = table.to_database()
    idna_db = db.restricted_to_idna()
    assert idna_db.pair_count < db.pair_count


def test_to_database_pairs_and_shared_prototypes():
    table = parse_confusables([
        "0430 ; 0061 ; MA",
        "0251 ; 0061 ; MA",
        "04D5 ; 0061 0065 ; MA",          # multi-char target skipped for pairs
    ])
    db = table.to_database()
    assert db.are_homoglyphs("а", "a")
    assert db.are_homoglyphs("ɑ", "a")
    # Characters sharing a prototype are mutually confusable.
    assert db.are_homoglyphs("а", "ɑ")
    assert not any("ӕ" in (p.first, p.second) for p in db)


def test_load_confusables_from_file(tmp_path):
    path = tmp_path / "confusables.txt"
    path.write_text("0430 ; 0061 ; MA\n", encoding="utf-8")
    table = load_confusables(path, name="file-UC")
    assert table.name == "file-UC"
    assert len(table) == 1


def test_malformed_line_in_embedded_seed_is_ignored():
    # The embedded seed deliberately contains one malformed line to keep the
    # parser honest.
    assert "30ET" in EMBEDDED_CONFUSABLES
    table = load_confusables()
    assert all(len(source) == 1 for source in (s for s in table.characters() if s in table))


def test_table_len_and_contains():
    table = ConfusablesTable({"а": "a"})
    assert len(table) == 1
    assert "а" in table
    assert "a" not in table


# -- skipped-entry accounting (PR 7 regression: silent entry loss) -----------


def test_parse_counts_skipped_entries_by_reason():
    table = parse_confusables([
        "﻿0430 ; 0061 ; MA # BOM on the first line",   # kept (BOM stripped)
        "FB01 ; 0066 0069 ; MA # LATIN SMALL LIGATURE FI -> fi",  # kept: multi-char TARGET
        "0446 0443 ; 0063 ; MA # multi-char SOURCE",        # skipped: ligature source
        "30ET ; 0000 ; MA",                                  # skipped: bad hex
        "0431",                                              # skipped: missing fields
        "0432 ; D800 ; MA",                                  # skipped: surrogate
        "# comment only",
        "",
        "0435 ; 0065 ; MA\r",                                # kept (CRLF tolerated)
    ])
    assert len(table) == 3
    assert table.prototype("ﬁ") == "fi"
    assert table.skipped.malformed == 3
    assert table.skipped.multi_char_source == 1
    assert table.skipped.total == 4
    assert table.skipped.entry_lines == 7
    assert 0.0 < table.skipped.dropped_fraction < 1.0


def test_parse_crlf_and_bom_lines_are_kept():
    text = "﻿0430 ; 0061 ; MA\r\n0435 ; 0065 ; MA\r\n"
    table = parse_confusables(text.splitlines())
    assert len(table) == 2
    assert table.skipped.total == 0


def test_embedded_seed_reports_its_known_malformed_line():
    table = load_confusables()
    # The seed deliberately carries one malformed line ("30ET ; ...").
    assert table.skipped.malformed >= 1
    assert table.skipped.dropped_fraction < 0.10


def test_load_warns_when_file_drops_too_many_entries(tmp_path):
    import warnings

    bad = tmp_path / "confusables.txt"
    # 1 valid entry, 2 multi-char sources, 1 malformed: 75% dropped.
    bad.write_text(
        "0430 ; 0061 ; MA\n"
        "0446 0443 ; 0063 ; MA\n"
        "0446 0444 ; 0064 ; MA\n"
        "ZZZZ ; 0061 ; MA\n",
        encoding="utf-8",
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        table = load_confusables(bad)
    assert len(table) == 1
    assert any("dropped 3 of 4" in str(w.message) for w in caught)


def test_load_does_not_warn_on_healthy_file(tmp_path):
    import warnings

    good = tmp_path / "confusables.txt"
    good.write_text("0430 ; 0061 ; MA\n0435 ; 0065 ; MA\n", encoding="utf-8")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        table = load_confusables(good)
    assert len(table) == 2
    assert not caught
