"""Golden regression test for the full detection pipeline.

``tests/data/golden_detection.json`` pins a corpus of reference/candidate
domains, a hand-written homoglyph database, and the exact
:class:`DetectionReport` output (every detection with its substitutions and
sources, the summary, and the skip/IDN counters).  Any change to the
matcher, the skeleton index, case folding, or the report layer that alters
results — ordering aside — fails this test instead of silently shifting
the measurement numbers.

To regenerate after an *intentional* change::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_detection.py

then review the fixture diff like any other code change.
"""

import json
import os
from pathlib import Path

from repro.detection.shamfinder import ShamFinder
from repro.homoglyph.database import HomoglyphDatabase, HomoglyphPair

FIXTURE = Path(__file__).parent / "data" / "golden_detection.json"


def _finder(payload) -> ShamFinder:
    database = HomoglyphDatabase.from_pairs(
        (HomoglyphPair.from_dict(entry) for entry in payload["pairs"]),
        name="golden",
    )
    return ShamFinder(database)


def _detection_key(entry: dict) -> tuple:
    return (
        entry["idn"],
        entry["reference"],
        tuple((s["position"], s["candidate"]) for s in entry["substitutions"]),
    )


def _actual(payload) -> dict:
    finder = _finder(payload)
    report, timing = finder.detect_with_timing(payload["candidates"], payload["references"])
    # json round-trip normalises tuples to lists so the comparison is
    # structural, not type-sensitive.
    return json.loads(json.dumps({
        "detections": sorted(report.as_dicts(), key=_detection_key),
        "summary": report.summary(),
        "counters": {
            "reference_count": timing.reference_count,
            "idn_count": timing.idn_count,
            "skipped_count": timing.skipped_count,
        },
    }, ensure_ascii=False, sort_keys=True))


def test_golden_detection_report():
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    actual = _actual(payload)

    if os.environ.get("GOLDEN_REGEN"):
        payload["expected"] = actual
        FIXTURE.write_text(
            json.dumps(payload, ensure_ascii=False, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    expected = json.loads(FIXTURE.read_text(encoding="utf-8"))["expected"]
    assert actual["counters"] == expected["counters"]
    assert actual["summary"] == expected["summary"]
    assert actual["detections"] == expected["detections"]


def test_golden_corpus_exercises_the_interesting_cases():
    """Guard the fixture itself: the corpus must keep covering the edge
    cases the golden diff is supposed to pin down."""
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    expected = payload["expected"]
    detections = expected["detections"]

    assert expected["counters"]["skipped_count"] >= 1          # unparsable junk
    assert any(len(d["substitutions"]) >= 2 for d in detections)
    idns = [d["idn"] for d in detections]
    assert len(idns) > len(set(idns))                          # one IDN, several references
    sources = {s for d in detections for s in d["sources"]}
    assert {"UC", "SimChar"} <= sources                        # both databases attributed
    # The chained class (o~о~ӧ) must NOT let ӧ match plain "google.com":
    # (o, ӧ) is not a database pair even though both share a skeleton class,
    # so the exact re-check has to reject the bucket hit.  (It legitimately
    # matches the IDN reference gооgle.com, where ӧ lines up against о.)
    assert not any(
        d["idn"].startswith("xn--gogle-isf") and d["reference"] == "google.com"
        for d in detections
    )
    assert any(
        d["idn"].startswith("xn--gogle-isf") and d["reference"] != "google.com"
        for d in detections
    )


def test_golden_detections_identical_through_batch_kernel():
    """Satellite of the vectorized kernel: the golden corpus (9 candidates,
    above ``_MIN_KERNEL_BATCH``) must produce byte-identical detections with
    the batch kernel on and off, both matching the pinned fixture."""
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    finder = _finder(payload)
    prepared = finder.prepare_references(payload["references"])
    batch, batch_count, batch_skipped = finder.detect_prepared(
        payload["candidates"], prepared, batch_kernel=True)
    scalar, scalar_count, scalar_skipped = finder.detect_prepared(
        payload["candidates"], prepared, batch_kernel=False)
    assert (batch_count, batch_skipped) == (scalar_count, scalar_skipped)
    assert [d.as_dict() for d in batch] == [d.as_dict() for d in scalar]

    expected = payload["expected"]["detections"]
    actual = json.loads(json.dumps(
        sorted((d.as_dict() for d in batch), key=_detection_key),
        ensure_ascii=False, sort_keys=True))
    assert actual == expected
