"""Tests for the SimChar builder (Steps I-III)."""

import pytest

from repro.homoglyph.database import SOURCE_SIMCHAR
from repro.homoglyph.simchar import (
    DEFAULT_SPARSE_MIN_PIXELS,
    DEFAULT_THRESHOLD,
    SimCharBuilder,
)


def test_default_parameters_match_paper():
    assert DEFAULT_THRESHOLD == 4
    assert DEFAULT_SPARSE_MIN_PIXELS == 10
    builder = SimCharBuilder()
    assert builder.threshold == 4
    assert builder.sparse_min_pixels == 10


def test_parameter_validation():
    with pytest.raises(ValueError):
        SimCharBuilder(threshold=-1)
    with pytest.raises(ValueError):
        SimCharBuilder(sparse_min_pixels=-1)


def test_repertoire_is_idna_only(fast_builder):
    repertoire = fast_builder.repertoire()
    assert ord("a") in repertoire
    assert ord("A") not in repertoire           # uppercase is not PVALID
    assert 0x0430 in repertoire
    assert 0x002E not in repertoire             # '.' is not PVALID


def test_explicit_repertoire_is_used(font):
    builder = SimCharBuilder(font, repertoire=[ord("o"), 0x043E, ord("b")])
    assert sorted(builder.repertoire()) == sorted([ord("o"), 0x043E, ord("b")])
    result = builder.build()
    assert result.database.are_homoglyphs("o", "о")
    assert not result.database.are_homoglyphs("o", "b")


def test_step_render_skips_uncovered(font):
    builder = SimCharBuilder(font, repertoire=[ord("a"), 0x0378])
    glyphs = builder.step_render(builder.repertoire())
    assert set(glyphs) == {ord("a")}


def test_step_pairwise_and_threshold(font):
    builder = SimCharBuilder(font, repertoire=[ord("e"), ord("é"), ord("b")], threshold=4)
    glyphs = builder.step_render(builder.repertoire())
    pairs = builder.step_pairwise(glyphs)
    keys = {(a, b) for a, b, _ in pairs}
    assert (ord("e"), ord("é")) in keys
    assert all(delta <= 4 for _a, _b, delta in pairs)
    strict = SimCharBuilder(font, repertoire=[ord("e"), ord("é")], threshold=1)
    assert strict.step_pairwise(strict.step_render(strict.repertoire())) == []


def test_step_filter_sparse_removes_combining_marks(font):
    builder = SimCharBuilder(font, repertoire=[0x0300, 0x0301, ord("e"), ord("é")])
    glyphs = builder.step_render(builder.repertoire())
    pairs = builder.step_pairwise(glyphs)
    kept, sparse = builder.step_filter_sparse(pairs, glyphs)
    assert 0x0300 in sparse and 0x0301 in sparse
    assert all(a not in sparse and b not in sparse for a, b, _ in kept)


def test_build_result_statistics(simchar_result):
    result = simchar_result
    assert result.rendered_count <= result.repertoire_size
    assert result.database.pair_count <= result.raw_pair_count
    assert result.database.pair_count > 0
    assert result.sparse_character_count > 0
    assert result.threshold == 4
    timings = result.timings
    assert timings.total_seconds == pytest.approx(
        timings.render_seconds + timings.pairwise_seconds + timings.sparse_filter_seconds
    )
    rows = timings.as_table_rows()
    assert [label for label, _ in rows] == [
        "Generating images",
        "Computing Δ for all the pairs",
        "Eliminating sparse characters",
    ]
    summary = result.summary()
    assert summary["pairs"] == result.database.pair_count


def test_built_pairs_are_tagged_simchar(simchar_db):
    assert all(SOURCE_SIMCHAR in pair.sources for pair in simchar_db)
    assert all(pair.delta is not None and pair.delta <= 4 for pair in simchar_db)


def test_simchar_finds_cross_script_and_accent_pairs(simchar_db):
    assert simchar_db.are_homoglyphs("o", "о")     # Cyrillic
    assert simchar_db.are_homoglyphs("o", "ο")     # Greek
    assert simchar_db.are_homoglyphs("e", "é")     # accent
    assert simchar_db.are_homoglyphs("a", "а")
    assert not simchar_db.are_homoglyphs("a", "b")


def test_latin_letter_o_is_among_most_vulnerable(simchar_db):
    # On the fast (reduced-block) fixture 'o' may tie with other vowels; on
    # the full default repertoire it is the clear maximum (paper Table 3).
    counts = simchar_db.latin_homoglyph_counts()
    assert counts["o"] >= 10
    assert counts["o"] >= sorted(counts.values())[-3]


def test_homoglyphs_at_delta(fast_builder):
    by_delta = fast_builder.homoglyphs_at_delta("e", range(0, 5))
    assert set(by_delta) == set(range(0, 5))
    assert any(by_delta.values()), "expected at least one candidate at some Δ"
    # Characters at Δ=0 must render identically to 'e'.
    for char in by_delta[0]:
        font = fast_builder.font
        assert font.render(ord(char)).delta(font.render(ord("e"))) == 0
    with pytest.raises(KeyError):
        fast_builder.homoglyphs_at_delta(chr(0x0378), [0, 1])
    assert fast_builder.homoglyphs_at_delta("e", []) == {}


def test_threshold_ablation_monotone(font):
    repertoire = [ord("o"), 0x043E, 0x0585, ord("ö"), ord("ộ"), ord("b"), ord("e"), ord("é")]
    small = SimCharBuilder(font, repertoire=repertoire, threshold=1).build()
    large = SimCharBuilder(font, repertoire=repertoire, threshold=4).build()
    assert small.database.pair_count <= large.database.pair_count
