"""Tests for the GNU Unifont .hex parser/writer."""

import numpy as np
import pytest

from repro.fonts.hexfont import HexFont, format_hex_line, parse_hex_line

# A real Unifont-style glyph: 16x8 cell for U+0041 'A' (plausible shape).
_NARROW_LINE = "0041:0000001818242442427E424242420000"
# 16x16 wide cell (64 hex digits).
_WIDE_LINE = "4E00:" + "0000" * 2 + "7FFE" + "0000" * 13


def test_parse_narrow_line():
    codepoint, bitmap = parse_hex_line(_NARROW_LINE)
    assert codepoint == 0x41
    assert bitmap.shape == (16, 8)
    assert bitmap.sum() > 0


def test_parse_wide_line():
    codepoint, bitmap = parse_hex_line(_WIDE_LINE)
    assert codepoint == 0x4E00
    assert bitmap.shape == (16, 16)
    assert bitmap.sum() == 14  # 7FFE has 14 bits set


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_hex_line("not a hex line")
    with pytest.raises(ValueError):
        parse_hex_line("0041:ZZZZ")
    with pytest.raises(ValueError):
        parse_hex_line("0041:00")          # bad length
    with pytest.raises(ValueError):
        parse_hex_line("# comment")


def test_format_roundtrip():
    codepoint, bitmap = parse_hex_line(_NARROW_LINE)
    assert format_hex_line(codepoint, bitmap) == _NARROW_LINE
    codepoint, bitmap = parse_hex_line(_WIDE_LINE)
    assert format_hex_line(codepoint, bitmap) == _WIDE_LINE


def test_font_from_lines_and_render():
    font = HexFont.from_lines([_NARROW_LINE, _WIDE_LINE, "", "# comment"])
    assert len(font) == 2
    assert font.covers(0x41)
    assert 0x4E00 in font
    glyph = font.render(0x41)
    assert glyph.size == font.glyph_size == 32
    assert glyph.pixel_count > 0
    with pytest.raises(KeyError):
        font.render(0x42)


def test_render_scales_ink_proportionally():
    font = HexFont.from_lines([_NARROW_LINE])
    _cp, cell = parse_hex_line(_NARROW_LINE)
    glyph = font.render(0x41)
    # 2x scaling quadruples each ink pixel.
    assert glyph.pixel_count == int(cell.sum()) * 4


def test_save_and_load_roundtrip(tmp_path):
    font = HexFont.from_lines([_NARROW_LINE, _WIDE_LINE], name="mini")
    path = tmp_path / "mini.hex"
    font.save(path)
    loaded = HexFont.from_file(path)
    assert loaded.name == "mini"
    assert sorted(loaded.codepoints()) == sorted(font.codepoints())
    assert loaded.render(0x41) == font.render(0x41)


def test_add_cell_and_from_glyphs():
    cell = np.zeros((16, 8), dtype=np.uint8)
    cell[4:10, 2:6] = 1
    font = HexFont.from_glyphs({0x62: cell})
    assert font.covers(0x62)
    font.add_cell(0x63, cell)
    assert font.covers(0x63)
    with pytest.raises(ValueError):
        font.add_cell(0x64, np.zeros((8, 8), dtype=np.uint8))


def test_render_text():
    font = HexFont.from_lines([_NARROW_LINE])
    glyphs = font.render_text("A")
    assert len(glyphs) == 1 and glyphs[0].codepoint == 0x41
