"""Properties of the fold-safety taint lattice and its fixpoint engine.

The dataflow module's correctness argument is the classic monotone
framework one: a finite lattice (CLEAN ⊑ UNKNOWN ⊑ TAINTED), a join
that is a least upper bound, and transfer functions that only move
facts up — together those guarantee Kildall's worklist terminates at
the least fixpoint.  Rather than trusting the argument, this suite
drives each leg of it with hypothesis:

* join is commutative, associative, idempotent, and monotone (so the
  pointwise ``join_states`` is too);
* ``worklist_fixpoint`` terminates on *randomly generated* control-flow
  graphs — cycles, unreachable nodes, self-loops included — under
  randomly composed monotone transfer functions, and the result really
  is a fixpoint of the dataflow equations;
* the AST interpreter (``analyse_module``) classifies the concrete
  shapes the fold-safety rule depends on: renames, loops, tuple
  unpacks, f-strings, comprehensions, and the seed sources.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.dataflow import (
    DEFAULT_SETTINGS,
    Taint,
    analyse_module,
    identifier_words,
    join,
    join_all,
    join_states,
    states_equal,
    worklist_fixpoint,
)

# -- strategies -------------------------------------------------------------

VARIABLES = ("a", "b", "c")

taints = st.sampled_from(list(Taint))
states = st.dictionaries(st.sampled_from(VARIABLES), taints,
                         max_size=len(VARIABLES))

#: A tiny monotone "program" per CFG node: seed a variable up to a
#: lattice point, or fold one variable into another.  Both operations
#: are joins, hence monotone by construction.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("seed"), st.sampled_from(VARIABLES), taints),
        st.tuples(st.just("copy"), st.sampled_from(VARIABLES),
                  st.sampled_from(VARIABLES)),
    ),
    max_size=4,
)


def apply_operations(program, state):
    result = dict(state)
    for operation in program:
        if operation[0] == "seed":
            _, variable, taint = operation
            result[variable] = join(result.get(variable, Taint.CLEAN), taint)
        else:
            _, source, target = operation
            result[target] = join(result.get(target, Taint.CLEAN),
                                  result.get(source, Taint.CLEAN))
    return result


@st.composite
def control_flow_graphs(draw):
    """Random successor maps (cycles and self-loops allowed) plus one
    random monotone program per node."""
    size = draw(st.integers(min_value=1, max_value=6))
    successors = {
        node: draw(st.lists(st.integers(0, size - 1), max_size=3,
                            unique=True))
        for node in range(size)
    }
    programs = {node: draw(operations) for node in range(size)}
    return successors, programs


def states_leq(lower, upper):
    """lower ⊑ upper in the pointwise order."""
    return states_equal(join_states(lower, upper), upper)


# -- the lattice ------------------------------------------------------------

@given(taints, taints)
def test_join_is_commutative(x, y):
    assert join(x, y) == join(y, x)


@given(taints, taints, taints)
def test_join_is_associative(x, y, z):
    assert join(join(x, y), z) == join(x, join(y, z))


@given(taints)
def test_join_is_idempotent(x):
    assert join(x, x) == x


@given(taints)
def test_clean_is_bottom_and_tainted_is_top(x):
    assert join(x, Taint.CLEAN) == x
    assert join(x, Taint.TAINTED) == Taint.TAINTED


@given(st.lists(taints))
def test_join_all_is_an_upper_bound(values):
    bound = join_all(values)
    assert all(value <= bound for value in values)
    assert bound in list(values) + [Taint.CLEAN]


@given(states, states)
def test_join_states_is_a_least_upper_bound(first, second):
    joined = join_states(first, second)
    assert states_leq(first, joined)
    assert states_leq(second, joined)
    # Least: no strictly smaller upper bound exists pointwise.
    for name in joined:
        assert joined[name] == join(first.get(name, Taint.CLEAN),
                                    second.get(name, Taint.CLEAN))


@given(states, states)
def test_join_states_is_commutative_modulo_clean(first, second):
    assert states_equal(join_states(first, second),
                        join_states(second, first))


@given(states)
def test_states_equal_ignores_explicit_clean_entries(state):
    padded = dict(state)
    padded["z"] = Taint.CLEAN
    assert states_equal(state, padded)


@given(operations, states, states)
def test_transfer_functions_are_monotone(program, state, extra):
    """s ⊑ t implies f(s) ⊑ f(t) for every generated program — the
    property the worklist's termination argument leans on."""
    bigger = join_states(state, extra)
    assert states_leq(apply_operations(program, state),
                      apply_operations(program, bigger))


# -- the worklist -----------------------------------------------------------

@settings(deadline=None, max_examples=200)
@given(control_flow_graphs(), states)
def test_worklist_terminates_and_reaches_a_fixpoint(graph, entry_state):
    """On arbitrary graphs (cycles included) the worklist halts, and the
    out-states satisfy the dataflow equations: every node's out-state is
    its transfer applied to the join of its predecessors' out-states."""
    successors, programs = graph
    transfer = {
        node: (lambda state, program=programs[node]:
               apply_operations(program, state))
        for node in successors
    }
    out_states = worklist_fixpoint(successors, transfer, entry=0,
                                   entry_state=entry_state)
    assert set(out_states) == set(successors)
    for node in successors:
        incoming = dict(entry_state) if node == 0 else {}
        for predecessor, targets in successors.items():
            if node in targets:
                incoming = join_states(incoming, out_states[predecessor])
        assert states_equal(out_states[node],
                            apply_operations(programs[node], incoming))


def test_worklist_propagates_around_a_cycle():
    """A fact seeded at the entry of a 3-node loop reaches every node."""
    successors = {0: [1], 1: [2], 2: [1]}
    transfer = {
        0: lambda s: join_states(s, {"x": Taint.TAINTED}),
        1: lambda s: dict(s),
        2: lambda s: dict(s),
    }
    out = worklist_fixpoint(successors, transfer, entry=0, entry_state={})
    assert out[0]["x"] == Taint.TAINTED
    assert out[1]["x"] == Taint.TAINTED
    assert out[2]["x"] == Taint.TAINTED


# -- the AST interpreter ----------------------------------------------------

def sink_taints(source):
    """Receiver taint of every ``.lower()``-family call in *source*."""
    module = analyse_module(ast.parse(source))
    return sorted(observation.taint for observation in module.sinks.values())


def test_rename_does_not_launder_taint():
    # The exact escape fold-safety v1 missed: assign the label to an
    # innocuously named local first.
    assert sink_taints(
        "def f(candidate_label):\n"
        "    s = candidate_label\n"
        "    return s.lower()\n"
    ) == [Taint.TAINTED]


def test_non_label_parameter_stays_unknown():
    assert sink_taints(
        "def f(flag):\n"
        "    return flag.lower()\n"
    ) == [Taint.UNKNOWN]


def test_constant_receiver_is_clean():
    assert sink_taints('x = "ASCII".lower()\n') == [Taint.CLEAN]


def test_seed_callee_result_is_tainted():
    assert sink_taints(
        "def f(raw):\n"
        "    piece = to_unicode_label(raw)\n"
        "    return piece.lower()\n"
    ) == [Taint.TAINTED]


def test_label_annotation_seeds_taint():
    assert sink_taints(
        "def f(value: Label):\n"
        "    return value.lower()\n"
    ) == [Taint.TAINTED]


def test_loop_accumulation_reaches_fixpoint():
    # acc is CLEAN before the loop and only becomes tainted through the
    # loop-carried assignment: requires iterating the body to a fixpoint.
    assert sink_taints(
        "def f(parts, label):\n"
        "    acc = ''\n"
        "    for _ in parts:\n"
        "        acc = acc + label\n"
        "    return acc.lower()\n"
    ) == [Taint.TAINTED]


def test_tuple_unpack_tracks_elements_separately():
    assert sink_taints(
        "def f(label):\n"
        "    tainted, clean = label, 'x'\n"
        "    a = tainted.lower()\n"
        "    b = clean.lower()\n"
        "    return a, b\n"
    ) == [Taint.CLEAN, Taint.TAINTED]


def test_fstring_joins_its_parts():
    assert sink_taints(
        "def f(label):\n"
        "    banner = f'<{label}>'\n"
        "    return banner.lower()\n"
    ) == [Taint.TAINTED]


def test_comprehension_element_carries_container_taint():
    assert sink_taints(
        "def f(labels):\n"
        "    return [item.lower() for item in labels]\n"
    ) == [Taint.TAINTED]


def test_propagating_string_methods_preserve_taint():
    assert sink_taints(
        "def f(label):\n"
        "    return label.strip().lower()\n"
    ) == [Taint.TAINTED]


def test_branches_join_to_the_worst_case():
    assert sink_taints(
        "def f(label, fallback, want):\n"
        "    if want:\n"
        "        value = label\n"
        "    else:\n"
        "        value = 'default'\n"
        "    return value.lower()\n"
    ) == [Taint.TAINTED]


def test_identifier_words_split_snake_and_camel_case():
    assert identifier_words("candidate_label") == {"candidate", "label"}
    assert identifier_words("uLabelView") == {"u", "label", "view"}


def test_default_seed_words_are_narrow():
    # Hostname/owner normalization must not be seeded: that breadth is
    # exactly what forced fold-safety v1's 41 pragmas.
    assert not DEFAULT_SETTINGS.is_seed_name("hostname")
    assert not DEFAULT_SETTINGS.is_seed_name("owner_name")
    assert DEFAULT_SETTINGS.is_seed_name("ulabel")
    assert DEFAULT_SETTINGS.is_seed_name("candidate_label")
