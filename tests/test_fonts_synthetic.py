"""Tests for the deterministic synthetic font."""

import pytest

from repro.fonts.equivalences import SHAPE_EQUIVALENCES, equivalence_groups, shape_equivalence
from repro.fonts.synthetic import SyntheticFont
from repro.metrics.pixel import delta


@pytest.fixture(scope="module")
def synth():
    return SyntheticFont()


def test_rendering_is_deterministic(synth):
    first = synth.render(ord("a"))
    second = SyntheticFont().render(ord("a"))
    assert first == second


def test_coverage_profile(synth):
    assert synth.covers(ord("a"))
    assert synth.covers(0x4E00)
    assert synth.covers(0x1F600)          # SMP emoticon (assigned, plane 1)
    assert not synth.covers(0xD800)       # surrogate
    assert not synth.covers(0xE000)       # private use
    assert not synth.covers(0x0378)       # unassigned
    assert not synth.covers(0x20000)      # plane 2 outside default coverage
    assert not synth.covers(0x110000)
    with pytest.raises(KeyError):
        synth.render(0x0378)


def test_identical_shape_cross_script(synth):
    # Cyrillic/Greek о render pixel-identically to Latin o (Δ = 0).
    latin_o = synth.render(ord("o"))
    assert delta(latin_o, synth.render(0x043E)) == 0
    assert delta(latin_o, synth.render(0x03BF)) == 0
    # Armenian oh is a near-identical variant (0 < Δ ≤ 4).
    assert 0 < delta(latin_o, synth.render(0x0585)) <= 4


def test_accented_variants_stay_close(synth):
    base = synth.render(ord("e"))
    assert delta(base, synth.render(ord("é"))) == 2
    assert delta(base, synth.render(ord("è"))) == 2
    assert 2 <= delta(synth.render(ord("é")), synth.render(ord("è"))) <= 4


def test_multi_mark_characters_accumulate_delta(synth):
    base = synth.render(ord("o"))
    assert delta(base, synth.render(0x1ED9)) == 4  # ộ = o + circumflex + dot below


def test_unrelated_letters_are_far_apart(synth):
    assert delta(synth.render(ord("a")), synth.render(ord("b"))) > 20
    assert delta(synth.render(ord("o")), synth.render(0x4E00)) > 20


def test_sparse_characters_have_little_ink(synth):
    assert synth.render(0x0301).pixel_count < 10      # combining acute
    assert synth.render(0x02C7).pixel_count < 10      # caron (modifier letter)
    assert synth.render(ord("a")).pixel_count >= 10


def test_cjk_density_higher_than_latin(synth):
    assert synth.render(0x4E2D).pixel_count > synth.render(ord("m")).pixel_count


def test_hangul_same_lead_vowel_close_same_lead_different_vowel_far(synth):
    base = synth.render(0xAC00)            # 가 (L=ᄀ, V=ᅡ)
    with_final = synth.render(0xAC01)      # 각 (adds final ᆨ)
    other_vowel = synth.render(0xAC70)     # 거 (different vowel)
    assert delta(base, with_final) <= 4
    assert delta(base, other_vowel) > 4


def test_paper_figure5_pairs_are_close(synth):
    pairs = [(0x10E7, ord("y")), (0x0253, ord("b")), (0x0430, ord("a")),
             (0x91CC, 0x573C), (0x0B32, 0x0B33)]
    for first, second in pairs:
        assert delta(synth.render(first), synth.render(second)) <= 4, (hex(first), hex(second))


def test_shape_spec_structure(synth):
    spec = synth.shape_spec(ord("é"))
    assert spec.shape_key == "e"
    assert len(spec.marks) == 1
    assert spec.total_delta_from_base == 2
    spec_equiv = synth.shape_spec(0x0430)
    assert spec_equiv.shape_key == "a"
    assert spec_equiv.extra_delta == 0


def test_equivalence_table_sanity():
    assert shape_equivalence(0x043E) == ("o", 0)
    assert shape_equivalence(ord("a")) is None
    groups = equivalence_groups()
    assert len(groups["o"]) >= 5
    for members in groups.values():
        assert members == sorted(members)
    # every curated extra delta stays small enough to be meaningful
    assert all(0 <= extra <= 8 for _key, extra in SHAPE_EQUIVALENCES.values())


def test_render_many_and_text(synth):
    rendered = synth.render_many([ord("a"), 0x0378, ord("b")])
    assert set(rendered) == {ord("a"), ord("b")}
    glyphs = synth.render_text("ab")
    assert [g.codepoint for g in glyphs] == [ord("a"), ord("b")]


def test_glyph_size_validation():
    with pytest.raises(ValueError):
        SyntheticFont(glyph_size=8)
