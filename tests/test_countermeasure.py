"""Tests for browser display policies and the warning UI (Figure 12)."""

from repro.countermeasure.browser_policy import DisplayDecision, DisplayPolicy, MixedScriptPolicy
from repro.countermeasure.warning import WarningGenerator
from repro.idn.domain import DomainName


def test_legacy_policy_always_unicode():
    policy = DisplayPolicy()
    assert policy.decide("xn--ggle-55da.com") is DisplayDecision.UNICODE
    assert policy.display("xn--ggle-55da.com") == "gооgle.com"


def test_mixed_script_policy_flags_cross_script_mix():
    policy = MixedScriptPolicy()
    # Cyrillic о mixed into Latin: shown as Punycode.
    assert policy.decide("xn--ggle-55da.com") is DisplayDecision.PUNYCODE
    assert policy.display("xn--ggle-55da.com") == "xn--ggle-55da.com"
    assert policy.catches("xn--ggle-55da.com")


def test_mixed_script_policy_misses_single_script_homographs():
    policy = MixedScriptPolicy()
    # facébook is pure Latin: the browser shows Unicode, the attack survives
    # (the paper's criticism of the countermeasure).
    assert policy.decide("xn--facbook-dya.com") is DisplayDecision.UNICODE
    assert policy.display("xn--facbook-dya.com") == "facébook.com"
    # Pure-Cyrillic and pure-Han labels are also displayed as Unicode.
    assert policy.decide(DomainName("пример.com")) is DisplayDecision.UNICODE
    assert not policy.catches("xn--tsta8290bfzd.com")


def test_mixed_script_policy_allows_latin_cjk_combination():
    policy = MixedScriptPolicy()
    name = DomainName("東京abc.com")
    assert policy.decide(name) is DisplayDecision.UNICODE


def test_ascii_domains_never_flagged():
    policy = MixedScriptPolicy()
    assert policy.decide("google.com") is DisplayDecision.UNICODE


def _generator(union_db):
    return WarningGenerator(union_db, ["google.com", "facebook.com", "amazon.com"])


def test_warning_generated_for_reference_homograph(union_db):
    warning = _generator(union_db).warning_for("xn--ggle-55da.com")
    assert warning is not None
    assert warning.accessed_domain == "gооgle.com"
    assert warning.suspected_original == "google.com"
    assert "Did you mean google.com?" in warning.message
    assert warning.title.startswith("WARNING")
    assert len(warning.annotations) == 2
    annotation = warning.annotations[0]
    assert annotation.original_char == "o"
    assert "Cyrillic" in annotation.suspicious_name
    assert warning.choices[0] == "Go to google.com"
    text = warning.render_text()
    assert "google.com" in text and "→" in text


def test_warning_uses_reverter_for_unlisted_targets(union_db):
    # allstate.com is not in the generator's reference list, but the reverter
    # can still recover it from its homograph.
    generator = _generator(union_db)
    warning = generator.warning_for(DomainName("аllstate.com"))
    assert warning is not None
    assert warning.suspected_original == "allstate.com"


def test_no_warning_for_ascii_or_benign_idn(union_db):
    generator = _generator(union_db)
    assert generator.warning_for("google.com") is None
    # A Chinese IDN has no ASCII homoglyph mapping and no reference match.
    assert generator.warning_for("xn--tsta8290bfzd.com") is None


def test_warning_generator_skips_invalid_reference_entries(union_db):
    generator = WarningGenerator(union_db, ["google.com", "not a domain!"])
    assert generator.warning_for("xn--ggle-55da.com") is not None
