"""Tests for the reference (Alexa-like) domain list."""

from repro.measurement.alexa import HEAD_DOMAINS, ReferenceList


def test_head_domains_include_paper_targets():
    for domain in ("google.com", "amazon.com", "facebook.com", "gmail.com",
                   "myetherwallet.com", "allstate.com", "binance.com"):
        assert domain in HEAD_DOMAINS


def test_top_sites_generation_deterministic():
    first = ReferenceList.top_sites(500, seed=1)
    second = ReferenceList.top_sites(500, seed=1)
    assert first.domains() == second.domains()
    different = ReferenceList.top_sites(500, seed=2)
    assert first.domains() != different.domains()


def test_requested_size_and_uniqueness():
    reference = ReferenceList.top_sites(1234)
    domains = reference.domains()
    assert len(domains) == 1234
    assert len(set(domains)) == 1234
    assert all(domain.endswith(".com") for domain in domains)


def test_ranking_and_lookup():
    reference = ReferenceList.top_sites(100)
    assert reference.rank_of("google.com") == 1
    assert reference.rank_of("notinlist.com") is None
    assert "google.com" in reference
    assert len(reference) == 100
    entries = list(reference)
    assert entries[0].rank == 1 and entries[0].label == "google"


def test_top_slice():
    reference = ReferenceList.top_sites(100)
    top10 = reference.top(10)
    assert len(top10) == 10
    assert top10.domains() == reference.domains()[:10]


def test_popularity_weights_decrease_with_rank():
    reference = ReferenceList.top_sites(50)
    weights = reference.popularity_weights()
    domains = reference.domains()
    assert weights[domains[0]] > weights[domains[10]] > weights[domains[-1]]


def test_duplicates_are_removed_on_construction():
    reference = ReferenceList(["a.com", "A.com", "b.com"])
    assert reference.domains() == ["a.com", "b.com"]
    assert reference.rank_of("b.com") == 2


def test_labels_strip_tld():
    reference = ReferenceList(["google.com", "amazon.com"])
    assert reference.labels() == ["google", "amazon"]
