"""Tests for the Glyph bitmap class."""

import numpy as np
import pytest

from repro.fonts.glyph import GLYPH_SIZE, Glyph


def _checkerboard(size=8):
    bitmap = np.indices((size, size)).sum(axis=0) % 2
    return Glyph(0x61, bitmap.astype(np.uint8))


def test_glyph_validation():
    with pytest.raises(ValueError):
        Glyph(0x61, np.zeros((4, 8), dtype=np.uint8))       # not square
    with pytest.raises(ValueError):
        Glyph(0x61, np.full((4, 4), 2, dtype=np.uint8))     # not binary


def test_glyph_is_immutable():
    glyph = Glyph.blank(0x61, 8)
    with pytest.raises(ValueError):
        glyph.bitmap[0, 0] = 1


def test_pixel_count_and_blank():
    assert Glyph.blank(0x61).is_blank
    board = _checkerboard()
    assert board.pixel_count == 32
    assert not board.is_blank


def test_delta_metric():
    a = _checkerboard()
    b = a.inverted()
    assert a.delta(a) == 0
    assert a.delta(b) == 64
    assert b.delta(a) == 64


def test_delta_requires_same_size():
    with pytest.raises(ValueError):
        Glyph.blank(0x61, 8).delta(Glyph.blank(0x61, 16))


def test_with_pixels_and_equality():
    base = Glyph.blank(0x61, 8)
    modified = base.with_pixels([(0, 0), (1, 1)])
    assert modified.pixel_count == 2
    assert base.delta(modified) == 2
    assert base != modified
    assert base == Glyph.blank(0x61, 8)
    assert hash(base) == hash(Glyph.blank(0x61, 8))


def test_scaled_nearest_neighbour():
    board = _checkerboard(8)
    doubled = board.scaled(16)
    assert doubled.size == 16
    assert doubled.pixel_count == board.pixel_count * 4
    assert board.scaled(8) is board


def test_centered_pad_and_crop():
    small = _checkerboard(8)
    padded = small.centered(12)
    assert padded.size == 12
    assert padded.pixel_count == small.pixel_count
    cropped = padded.centered(8)
    assert cropped.size == 8


def test_pack_unpack_roundtrip():
    board = _checkerboard(GLYPH_SIZE)
    packed = board.packed()
    restored = Glyph.unpack(board.codepoint, packed, GLYPH_SIZE)
    assert restored == board


def test_ascii_art_and_from_rows_roundtrip():
    board = _checkerboard(8)
    art = board.to_ascii_art()
    rows = art.splitlines()
    assert len(rows) == 8
    rebuilt = Glyph.from_rows(board.codepoint, rows)
    assert rebuilt == board


def test_hex_row_strings():
    glyph = Glyph.blank(0x61, 8).with_pixels([(0, 0)])
    rows = glyph.to_hex_row_strings()
    assert rows[0] == "80"
    assert all(row == "00" for row in rows[1:])
