"""repro-lint engine behaviour: pragmas, baseline, exit codes, clean tree.

The contract under test (docs/LINT.md):

* pragma comments are parsed with :mod:`tokenize` (never from string
  literals), reasons are mandatory, and a pragma covers its own line
  plus the line below;
* the baseline matches on ``(rule, path, message)`` — not line numbers —
  demotes findings to non-fatal, and flags entries that no longer match
  anything as stale;
* the CLI exits 0 on clean, 1 on new findings, 2 on usage errors;
* the current ``src/`` tree is clean under the committed
  ``lint-baseline.json`` — the invariant CI enforces.
"""

import json
from pathlib import Path

from repro.lint import run_lint
from repro.lint.baseline import Baseline, BaselineEntry, BaselineError
from repro.lint.cli import main as lint_main
from repro.lint.pragmas import parse_pragmas

REPO_ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"


# -- pragma parsing ---------------------------------------------------------

def test_allow_pragma_parsed_with_reason():
    pragmas = parse_pragmas(
        "x = label.lower()  # lint: allow-fold-safety(stored, never indexed)\n"
    )
    allow = pragmas.allow_for("fold-safety", 1)
    assert allow is not None
    assert allow.reason == "stored, never indexed"
    assert not pragmas.malformed


def test_allow_pragma_covers_the_line_below():
    pragmas = parse_pragmas(
        "# lint: allow-fold-safety(next line)\n"
        "x = label.lower()\n"
    )
    assert pragmas.allow_for("fold-safety", 2) is not None
    assert pragmas.allow_for("fold-safety", 3) is None
    assert pragmas.allow_for("atomic-write", 2) is None


def test_allow_pragma_without_reason_is_malformed():
    pragmas = parse_pragmas("x = 1  # lint: allow-fold-safety()\n")
    assert pragmas.allow_for("fold-safety", 1) is None
    assert any("requires a reason" in message for _, message in pragmas.malformed)


def test_unrecognised_pragma_is_malformed():
    pragmas = parse_pragmas("x = 1  # lint: allow_fold_safety(typo)\n")
    assert any("unrecognised" in message for _, message in pragmas.malformed)


def test_pragma_inside_string_literal_is_ignored():
    pragmas = parse_pragmas(
        'doc = "# lint: allow-fold-safety(not a comment)"\n'
    )
    assert pragmas.allow_for("fold-safety", 1) is None
    assert not pragmas.malformed


def test_guarded_by_declaration_parsed():
    pragmas = parse_pragmas(
        "self._cache = {}  # guarded-by: _cache_lock\n"
        "self._current = None  # guarded-by: _reload_lock [writes]\n"
    )
    assert pragmas.guards[1].lock == "_cache_lock"
    assert pragmas.guards[1].writes_only is False
    assert pragmas.guards[2].lock == "_reload_lock"
    assert pragmas.guards[2].writes_only is True


def test_fingerprint_markers_parsed():
    pragmas = parse_pragmas(
        "# lint: fingerprint(CacheKey)\n"
        "def key_for(builder):\n"
        "    pass\n"
    )
    assert pragmas.marker_for_def(2) == "CacheKey"
    assert pragmas.marker_for_def(4) is None


# -- baseline ---------------------------------------------------------------

def _fold_finding():
    result = run_lint([FIXTURES / "fold_position.py"], rules=["fold-safety"])
    assert len(result.new) == 1
    return result.new[0]


def test_baseline_round_trip(tmp_path):
    entry = BaselineEntry(rule="fold-safety", path="a.py", message="m",
                          justification="because")
    path = tmp_path / "baseline.json"
    Baseline(entries=[entry]).save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == [entry]
    assert loaded.covers(("fold-safety", "a.py", "m"))
    assert not loaded.covers(("fold-safety", "a.py", "other"))


def test_baseline_rejects_empty_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "r", "path": "p", "message": "m",
                     "justification": "   "}],
    }))
    try:
        Baseline.load(path)
    except BaselineError as exc:
        assert "justification" in str(exc)
    else:
        raise AssertionError("empty justification accepted")


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    try:
        Baseline.load(path)
    except BaselineError as exc:
        assert "version" in str(exc)
    else:
        raise AssertionError("unknown version accepted")


def test_baseline_demotes_matching_finding_ignoring_line():
    finding = _fold_finding()
    baseline = Baseline(entries=[BaselineEntry(
        rule=finding.rule, path=finding.path, message=finding.message,
        justification="grandfathered for the test",
    )])
    result = run_lint([FIXTURES / "fold_position.py"], rules=["fold-safety"],
                      baseline=baseline)
    assert result.ok
    assert len(result.baselined) == 1
    assert not result.stale_baseline


def test_stale_baseline_entry_is_reported_not_fatal():
    baseline = Baseline(entries=[BaselineEntry(
        rule="fold-safety", path="tests/data/lint_fixtures/fold_position.py",
        message="a finding that no longer exists", justification="obsolete",
    )])
    result = run_lint([FIXTURES / "silent_except.py"], rules=["broad-except"],
                      baseline=baseline)
    assert result.stale_baseline == [(
        "fold-safety", "tests/data/lint_fixtures/fold_position.py",
        "a finding that no longer exists",
    )]
    # stale entries never turn a red run green or a green run red
    assert not result.ok  # silent_except still fires


# -- CLI exit codes ---------------------------------------------------------

def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text('"""Nothing to see."""\nVALUE = 1\n')
    assert lint_main([str(clean), "--no-baseline"]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_cli_exit_one_on_new_finding(capsys):
    code = lint_main([str(FIXTURES / "silent_except.py"), "--no-baseline"])
    assert code == 1
    assert "[broad-except]" in capsys.readouterr().out


def test_cli_exit_two_on_unknown_rule(capsys):
    code = lint_main([str(FIXTURES), "--select", "no-such-rule"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(capsys):
    assert lint_main(["definitely/not/a/path"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_name in ("fold-safety", "fingerprint-completeness", "atomic-write",
                      "spawn-safety", "lock-discipline", "broad-except"):
        assert rule_name in out


def test_cli_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Fixture."""\n'
        "def f(label):\n"
        "    return label.lower()[0]\n"
    )
    baseline_path = tmp_path / "baseline.json"
    assert lint_main([str(bad), "--baseline", str(baseline_path),
                      "--write-baseline"]) == 0
    # The written TODO justification is a placeholder the maintainer must
    # edit; the file still loads, so the next run is green.
    assert lint_main([str(bad), "--baseline", str(baseline_path)]) == 0
    capsys.readouterr()


def test_cli_write_baseline_merge_preserves_justifications(
        tmp_path, capsys, monkeypatch):
    """Re-running --write-baseline never reverts a hand-written
    justification to the TODO placeholder for unchanged findings."""
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Fixture."""\n'
        "def f(label):\n"
        "    return label.lower()[0]\n"
    )
    baseline_path = tmp_path / "baseline.json"
    assert lint_main([str(bad), "--baseline", str(baseline_path),
                      "--write-baseline"]) == 0

    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    payload["entries"][0]["justification"] = "stored for reporting only"
    baseline_path.write_text(json.dumps(payload), encoding="utf-8")

    assert lint_main([str(bad), "--baseline", str(baseline_path),
                      "--write-baseline"]) == 0
    assert "1 justification(s) preserved" in capsys.readouterr().out
    merged = Baseline.load(baseline_path)
    assert [entry.justification for entry in merged.entries] \
        == ["stored for reporting only"]


def test_cli_refuses_to_merge_over_a_corrupt_baseline(
        tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text('"""Fixture."""\nVALUE = 1\n')
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text("not json {", encoding="utf-8")
    assert lint_main([str(bad), "--baseline", str(baseline_path),
                      "--write-baseline"]) == 2
    assert "refusing to overwrite" in capsys.readouterr().err
    assert baseline_path.read_text(encoding="utf-8") == "not json {"


# -- the tree itself --------------------------------------------------------

def test_src_tree_is_clean(monkeypatch, capsys):
    """The invariant CI enforces: repro-lint over src/ with the committed
    baseline reports zero new findings.  A rule change that starts firing
    on the current tree fails here first, with the full report attached."""
    monkeypatch.chdir(REPO_ROOT)
    code = lint_main(["src"])
    out = capsys.readouterr().out
    assert code == 0, f"repro-lint went red on src/:\n{out}"


def test_tests_and_benchmarks_are_clean_under_the_layer_subset(
        monkeypatch, capsys):
    """The CI invariant for the non-src trees: the layer-aware rule
    subset (rules whose invariants apply to test/benchmark code) is
    clean over tests/ and benchmarks/, with the intentionally-bad
    fixture trees excluded via --exclude."""
    monkeypatch.chdir(REPO_ROOT)
    code = lint_main([
        "tests", "benchmarks",
        "--select", "fold-safety,import-layering,exception-contract,spawn-safety",
        "--exclude", "tests/data",
        "--no-baseline", "--no-cache",
    ])
    out = capsys.readouterr().out
    assert code == 0, f"repro-lint went red on tests/benchmarks:\n{out}"


def test_no_fold_safety_pragmas_remain_in_src():
    """The dataflow rewrite made every one of v1's 41 allow-fold-safety
    pragmas redundant and they were deleted; this count only ever
    shrinks (it is pinned at zero — a new pragma needs a new argument)."""
    count = 0
    carriers = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        pragmas = parse_pragmas(path.read_text(encoding="utf-8"))
        for line, allows in pragmas.allows.items():
            for allow in allows:
                if allow.rule == "fold-safety":
                    count += 1
                    carriers.append(f"{path}:{line}")
    assert count == 0, (
        "allow-fold-safety pragmas reappeared in src/ — the taint "
        f"dataflow should prove these sites safe instead: {carriers}"
    )


def test_committed_baseline_is_small_and_justified():
    """The baseline only ever shrinks: few entries, every one justified
    with real prose (the --write-baseline TODO placeholder is not)."""
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert len(baseline.entries) <= 10
    for entry in baseline.entries:
        assert not entry.justification.startswith("TODO"), (
            f"unjustified baseline entry: [{entry.rule}] {entry.path}"
        )
