"""Tests for the Unicode block table."""

import pytest

from repro.unicode.blocks import BLOCKS, block_name, block_of, blocks_in_plane, iter_blocks


def test_basic_latin_block():
    block = block_of(ord("a"))
    assert block is not None
    assert block.name == "Basic Latin"
    assert block.start == 0x0000
    assert block.end == 0x007F


def test_block_contains_and_len():
    block = block_of(0x0430)
    assert block.name == "Cyrillic"
    assert 0x0400 in block
    assert 0x04FF in block
    assert 0x0500 not in block
    assert len(block) == 256


@pytest.mark.parametrize(
    "codepoint, expected",
    [
        (0x00E9, "Latin-1 Supplement"),
        (0x0301, "Combining Diacritical Marks"),
        (0x03B1, "Greek and Coptic"),
        (0x05D0, "Hebrew"),
        (0x0627, "Arabic"),
        (0x0B32, "Oriya"),
        (0x0E01, "Thai"),
        (0x0ED0, "Lao"),
        (0x13A0, "Cherokee"),
        (0x1401, "Unified Canadian Aboriginal Syllabics"),
        (0x3042, "Hiragana"),
        (0x30A8, "Katakana"),
        (0x4E00, "CJK Unified Ideographs"),
        (0xA500, "Vai"),
        (0xAC00, "Hangul Syllables"),
        (0xFF41, "Halfwidth and Fullwidth Forms"),
        (0x1F600, "Emoticons"),
        (0x20000, "CJK Unified Ideographs Extension B"),
    ],
)
def test_blocks_named_in_paper(codepoint, expected):
    assert block_name(codepoint) == expected


def test_block_ordering_no_overlaps():
    previous_end = -1
    for block in iter_blocks():
        assert block.start > previous_end, f"{block.name} overlaps previous block"
        assert block.end >= block.start
        previous_end = block.end


def test_block_of_unassigned_gap_returns_none():
    # 0x08B5 region sits in a small unassigned gap between Arabic Extended-A
    # parts in some versions; use a clearly uncovered code point instead:
    assert block_of(0xE0200) is None
    assert block_name(0xE0200) == "No Block"


def test_block_of_rejects_out_of_range():
    with pytest.raises(ValueError):
        block_of(0x110000)
    with pytest.raises(ValueError):
        block_of(-1)


def test_plane_partition():
    bmp = blocks_in_plane(0)
    smp = blocks_in_plane(1)
    assert all(b.end <= 0xFFFF for b in bmp)
    assert all(0x10000 <= b.start <= 0x1FFFF for b in smp)
    assert len(bmp) > 100
    assert len(smp) > 30


def test_codepoints_iterator_matches_length():
    block = block_of(0x0530)  # Armenian
    assert len(list(block.codepoints())) == len(block)


def test_blocks_constant_is_sorted_tuple():
    starts = [b.start for b in BLOCKS]
    assert starts == sorted(starts)
