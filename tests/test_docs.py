"""Documentation health checks (the CI docs job).

Two guarantees:

* every relative markdown link in ``README.md`` and ``docs/`` points at
  a file that exists, and every ``#anchor`` matches a real heading in
  the target file (GitHub's anchor derivation);
* every module under ``repro`` imports cleanly and carries a module
  docstring, and the key public entry points render under :mod:`pydoc`
  (a broken docstring or import error fails here, not in a user's
  ``help()`` call).
"""

from __future__ import annotations

import importlib
import pkgutil
import pydoc
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading → anchor derivation (enough of it for our docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_anchors(path: Path) -> set[str]:
    body = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_anchor(m.group(1)) for m in _HEADING.finditer(body)}


def markdown_links(path: Path) -> list[str]:
    body = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return [m.group(1) for m in _INLINE_LINK.finditer(body)]


def test_doc_tree_exists() -> None:
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "ARCHITECTURE.md", "OPERATIONS.md", "CLI.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc: Path) -> None:
    broken: list[str] = []
    for target in markdown_links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if not resolved.is_relative_to(REPO_ROOT):
            continue  # GitHub-web-relative links (the CI badge)
        if not resolved.exists():
            broken.append(f"{target}: no such file")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in markdown_anchors(resolved):
            broken.append(f"{target}: no heading for #{anchor} in {resolved.name}")
    assert not broken, f"broken links in {doc.name}: {broken}"


def _all_repro_modules() -> list[str]:
    return sorted(
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    )


@pytest.mark.parametrize("module_name", _all_repro_modules())
def test_module_imports_with_docstring(module_name: str) -> None:
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} has no module docstring"


@pytest.mark.parametrize(
    "target",
    [
        "repro.detection.shamfinder.ShamFinder",
        "repro.detection.service.OnlineDetector",
        "repro.detection.index.ReferenceIndexStore",
        "repro.detection.stream.StreamingScanner",
        "repro.measurement.longitudinal.LongitudinalTracker",
        "repro.measurement.study.MeasurementStudy",
        "repro.serving.server.HomographServer",
        "repro.cli.build_parser",
    ],
)
def test_public_entry_points_render_under_pydoc(target: str) -> None:
    obj = pydoc.locate(target)
    assert obj is not None, f"pydoc cannot locate {target}"
    rendered = pydoc.render_doc(obj)
    assert rendered.strip(), f"pydoc renders nothing for {target}"
    assert (getattr(obj, "__doc__", None) or "").strip(), f"{target} has no docstring"
