"""Tests for the markdown report renderer."""

from repro.measurement.reporting import render_markdown_report


def test_report_contains_every_table(study_results):
    report = render_markdown_report(study_results)
    for heading in ("Table 6", "Table 7", "Table 8", "Table 9", "Table 10",
                    "Table 11", "Table 12", "Table 13", "Table 14",
                    "Section 4.2", "Section 6.4"):
        assert heading in report


def test_report_is_valid_markdown_tables(study_results):
    report = render_markdown_report(study_results, title="Custom title")
    assert report.startswith("# Custom title")
    lines = report.splitlines()
    # Every table row has the same number of pipes as its header.
    for index, line in enumerate(lines):
        if set(line.replace("|", "").replace("-", "").strip()) == set() and line.startswith("|"):
            header = lines[index - 1]
            assert header.count("|") == line.count("|")


def test_report_renders_stage_timings(study_results):
    # The session results ran through the enrichment pipeline, so the
    # per-stage timing table is present and names every stage.
    report = render_markdown_report(study_results)
    assert "Enrichment pipeline" in report
    for stage in ("dns", "portscan", "popularity", "classify", "blacklist", "revert"):
        assert f"| {stage} |" in report


def test_report_without_stage_timings_omits_section(study):
    report = render_markdown_report(study.run_legacy())
    assert "Enrichment pipeline" not in report


def test_report_mentions_headline_values(study_results):
    report = render_markdown_report(study_results)
    assert "UC ∪ SimChar" in report
    assert "gmaıl.com" in report
    assert "hpHosts" in report
    # Counts are formatted with thousands separators for large numbers.
    assert "615,447" in report
