"""Tests for the Latin-coverage table (Table 3) and block comparison (Table 4)."""

from repro.homoglyph.blocks import block_abbreviations, compare_top_blocks
from repro.homoglyph.latin import latin_coverage_table, most_vulnerable_letters


def test_latin_coverage_rows(simchar_db, uc_idna_db):
    rows = latin_coverage_table(simchar_db, uc_idna_db)
    assert len(rows) == 26
    assert [row.letter for row in rows] == list("abcdefghijklmnopqrstuvwxyz")
    by_letter = {row.letter: row for row in rows}
    # SimChar finds more homoglyphs of 'e' than UC∩IDNA (the paper's headline
    # observation about é-style accents).
    assert by_letter["e"].simchar_count > by_letter["e"].uc_count
    for row in rows:
        assert row.shared_count <= min(row.simchar_count, row.uc_count)
        assert row.simchar_only == row.simchar_count - row.shared_count
        assert row.uc_only == row.uc_count - row.shared_count


def test_simchar_total_exceeds_uc_total(simchar_db, uc_idna_db):
    # Paper Table 3: SimChar 351 vs UC∩IDNA 141.
    assert simchar_db.latin_homoglyph_total() > uc_idna_db.latin_homoglyph_total()


def test_most_vulnerable_letters(simchar_db):
    top = most_vulnerable_letters(simchar_db, limit=3)
    assert len(top) == 3
    assert top[0][1] >= top[1][1] >= top[2][1]
    # 'o' is always near the top (it is the clear maximum on the full
    # repertoire, see paper Table 3); vowels dominate on the fast fixture too.
    counts = simchar_db.latin_homoglyph_counts()
    assert counts["o"] >= top[2][1] - 2


def test_block_comparison(simchar_db, uc_idna_db):
    comparison = compare_top_blocks(simchar_db, uc_idna_db, limit=5)
    assert comparison.left_name == simchar_db.name
    assert len(comparison.left_top) <= 5
    rows = comparison.as_rows()
    assert len(rows) == max(len(comparison.left_top), len(comparison.right_top))
    # Counts are ordered descending on each side.
    left_counts = [count for _b, count, _b2, _c2 in rows if _b]
    assert left_counts == sorted(left_counts, reverse=True)


def test_block_abbreviations():
    assert block_abbreviations("CJK Unified Ideographs") == "CJK"
    assert block_abbreviations("Hangul Syllables") == "Hangul"
    assert block_abbreviations("Combining Diacritical Marks") == "CDM"
    assert block_abbreviations("Unified Canadian Aboriginal Syllabics") == "CA"
    assert block_abbreviations("Cyrillic") == "Cyrillic"
