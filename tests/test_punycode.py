"""Tests for the RFC 3492 Punycode implementation (cross-checked against the stdlib codec)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idn import punycode

# Sample strings from RFC 3492 section 7.1 and the paper.
_KNOWN_CASES = [
    ("bücher", "bcher-kva"),
    ("阿里巴巴", "tsta8290bfzd"),              # paper Section 2.1 example
    ("facébook", "facbook-dya"),               # paper Section 2.2 example
    ("пример", "e1afmkfd"),
    ("münchen", "mnchen-3ya"),
    ("abc", "abc-"),
]


@pytest.mark.parametrize("unicode_text, expected", _KNOWN_CASES)
def test_known_encodings(unicode_text, expected):
    assert punycode.encode(unicode_text) == expected


@pytest.mark.parametrize("unicode_text, expected", _KNOWN_CASES)
def test_known_decodings(unicode_text, expected):
    assert punycode.decode(expected) == unicode_text


@pytest.mark.parametrize(
    "text",
    ["ليهمابتكلموشعربي؟", "他们为什么不说中文", "TạisaohọkhôngthểchỉnóitiếngViệt".lower(),
     "ドメイン名例", "ひとつ屋根の下2", "MajiでKoiする5秒前".lower(), "-> $1.00 <-"],
)
def test_rfc3492_sample_vectors_roundtrip(text):
    encoded = punycode.encode(text)
    assert encoded == text.encode("punycode").decode("ascii")
    assert punycode.decode(encoded) == text


def test_decode_rejects_invalid_input():
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("münchen")            # non-ASCII input
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("abc-!")              # invalid digit
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("999999999999999999") # overflow


def test_decode_truncated_input():
    encoded = punycode.encode("bücher")
    with pytest.raises(punycode.PunycodeError):
        punycode.decode(encoded[:-1] if not encoded.endswith("a") else encoded[:-2] + "k")


def test_pure_ascii_round_trips_with_trailing_delimiter():
    assert punycode.encode("example") == "example-"
    assert punycode.decode("example-") == "example"


@settings(max_examples=200, deadline=None)
@given(st.text(
    alphabet=st.characters(min_codepoint=0x61, max_codepoint=0x2FFF,
                           exclude_categories=("Cs",)),
    min_size=1, max_size=16,
))
def test_roundtrip_matches_stdlib(text):
    encoded = punycode.encode(text)
    assert encoded == text.encode("punycode").decode("ascii")
    assert punycode.decode(encoded) == text


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789üöäßéあ中о", min_size=1, max_size=24))
def test_roundtrip_identity(text):
    assert punycode.decode(punycode.encode(text)) == text


# -- mixed-case ACE input (RFC 3492 digits are case-insensitive) ---------------


@pytest.mark.parametrize("unicode_text, expected", _KNOWN_CASES)
def test_decode_accepts_uppercase_extended_digits(unicode_text, expected):
    # Upper-case only the extended part (after the last delimiter); the
    # basic part is payload whose case the decoder must preserve.
    basic, delimiter, extended = expected.rpartition("-")
    mixed = basic + delimiter + extended.upper()
    assert punycode.decode(mixed) == unicode_text


def test_decode_preserves_basic_code_point_case():
    # The extended digits fold; the basic code points do not.
    assert punycode.decode("Bcher-KVA") == "Bücher"
    assert punycode.decode("BCHER-kva") == "BüCHER"


@settings(max_examples=100, deadline=None)
@given(st.text(
    alphabet=st.characters(min_codepoint=0xE0, max_codepoint=0x2FFF, exclude_categories=("Cs",)),
    min_size=1, max_size=16,
))
def test_decode_is_case_insensitive_on_extended_part(text):
    encoded = punycode.encode(text)
    assert punycode.decode(encoded.upper()) == text
    assert punycode.decode(encoded.swapcase()) == text


# -- adversarial input ---------------------------------------------------------


def test_decode_rejects_oversized_input_instead_of_hanging():
    # Decoding is quadratic in the delta count (insertion sort); a crafted
    # few-hundred-KB payload used to stall for minutes.  The cap turns that
    # into an immediate, typed error.
    with pytest.raises(punycode.PunycodeError, match="cap"):
        punycode.decode("a" * (punycode.MAX_DECODE_LENGTH + 1))


def test_decode_cap_can_be_lifted_or_tightened():
    text = "a" * (punycode.MAX_DECODE_LENGTH + 1)
    assert len(punycode.decode(text, max_length=None)) == len(text)
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("abcd-1ga", max_length=4)


def test_decode_rejects_control_characters():
    for bad in ("\x00abc", "a-b\x01c", "abc\n", "\tabc-def"):
        with pytest.raises(punycode.PunycodeError):
            punycode.decode(bad)


def test_decode_rejects_oversized_deltas_with_typed_errors():
    # Each of these drives a different overflow/range check; all must raise
    # PunycodeError (never a bare ValueError/OverflowError) and terminate
    # promptly.
    for bad in ("99999999", "9" * 64, "zzzz" * 512, "a" * 10 + "9" * 30):
        with pytest.raises(punycode.PunycodeError):
            punycode.decode(bad)


def test_decode_rejects_surrogate_range_output():
    # stdlib's codec happily emits lone surrogates; RFC-valid labels cannot
    # contain them, so our decoder treats them as out-of-range.
    with pytest.raises(punycode.PunycodeError, match="out of range"):
        punycode.decode("-9c0c")


def test_encode_rejects_control_characters():
    # Symmetric with decode(): a C0 control would otherwise encode into a
    # basic part our own decoder rejects.
    for bad in ("a\tb", "line\nbreak", "\x00"):
        with pytest.raises(punycode.PunycodeError, match="control"):
            punycode.encode(bad)


def test_encode_rejects_lone_surrogates():
    # Encoding a surrogate used to "succeed", producing a string the decoder
    # (ours and any RFC-conforming one) must then reject.
    with pytest.raises(punycode.PunycodeError, match="surrogate"):
        punycode.encode("\ud800")
    with pytest.raises(punycode.PunycodeError, match="surrogate"):
        punycode.encode("ok\udfffok")


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E), max_size=32))
def test_decode_arbitrary_printable_ascii_never_raises_bare_exceptions(text):
    # Any printable-ASCII input either decodes or raises PunycodeError —
    # nothing else, and never a hang.
    try:
        punycode.decode(text)
    except punycode.PunycodeError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=32))
def test_decode_arbitrary_bytes_never_raise_bare_exceptions(data):
    text = data.decode("latin-1")
    try:
        punycode.decode(text)
    except punycode.PunycodeError:
        pass
