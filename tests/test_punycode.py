"""Tests for the RFC 3492 Punycode implementation (cross-checked against the stdlib codec)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idn import punycode

# Sample strings from RFC 3492 section 7.1 and the paper.
_KNOWN_CASES = [
    ("bücher", "bcher-kva"),
    ("阿里巴巴", "tsta8290bfzd"),              # paper Section 2.1 example
    ("facébook", "facbook-dya"),               # paper Section 2.2 example
    ("пример", "e1afmkfd"),
    ("münchen", "mnchen-3ya"),
    ("abc", "abc-"),
]


@pytest.mark.parametrize("unicode_text, expected", _KNOWN_CASES)
def test_known_encodings(unicode_text, expected):
    assert punycode.encode(unicode_text) == expected


@pytest.mark.parametrize("unicode_text, expected", _KNOWN_CASES)
def test_known_decodings(unicode_text, expected):
    assert punycode.decode(expected) == unicode_text


@pytest.mark.parametrize(
    "text",
    ["ليهمابتكلموشعربي؟", "他们为什么不说中文", "TạisaohọkhôngthểchỉnóitiếngViệt".lower(),
     "ドメイン名例", "ひとつ屋根の下2", "MajiでKoiする5秒前".lower(), "-> $1.00 <-"],
)
def test_rfc3492_sample_vectors_roundtrip(text):
    encoded = punycode.encode(text)
    assert encoded == text.encode("punycode").decode("ascii")
    assert punycode.decode(encoded) == text


def test_decode_rejects_invalid_input():
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("münchen")            # non-ASCII input
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("abc-!")              # invalid digit
    with pytest.raises(punycode.PunycodeError):
        punycode.decode("999999999999999999") # overflow


def test_decode_truncated_input():
    encoded = punycode.encode("bücher")
    with pytest.raises(punycode.PunycodeError):
        punycode.decode(encoded[:-1] if not encoded.endswith("a") else encoded[:-2] + "k")


def test_pure_ascii_round_trips_with_trailing_delimiter():
    assert punycode.encode("example") == "example-"
    assert punycode.decode("example-") == "example"


@settings(max_examples=200, deadline=None)
@given(st.text(
    alphabet=st.characters(min_codepoint=0x61, max_codepoint=0x2FFF,
                           exclude_categories=("Cs",)),
    min_size=1, max_size=16,
))
def test_roundtrip_matches_stdlib(text):
    encoded = punycode.encode(text)
    assert encoded == text.encode("punycode").decode("ascii")
    assert punycode.decode(encoded) == text


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789üöäßéあ中о", min_size=1, max_size=24))
def test_roundtrip_identity(text):
    assert punycode.decode(punycode.encode(text)) == text
