"""Downstream applications of the homoglyph database (paper Section 9)."""

from .plagiarism import DocumentMatch, ObfuscatedCharacter, PlagiarismDetector
from .sanitizer import SanitizedText, TextSanitizer

__all__ = ["DocumentMatch", "ObfuscatedCharacter", "PlagiarismDetector",
           "SanitizedText", "TextSanitizer"]
