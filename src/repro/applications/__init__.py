"""Downstream applications of the homoglyph database (paper Section 9)."""

from .plagiarism import DocumentMatch, ObfuscatedCharacter, PlagiarismDetector

__all__ = ["DocumentMatch", "ObfuscatedCharacter", "PlagiarismDetector"]
