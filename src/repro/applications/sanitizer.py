"""Text sanitisation: strip invisible characters, normalise homoglyphs.

The plagiarism application (:mod:`.plagiarism`) already knows how to fold
homoglyph substitutions back onto canonical ASCII; the invisible-character
table (:mod:`repro.homoglyph.invisible`) knows which characters render as
nothing.  :class:`TextSanitizer` composes the two into the entry point the
paper's Section 9 sketches for "other promising security applications":
given untrusted text — a display name, a chat message, a filename — return
what the text *looks like*, plus an audit trail of everything that was
hidden in it.

Sanitisation order matters: invisible characters are removed first (they
would otherwise sit between a homoglyph and its neighbours and survive
normalisation untouched), then each remaining character is mapped onto the
canonical member of its confusable cluster via the plagiarism detector's
:meth:`~.plagiarism.PlagiarismDetector.canonical_char` seam.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..homoglyph.database import HomoglyphDatabase
from ..homoglyph.invisible import (
    InvisibleFinding,
    InvisibleTable,
    default_invisible_table,
)
from .plagiarism import ObfuscatedCharacter, PlagiarismDetector

__all__ = ["SanitizedText", "TextSanitizer"]


@dataclass(frozen=True)
class SanitizedText:
    """The outcome of sanitising one piece of text."""

    original: str
    #: original with the invisible payload removed (homoglyphs untouched)
    stripped: str
    #: stripped form with every homoglyph folded to its canonical character
    normalised: str
    #: invisible characters/combining stacks found (positions index into
    #: the original text)
    invisibles: tuple[InvisibleFinding, ...] = ()
    #: homoglyph stand-ins found (positions index into the stripped form)
    obfuscations: tuple[ObfuscatedCharacter, ...] = ()

    @property
    def is_clean(self) -> bool:
        """True when the text hid nothing (sanitised == original, modulo case)."""
        return not self.invisibles and not self.obfuscations

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "original": self.original,
            "stripped": self.stripped,
            "normalised": self.normalised,
            "is_clean": self.is_clean,
            "invisibles": [f.as_dict() for f in self.invisibles],
            "obfuscations": [
                {"position": o.position, "found": o.found, "canonical": o.canonical}
                for o in self.obfuscations
            ],
        }


class TextSanitizer:
    """Strip invisible characters and fold homoglyphs in untrusted text."""

    def __init__(
        self,
        database: HomoglyphDatabase,
        *,
        invisible_table: InvisibleTable | None = None,
        ngram_size: int = 3,
    ) -> None:
        self.invisible_table = (invisible_table if invisible_table is not None
                                else default_invisible_table())
        self._detector = PlagiarismDetector(database, ngram_size=ngram_size)

    def sanitize(self, text: str) -> SanitizedText:
        """Full sanitisation pass: strip, then normalise, with findings."""
        invisibles = self.invisible_table.findings(text)
        stripped = self.invisible_table.strip(text) if invisibles else text
        obfuscations = tuple(self._detector.find_obfuscations(stripped))
        return SanitizedText(
            original=text,
            stripped=stripped,
            normalised=self._detector.normalise(stripped),
            invisibles=invisibles,
            obfuscations=obfuscations,
        )

    def clean(self, text: str) -> str:
        """Just the sanitised (stripped + normalised) form."""
        return self.sanitize(text).normalised
