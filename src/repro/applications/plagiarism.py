"""Homoglyph-obfuscated plagiarism detection.

The paper notes (abstract, Section 9) that SimChar "could be used for other
promising security applications such as detecting obfuscated plagiarism,
which exploits Unicode homoglyphs": plagiarists replace characters of a
copied passage with visually identical ones so that naive string matching
(and many text-similarity pipelines) no longer find the overlap.

:class:`PlagiarismDetector` normalises text through the homoglyph database
(every character is mapped to a canonical representative of its confusable
cluster), flags the substituted characters, and compares documents on the
normalised form — so ``"thе quіck brоwn fox"`` (Cyrillic е/і/о) matches the
original sentence it was copied from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..homoglyph.database import HomoglyphDatabase

__all__ = ["ObfuscatedCharacter", "DocumentMatch", "PlagiarismDetector"]

_ASCII = frozenset(chr(cp) for cp in range(0x20, 0x7F))


@dataclass(frozen=True)
class ObfuscatedCharacter:
    """One homoglyph substitution found in a document."""

    position: int
    found: str
    canonical: str

    def describe(self) -> str:
        """Human-readable description of the substitution."""
        return (f"position {self.position}: U+{ord(self.found):04X} {self.found!r} "
                f"stands in for {self.canonical!r}")


@dataclass(frozen=True)
class DocumentMatch:
    """Similarity between a suspicious document and one source document."""

    source_index: int
    raw_similarity: float          # n-gram overlap on the original text
    normalised_similarity: float   # overlap after homoglyph normalisation
    obfuscations: tuple[ObfuscatedCharacter, ...]

    @property
    def hidden_by_homoglyphs(self) -> float:
        """How much similarity the homoglyph obfuscation hid."""
        return self.normalised_similarity - self.raw_similarity

    @property
    def is_suspicious(self) -> bool:
        """True when normalisation reveals substantial additional overlap."""
        return self.normalised_similarity >= 0.5 and self.hidden_by_homoglyphs >= 0.1


class PlagiarismDetector:
    """Detects copied text hidden behind Unicode homoglyph substitutions."""

    def __init__(self, database: HomoglyphDatabase, *, ngram_size: int = 3) -> None:
        if ngram_size < 1:
            raise ValueError("ngram_size must be positive")
        self.database = database
        self.ngram_size = ngram_size
        self._canonical_cache: dict[str, str] = {}

    # -- normalisation -----------------------------------------------------

    def canonical_char(self, char: str) -> str:
        """Map a character onto the canonical member of its confusable cluster.

        ASCII characters map to themselves; a non-ASCII character maps to its
        lexicographically smallest ASCII homoglyph when one exists (so both
        Latin ``o`` and Cyrillic ``о`` share the representative ``o``), and
        to the smallest member of its cluster otherwise.
        """
        cached = self._canonical_cache.get(char)
        if cached is not None:
            return cached
        if char in _ASCII:
            result = char.lower()
        else:
            partners = self.database.homoglyphs_of(char)
            ascii_partners = sorted(p.lower() for p in partners if p in _ASCII)
            if ascii_partners:
                result = ascii_partners[0]
            elif partners:
                result = min(partners | {char})
            else:
                result = char
        self._canonical_cache[char] = result
        return result

    def normalise(self, text: str) -> str:
        """Normalise a whole text through the homoglyph database."""
        return "".join(self.canonical_char(ch) for ch in text.lower())

    def find_obfuscations(self, text: str) -> list[ObfuscatedCharacter]:
        """List the characters of *text* that stand in for an ASCII character."""
        findings = []
        for position, char in enumerate(text):
            if char in _ASCII:
                continue
            canonical = self.canonical_char(char)
            if canonical != char and canonical in _ASCII:
                findings.append(ObfuscatedCharacter(position, char, canonical))
        return findings

    # -- similarity -----------------------------------------------------------

    def _ngrams(self, text: str) -> set[str]:
        cleaned = "".join(ch if ch.isalnum() else " " for ch in text)
        collapsed = " ".join(cleaned.split())
        if len(collapsed) < self.ngram_size:
            return {collapsed} if collapsed else set()
        return {collapsed[i:i + self.ngram_size]
                for i in range(len(collapsed) - self.ngram_size + 1)}

    def similarity(self, first: str, second: str, *, normalise: bool = True) -> float:
        """Jaccard similarity of character n-grams (optionally homoglyph-normalised)."""
        if normalise:
            first, second = self.normalise(first), self.normalise(second)
        else:
            first, second = first.lower(), second.lower()
        a, b = self._ngrams(first), self._ngrams(second)
        if not a and not b:
            return 1.0
        if not a or not b:
            return 0.0
        return len(a & b) / len(a | b)

    def compare(self, suspicious: str, sources: Sequence[str]) -> list[DocumentMatch]:
        """Compare a suspicious document against source documents, best match first."""
        obfuscations = tuple(self.find_obfuscations(suspicious))
        matches = []
        for index, source in enumerate(sources):
            matches.append(DocumentMatch(
                source_index=index,
                raw_similarity=self.similarity(suspicious, source, normalise=False),
                normalised_similarity=self.similarity(suspicious, source, normalise=True),
                obfuscations=obfuscations,
            ))
        matches.sort(key=lambda m: -m.normalised_similarity)
        return matches
