"""Code point model.

A thin, immutable wrapper around an integer code point that exposes the
properties the rest of the library needs repeatedly: name, general category,
block, script, IDNA derived property, and decomposition.  Keeping the
lookups in one place avoids scattering ``unicodedata`` calls throughout the
code base and makes the glyph/homoglyph pipeline easier to test.
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from .blocks import block_name
from .idna import DerivedProperty, derived_property
from .scripts import script_of

__all__ = ["CodePoint", "codepoints_of", "format_codepoint"]


def format_codepoint(value: int) -> str:
    """Format an integer code point in the conventional ``U+XXXX`` form."""
    return f"U+{value:04X}"


@dataclass(frozen=True, order=True)
class CodePoint:
    """An immutable Unicode code point with derived properties."""

    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value <= 0x10FFFF):
            raise ValueError(f"code point out of range: {self.value!r}")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_char(cls, char: str) -> "CodePoint":
        """Build from a single-character string."""
        if len(char) != 1:
            raise ValueError("expected a single character")
        return cls(ord(char))

    @classmethod
    def parse(cls, text: str) -> "CodePoint":
        """Parse ``U+0061``, ``0x61``, ``97`` or a single character."""
        stripped = text.strip()
        if len(stripped) == 1 and not stripped.isdigit():
            return cls.from_char(stripped)
        lowered = stripped.lower()
        if lowered.startswith("u+"):
            return cls(int(stripped[2:], 16))
        if lowered.startswith("0x"):
            return cls(int(stripped, 16))
        if stripped.isdigit():
            return cls(int(stripped))
        if len(stripped) == 1:
            return cls.from_char(stripped)
        raise ValueError(f"cannot parse code point: {text!r}")

    # -- basic views -------------------------------------------------------

    @property
    def char(self) -> str:
        """The character this code point encodes."""
        return chr(self.value)

    @property
    def hex(self) -> str:
        """``U+XXXX`` notation."""
        return format_codepoint(self.value)

    @cached_property
    def name(self) -> str:
        """Unicode character name (empty string when unnamed)."""
        return unicodedata.name(self.char, "")

    @cached_property
    def category(self) -> str:
        """Unicode general category, e.g. ``Ll`` or ``Lo``."""
        return unicodedata.category(self.char)

    @cached_property
    def block(self) -> str:
        """Unicode block name, e.g. ``Cyrillic``."""
        return block_name(self.value)

    @cached_property
    def script(self) -> str:
        """Script name, e.g. ``Latin`` or ``Han``."""
        return script_of(self.value)

    @cached_property
    def idna_property(self) -> DerivedProperty:
        """IDNA2008 (RFC 5892) derived property."""
        return derived_property(self.value)

    @property
    def is_pvalid(self) -> bool:
        """True when the code point is PVALID for IDN use."""
        return self.idna_property is DerivedProperty.PVALID

    @property
    def plane(self) -> int:
        """Unicode plane (0 = BMP)."""
        return self.value >> 16

    @property
    def is_bmp(self) -> bool:
        """True when the code point lies in the Basic Multilingual Plane."""
        return self.plane == 0

    # -- decomposition -----------------------------------------------------

    @cached_property
    def nfkd(self) -> str:
        """NFKD decomposition of the character."""
        return unicodedata.normalize("NFKD", self.char)

    @cached_property
    def base_char(self) -> str:
        """First non-combining character of the NFKD decomposition.

        For ``é`` this is ``e``; for characters without a decomposition it
        is the character itself.  Used heavily by the synthetic font and
        the homograph reverter.
        """
        for ch in self.nfkd:
            if not unicodedata.combining(ch):
                return ch
        return self.char

    @cached_property
    def combining_marks(self) -> tuple[str, ...]:
        """Combining marks present in the NFKD decomposition."""
        return tuple(ch for ch in self.nfkd if unicodedata.combining(ch))

    @property
    def is_combining(self) -> bool:
        """True for combining marks themselves."""
        return unicodedata.combining(self.char) != 0

    # -- misc ---------------------------------------------------------------

    def __str__(self) -> str:
        return self.char

    def __repr__(self) -> str:
        name = self.name or "<unnamed>"
        return f"CodePoint({self.hex} {name})"

    def describe(self) -> str:
        """One-line human readable description used by reports and the CLI."""
        return (
            f"{self.hex} '{self.char}' {self.name or '<unnamed>'} "
            f"[{self.category}, {self.script}, {self.block}, {self.idna_property.value}]"
        )


def codepoints_of(text: str) -> list[CodePoint]:
    """Return the :class:`CodePoint` sequence for a string."""
    return [CodePoint(ord(ch)) for ch in text]


def unique_codepoints(texts: Iterable[str]) -> set[CodePoint]:
    """Collect the set of distinct code points appearing in *texts*."""
    seen: set[CodePoint] = set()
    for text in texts:
        for ch in text:
            seen.add(CodePoint(ord(ch)))
    return seen
