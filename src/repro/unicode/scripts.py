"""Unicode script classification.

The IDN display policies of Chrome and Firefox (and the mixed-script
detection used throughout this library) need to know the *script* of a code
point: Latin, Cyrillic, Greek, Han, Hiragana, Katakana, Hangul, and so on.
The standard library does not expose ``Scripts.txt``, so this module embeds
a script range table that covers the scripts relevant to IDN registration
under the large gTLDs.

The classification is block-granular for most scripts (which matches how
the paper reasons about "scripts") with a few sub-block refinements
(e.g. ``Common`` for ASCII digits and punctuation inside Basic Latin).
"""

from __future__ import annotations

import bisect

__all__ = [
    "script_of",
    "scripts_of_text",
    "is_mixed_script",
    "dominant_script",
    "KNOWN_SCRIPTS",
    "HIGHLY_CONFUSABLE_SCRIPTS",
]

# (start, end inclusive, script name)
_RANGES: list[tuple[int, int, str]] = [
    (0x0030, 0x0039, "Common"),        # digits
    (0x0041, 0x005A, "Latin"),
    (0x0061, 0x007A, "Latin"),
    (0x0000, 0x0040, "Common"),
    (0x005B, 0x0060, "Common"),
    (0x007B, 0x00A9, "Common"),
    (0x00AA, 0x00AA, "Latin"),
    (0x00AB, 0x00B9, "Common"),
    (0x00BA, 0x00BA, "Latin"),
    (0x00BB, 0x00BF, "Common"),
    (0x00C0, 0x024F, "Latin"),
    (0x0250, 0x02AF, "Latin"),          # IPA extensions are Latin-script
    (0x02B0, 0x02FF, "Common"),
    (0x0300, 0x036F, "Inherited"),      # combining marks
    (0x0370, 0x03FF, "Greek"),
    (0x0400, 0x052F, "Cyrillic"),
    (0x0530, 0x058F, "Armenian"),
    (0x0590, 0x05FF, "Hebrew"),
    (0x0600, 0x06FF, "Arabic"),
    (0x0700, 0x074F, "Syriac"),
    (0x0750, 0x077F, "Arabic"),
    (0x0780, 0x07BF, "Thaana"),
    (0x07C0, 0x07FF, "Nko"),
    (0x08A0, 0x08FF, "Arabic"),
    (0x0900, 0x097F, "Devanagari"),
    (0x0980, 0x09FF, "Bengali"),
    (0x0A00, 0x0A7F, "Gurmukhi"),
    (0x0A80, 0x0AFF, "Gujarati"),
    (0x0B00, 0x0B7F, "Oriya"),
    (0x0B80, 0x0BFF, "Tamil"),
    (0x0C00, 0x0C7F, "Telugu"),
    (0x0C80, 0x0CFF, "Kannada"),
    (0x0D00, 0x0D7F, "Malayalam"),
    (0x0D80, 0x0DFF, "Sinhala"),
    (0x0E00, 0x0E7F, "Thai"),
    (0x0E80, 0x0EFF, "Lao"),
    (0x0F00, 0x0FFF, "Tibetan"),
    (0x1000, 0x109F, "Myanmar"),
    (0x10A0, 0x10FF, "Georgian"),
    (0x1100, 0x11FF, "Hangul"),
    (0x1200, 0x139F, "Ethiopic"),
    (0x13A0, 0x13FF, "Cherokee"),
    (0x1400, 0x167F, "Canadian_Aboriginal"),
    (0x1680, 0x169F, "Ogham"),
    (0x16A0, 0x16FF, "Runic"),
    (0x1780, 0x17FF, "Khmer"),
    (0x1800, 0x18AF, "Mongolian"),
    (0x18B0, 0x18FF, "Canadian_Aboriginal"),
    (0x1900, 0x194F, "Limbu"),
    (0x1950, 0x197F, "Tai_Le"),
    (0x1980, 0x19DF, "New_Tai_Lue"),
    (0x1A00, 0x1A1F, "Buginese"),
    (0x1A20, 0x1AAF, "Tai_Tham"),
    (0x1AB0, 0x1AFF, "Inherited"),
    (0x1B00, 0x1B7F, "Balinese"),
    (0x1B80, 0x1BBF, "Sundanese"),
    (0x1BC0, 0x1BFF, "Batak"),
    (0x1C00, 0x1C4F, "Lepcha"),
    (0x1C50, 0x1C7F, "Ol_Chiki"),
    (0x1C80, 0x1C8F, "Cyrillic"),
    (0x1C90, 0x1CBF, "Georgian"),
    (0x1D00, 0x1D7F, "Latin"),
    (0x1D80, 0x1DBF, "Latin"),
    (0x1DC0, 0x1DFF, "Inherited"),
    (0x1E00, 0x1EFF, "Latin"),
    (0x1F00, 0x1FFF, "Greek"),
    (0x2000, 0x206F, "Common"),
    (0x2070, 0x209F, "Common"),
    (0x20A0, 0x20CF, "Common"),
    (0x20D0, 0x20FF, "Inherited"),
    (0x2100, 0x214F, "Common"),
    (0x2150, 0x218F, "Common"),
    (0x2190, 0x2BFF, "Common"),
    (0x2C00, 0x2C5F, "Glagolitic"),
    (0x2C60, 0x2C7F, "Latin"),
    (0x2C80, 0x2CFF, "Coptic"),
    (0x2D00, 0x2D2F, "Georgian"),
    (0x2D30, 0x2D7F, "Tifinagh"),
    (0x2D80, 0x2DDF, "Ethiopic"),
    (0x2DE0, 0x2DFF, "Cyrillic"),
    (0x2E00, 0x2E7F, "Common"),
    (0x2E80, 0x2FDF, "Han"),
    (0x2FF0, 0x303F, "Common"),
    (0x3040, 0x309F, "Hiragana"),
    (0x30A0, 0x30FF, "Katakana"),
    (0x3100, 0x312F, "Bopomofo"),
    (0x3130, 0x318F, "Hangul"),
    (0x3190, 0x319F, "Common"),
    (0x31A0, 0x31BF, "Bopomofo"),
    (0x31C0, 0x31EF, "Common"),
    (0x31F0, 0x31FF, "Katakana"),
    (0x3200, 0x33FF, "Common"),
    (0x3400, 0x4DBF, "Han"),
    (0x4DC0, 0x4DFF, "Common"),
    (0x4E00, 0x9FFF, "Han"),
    (0xA000, 0xA4CF, "Yi"),
    (0xA4D0, 0xA4FF, "Lisu"),
    (0xA500, 0xA63F, "Vai"),
    (0xA640, 0xA69F, "Cyrillic"),
    (0xA6A0, 0xA6FF, "Bamum"),
    (0xA700, 0xA71F, "Common"),
    (0xA720, 0xA7FF, "Latin"),
    (0xA800, 0xA82F, "Syloti_Nagri"),
    (0xA840, 0xA87F, "Phags_Pa"),
    (0xA880, 0xA8DF, "Saurashtra"),
    (0xA8E0, 0xA8FF, "Devanagari"),
    (0xA900, 0xA92F, "Kayah_Li"),
    (0xA930, 0xA95F, "Rejang"),
    (0xA960, 0xA97F, "Hangul"),
    (0xA980, 0xA9DF, "Javanese"),
    (0xA9E0, 0xA9FF, "Myanmar"),
    (0xAA00, 0xAA5F, "Cham"),
    (0xAA60, 0xAA7F, "Myanmar"),
    (0xAA80, 0xAADF, "Tai_Viet"),
    (0xAAE0, 0xAAFF, "Meetei_Mayek"),
    (0xAB00, 0xAB2F, "Ethiopic"),
    (0xAB30, 0xAB6F, "Latin"),
    (0xAB70, 0xABBF, "Cherokee"),
    (0xABC0, 0xABFF, "Meetei_Mayek"),
    (0xAC00, 0xD7FF, "Hangul"),
    (0xF900, 0xFAFF, "Han"),
    (0xFB00, 0xFB06, "Latin"),
    (0xFB13, 0xFB17, "Armenian"),
    (0xFB1D, 0xFB4F, "Hebrew"),
    (0xFB50, 0xFDFF, "Arabic"),
    (0xFE00, 0xFE0F, "Inherited"),
    (0xFE20, 0xFE2F, "Inherited"),
    (0xFE30, 0xFE4F, "Common"),
    (0xFE70, 0xFEFF, "Arabic"),
    (0xFF00, 0xFF20, "Common"),
    (0xFF21, 0xFF3A, "Latin"),
    (0xFF3B, 0xFF40, "Common"),
    (0xFF41, 0xFF5A, "Latin"),
    (0xFF5B, 0xFF65, "Common"),
    (0xFF66, 0xFF9F, "Katakana"),
    (0xFFA0, 0xFFDC, "Hangul"),
    (0xFFE0, 0xFFEF, "Common"),
    (0x10000, 0x100FF, "Linear_B"),
    (0x10280, 0x1029F, "Lycian"),
    (0x102A0, 0x102DF, "Carian"),
    (0x10300, 0x1032F, "Old_Italic"),
    (0x10330, 0x1034F, "Gothic"),
    (0x10400, 0x1044F, "Deseret"),
    (0x10450, 0x1047F, "Shavian"),
    (0x10480, 0x104AF, "Osmanya"),
    (0x104B0, 0x104FF, "Osage"),
    (0x10800, 0x1083F, "Cypriot"),
    (0x10A00, 0x10A5F, "Kharoshthi"),
    (0x11000, 0x1107F, "Brahmi"),
    (0x118A0, 0x118FF, "Warang_Citi"),
    (0x16800, 0x16A3F, "Bamum"),
    (0x16F00, 0x16F9F, "Miao"),
    (0x17000, 0x18AFF, "Tangut"),
    (0x1B000, 0x1B16F, "Hiragana"),
    (0x1D400, 0x1D7FF, "Common"),       # mathematical alphanumerics
    (0x1E900, 0x1E95F, "Adlam"),
    (0x1F000, 0x1FAFF, "Common"),       # symbols, emoji
    (0x20000, 0x2FA1F, "Han"),
]

_RANGES.sort(key=lambda r: (r[0], r[1]))
_RANGE_STARTS = [r[0] for r in _RANGES]

#: Scripts whose letters are routinely abused in Latin-target homograph
#: attacks (used by the browser display policy and the warning UI).
HIGHLY_CONFUSABLE_SCRIPTS = frozenset({"Cyrillic", "Greek", "Armenian"})

#: All script names appearing in the embedded table.
KNOWN_SCRIPTS = frozenset(r[2] for r in _RANGES)


def script_of(char_or_codepoint: str | int) -> str:
    """Return the script name of a character.

    Accepts either a one-character string or an integer code point.  Code
    points not covered by the embedded table are classified as
    ``"Unknown"``.
    """
    if isinstance(char_or_codepoint, str):
        if len(char_or_codepoint) != 1:
            raise ValueError("script_of expects a single character")
        codepoint = ord(char_or_codepoint)
    else:
        codepoint = int(char_or_codepoint)
        if codepoint < 0 or codepoint > 0x10FFFF:
            raise ValueError(f"code point out of range: {codepoint!r}")

    # Ranges may overlap (refinements listed before broader spans); pick the
    # narrowest matching range.
    idx = bisect.bisect_right(_RANGE_STARTS, codepoint)
    best: str | None = None
    best_width = None
    for start, end, name in _RANGES[max(0, idx - 40):idx]:
        if start <= codepoint <= end:
            width = end - start
            if best_width is None or width < best_width:
                best, best_width = name, width
    return best if best is not None else "Unknown"


def scripts_of_text(text: str, *, ignore_common: bool = True) -> set[str]:
    """Return the set of scripts used in *text*.

    ``Common`` and ``Inherited`` are excluded by default because digits,
    hyphens and combining marks do not constitute a script mix on their own
    (this mirrors the browser IDN display policies).
    """
    result: set[str] = set()
    for ch in text:
        script = script_of(ch)
        if ignore_common and script in ("Common", "Inherited"):
            continue
        result.add(script)
    return result


def is_mixed_script(text: str) -> bool:
    """True if *text* mixes two or more real scripts (Common/Inherited excluded)."""
    return len(scripts_of_text(text)) > 1


def dominant_script(text: str) -> str:
    """Return the most frequent script in *text* (ties broken alphabetically).

    Returns ``"Common"`` when no character belongs to a real script.
    """
    counts: dict[str, int] = {}
    for ch in text:
        script = script_of(ch)
        if script in ("Common", "Inherited"):
            continue
        counts[script] = counts.get(script, 0) + 1
    if not counts:
        return "Common"
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
