"""Unicode substrate: blocks, scripts, IDNA2008 derived properties, code points."""

from .blocks import BLOCKS, UnicodeBlock, block_name, block_of, blocks_in_plane, iter_blocks
from .codepoint import CodePoint, codepoints_of, format_codepoint
from .idna import (
    DerivedProperty,
    derived_property,
    is_idna_permitted,
    is_pvalid,
    iter_pvalid,
    pvalid_count,
)
from .scripts import (
    HIGHLY_CONFUSABLE_SCRIPTS,
    KNOWN_SCRIPTS,
    dominant_script,
    is_mixed_script,
    script_of,
    scripts_of_text,
)
from .ucd import assigned_codepoints, assigned_count, idna_repertoire, is_assigned

__all__ = [
    "BLOCKS",
    "UnicodeBlock",
    "block_name",
    "block_of",
    "blocks_in_plane",
    "iter_blocks",
    "CodePoint",
    "codepoints_of",
    "format_codepoint",
    "DerivedProperty",
    "derived_property",
    "is_idna_permitted",
    "is_pvalid",
    "iter_pvalid",
    "pvalid_count",
    "HIGHLY_CONFUSABLE_SCRIPTS",
    "KNOWN_SCRIPTS",
    "dominant_script",
    "is_mixed_script",
    "script_of",
    "scripts_of_text",
    "assigned_codepoints",
    "assigned_count",
    "idna_repertoire",
    "is_assigned",
]
