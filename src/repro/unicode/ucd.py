"""Unicode Character Database helpers.

Small utilities built on :mod:`unicodedata` that several subsystems share:
counting assigned code points, picking representative repertoires for the
SimChar pipeline, and sampling characters by script or block for the
synthetic workloads.
"""

from __future__ import annotations

import unicodedata
from typing import Callable, Iterable, Iterator, Sequence

from .blocks import BLOCKS, UnicodeBlock, block_of
from .idna import is_pvalid

__all__ = [
    "is_assigned",
    "assigned_codepoints",
    "assigned_count",
    "idna_repertoire",
    "repertoire_by_blocks",
    "letters_in_block",
]


def is_assigned(codepoint: int) -> bool:
    """True when the code point is assigned in the running Unicode tables."""
    if 0xD800 <= codepoint <= 0xDFFF:
        return False
    return unicodedata.category(chr(codepoint)) != "Cn"


def assigned_codepoints(start: int = 0, end: int = 0x10FFFF) -> Iterator[int]:
    """Iterate over assigned code points in ``[start, end]``."""
    for cp in range(start, end + 1):
        if is_assigned(cp):
            yield cp


def assigned_count(start: int = 0, end: int = 0x10FFFF) -> int:
    """Count assigned code points in the range (full range is slow: ~1M iterations)."""
    return sum(1 for _ in assigned_codepoints(start, end))


def letters_in_block(block: UnicodeBlock, *, pvalid_only: bool = True) -> list[int]:
    """Return the letter/digit code points of a block (optionally PVALID-only)."""
    result = []
    for cp in block.codepoints():
        if not is_assigned(cp):
            continue
        if pvalid_only and not is_pvalid(cp):
            continue
        result.append(cp)
    return result


def idna_repertoire(
    blocks: Sequence[str] | None = None,
    *,
    limit_per_block: int | None = None,
    predicate: Callable[[int], bool] | None = None,
) -> list[int]:
    """Collect the IDNA-permitted code points of the named blocks.

    This is the work-list fed to the SimChar builder.  ``blocks`` may name
    any subset of the embedded block table; ``None`` means "every embedded
    block".  ``limit_per_block`` caps the number of code points taken from
    each block, which keeps the quadratic pairwise comparison tractable on a
    laptop while preserving per-block representation (documented in
    DESIGN.md as a scale substitution for the paper's 52,457-character run).
    """
    wanted: Iterable[UnicodeBlock]
    if blocks is None:
        wanted = BLOCKS
    else:
        by_name = {b.name: b for b in BLOCKS}
        missing = [name for name in blocks if name not in by_name]
        if missing:
            raise KeyError(f"unknown Unicode block(s): {missing}")
        wanted = [by_name[name] for name in blocks]

    repertoire: list[int] = []
    for block in wanted:
        taken = 0
        for cp in block.codepoints():
            if not is_assigned(cp) or not is_pvalid(cp):
                continue
            if predicate is not None and not predicate(cp):
                continue
            repertoire.append(cp)
            taken += 1
            if limit_per_block is not None and taken >= limit_per_block:
                break
    return repertoire


def repertoire_by_blocks(codepoints: Iterable[int]) -> dict[str, list[int]]:
    """Group code points by their Unicode block name."""
    grouped: dict[str, list[int]] = {}
    for cp in codepoints:
        block = block_of(cp)
        name = block.name if block is not None else "No Block"
        grouped.setdefault(name, []).append(cp)
    return grouped
