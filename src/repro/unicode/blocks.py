"""Unicode block table.

A *block* is a contiguous, named range of code points (e.g. ``Basic Latin``
is U+0000..U+007F).  The Python standard library does not expose block
names, so this module embeds the block ranges of Unicode 12.0 that matter
for IDN analysis: the whole Basic Multilingual Plane plus the Supplementary
Multilingual Plane blocks referenced by the paper (historic scripts, symbols)
and the Supplementary Ideographic Plane.

The table is not byte-for-byte identical to ``Blocks.txt`` (some very small
or unassigned ranges are merged into their neighbourhood), but every block
named in the paper — Basic Latin, Cyrillic, Greek, Armenian, Arabic, Thai,
Lao, Oriya, Hangul Syllables, CJK Unified Ideographs, Combining Diacritical
Marks, Unified Canadian Aboriginal Syllabics, Vai, Katakana, Hiragana — is
present with its real range.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["UnicodeBlock", "BLOCKS", "block_of", "block_name", "iter_blocks", "blocks_in_plane"]


@dataclass(frozen=True)
class UnicodeBlock:
    """A named contiguous range of code points."""

    name: str
    start: int
    end: int  # inclusive

    def __contains__(self, codepoint: int) -> bool:
        return self.start <= codepoint <= self.end

    def __len__(self) -> int:
        return self.end - self.start + 1

    @property
    def plane(self) -> int:
        """Unicode plane number (0 = BMP, 1 = SMP, 2 = SIP, ...)."""
        return self.start >> 16

    def codepoints(self) -> Iterator[int]:
        """Iterate over every code point in the block (assigned or not)."""
        return iter(range(self.start, self.end + 1))


# (name, start, end) — ordered by start code point.
_RAW_BLOCKS = [
    ("Basic Latin", 0x0000, 0x007F),
    ("Latin-1 Supplement", 0x0080, 0x00FF),
    ("Latin Extended-A", 0x0100, 0x017F),
    ("Latin Extended-B", 0x0180, 0x024F),
    ("IPA Extensions", 0x0250, 0x02AF),
    ("Spacing Modifier Letters", 0x02B0, 0x02FF),
    ("Combining Diacritical Marks", 0x0300, 0x036F),
    ("Greek and Coptic", 0x0370, 0x03FF),
    ("Cyrillic", 0x0400, 0x04FF),
    ("Cyrillic Supplement", 0x0500, 0x052F),
    ("Armenian", 0x0530, 0x058F),
    ("Hebrew", 0x0590, 0x05FF),
    ("Arabic", 0x0600, 0x06FF),
    ("Syriac", 0x0700, 0x074F),
    ("Arabic Supplement", 0x0750, 0x077F),
    ("Thaana", 0x0780, 0x07BF),
    ("NKo", 0x07C0, 0x07FF),
    ("Samaritan", 0x0800, 0x083F),
    ("Mandaic", 0x0840, 0x085F),
    ("Syriac Supplement", 0x0860, 0x086F),
    ("Arabic Extended-A", 0x08A0, 0x08FF),
    ("Devanagari", 0x0900, 0x097F),
    ("Bengali", 0x0980, 0x09FF),
    ("Gurmukhi", 0x0A00, 0x0A7F),
    ("Gujarati", 0x0A80, 0x0AFF),
    ("Oriya", 0x0B00, 0x0B7F),
    ("Tamil", 0x0B80, 0x0BFF),
    ("Telugu", 0x0C00, 0x0C7F),
    ("Kannada", 0x0C80, 0x0CFF),
    ("Malayalam", 0x0D00, 0x0D7F),
    ("Sinhala", 0x0D80, 0x0DFF),
    ("Thai", 0x0E00, 0x0E7F),
    ("Lao", 0x0E80, 0x0EFF),
    ("Tibetan", 0x0F00, 0x0FFF),
    ("Myanmar", 0x1000, 0x109F),
    ("Georgian", 0x10A0, 0x10FF),
    ("Hangul Jamo", 0x1100, 0x11FF),
    ("Ethiopic", 0x1200, 0x137F),
    ("Ethiopic Supplement", 0x1380, 0x139F),
    ("Cherokee", 0x13A0, 0x13FF),
    ("Unified Canadian Aboriginal Syllabics", 0x1400, 0x167F),
    ("Ogham", 0x1680, 0x169F),
    ("Runic", 0x16A0, 0x16FF),
    ("Tagalog", 0x1700, 0x171F),
    ("Hanunoo", 0x1720, 0x173F),
    ("Buhid", 0x1740, 0x175F),
    ("Tagbanwa", 0x1760, 0x177F),
    ("Khmer", 0x1780, 0x17FF),
    ("Mongolian", 0x1800, 0x18AF),
    ("Unified Canadian Aboriginal Syllabics Extended", 0x18B0, 0x18FF),
    ("Limbu", 0x1900, 0x194F),
    ("Tai Le", 0x1950, 0x197F),
    ("New Tai Lue", 0x1980, 0x19DF),
    ("Khmer Symbols", 0x19E0, 0x19FF),
    ("Buginese", 0x1A00, 0x1A1F),
    ("Tai Tham", 0x1A20, 0x1AAF),
    ("Combining Diacritical Marks Extended", 0x1AB0, 0x1AFF),
    ("Balinese", 0x1B00, 0x1B7F),
    ("Sundanese", 0x1B80, 0x1BBF),
    ("Batak", 0x1BC0, 0x1BFF),
    ("Lepcha", 0x1C00, 0x1C4F),
    ("Ol Chiki", 0x1C50, 0x1C7F),
    ("Cyrillic Extended-C", 0x1C80, 0x1C8F),
    ("Georgian Extended", 0x1C90, 0x1CBF),
    ("Sundanese Supplement", 0x1CC0, 0x1CCF),
    ("Vedic Extensions", 0x1CD0, 0x1CFF),
    ("Phonetic Extensions", 0x1D00, 0x1D7F),
    ("Phonetic Extensions Supplement", 0x1D80, 0x1DBF),
    ("Combining Diacritical Marks Supplement", 0x1DC0, 0x1DFF),
    ("Latin Extended Additional", 0x1E00, 0x1EFF),
    ("Greek Extended", 0x1F00, 0x1FFF),
    ("General Punctuation", 0x2000, 0x206F),
    ("Superscripts and Subscripts", 0x2070, 0x209F),
    ("Currency Symbols", 0x20A0, 0x20CF),
    ("Combining Diacritical Marks for Symbols", 0x20D0, 0x20FF),
    ("Letterlike Symbols", 0x2100, 0x214F),
    ("Number Forms", 0x2150, 0x218F),
    ("Arrows", 0x2190, 0x21FF),
    ("Mathematical Operators", 0x2200, 0x22FF),
    ("Miscellaneous Technical", 0x2300, 0x23FF),
    ("Control Pictures", 0x2400, 0x243F),
    ("Optical Character Recognition", 0x2440, 0x245F),
    ("Enclosed Alphanumerics", 0x2460, 0x24FF),
    ("Box Drawing", 0x2500, 0x257F),
    ("Block Elements", 0x2580, 0x259F),
    ("Geometric Shapes", 0x25A0, 0x25FF),
    ("Miscellaneous Symbols", 0x2600, 0x26FF),
    ("Dingbats", 0x2700, 0x27BF),
    ("Miscellaneous Mathematical Symbols-A", 0x27C0, 0x27EF),
    ("Supplemental Arrows-A", 0x27F0, 0x27FF),
    ("Braille Patterns", 0x2800, 0x28FF),
    ("Supplemental Arrows-B", 0x2900, 0x297F),
    ("Miscellaneous Mathematical Symbols-B", 0x2980, 0x29FF),
    ("Supplemental Mathematical Operators", 0x2A00, 0x2AFF),
    ("Miscellaneous Symbols and Arrows", 0x2B00, 0x2BFF),
    ("Glagolitic", 0x2C00, 0x2C5F),
    ("Latin Extended-C", 0x2C60, 0x2C7F),
    ("Coptic", 0x2C80, 0x2CFF),
    ("Georgian Supplement", 0x2D00, 0x2D2F),
    ("Tifinagh", 0x2D30, 0x2D7F),
    ("Ethiopic Extended", 0x2D80, 0x2DDF),
    ("Cyrillic Extended-A", 0x2DE0, 0x2DFF),
    ("Supplemental Punctuation", 0x2E00, 0x2E7F),
    ("CJK Radicals Supplement", 0x2E80, 0x2EFF),
    ("Kangxi Radicals", 0x2F00, 0x2FDF),
    ("Ideographic Description Characters", 0x2FF0, 0x2FFF),
    ("CJK Symbols and Punctuation", 0x3000, 0x303F),
    ("Hiragana", 0x3040, 0x309F),
    ("Katakana", 0x30A0, 0x30FF),
    ("Bopomofo", 0x3100, 0x312F),
    ("Hangul Compatibility Jamo", 0x3130, 0x318F),
    ("Kanbun", 0x3190, 0x319F),
    ("Bopomofo Extended", 0x31A0, 0x31BF),
    ("CJK Strokes", 0x31C0, 0x31EF),
    ("Katakana Phonetic Extensions", 0x31F0, 0x31FF),
    ("Enclosed CJK Letters and Months", 0x3200, 0x32FF),
    ("CJK Compatibility", 0x3300, 0x33FF),
    ("CJK Unified Ideographs Extension A", 0x3400, 0x4DBF),
    ("Yijing Hexagram Symbols", 0x4DC0, 0x4DFF),
    ("CJK Unified Ideographs", 0x4E00, 0x9FFF),
    ("Yi Syllables", 0xA000, 0xA48F),
    ("Yi Radicals", 0xA490, 0xA4CF),
    ("Lisu", 0xA4D0, 0xA4FF),
    ("Vai", 0xA500, 0xA63F),
    ("Cyrillic Extended-B", 0xA640, 0xA69F),
    ("Bamum", 0xA6A0, 0xA6FF),
    ("Modifier Tone Letters", 0xA700, 0xA71F),
    ("Latin Extended-D", 0xA720, 0xA7FF),
    ("Syloti Nagri", 0xA800, 0xA82F),
    ("Common Indic Number Forms", 0xA830, 0xA83F),
    ("Phags-pa", 0xA840, 0xA87F),
    ("Saurashtra", 0xA880, 0xA8DF),
    ("Devanagari Extended", 0xA8E0, 0xA8FF),
    ("Kayah Li", 0xA900, 0xA92F),
    ("Rejang", 0xA930, 0xA95F),
    ("Hangul Jamo Extended-A", 0xA960, 0xA97F),
    ("Javanese", 0xA980, 0xA9DF),
    ("Myanmar Extended-B", 0xA9E0, 0xA9FF),
    ("Cham", 0xAA00, 0xAA5F),
    ("Myanmar Extended-A", 0xAA60, 0xAA7F),
    ("Tai Viet", 0xAA80, 0xAADF),
    ("Meetei Mayek Extensions", 0xAAE0, 0xAAFF),
    ("Ethiopic Extended-A", 0xAB00, 0xAB2F),
    ("Latin Extended-E", 0xAB30, 0xAB6F),
    ("Cherokee Supplement", 0xAB70, 0xABBF),
    ("Meetei Mayek", 0xABC0, 0xABFF),
    ("Hangul Syllables", 0xAC00, 0xD7AF),
    ("Hangul Jamo Extended-B", 0xD7B0, 0xD7FF),
    ("High Surrogates", 0xD800, 0xDB7F),
    ("High Private Use Surrogates", 0xDB80, 0xDBFF),
    ("Low Surrogates", 0xDC00, 0xDFFF),
    ("Private Use Area", 0xE000, 0xF8FF),
    ("CJK Compatibility Ideographs", 0xF900, 0xFAFF),
    ("Alphabetic Presentation Forms", 0xFB00, 0xFB4F),
    ("Arabic Presentation Forms-A", 0xFB50, 0xFDFF),
    ("Variation Selectors", 0xFE00, 0xFE0F),
    ("Vertical Forms", 0xFE10, 0xFE1F),
    ("Combining Half Marks", 0xFE20, 0xFE2F),
    ("CJK Compatibility Forms", 0xFE30, 0xFE4F),
    ("Small Form Variants", 0xFE50, 0xFE6F),
    ("Arabic Presentation Forms-B", 0xFE70, 0xFEFF),
    ("Halfwidth and Fullwidth Forms", 0xFF00, 0xFFEF),
    ("Specials", 0xFFF0, 0xFFFF),
    # Supplementary Multilingual Plane (selection relevant to IDN analysis)
    ("Linear B Syllabary", 0x10000, 0x1007F),
    ("Linear B Ideograms", 0x10080, 0x100FF),
    ("Aegean Numbers", 0x10100, 0x1013F),
    ("Ancient Greek Numbers", 0x10140, 0x1018F),
    ("Ancient Symbols", 0x10190, 0x101CF),
    ("Phaistos Disc", 0x101D0, 0x101FF),
    ("Lycian", 0x10280, 0x1029F),
    ("Carian", 0x102A0, 0x102DF),
    ("Coptic Epact Numbers", 0x102E0, 0x102FF),
    ("Old Italic", 0x10300, 0x1032F),
    ("Gothic", 0x10330, 0x1034F),
    ("Old Permic", 0x10350, 0x1037F),
    ("Ugaritic", 0x10380, 0x1039F),
    ("Old Persian", 0x103A0, 0x103DF),
    ("Deseret", 0x10400, 0x1044F),
    ("Shavian", 0x10450, 0x1047F),
    ("Osmanya", 0x10480, 0x104AF),
    ("Osage", 0x104B0, 0x104FF),
    ("Elbasan", 0x10500, 0x1052F),
    ("Caucasian Albanian", 0x10530, 0x1056F),
    ("Linear A", 0x10600, 0x1077F),
    ("Cypriot Syllabary", 0x10800, 0x1083F),
    ("Imperial Aramaic", 0x10840, 0x1085F),
    ("Palmyrene", 0x10860, 0x1087F),
    ("Nabataean", 0x10880, 0x108AF),
    ("Hatran", 0x108E0, 0x108FF),
    ("Phoenician", 0x10900, 0x1091F),
    ("Lydian", 0x10920, 0x1093F),
    ("Meroitic Hieroglyphs", 0x10980, 0x1099F),
    ("Meroitic Cursive", 0x109A0, 0x109FF),
    ("Kharoshthi", 0x10A00, 0x10A5F),
    ("Old South Arabian", 0x10A60, 0x10A7F),
    ("Old North Arabian", 0x10A80, 0x10A9F),
    ("Manichaean", 0x10AC0, 0x10AFF),
    ("Avestan", 0x10B00, 0x10B3F),
    ("Inscriptional Parthian", 0x10B40, 0x10B5F),
    ("Inscriptional Pahlavi", 0x10B60, 0x10B7F),
    ("Psalter Pahlavi", 0x10B80, 0x10BAF),
    ("Old Turkic", 0x10C00, 0x10C4F),
    ("Old Hungarian", 0x10C80, 0x10CFF),
    ("Hanifi Rohingya", 0x10D00, 0x10D3F),
    ("Rumi Numeral Symbols", 0x10E60, 0x10E7F),
    ("Old Sogdian", 0x10F00, 0x10F2F),
    ("Sogdian", 0x10F30, 0x10F6F),
    ("Elymaic", 0x10FE0, 0x10FFF),
    ("Brahmi", 0x11000, 0x1107F),
    ("Kaithi", 0x11080, 0x110CF),
    ("Sora Sompeng", 0x110D0, 0x110FF),
    ("Chakma", 0x11100, 0x1114F),
    ("Mahajani", 0x11150, 0x1117F),
    ("Sharada", 0x11180, 0x111DF),
    ("Sinhala Archaic Numbers", 0x111E0, 0x111FF),
    ("Khojki", 0x11200, 0x1124F),
    ("Multani", 0x11280, 0x112AF),
    ("Khudawadi", 0x112B0, 0x112FF),
    ("Grantha", 0x11300, 0x1137F),
    ("Newa", 0x11400, 0x1147F),
    ("Tirhuta", 0x11480, 0x114DF),
    ("Siddham", 0x11580, 0x115FF),
    ("Modi", 0x11600, 0x1165F),
    ("Mongolian Supplement", 0x11660, 0x1167F),
    ("Takri", 0x11680, 0x116CF),
    ("Ahom", 0x11700, 0x1173F),
    ("Dogra", 0x11800, 0x1184F),
    ("Warang Citi", 0x118A0, 0x118FF),
    ("Nandinagari", 0x119A0, 0x119FF),
    ("Zanabazar Square", 0x11A00, 0x11A4F),
    ("Soyombo", 0x11A50, 0x11AAF),
    ("Pau Cin Hau", 0x11AC0, 0x11AFF),
    ("Bhaiksuki", 0x11C00, 0x11C6F),
    ("Marchen", 0x11C70, 0x11CBF),
    ("Masaram Gondi", 0x11D00, 0x11D5F),
    ("Gunjala Gondi", 0x11D60, 0x11DAF),
    ("Makasar", 0x11EE0, 0x11EFF),
    ("Tamil Supplement", 0x11FC0, 0x11FFF),
    ("Cuneiform", 0x12000, 0x123FF),
    ("Cuneiform Numbers and Punctuation", 0x12400, 0x1247F),
    ("Early Dynastic Cuneiform", 0x12480, 0x1254F),
    ("Egyptian Hieroglyphs", 0x13000, 0x1342F),
    ("Anatolian Hieroglyphs", 0x14400, 0x1467F),
    ("Bamum Supplement", 0x16800, 0x16A3F),
    ("Mro", 0x16A40, 0x16A6F),
    ("Bassa Vah", 0x16AD0, 0x16AFF),
    ("Pahawh Hmong", 0x16B00, 0x16B8F),
    ("Medefaidrin", 0x16E40, 0x16E9F),
    ("Miao", 0x16F00, 0x16F9F),
    ("Ideographic Symbols and Punctuation", 0x16FE0, 0x16FFF),
    ("Tangut", 0x17000, 0x187FF),
    ("Tangut Components", 0x18800, 0x18AFF),
    ("Kana Supplement", 0x1B000, 0x1B0FF),
    ("Kana Extended-A", 0x1B100, 0x1B12F),
    ("Small Kana Extension", 0x1B130, 0x1B16F),
    ("Nushu", 0x1B170, 0x1B2FF),
    ("Duployan", 0x1BC00, 0x1BC9F),
    ("Byzantine Musical Symbols", 0x1D000, 0x1D0FF),
    ("Musical Symbols", 0x1D100, 0x1D1FF),
    ("Mathematical Alphanumeric Symbols", 0x1D400, 0x1D7FF),
    ("Sutton SignWriting", 0x1D800, 0x1DAAF),
    ("Glagolitic Supplement", 0x1E000, 0x1E02F),
    ("Nyiakeng Puachue Hmong", 0x1E100, 0x1E14F),
    ("Wancho", 0x1E2C0, 0x1E2FF),
    ("Mende Kikakui", 0x1E800, 0x1E8DF),
    ("Adlam", 0x1E900, 0x1E95F),
    ("Arabic Mathematical Alphabetic Symbols", 0x1EE00, 0x1EEFF),
    ("Mahjong Tiles", 0x1F000, 0x1F02F),
    ("Domino Tiles", 0x1F030, 0x1F09F),
    ("Playing Cards", 0x1F0A0, 0x1F0FF),
    ("Enclosed Alphanumeric Supplement", 0x1F100, 0x1F1FF),
    ("Enclosed Ideographic Supplement", 0x1F200, 0x1F2FF),
    ("Miscellaneous Symbols and Pictographs", 0x1F300, 0x1F5FF),
    ("Emoticons", 0x1F600, 0x1F64F),
    ("Ornamental Dingbats", 0x1F650, 0x1F67F),
    ("Transport and Map Symbols", 0x1F680, 0x1F6FF),
    ("Alchemical Symbols", 0x1F700, 0x1F77F),
    ("Geometric Shapes Extended", 0x1F780, 0x1F7FF),
    ("Supplemental Arrows-C", 0x1F800, 0x1F8FF),
    ("Supplemental Symbols and Pictographs", 0x1F900, 0x1F9FF),
    ("Chess Symbols", 0x1FA00, 0x1FA6F),
    ("Symbols and Pictographs Extended-A", 0x1FA70, 0x1FAFF),
    # Supplementary Ideographic Plane
    ("CJK Unified Ideographs Extension B", 0x20000, 0x2A6DF),
    ("CJK Unified Ideographs Extension C", 0x2A700, 0x2B73F),
    ("CJK Unified Ideographs Extension D", 0x2B740, 0x2B81F),
    ("CJK Unified Ideographs Extension E", 0x2B820, 0x2CEAF),
    ("CJK Unified Ideographs Extension F", 0x2CEB0, 0x2EBEF),
    ("CJK Compatibility Ideographs Supplement", 0x2F800, 0x2FA1F),
]

BLOCKS: tuple[UnicodeBlock, ...] = tuple(
    UnicodeBlock(name, start, end) for name, start, end in _RAW_BLOCKS
)

_STARTS = [b.start for b in BLOCKS]


def block_of(codepoint: int) -> Optional[UnicodeBlock]:
    """Return the :class:`UnicodeBlock` containing *codepoint*, or ``None``.

    ``None`` is returned for code points that fall outside every embedded
    block (e.g. unassigned planes).
    """
    if codepoint < 0 or codepoint > 0x10FFFF:
        raise ValueError(f"code point out of range: {codepoint!r}")
    idx = bisect.bisect_right(_STARTS, codepoint) - 1
    if idx < 0:
        return None
    candidate = BLOCKS[idx]
    if codepoint in candidate:
        return candidate
    return None


def block_name(codepoint: int, default: str = "No Block") -> str:
    """Return the block name for *codepoint* (or *default*)."""
    block = block_of(codepoint)
    return block.name if block is not None else default


def iter_blocks() -> Iterator[UnicodeBlock]:
    """Iterate over all embedded blocks in code-point order."""
    return iter(BLOCKS)


def blocks_in_plane(plane: int) -> list[UnicodeBlock]:
    """Return the blocks belonging to a given Unicode plane."""
    return [b for b in BLOCKS if b.plane == plane]
