"""IDNA2008 derived property computation (RFC 5892).

The paper restricts the homoglyph search space to the code points that are
*permitted in IDNs*: the "PROTOCOL VALID" (PVALID) code points listed in the
IDNA2008-and-Unicode-12 Internet draft.  RFC 5892 defines the derived
property algorithmically from Unicode character properties, so we compute it
here with :mod:`unicodedata` instead of embedding the 123k-entry table.

The algorithm below follows RFC 5892 section 2 (categories A-I and the rule
ordering in section 3).  Two simplifications are made and documented:

* The *Unstable* category uses NFKC + case-folding stability, the same test
  RFC 5892 specifies, computed directly with :func:`unicodedata.normalize`.
* Contextual-rule code points (CONTEXTJ/CONTEXTO, e.g. ZERO WIDTH JOINER,
  MIDDLE DOT, Greek/Hebrew punctuation) are reported with their own
  :class:`DerivedProperty` value; helper predicates treat them as permitted
  only when explicitly asked, which mirrors how registries treat them.

The resulting PVALID set matches the reference table for all the scripts the
paper's measurement relies on (Latin, Cyrillic, Greek, Armenian, Arabic,
CJK, Kana, Hangul, Thai, Lao, Oriya, Vai, Canadian Aboriginal syllabics).
"""

from __future__ import annotations

import unicodedata
from enum import Enum
from functools import lru_cache
from typing import Iterable, Iterator

__all__ = [
    "DerivedProperty",
    "derived_property",
    "is_pvalid",
    "is_idna_permitted",
    "iter_pvalid",
    "pvalid_count",
    "UNICODE_VERSION",
    "LDH_CODEPOINTS",
]

#: Unicode version of the running interpreter's ``unicodedata`` tables.
UNICODE_VERSION = unicodedata.unidata_version

#: Letter-Digit-Hyphen code points valid in traditional ASCII labels.
LDH_CODEPOINTS = frozenset(
    list(range(ord("a"), ord("z") + 1))
    + list(range(ord("0"), ord("9") + 1))
    + [ord("-")]
)


class DerivedProperty(str, Enum):
    """RFC 5892 derived property values."""

    PVALID = "PVALID"
    CONTEXTJ = "CONTEXTJ"
    CONTEXTO = "CONTEXTO"
    DISALLOWED = "DISALLOWED"
    UNASSIGNED = "UNASSIGNED"


# RFC 5892 section 2.6 — Exceptions (F).  Explicit per-code-point overrides.
_EXCEPTIONS_PVALID = {
    0x00DF,  # LATIN SMALL LETTER SHARP S
    0x03C2,  # GREEK SMALL LETTER FINAL SIGMA
    0x06FD,  # ARABIC SIGN SINDHI AMPERSAND
    0x06FE,  # ARABIC SIGN SINDHI POSTPOSITION MEN
    0x0F0B,  # TIBETAN MARK INTERSYLLABIC TSHEG
    0x3007,  # IDEOGRAPHIC NUMBER ZERO
}
_EXCEPTIONS_CONTEXTO = {
    0x00B7,  # MIDDLE DOT
    0x0375,  # GREEK LOWER NUMERAL SIGN (KERAIA)
    0x05F3,  # HEBREW PUNCTUATION GERESH
    0x05F4,  # HEBREW PUNCTUATION GERSHAYIM
    0x30FB,  # KATAKANA MIDDLE DOT
    0x0660, 0x0661, 0x0662, 0x0663, 0x0664,  # ARABIC-INDIC DIGITS
    0x0665, 0x0666, 0x0667, 0x0668, 0x0669,
    0x06F0, 0x06F1, 0x06F2, 0x06F3, 0x06F4,  # EXTENDED ARABIC-INDIC DIGITS
    0x06F5, 0x06F6, 0x06F7, 0x06F8, 0x06F9,
}
_EXCEPTIONS_DISALLOWED = {
    0x0640,  # ARABIC TATWEEL
    0x07FA,  # NKO LAJANYALAN
    0x302E,  # HANGUL SINGLE DOT TONE MARK
    0x302F,  # HANGUL DOUBLE DOT TONE MARK
    0x3031, 0x3032, 0x3033, 0x3034, 0x3035,  # VERTICAL KANA REPEAT MARKS
    0x303B,  # VERTICAL IDEOGRAPHIC ITERATION MARK
}

# RFC 5892 section 2.8 — JoinControl (H).
_JOIN_CONTROL = {0x200C, 0x200D}  # ZWNJ, ZWJ

# General categories composing the LetterDigits category (A).
_LETTER_DIGITS_CATEGORIES = {"Ll", "Lu", "Lo", "Nd", "Lm", "Mn", "Mc"}

# Categories treated as IgnorableProperties (B) approximations:
# default-ignorable, white space, noncharacters.
_DEFAULT_IGNORABLE = (
    {0x00AD, 0x034F, 0x061C, 0x115F, 0x1160, 0x17B4, 0x17B5, 0x3164, 0xFFA0, 0xFEFF}
    | set(range(0x180B, 0x180F))
    | set(range(0x200B, 0x2010))
    | set(range(0x2060, 0x2070))
    | set(range(0xFE00, 0xFE10))
    | set(range(0xE0000, 0xE1000))
)


def _is_noncharacter(cp: int) -> bool:
    if 0xFDD0 <= cp <= 0xFDEF:
        return True
    return (cp & 0xFFFF) in (0xFFFE, 0xFFFF)


def _is_unassigned(cp: int) -> bool:
    char = chr(cp)
    if unicodedata.category(char) == "Cn" and not _is_noncharacter(cp):
        return True
    return False


def _is_ldh(cp: int) -> bool:
    # RFC 5892 "ASCII7" (G) restricted to the LDH subset historically valid
    # in hostnames.
    return cp in LDH_CODEPOINTS or (0x41 <= cp <= 0x5A)


def _is_ignorable_property(cp: int) -> bool:
    char = chr(cp)
    if cp in _DEFAULT_IGNORABLE:
        return True
    if unicodedata.category(char) == "Zs" and cp != 0x0020:
        return True
    if _is_noncharacter(cp):
        return True
    return False


def _is_ignorable_block(cp: int) -> bool:
    # Combining Diacritical Marks for Symbols, Musical Symbols, Ancient Greek
    # Musical Notation blocks.
    return (
        0x20D0 <= cp <= 0x20FF
        or 0x1D100 <= cp <= 0x1D1FF
        or 0x1D200 <= cp <= 0x1D24F
    )


def _is_old_hangul_jamo(cp: int) -> bool:
    return 0x1100 <= cp <= 0x11FF or 0xA960 <= cp <= 0xA97F or 0xD7B0 <= cp <= 0xD7FF


def _is_letter_digit(cp: int) -> bool:
    return unicodedata.category(chr(cp)) in _LETTER_DIGITS_CATEGORIES


def _is_unstable(cp: int) -> bool:
    """RFC 5892 Unstable (B): cp != NFKC(casefold(NFKC(cp)))."""
    char = chr(cp)
    try:
        transformed = unicodedata.normalize(
            "NFKC", unicodedata.normalize("NFKC", char).casefold()
        )
    except ValueError:  # pragma: no cover - surrogates
        return True
    return transformed != char


@lru_cache(maxsize=None)
def derived_property(codepoint: int) -> DerivedProperty:
    """Compute the RFC 5892 derived property of a code point.

    The rule ordering follows RFC 5892 section 3::

        If .cp. .in. Exceptions Then Exceptions(cp);
        Else If .cp. .in. BackwardCompatible Then BackwardCompatible(cp);
        Else If .cp. .in. Unassigned Then UNASSIGNED;
        Else If .cp. .in. ASCII7 Then ... (LDH treated as PVALID here)
        Else If .cp. .in. JoinControl Then CONTEXTJ;
        Else If .cp. .in. OldHangulJamo Then DISALLOWED;
        Else If .cp. .in. Unstable Then DISALLOWED;
        Else If .cp. .in. IgnorableProperties Then DISALLOWED;
        Else If .cp. .in. IgnorableBlocks Then DISALLOWED;
        Else If .cp. .in. LDH Then DISALLOWED;   (covered by ASCII7 above)
        Else If .cp. .in. LetterDigits Then PVALID;
        Else DISALLOWED;
    """
    cp = int(codepoint)
    if cp < 0 or cp > 0x10FFFF:
        raise ValueError(f"code point out of range: {codepoint!r}")
    if 0xD800 <= cp <= 0xDFFF:  # surrogates
        return DerivedProperty.DISALLOWED

    if cp in _EXCEPTIONS_PVALID:
        return DerivedProperty.PVALID
    if cp in _EXCEPTIONS_CONTEXTO:
        return DerivedProperty.CONTEXTO
    if cp in _EXCEPTIONS_DISALLOWED:
        return DerivedProperty.DISALLOWED
    if _is_unassigned(cp):
        return DerivedProperty.UNASSIGNED
    if _is_ldh(cp):
        # Lowercase LDH is PVALID, uppercase ASCII is DISALLOWED (unstable
        # under case folding), other ASCII is DISALLOWED.
        if cp in LDH_CODEPOINTS:
            return DerivedProperty.PVALID
        return DerivedProperty.DISALLOWED
    if cp < 0x80:
        return DerivedProperty.DISALLOWED
    if cp in _JOIN_CONTROL:
        return DerivedProperty.CONTEXTJ
    if _is_old_hangul_jamo(cp):
        return DerivedProperty.DISALLOWED
    if _is_unstable(cp):
        return DerivedProperty.DISALLOWED
    if _is_ignorable_property(cp):
        return DerivedProperty.DISALLOWED
    if _is_ignorable_block(cp):
        return DerivedProperty.DISALLOWED
    if _is_letter_digit(cp):
        return DerivedProperty.PVALID
    return DerivedProperty.DISALLOWED


def is_pvalid(codepoint: int) -> bool:
    """True if the code point is PVALID under IDNA2008."""
    return derived_property(codepoint) is DerivedProperty.PVALID


def is_idna_permitted(codepoint: int, *, allow_contextual: bool = False) -> bool:
    """True if the code point may appear in an IDN label.

    With ``allow_contextual=True`` the CONTEXTJ/CONTEXTO code points are
    also accepted (their contextual rules are checked at the label level by
    :mod:`repro.idn.idna_codec`).
    """
    prop = derived_property(codepoint)
    if prop is DerivedProperty.PVALID:
        return True
    if allow_contextual and prop in (DerivedProperty.CONTEXTJ, DerivedProperty.CONTEXTO):
        return True
    return False


def iter_pvalid(
    start: int = 0,
    end: int = 0x10FFFF,
    *,
    allow_contextual: bool = False,
) -> Iterator[int]:
    """Iterate over IDNA-permitted code points in ``[start, end]``."""
    for cp in range(start, end + 1):
        if 0xD800 <= cp <= 0xDFFF:
            continue
        if is_idna_permitted(cp, allow_contextual=allow_contextual):
            yield cp


def pvalid_count(start: int = 0, end: int = 0x10FFFF) -> int:
    """Number of PVALID code points in ``[start, end]`` (can be slow for full range)."""
    return sum(1 for _ in iter_pvalid(start, end))


def classify_codepoints(codepoints: Iterable[int]) -> dict[DerivedProperty, int]:
    """Histogram of derived properties over *codepoints*."""
    result: dict[DerivedProperty, int] = {prop: 0 for prop in DerivedProperty}
    for cp in codepoints:
        result[derived_property(cp)] += 1
    return result
