"""VirusTotal-like URL scanner aggregate.

The paper uses VirusTotal to double-check redirecting homographs.  The
simulated scanner aggregates a fixed set of engines; a domain's detection
count is derived deterministically from its profile (malicious domains are
flagged by several engines, benign ones occasionally receive a single
false positive, mirroring how practitioners threshold VT results).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .hosting import SyntheticWeb

__all__ = ["VirusTotalReport", "VirusTotalClient"]

_ENGINES = (
    "AegisLab", "AlphaSOC", "BitDefender", "CRDF", "Certego", "CyRadar",
    "ESET", "Emsisoft", "Forcepoint", "Fortinet", "GData", "Kaspersky",
    "Lionic", "MalwareDomainList", "OpenPhish", "PhishLabs", "Phishtank",
    "Sophos", "Spamhaus", "Trustwave", "URLhaus", "Webroot",
)


@dataclass(frozen=True)
class VirusTotalReport:
    """Scan result for one domain/URL."""

    domain: str
    positives: int
    total: int
    engines: tuple[str, ...]

    @property
    def is_malicious(self) -> bool:
        """Practitioner's rule of thumb: two or more engines flagging."""
        return self.positives >= 2


class VirusTotalClient:
    """Deterministic VirusTotal stand-in over the synthetic web."""

    def __init__(self, web: SyntheticWeb, *, detection_rate: float = 0.5) -> None:
        if not 0.0 <= detection_rate <= 1.0:
            raise ValueError("detection_rate must be within [0, 1]")
        self.web = web
        self.detection_rate = detection_rate

    def scan(self, domain: str) -> VirusTotalReport:
        """Scan a domain and return the aggregated engine verdicts."""
        domain = domain.lower().rstrip(".")
        profile = self.web.get(domain)
        flagged: list[str] = []
        if profile is not None and profile.malicious:
            for engine in _ENGINES:
                digest = hashlib.sha256(f"{engine}:{domain}".encode()).digest()
                if digest[0] / 255.0 < self.detection_rate:
                    flagged.append(engine)
            if len(flagged) < 2:  # malicious domains are caught by at least two engines
                flagged = list(_ENGINES[:2])
        else:
            digest = hashlib.sha256(f"fp:{domain}".encode()).digest()
            if digest[0] < 3:  # ~1% single-engine false positive rate
                flagged = [_ENGINES[digest[1] % len(_ENGINES)]]
        return VirusTotalReport(domain, len(flagged), len(_ENGINES), tuple(flagged))

    def scan_all(self, domains: list[str]) -> dict[str, VirusTotalReport]:
        """Scan a batch of domains."""
        return {domain: self.scan(domain) for domain in domains}
