"""Synthetic web hosting model.

The deep inspection of detected homographs (paper Section 6.2) needs to
know, for each registered domain, how its website behaves: does it resolve,
which ports answer, is it parked, does it redirect, is it a phishing page,
does it have MX records, how often is it looked up.  In the paper this
information comes from the live Internet; here it is synthesised into
:class:`WebsiteProfile` objects by the measurement generator and served to
the DNS resolver, port scanner, crawler and blacklists through
:class:`SyntheticWeb`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from ..dns.records import RRType, ResourceRecord
from ..dns.resolver import AuthoritativeStore

__all__ = ["SiteCategory", "RedirectIntent", "WebsiteProfile", "SyntheticWeb"]


class SiteCategory(str, Enum):
    """Website behaviour classes used in the paper's Tables 11-12."""

    PARKED = "Domain parking"
    FOR_SALE = "For sale"
    REDIRECT = "Redirect"
    NORMAL = "Normal"
    EMPTY = "Empty"
    ERROR = "Error"
    PHISHING = "Phishing"
    PORTAL = "Portal"
    UNREGISTERED = "Unregistered"


class RedirectIntent(str, Enum):
    """Why a homograph redirects somewhere else (Table 13)."""

    BRAND_PROTECTION = "Brand protection"
    LEGITIMATE = "Legitimate website"
    MALICIOUS = "Malicious website"


@dataclass
class WebsiteProfile:
    """Everything the simulated Internet knows about one domain."""

    domain: str
    registered: bool = True
    has_ns: bool = True
    has_a: bool = True
    open_ports: frozenset[int] = frozenset({80, 443})
    category: SiteCategory = SiteCategory.NORMAL
    redirect_target: str | None = None
    redirect_intent: RedirectIntent | None = None
    parking_ns: str | None = None
    nameservers: tuple[str, ...] = ()
    has_mx: bool = False
    had_mx_in_past: bool = False
    lookups: int = 0
    malicious: bool = False
    blacklist_feeds: frozenset[str] = frozenset()
    cloaking: bool = False
    linked_on_web: bool = False
    linked_on_sns: bool = False
    page_title: str = ""
    target_of: str | None = None  # the legitimate domain a homograph imitates

    def __post_init__(self) -> None:
        self.domain = self.domain.lower().rstrip(".")
        if self.redirect_target is not None:
            self.redirect_target = self.redirect_target.lower().rstrip(".")
        if not self.registered:
            self.has_ns = False
            self.has_a = False
            self.open_ports = frozenset()
            self.category = SiteCategory.UNREGISTERED
        if not self.has_a:
            self.open_ports = frozenset()

    @property
    def reachable(self) -> bool:
        """True when a web port answers."""
        return bool(self.open_ports & {80, 443})

    @property
    def is_parked(self) -> bool:
        """True when the domain is held by a parking provider."""
        return self.category is SiteCategory.PARKED or self.parking_ns is not None


class SyntheticWeb:
    """The simulated Internet: hosting model + DNS publication."""

    def __init__(self, profiles: Iterable[WebsiteProfile] = ()) -> None:
        self._profiles: dict[str, WebsiteProfile] = {}
        for profile in profiles:
            self.add(profile)

    # -- population ----------------------------------------------------------

    def add(self, profile: WebsiteProfile) -> None:
        """Add (or replace) a domain's profile."""
        self._profiles[profile.domain] = profile

    def get(self, domain: str) -> WebsiteProfile | None:
        """Profile of a domain, or ``None`` for never-seen domains."""
        return self._profiles.get(domain.lower().rstrip("."))

    def __contains__(self, domain: str) -> bool:
        return domain.lower().rstrip(".") in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[WebsiteProfile]:
        return iter(self._profiles.values())

    def domains(self) -> list[str]:
        """All known domains."""
        return sorted(self._profiles)

    # -- host model (port scanner protocol) ---------------------------------------

    def open_ports(self, domain: str) -> set[int]:
        """Open TCP ports of the host serving *domain* (empty when unknown/down)."""
        profile = self.get(domain)
        if profile is None or not profile.registered:
            return set()
        return set(profile.open_ports)

    # -- DNS publication ------------------------------------------------------------

    def publish_dns(self, store: AuthoritativeStore) -> None:
        """Publish NS/A/MX records of every registered profile into a store."""
        for profile in self._profiles.values():
            if not profile.registered or not profile.has_ns:
                continue
            nameservers = profile.nameservers or (
                (profile.parking_ns,) if profile.parking_ns else (f"ns1.{profile.domain}",)
            )
            for ns in nameservers:
                if ns:
                    store.add(ResourceRecord(profile.domain, RRType.NS, ns))
            if profile.has_a:
                store.add(ResourceRecord(profile.domain, RRType.A, _fake_address(profile.domain)))
            if profile.has_mx:
                store.add(ResourceRecord(profile.domain, RRType.MX, f"10 mail.{profile.domain}"))

    # -- convenience views ---------------------------------------------------------------

    def lookup_counts(self) -> dict[str, int]:
        """Per-domain lookup counts (feeds the passive DNS collector)."""
        return {p.domain: p.lookups for p in self._profiles.values() if p.lookups > 0}

    def profiles_by_category(self, category: SiteCategory) -> list[WebsiteProfile]:
        """All profiles of a given category."""
        return [p for p in self._profiles.values() if p.category is category]


def _fake_address(domain: str) -> str:
    """Deterministic RFC 5737 documentation address for a domain."""
    digest = sum(domain.encode("utf-8"))
    return f"203.0.113.{digest % 254 + 1}"
