"""Website classification (paper Section 6.2, Tables 12-13).

Active IDN homographs are classified into six categories — *Domain
parking*, *For sale*, *Redirect*, *Normal*, *Empty*, *Error* — using the
NS records of parking providers, the HTTP responses, and the rendered
page; redirecting homographs are further classified by intent into *Brand
protection*, *Legitimate website* and *Malicious website* using the
redirect target and the blacklist/VirusTotal verdicts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .blacklist import BlacklistAggregator
from .crawler import Crawler, CrawlResult
from .hosting import RedirectIntent, SiteCategory, SyntheticWeb
from .parking import parking_provider_of

__all__ = ["ClassifiedSite", "WebsiteClassifier", "ClassificationReport"]


@dataclass(frozen=True)
class ClassifiedSite:
    """Classification outcome for one domain."""

    domain: str
    category: SiteCategory
    redirect_target: str | None = None
    redirect_intent: RedirectIntent | None = None
    parking_provider: str | None = None


@dataclass
class ClassificationReport:
    """Aggregate of a classification campaign."""

    sites: list[ClassifiedSite] = field(default_factory=list)

    def category_counts(self) -> Counter:
        """Counts per category (Table 12)."""
        return Counter(site.category.value for site in self.sites)

    def redirect_intent_counts(self) -> Counter:
        """Counts per redirect intent (Table 13)."""
        return Counter(
            site.redirect_intent.value
            for site in self.sites
            if site.redirect_intent is not None
        )

    def sites_in_category(self, category: SiteCategory) -> list[ClassifiedSite]:
        """All sites classified into *category*."""
        return [site for site in self.sites if site.category is category]

    def as_table_rows(self) -> list[tuple[str, int]]:
        """Rows in the shape of the paper's Table 12 (fixed category order)."""
        counts = self.category_counts()
        order = [
            SiteCategory.PARKED,
            SiteCategory.FOR_SALE,
            SiteCategory.REDIRECT,
            SiteCategory.NORMAL,
            SiteCategory.EMPTY,
            SiteCategory.ERROR,
        ]
        rows = [(category.value, counts.get(category.value, 0)) for category in order]
        rows.append(("Total", len(self.sites)))
        return rows

    def __len__(self) -> int:
        return len(self.sites)


class WebsiteClassifier:
    """Classifies crawled homograph websites."""

    def __init__(
        self,
        web: SyntheticWeb,
        *,
        crawler: Crawler | None = None,
        blacklists: BlacklistAggregator | None = None,
        reference_targets: Mapping[str, str] | None = None,
    ) -> None:
        self.web = web
        self.crawler = crawler if crawler is not None else Crawler(web)
        self.blacklists = blacklists
        #: homograph domain -> original (targeted) domain, used to recognise
        #: brand-protection redirects.
        self.reference_targets = dict(reference_targets or {})

    # -- single-domain classification ------------------------------------------

    def classify(self, domain: str) -> ClassifiedSite:
        """Classify one (active) domain."""
        domain = domain.lower().rstrip(".")
        profile = self.web.get(domain)
        nameservers = profile.nameservers if profile is not None else ()
        if profile is not None and profile.parking_ns:
            nameservers = nameservers + (profile.parking_ns,)
        provider = parking_provider_of(nameservers)
        if provider is not None:
            return ClassifiedSite(domain, SiteCategory.PARKED, parking_provider=provider)

        crawl = self.crawler.fetch(domain, scheme="http")
        if crawl.error is not None and not crawl.responses:
            https_crawl = self.crawler.fetch(domain, scheme="https")
            crawl = https_crawl if https_crawl.responses else crawl

        return self._classify_from_crawl(domain, crawl)

    def _classify_from_crawl(self, domain: str, crawl: CrawlResult) -> ClassifiedSite:
        final = crawl.final_response
        if final is None or crawl.error is not None and not crawl.responses:
            return ClassifiedSite(domain, SiteCategory.ERROR)
        if not final.ok and not final.is_redirect:
            return ClassifiedSite(domain, SiteCategory.ERROR)

        first = crawl.responses[0]
        if first.is_redirect or crawl.redirected_offsite:
            target = (crawl.final_url or "").split("//")[-1].split("/")[0].rstrip(".")
            intent = self._redirect_intent(domain, target)
            return ClassifiedSite(domain, SiteCategory.REDIRECT, redirect_target=target,
                                  redirect_intent=intent)

        body = final.body.lower()
        if "for sale" in body or "make an offer" in body:
            return ClassifiedSite(domain, SiteCategory.FOR_SALE)
        if "parked" in body or "related searches" in body:
            return ClassifiedSite(domain, SiteCategory.PARKED)
        if _is_empty_body(body):
            return ClassifiedSite(domain, SiteCategory.EMPTY)
        return ClassifiedSite(domain, SiteCategory.NORMAL)

    def _redirect_intent(self, domain: str, target: str) -> RedirectIntent:
        original = self.reference_targets.get(domain)
        if original is not None and _same_site(target, original):
            return RedirectIntent.BRAND_PROTECTION
        if self.blacklists is not None and (
            self.blacklists.is_listed(domain) or self.blacklists.is_listed(target)
        ):
            return RedirectIntent.MALICIOUS
        profile = self.web.get(domain)
        if profile is not None and profile.malicious:
            return RedirectIntent.MALICIOUS
        return RedirectIntent.LEGITIMATE

    # -- campaigns -----------------------------------------------------------------

    def classify_many(self, domains: Iterable[str]) -> list[ClassifiedSite]:
        """Batched classification, results in input order (pipeline API)."""
        return [self.classify(domain) for domain in domains]

    def classify_all(self, domains: Iterable[str]) -> ClassificationReport:
        """Classify a whole set of (active) domains."""
        return ClassificationReport(self.classify_many(domains))


def _is_empty_body(body: str) -> bool:
    stripped = (
        body.replace("<html>", "").replace("</html>", "")
        .replace("<body>", "").replace("</body>", "").strip()
    )
    return not stripped


def _same_site(first: str, second: str) -> bool:
    return first.lower().rstrip(".") == second.lower().rstrip(".")
