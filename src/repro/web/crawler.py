"""Simulated web crawler (puppeteer substitute).

The paper drives a headless Chrome (puppeteer) at every active homograph
over HTTP and HTTPS, takes a screenshot, and classifies the page.  Here the
crawler synthesises the HTTP conversation from the domain's
:class:`~repro.web.hosting.WebsiteProfile`: status code, body markers
(parking/for-sale templates, empty pages), redirect chains (including the
cloaking behaviour the paper found on the gmail phishing homograph), and a
deterministic "screenshot signature" standing in for the screenshot image.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from .hosting import SiteCategory, SyntheticWeb, WebsiteProfile

__all__ = ["HTTPResponse", "CrawlResult", "Crawler", "DEFAULT_USER_AGENT"]

DEFAULT_USER_AGENT = "Mozilla/5.0 (ShamFinder reproduction crawler)"

_PARKING_BODY = "<html><body>This domain is parked. Related searches: {domain}</body></html>"
_FOR_SALE_BODY = "<html><body>The domain {domain} is for sale! Make an offer today.</body></html>"
_PHISHING_BODY = "<html><body><form action='/login'>Sign in to continue to {target}</form></body></html>"
_NORMAL_BODY = "<html><body><h1>{title}</h1><p>Welcome to {domain}.</p></body></html>"
_EMPTY_BODY = "<html><body></body></html>"


@dataclass(frozen=True)
class HTTPResponse:
    """A single HTTP exchange."""

    url: str
    status: int
    body: str = ""
    location: str | None = None

    @property
    def is_redirect(self) -> bool:
        """True for 3xx responses carrying a Location header."""
        return 300 <= self.status < 400 and self.location is not None

    @property
    def ok(self) -> bool:
        """True for 2xx responses."""
        return 200 <= self.status < 300


@dataclass
class CrawlResult:
    """Outcome of crawling one domain over one scheme."""

    domain: str
    scheme: str
    responses: list[HTTPResponse] = field(default_factory=list)
    error: str | None = None

    @property
    def final_response(self) -> HTTPResponse | None:
        """Last response in the redirect chain (``None`` on connection error)."""
        return self.responses[-1] if self.responses else None

    @property
    def final_url(self) -> str | None:
        """URL the browser ends up on."""
        final = self.final_response
        return final.url if final is not None else None

    @property
    def redirected_offsite(self) -> bool:
        """True when the chain left the original domain."""
        final = self.final_url
        if final is None:
            return False
        host = final.split("/")[2] if "//" in final else final
        return host.lower().rstrip(".") != self.domain

    @property
    def screenshot_signature(self) -> str:
        """Deterministic stand-in for the page screenshot (hash of the final body)."""
        final = self.final_response
        if final is None:
            return ""
        return hashlib.sha256(final.body.encode("utf-8")).hexdigest()[:16]


class Crawler:
    """Headless-browser-like crawler over the synthetic web."""

    def __init__(self, web: SyntheticWeb, *, user_agent: str = DEFAULT_USER_AGENT,
                 max_redirects: int = 5) -> None:
        self.web = web
        self.user_agent = user_agent
        self.max_redirects = max_redirects

    # -- fetching ----------------------------------------------------------------

    def fetch(self, domain: str, *, scheme: str = "http", user_agent: str | None = None) -> CrawlResult:
        """Fetch a domain, following redirects within the synthetic web."""
        agent = user_agent if user_agent is not None else self.user_agent
        result = CrawlResult(domain=domain.lower().rstrip("."), scheme=scheme)
        current = result.domain
        for _hop in range(self.max_redirects + 1):
            profile = self.web.get(current)
            url = f"{scheme}://{current}/"
            if profile is None or not profile.reachable:
                if current == result.domain:
                    result.error = "connection refused"
                    return result
                # Off-site target outside the synthetic web: treat as a plain page.
                result.responses.append(HTTPResponse(url, 200, _NORMAL_BODY.format(
                    title=current, domain=current)))
                return result
            if scheme == "https" and 443 not in profile.open_ports:
                result.error = "tls handshake failed"
                return result
            response = self._respond(profile, url, agent)
            result.responses.append(response)
            if not response.is_redirect:
                return result
            target = response.location or ""
            current = target.split("//")[-1].split("/")[0].lower().rstrip(".")
        result.error = "too many redirects"
        return result

    def crawl_all(self, domains: Iterable[str], *, schemes: tuple[str, ...] = ("http", "https")) -> dict[str, dict[str, CrawlResult]]:
        """Crawl every domain over every scheme (paper: HTTP and HTTPS)."""
        results: dict[str, dict[str, CrawlResult]] = {}
        for domain in domains:
            results[domain] = {scheme: self.fetch(domain, scheme=scheme) for scheme in schemes}
        return results

    # -- behaviour synthesis -------------------------------------------------------

    def _respond(self, profile: WebsiteProfile, url: str, user_agent: str) -> HTTPResponse:
        domain = profile.domain
        category = profile.category
        if profile.cloaking and "bot" in user_agent.lower():
            # Cloaking sites show an innocuous page to crawlers identifying
            # themselves as bots (paper Section 6.2).
            return HTTPResponse(url, 200, _NORMAL_BODY.format(title="Welcome", domain=domain))
        if category is SiteCategory.REDIRECT and profile.redirect_target:
            return HTTPResponse(url, 302, "", location=f"http://{profile.redirect_target}/")
        if category is SiteCategory.PARKED:
            return HTTPResponse(url, 200, _PARKING_BODY.format(domain=domain))
        if category is SiteCategory.FOR_SALE:
            return HTTPResponse(url, 200, _FOR_SALE_BODY.format(domain=domain))
        if category is SiteCategory.PHISHING:
            target = profile.target_of or domain
            if profile.cloaking:
                # Victims get bounced to the credential-harvesting page.
                return HTTPResponse(url, 302, "", location=f"http://login.{domain}/")
            return HTTPResponse(url, 200, _PHISHING_BODY.format(target=target))
        if category is SiteCategory.EMPTY:
            return HTTPResponse(url, 200, _EMPTY_BODY)
        if category is SiteCategory.ERROR:
            return HTTPResponse(url, 503, "Service Unavailable")
        title = profile.page_title or domain
        return HTTPResponse(url, 200, _NORMAL_BODY.format(title=title, domain=domain))
