"""Domain blacklists (hpHosts, Google Safe Browsing, Symantec DeepSight).

The paper checks detected homographs against three blacklist feeds of very
different sizes: the community-maintained hpHosts (largest, collected over
years), Google Safe Browsing and Symantec DeepSight (smaller, curated by
vendors).  This module models a feed as a named set of domains and provides
the aggregator used by the maliciousness analysis (Table 14).  The
measurement synthesiser populates the feeds from the malicious profiles of
the synthetic web with per-feed coverage probabilities mirroring the
paper's relative feed sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["Blacklist", "BlacklistAggregator", "DEFAULT_FEED_COVERAGE"]

#: Default probability that a malicious domain appears in each feed.  The
#: ratios follow the paper's Table 14 (hpHosts ≫ GSB > Symantec).
DEFAULT_FEED_COVERAGE: dict[str, float] = {
    "hpHosts": 0.90,
    "GSB": 0.05,
    "Symantec": 0.03,
}


@dataclass
class Blacklist:
    """One blacklist feed."""

    name: str
    entries: set[str] = field(default_factory=set)

    def add(self, domain: str) -> None:
        """Add a domain to the feed."""
        self.entries.add(domain.lower().rstrip("."))

    def add_many(self, domains: Iterable[str]) -> None:
        """Add several domains."""
        for domain in domains:
            self.add(domain)

    def __contains__(self, domain: str) -> bool:
        return domain.lower().rstrip(".") in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def hits(self, domains: Iterable[str]) -> list[str]:
        """Domains from *domains* present in this feed."""
        return [d for d in domains if d in self]


class BlacklistAggregator:
    """A set of blacklist feeds queried together."""

    def __init__(self, feeds: Iterable[Blacklist] = ()) -> None:
        self._feeds: dict[str, Blacklist] = {}
        for feed in feeds:
            self.add_feed(feed)

    @classmethod
    def with_default_feeds(cls) -> "BlacklistAggregator":
        """Aggregator with empty hpHosts / GSB / Symantec feeds."""
        return cls(Blacklist(name) for name in DEFAULT_FEED_COVERAGE)

    def add_feed(self, feed: Blacklist) -> None:
        """Register a feed."""
        self._feeds[feed.name] = feed

    def feed(self, name: str) -> Blacklist:
        """Look up a feed by name."""
        try:
            return self._feeds[name]
        except KeyError:
            raise KeyError(f"no blacklist feed named {name!r}; have {sorted(self._feeds)}") from None

    def feed_names(self) -> list[str]:
        """Names of the registered feeds."""
        return sorted(self._feeds)

    def is_listed(self, domain: str) -> bool:
        """True when any feed lists the domain."""
        return any(domain in feed for feed in self._feeds.values())

    def feeds_listing(self, domain: str) -> list[str]:
        """Names of the feeds listing the domain."""
        return sorted(name for name, feed in self._feeds.items() if domain in feed)

    def feeds_listing_many(self, domains: Iterable[str]) -> list[list[str]]:
        """Batched :meth:`feeds_listing`, in input order (pipeline API).

        Normalises each domain once instead of once per feed, so checking a
        large candidate set against every feed stays O(domains · feeds) set
        probes.
        """
        feeds = sorted(self._feeds.items())
        return [
            [name for name, feed in feeds if normalized in feed.entries]
            for normalized in (d.lower().rstrip(".") for d in domains)
        ]

    def hits_by_feed(self, domains: Iterable[str]) -> dict[str, list[str]]:
        """Per-feed hits over a candidate set (Table 14 columns)."""
        domains = list(domains)
        return {name: feed.hits(domains) for name, feed in sorted(self._feeds.items())}

    def hit_counts(self, domains: Iterable[str]) -> dict[str, int]:
        """Per-feed hit counts over a candidate set."""
        return {name: len(hits) for name, hits in self.hits_by_feed(domains).items()}

    def union_hits(self, domains: Iterable[str]) -> set[str]:
        """Domains listed by at least one feed."""
        result: set[str] = set()
        for hits in self.hits_by_feed(domains).values():
            result.update(hits)
        return result

    def load_from(self, mapping: Mapping[str, Iterable[str]]) -> None:
        """Bulk-load feeds from a mapping of feed name to domains."""
        for name, domains in mapping.items():
            if name not in self._feeds:
                self.add_feed(Blacklist(name))
            self._feeds[name].add_many(domains)
