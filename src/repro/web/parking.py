"""Domain-parking detection by NS records.

The paper classifies a homograph as parked when its NS records point to a
known domain-parking provider (the list is compiled following Vissers et
al., NDSS 2015 and DomainChroma; the paper ends up with 17 NS patterns).
This module embeds that provider list and the matching logic.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["PARKING_NS_SUFFIXES", "is_parking_nameserver", "parking_provider_of"]

#: Name server suffixes operated by domain-parking companies (17 entries, as
#: in the paper's compiled list).
PARKING_NS_SUFFIXES: tuple[str, ...] = (
    "sedoparking.com",
    "parkingcrew.net",
    "bodis.com",
    "parklogic.com",
    "above.com",
    "voodoo.com",
    "dsredirection.com",
    "fabulous.com",
    "domaincontrol.com",
    "cashparking.com",
    "namedrive.com",
    "rookmedia.net",
    "smartname.com",
    "domainapps.com",
    "parked.com",
    "uniregistrymarket.link",
    "undeveloped.com",
)


def is_parking_nameserver(nameserver: str) -> bool:
    """True when a name server belongs to a known parking provider."""
    host = nameserver.lower().rstrip(".")
    return any(host == suffix or host.endswith("." + suffix) for suffix in PARKING_NS_SUFFIXES)


def parking_provider_of(nameservers: Iterable[str]) -> str | None:
    """Return the parking provider suffix matched by any NS, or ``None``."""
    for nameserver in nameservers:
        host = nameserver.lower().rstrip(".")
        for suffix in PARKING_NS_SUFFIXES:
            if host == suffix or host.endswith("." + suffix):
                return suffix
    return None
