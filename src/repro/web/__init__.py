"""Web measurement substrate: hosting model, crawler, classifier, parking, blacklists."""

from .blacklist import DEFAULT_FEED_COVERAGE, Blacklist, BlacklistAggregator
from .classifier import ClassificationReport, ClassifiedSite, WebsiteClassifier
from .crawler import Crawler, CrawlResult, HTTPResponse
from .hosting import RedirectIntent, SiteCategory, SyntheticWeb, WebsiteProfile
from .parking import PARKING_NS_SUFFIXES, is_parking_nameserver, parking_provider_of
from .virustotal import VirusTotalClient, VirusTotalReport

__all__ = [
    "DEFAULT_FEED_COVERAGE",
    "Blacklist",
    "BlacklistAggregator",
    "ClassificationReport",
    "ClassifiedSite",
    "WebsiteClassifier",
    "Crawler",
    "CrawlResult",
    "HTTPResponse",
    "RedirectIntent",
    "SiteCategory",
    "SyntheticWeb",
    "WebsiteProfile",
    "PARKING_NS_SUFFIXES",
    "is_parking_nameserver",
    "parking_provider_of",
    "VirusTotalClient",
    "VirusTotalReport",
]
