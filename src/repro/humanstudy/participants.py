"""Simulated crowd-sourcing participants (paper Section 4.1).

The paper measures the *confusability* of homoglyph pairs with an Amazon
Mechanical Turk study: participants see a pair of characters and answer on
a five-level Likert scale from "1: very distinct" to "5: very confusing".
No crowd is available offline, so this module models participants whose
responses are a calibrated function of the pair's pixel difference Δ plus
individual bias and noise:

* Δ = 0 (identical glyphs) → almost always "very confusing";
* Δ = 4 → mean score ≈ 3.6 ("confusing"), matching the paper's Figure 9;
* Δ = 5 → mean score ≈ 2.6 ("distinct");
* random unrelated pairs → concentrated at "very distinct".

A small fraction of participants is *careless* (answers uniformly at
random); the screening rules of the experiment runner are expected to
remove them, exactly as the paper removes workers who mis-judge dummy or
Δ = 0 pairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["LIKERT_LABELS", "PerceptionModel", "Participant", "ParticipantPool"]

#: The five Likert options used in the MTurk task.
LIKERT_LABELS: dict[int, str] = {
    1: "very distinct",
    2: "distinct",
    3: "neutral",
    4: "confusing",
    5: "very confusing",
}

#: Mean confusability score per Δ value, calibrated to the paper's Figure 9.
_MEAN_SCORE_BY_DELTA: dict[int, float] = {
    0: 4.85,
    1: 4.55,
    2: 4.25,
    3: 3.90,
    4: 3.57,
    5: 2.57,
    6: 2.10,
    7: 1.80,
    8: 1.60,
}

#: Mean score of a random (unrelated) character pair.
_RANDOM_PAIR_MEAN = 1.25


def _clamp_score(value: float) -> int:
    return int(min(5, max(1, round(value))))


@dataclass(frozen=True)
class PerceptionModel:
    """Maps a pair's Δ to the population-mean confusability score."""

    noise_sd: float = 0.65

    def mean_score(self, delta: int | None) -> float:
        """Population mean for a pair with the given Δ (``None`` = random pair)."""
        if delta is None:
            return _RANDOM_PAIR_MEAN
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if delta in _MEAN_SCORE_BY_DELTA:
            return _MEAN_SCORE_BY_DELTA[delta]
        return max(1.0, _MEAN_SCORE_BY_DELTA[8] - 0.1 * (delta - 8))


@dataclass(frozen=True)
class Participant:
    """One crowd worker."""

    worker_id: str
    bias: float          # systematic shift of this worker's scores
    careless: bool       # answers uniformly at random
    approval_rate: float # platform-side history used for recruitment screening
    approved_tasks: int

    def judge(self, delta: int | None, model: PerceptionModel, rng: np.random.Generator) -> int:
        """Produce a Likert score for a pair with pixel difference *delta*."""
        if self.careless:
            return int(rng.integers(1, 6))
        mean = model.mean_score(delta) + self.bias
        return _clamp_score(rng.normal(mean, model.noise_sd))


class ParticipantPool:
    """Deterministic pool of simulated MTurk workers."""

    def __init__(self, *, seed: int = 1909, careless_rate: float = 0.12,
                 model: PerceptionModel | None = None) -> None:
        self.seed = seed
        self.careless_rate = careless_rate
        self.model = model if model is not None else PerceptionModel()

    def _rng(self, salt: str) -> np.random.Generator:
        digest = hashlib.sha256(f"{self.seed}:{salt}".encode()).digest()
        return np.random.default_rng(np.frombuffer(digest[:16], dtype=np.uint64))

    def recruit(self, count: int, *, min_approved: int = 50,
                min_approval_rate: float = 0.97) -> list[Participant]:
        """Recruit *count* workers satisfying the paper's recruitment criteria.

        Workers are generated until enough of them pass the platform-side
        screening (≥ 50 approved tasks, ≥ 97 % approval rate).
        """
        rng = self._rng("recruit")
        participants: list[Participant] = []
        attempts = 0
        while len(participants) < count and attempts < count * 20:
            attempts += 1
            worker = Participant(
                worker_id=f"W{attempts:05d}",
                bias=float(rng.normal(0.0, 0.25)),
                careless=bool(rng.random() < self.careless_rate),
                approval_rate=float(1.0 - rng.beta(1.2, 40.0)),
                approved_tasks=int(rng.integers(5, 5000)),
            )
            if worker.approved_tasks < min_approved:
                continue
            if worker.approval_rate < min_approval_rate:
                continue
            participants.append(worker)
        return participants

    def judgements(self, participant: Participant, deltas: list[int | None]) -> list[int]:
        """Scores of one participant over a list of pair Δ values."""
        rng = self._rng(f"judge:{participant.worker_id}")
        return [participant.judge(delta, self.model, rng) for delta in deltas]
