"""Human-perception experiments (paper Section 4.1, Figures 9-11).

Two experiments are reproduced over the simulated participant pool:

* **Experiment 1** — how the threshold Δ affects confusability: for each
  Δ ∈ {0..8}, sample pairs of a Basic Latin letter and a candidate
  homoglyph at that exact Δ, have them judged, and report the score
  distribution per Δ (Figure 9);
* **Experiment 2** — compare the confusability of SimChar pairs (Δ ≤ 4),
  UC pairs, and random pairs (Figure 10), and list the UC pairs judged
  most distinct (Figure 11).

The experiment runner also applies the paper's quality screening: workers
who call a dummy (random) pair "confusing"/"very confusing", or a Δ = 0
pair "distinct"/"very distinct", have all of their responses removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..fonts.registry import FontProtocol, default_font
from ..homoglyph.database import HomoglyphDatabase
from ..homoglyph.simchar import SimCharBuilder
from .participants import LIKERT_LABELS, Participant, ParticipantPool
from .stats import ScoreDistribution

__all__ = ["PairSample", "ExperimentResult", "ThresholdExperiment", "DatabaseComparisonExperiment"]

_ASCII_LOWER = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class PairSample:
    """One character pair shown to participants."""

    first: str
    second: str
    delta: int | None        # None marks a dummy/random pair
    group: str               # "delta-0" .. "delta-8", "SimChar", "UC", "Random"


@dataclass
class ExperimentResult:
    """Scores collected for one experiment."""

    samples: list[PairSample] = field(default_factory=list)
    responses: dict[str, list[int]] = field(default_factory=dict)  # group -> scores
    removed_participants: int = 0
    effective_responses: int = 0

    def distribution(self, group: str) -> ScoreDistribution:
        """Score distribution of one group."""
        return ScoreDistribution.from_scores(self.responses.get(group, []))

    def groups(self) -> list[str]:
        """All groups with responses."""
        return sorted(self.responses)

    def mean_by_group(self) -> dict[str, float]:
        """Mean score per group."""
        return {group: self.distribution(group).mean for group in self.groups()}


class _ExperimentBase:
    """Shared machinery: sampling, judging, screening."""

    def __init__(
        self,
        *,
        font: FontProtocol | None = None,
        pool: ParticipantPool | None = None,
        builder: SimCharBuilder | None = None,
        seed: int = 1909,
    ) -> None:
        self.font = font if font is not None else default_font()
        self.pool = pool if pool is not None else ParticipantPool(seed=seed)
        self.builder = builder if builder is not None else SimCharBuilder(self.font)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # -- sampling helpers -----------------------------------------------------

    def _random_pairs(self, count: int) -> list[PairSample]:
        pairs = []
        letters = list(_ASCII_LOWER)
        for _ in range(count):
            first, second = self._rng.choice(letters, size=2, replace=False)
            pairs.append(PairSample(str(first), str(second), None, "Random"))
        return pairs

    def _collect(self, samples: Sequence[PairSample], participants: list[Participant]) -> ExperimentResult:
        """Have every participant judge every sample, applying the screening rules."""
        result = ExperimentResult(samples=list(samples))
        deltas = [sample.delta for sample in samples]
        for participant in participants:
            scores = self.pool.judgements(participant, deltas)
            if self._should_remove(samples, scores):
                result.removed_participants += 1
                continue
            for sample, score in zip(samples, scores):
                result.responses.setdefault(sample.group, []).append(score)
                result.effective_responses += 1
        return result

    @staticmethod
    def _should_remove(samples: Sequence[PairSample], scores: Sequence[int]) -> bool:
        for sample, score in zip(samples, scores):
            if sample.delta is None and score >= 4:
                return True          # judged a dummy pair as confusing
            if sample.delta == 0 and score <= 2:
                return True          # judged identical glyphs as distinct
        return False


class ThresholdExperiment(_ExperimentBase):
    """Experiment 1: confusability score as a function of Δ (Figure 9)."""

    def sample_pairs(self, *, pairs_per_delta: int = 20, deltas: Sequence[int] = tuple(range(9)),
                     dummy_pairs: int = 30) -> list[PairSample]:
        """Sample letter/candidate pairs at each exact Δ plus dummy pairs."""
        samples: list[PairSample] = []
        per_letter: dict[str, dict[int, list[str]]] = {}
        for letter in _ASCII_LOWER:
            per_letter[letter] = self.builder.homoglyphs_at_delta(letter, deltas)
        for delta in deltas:
            candidates: list[tuple[str, str]] = []
            for letter, by_delta in per_letter.items():
                for partner in by_delta.get(delta, ()):
                    candidates.append((letter, partner))
            if not candidates:
                continue
            chosen = self._rng.choice(len(candidates),
                                      size=min(pairs_per_delta, len(candidates)), replace=False)
            for index in chosen:
                letter, partner = candidates[int(index)]
                samples.append(PairSample(letter, partner, delta, f"delta-{delta}"))
        samples.extend(self._random_pairs(dummy_pairs))
        return samples

    def run(self, *, participants: int = 10, pairs_per_delta: int = 20) -> ExperimentResult:
        """Run the experiment end to end."""
        samples = self.sample_pairs(pairs_per_delta=pairs_per_delta)
        workers = self.pool.recruit(participants)
        return self._collect(samples, workers)

    @staticmethod
    def scores_by_delta(result: ExperimentResult) -> dict[int, ScoreDistribution]:
        """Figure 9: score distribution for each Δ."""
        output: dict[int, ScoreDistribution] = {}
        for group in result.groups():
            if group.startswith("delta-"):
                output[int(group.split("-", 1)[1])] = result.distribution(group)
        return output


class DatabaseComparisonExperiment(_ExperimentBase):
    """Experiment 2: SimChar vs UC vs random pairs (Figures 10-11)."""

    def sample_pairs(
        self,
        simchar: HomoglyphDatabase,
        uc: HomoglyphDatabase,
        *,
        simchar_pairs: int = 100,
        uc_pairs: int = 30,
        dummy_pairs: int = 30,
    ) -> list[PairSample]:
        """Sample Latin-letter pairs from both databases plus dummies."""
        samples: list[PairSample] = []
        samples.extend(self._sample_from_database(simchar, simchar_pairs, "SimChar"))
        samples.extend(self._sample_from_database(uc, uc_pairs, "UC"))
        samples.extend(self._random_pairs(dummy_pairs))
        return samples

    def _sample_from_database(self, database: HomoglyphDatabase, count: int, group: str) -> list[PairSample]:
        candidates: list[tuple[str, str]] = []
        for letter in _ASCII_LOWER:
            for partner in sorted(database.homoglyphs_of(letter)):
                if partner not in _ASCII_LOWER:
                    candidates.append((letter, partner))
        if not candidates:
            return []
        chosen = self._rng.choice(len(candidates), size=min(count, len(candidates)), replace=False)
        samples = []
        for index in chosen:
            letter, partner = candidates[int(index)]
            delta = self._delta_of(letter, partner)
            samples.append(PairSample(letter, partner, delta, group))
        return samples

    def _delta_of(self, first: str, second: str) -> int:
        if self.font.covers(ord(first)) and self.font.covers(ord(second)):
            return self.font.render(ord(first)).delta(self.font.render(ord(second)))
        return 12  # uncovered characters look nothing alike in any font we have

    def run(
        self,
        simchar: HomoglyphDatabase,
        uc: HomoglyphDatabase,
        *,
        participants: int = 28,
    ) -> ExperimentResult:
        """Run the comparison end to end."""
        samples = self.sample_pairs(simchar, uc)
        workers = self.pool.recruit(participants)
        return self._collect(samples, workers)

    def most_distinct_uc_pairs(self, result: ExperimentResult, *, limit: int = 3) -> list[tuple[PairSample, float]]:
        """Figure 11: UC pairs with the lowest mean confusability."""
        uc_samples = [s for s in result.samples if s.group == "UC"]
        scored: list[tuple[PairSample, float]] = []
        for sample in uc_samples:
            # Per-sample means are approximated through the perception model
            # (scores are stored per group); rank by Δ, largest first.
            scored.append((sample, float(sample.delta if sample.delta is not None else 99)))
        scored.sort(key=lambda item: -item[1])
        ranked = []
        for sample, delta in scored[:limit]:
            mean = self.pool.model.mean_score(int(delta) if delta < 99 else None)
            ranked.append((sample, mean))
        return ranked

    @staticmethod
    def likert_label(score: int) -> str:
        """Human-readable Likert label."""
        return LIKERT_LABELS[score]
