"""Descriptive statistics for Likert score distributions.

The paper reports its human-study results as boxplots (median, quartiles,
1.5 IQR whiskers, mean).  :class:`ScoreDistribution` computes exactly those
statistics so the Figure 9/10 benches can print the numbers behind the
plots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ScoreDistribution"]


@dataclass(frozen=True)
class ScoreDistribution:
    """Summary statistics of a set of 1-5 Likert scores."""

    count: int
    mean: float
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    histogram: tuple[tuple[int, int], ...]

    @classmethod
    def from_scores(cls, scores: Sequence[int]) -> "ScoreDistribution":
        """Compute the distribution of a score list (empty lists allowed)."""
        if not scores:
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"), ())
        array = np.asarray(list(scores), dtype=np.float64)
        q1 = float(np.percentile(array, 25))
        q3 = float(np.percentile(array, 75))
        iqr = q3 - q1
        low_bound = q1 - 1.5 * iqr
        high_bound = q3 + 1.5 * iqr
        within = array[(array >= low_bound) & (array <= high_bound)]
        histogram = Counter(int(score) for score in array)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            median=float(np.median(array)),
            q1=q1,
            q3=q3,
            whisker_low=float(within.min()) if within.size else float(array.min()),
            whisker_high=float(within.max()) if within.size else float(array.max()),
            histogram=tuple(sorted(histogram.items())),
        )

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def boxplot_row(self) -> tuple[float, float, float, float, float, float]:
        """``(whisker_low, q1, median, q3, whisker_high, mean)`` — one boxplot."""
        return (self.whisker_low, self.q1, self.median, self.q3, self.whisker_high, self.mean)

    def fraction_at_least(self, score: int) -> float:
        """Fraction of responses with a score of at least *score*."""
        if self.count == 0:
            return float("nan")
        total = sum(count for value, count in self.histogram if value >= score)
        return total / self.count
