"""Human-perception study simulation (MTurk substitute, Figures 9-11)."""

from .experiment import (
    DatabaseComparisonExperiment,
    ExperimentResult,
    PairSample,
    ThresholdExperiment,
)
from .participants import LIKERT_LABELS, Participant, ParticipantPool, PerceptionModel
from .stats import ScoreDistribution

__all__ = [
    "DatabaseComparisonExperiment",
    "ExperimentResult",
    "PairSample",
    "ThresholdExperiment",
    "LIKERT_LABELS",
    "Participant",
    "ParticipantPool",
    "PerceptionModel",
    "ScoreDistribution",
]
