"""Day-over-day zone snapshot diffing (paper Section 5, Tables 6-7).

The paper's measurement is longitudinal: the ``.com`` zone file is
downloaded daily for about two months and homographs are tracked as they
appear in and disappear from the delegation set.  Re-scanning the whole
zone each day would waste the streaming-scan machinery on ~99% unchanged
domains, so this module computes what actually changed between two dated
snapshots:

* a **delegation stream** — sorted ``(domain, nameservers)`` pairs, either
  from a :class:`~repro.dns.zonefile.ZoneFile` (:meth:`ZoneFile.delegations`)
  or straight from a presentation-format file via :func:`read_delegations`,
  which parses only the NS lines and skips the glue;
* a **streaming merge** — :func:`diff_delegations` walks two sorted streams
  with two cursors, emitting one :class:`DelegationChange` per differing
  domain without materialising either side into a lookup table;
* a :class:`ZoneDelta` — the added / removed / NS-changed delegations,
  applicable to the older zone with :func:`apply_delta` (the hypothesis
  property suite checks ``apply(diff(a, b), a) == b``).

:mod:`repro.measurement.longitudinal` feeds the IDN slice of these deltas
to the streaming scanner, so each tracking day scans only the newly added
IDNs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .zonefile import ZoneFile

__all__ = [
    "Delegations",
    "DelegationChange",
    "ZoneDelta",
    "ZoneDeltaError",
    "read_delegations",
    "diff_delegations",
    "diff_zones",
    "apply_delta",
]

#: One sorted delegation stream entry: (domain, sorted nameserver tuple).
Delegations = Iterable[tuple[str, tuple[str, ...]]]


class ZoneDeltaError(ValueError):
    """A delta cannot be computed or applied (unsorted stream, conflict)."""


@dataclass(frozen=True)
class DelegationChange:
    """How one domain's delegation differs between two snapshots."""

    domain: str
    before: tuple[str, ...]    # sorted nameservers in the older snapshot; () when added
    after: tuple[str, ...]     # sorted nameservers in the newer snapshot; () when removed

    @property
    def is_added(self) -> bool:
        """True when the domain is delegated only in the newer snapshot."""
        return not self.before

    @property
    def is_removed(self) -> bool:
        """True when the domain is delegated only in the older snapshot."""
        return not self.after


@dataclass(frozen=True)
class ZoneDelta:
    """Everything that changed between two zone snapshots."""

    added: tuple[DelegationChange, ...]
    removed: tuple[DelegationChange, ...]
    ns_changed: tuple[DelegationChange, ...]

    @property
    def is_empty(self) -> bool:
        """True when the two snapshots delegate identically."""
        return not (self.added or self.removed or self.ns_changed)

    @property
    def added_domains(self) -> list[str]:
        """Domains delegated only in the newer snapshot, sorted."""
        return [change.domain for change in self.added]

    @property
    def removed_domains(self) -> list[str]:
        """Domains delegated only in the older snapshot, sorted."""
        return [change.domain for change in self.removed]

    @property
    def ns_changed_domains(self) -> list[str]:
        """Domains whose nameserver set changed, sorted."""
        return [change.domain for change in self.ns_changed]

    def __len__(self) -> int:
        return len(self.added) + len(self.removed) + len(self.ns_changed)


def read_delegations(
    path: str | os.PathLike,
    *,
    domain_filter: Callable[[str], bool] | None = None,
    counts: dict[str, int] | None = None,
) -> list[tuple[str, tuple[str, ...]]]:
    """Extract the sorted delegation stream of a presentation-format zone file.

    Parses only the NS lines (glue A/AAAA records, zone-apex NS records and
    comments are skipped), normalizing owner and nameserver names the way
    :meth:`ZoneFile.add_delegation` does, so a snapshot can be diffed
    without building a full :class:`ZoneFile` per day.

    *domain_filter* restricts which owners are materialized (the
    longitudinal tracker passes the Step II IDN test, so the ~99% ASCII
    bulk of a zone is never stored).  When a *counts* dict is supplied, its
    ``"domains"`` key receives the number of distinct delegated owners
    *before* filtering — the Table 6 domain count, available without a
    second pass.  The count is kept in O(1) memory by counting owner-name
    transitions, which is exact for zone files whose NS lines are grouped
    by owner (real TLD zone dumps and :meth:`ZoneFile.save` output both
    are) and an upper bound otherwise.
    """
    by_domain: dict[str, set[str]] = {}
    domain_count = 0
    last_owner: str | None = None
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for raw in handle:
            # Hot loop over every zone line: strip comments only when one is
            # present, and accept the canonical upper-case type token without
            # re-casing it.
            if ";" in raw:
                raw = raw.split(";", 1)[0]
            parts = raw.split()
            if len(parts) < 5:
                continue
            rtype = parts[3]
            if rtype != "NS" and rtype.upper() != "NS":
                continue
            domain = parts[0].lower().rstrip(".")
            if "." not in domain:
                continue               # zone-apex NS (the TLD's own servers), not a delegation
            if domain != last_owner:
                domain_count += 1
                last_owner = domain
            if domain_filter is not None and not domain_filter(domain):
                continue
            ns = parts[4].lower().rstrip(".")
            if ns:
                by_domain.setdefault(domain, set()).add(ns)
    if counts is not None:
        counts["domains"] = len(by_domain) if domain_filter is None else domain_count
    return sorted((domain, tuple(sorted(ns))) for domain, ns in by_domain.items())


def _checked(stream: Delegations, side: str) -> Iterator[tuple[str, tuple[str, ...]]]:
    """Pass a delegation stream through, enforcing strictly sorted domains."""
    previous: str | None = None
    for domain, nameservers in stream:
        if previous is not None and domain <= previous:
            raise ZoneDeltaError(
                f"{side} delegation stream is not strictly sorted: "
                f"{domain!r} follows {previous!r}"
            )
        previous = domain
        yield domain, nameservers


def diff_delegations(older: Delegations, newer: Delegations) -> ZoneDelta:
    """Streaming merge of two sorted delegation streams into a :class:`ZoneDelta`.

    Both streams must yield ``(domain, nameservers)`` pairs strictly sorted
    by domain (as :meth:`ZoneFile.delegations` and :func:`read_delegations`
    do); a single two-cursor pass then classifies every differing domain, so
    memory stays bounded by the delta, not the zone.
    """
    added: list[DelegationChange] = []
    removed: list[DelegationChange] = []
    ns_changed: list[DelegationChange] = []

    old_iter = _checked(older, "older")
    new_iter = _checked(newer, "newer")
    old_entry = next(old_iter, None)
    new_entry = next(new_iter, None)
    while old_entry is not None or new_entry is not None:
        if new_entry is None or (old_entry is not None and old_entry[0] < new_entry[0]):
            removed.append(DelegationChange(old_entry[0], old_entry[1], ()))
            old_entry = next(old_iter, None)
        elif old_entry is None or new_entry[0] < old_entry[0]:
            added.append(DelegationChange(new_entry[0], (), new_entry[1]))
            new_entry = next(new_iter, None)
        else:
            if old_entry[1] != new_entry[1]:
                ns_changed.append(DelegationChange(old_entry[0], old_entry[1], new_entry[1]))
            old_entry = next(old_iter, None)
            new_entry = next(new_iter, None)
    return ZoneDelta(tuple(added), tuple(removed), tuple(ns_changed))


def diff_zones(older: ZoneFile, newer: ZoneFile) -> ZoneDelta:
    """Diff two in-memory zones (they must describe the same TLD)."""
    if older.tld != newer.tld:
        raise ZoneDeltaError(
            f"cannot diff zones of different TLDs: .{older.tld} vs .{newer.tld}"
        )
    return diff_delegations(older.delegations(), newer.delegations())


def apply_delta(zone: ZoneFile, delta: ZoneDelta) -> ZoneFile:
    """Apply a delta to *zone*, returning the newer snapshot as a new zone.

    Only delegations are carried over (glue records are not part of a
    delta).  Raises :class:`ZoneDeltaError` when the delta does not fit the
    zone: adding a domain that is already delegated, or removing/changing
    one whose current nameservers do not match the delta's ``before`` side.
    """
    delegations = {domain: nameservers for domain, nameservers in zone.delegations()}
    for change in delta.added:
        if change.domain in delegations:
            raise ZoneDeltaError(f"cannot add {change.domain!r}: already delegated")
        delegations[change.domain] = change.after
    for change in delta.removed:
        if delegations.get(change.domain) != change.before:
            raise ZoneDeltaError(
                f"cannot remove {change.domain!r}: delegation does not match the delta"
            )
        del delegations[change.domain]
    for change in delta.ns_changed:
        if delegations.get(change.domain) != change.before:
            raise ZoneDeltaError(
                f"cannot change {change.domain!r}: delegation does not match the delta"
            )
        delegations[change.domain] = change.after

    result = ZoneFile(tld=zone.tld)
    for domain in sorted(delegations):
        result.add_delegation(domain, delegations[domain])
    return result
