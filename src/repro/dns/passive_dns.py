"""Passive DNS (Farsight DNSDB substitute).

The paper measures the popularity of detected IDN homographs through a
passive DNS system: sensors co-located with recursive resolvers record the
cumulative number of resolutions per domain name.  This module provides

* :class:`PassiveDNSCollector` — the sensor/aggregate database, fed either
  directly or by observing a :class:`~repro.dns.resolver.StubResolver`, and
* :class:`ClientPopulation` — a deterministic simulation of end users
  issuing lookups with a popularity-skewed (Zipf-like) distribution, used
  by the measurement synthesiser to create realistic resolution counts
  (phishing homographs that lure many victims accumulate large counts,
  parked domains fewer — Table 11).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .records import RRType
from .resolver import DNSResponse, StubResolver

__all__ = ["PassiveDNSCollector", "ClientPopulation"]


@dataclass
class PassiveDNSCollector:
    """Aggregated per-domain resolution counts as a passive DNS system reports them."""

    sampling_rate: float = 1.0
    _counts: Counter = field(default_factory=Counter, repr=False)

    def observe(self, name: str, rtype: RRType, response: DNSResponse) -> None:
        """Observer hook compatible with :class:`StubResolver`."""
        if rtype in (RRType.A, RRType.AAAA):
            self._counts[name.lower().rstrip(".")] += 1

    def attach_to(self, resolver: StubResolver) -> None:
        """Register this collector on a resolver's observer list."""
        resolver.add_observer(self.observe)

    def record_lookups(self, domain: str, count: int = 1) -> None:
        """Directly account *count* lookups for a domain (bulk feeding)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[domain.lower().rstrip(".")] += count

    def bulk_load(self, counts: Mapping[str, int]) -> None:
        """Load a mapping of domain to lookup count."""
        for domain, count in counts.items():
            self.record_lookups(domain, count)

    # -- queries -------------------------------------------------------------

    def resolution_count(self, domain: str) -> int:
        """Cumulative (sampled) resolutions observed for a domain."""
        observed = self._counts.get(domain.lower().rstrip("."), 0)
        return int(observed * self.sampling_rate) if self.sampling_rate != 1.0 else observed

    def resolution_counts(self, domains: Iterable[str]) -> list[int]:
        """Batched :meth:`resolution_count`, in input order (pipeline API)."""
        return [self.resolution_count(domain) for domain in domains]

    def top_domains(self, limit: int = 10, *, within: Iterable[str] | None = None) -> list[tuple[str, int]]:
        """Top-N domains by resolution count, optionally restricted to a candidate set."""
        if within is None:
            return self._counts.most_common(limit)
        wanted = {d.lower().rstrip(".") for d in within}
        filtered = Counter({d: c for d, c in self._counts.items() if d in wanted})
        return filtered.most_common(limit)

    def total_observations(self) -> int:
        """Total number of recorded lookups."""
        return sum(self._counts.values())

    def __len__(self) -> int:
        return len(self._counts)


@dataclass
class ClientPopulation:
    """Deterministic population of clients issuing popularity-skewed lookups."""

    seed: int = 20190917
    zipf_exponent: float = 1.1

    def _rng(self, salt: str) -> np.random.Generator:
        digest = hashlib.sha256(f"{self.seed}:{salt}".encode()).digest()
        return np.random.default_rng(np.frombuffer(digest[:16], dtype=np.uint64))

    def lookup_counts(
        self,
        domains: Sequence[str],
        *,
        total_lookups: int = 1_000_000,
        popularity: Mapping[str, float] | None = None,
    ) -> dict[str, int]:
        """Distribute *total_lookups* over *domains*.

        Without an explicit ``popularity`` weighting, ranks follow a Zipf
        law over the (deterministically shuffled) domain list, which is the
        standard model for DNS lookup popularity.
        """
        if not domains:
            return {}
        rng = self._rng("lookups")
        ordered = list(domains)
        rng.shuffle(ordered)
        if popularity is None:
            ranks = np.arange(1, len(ordered) + 1, dtype=np.float64)
            weights = 1.0 / np.power(ranks, self.zipf_exponent)
        else:
            weights = np.array([max(popularity.get(d, 0.0), 1e-9) for d in ordered])
        weights = weights / weights.sum()
        counts = rng.multinomial(total_lookups, weights)
        return {domain: int(count) for domain, count in zip(ordered, counts)}

    def drive(
        self,
        resolver: StubResolver,
        domains: Sequence[str],
        *,
        total_lookups: int = 10_000,
    ) -> dict[str, int]:
        """Issue lookups through a resolver (used in the integration tests)."""
        counts = self.lookup_counts(domains, total_lookups=total_lookups)
        for domain, count in counts.items():
            for _ in range(min(count, 50)):  # cache makes repeats cheap
                resolver.query(domain, RRType.A, use_cache=False)
        return counts
