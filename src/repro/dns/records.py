"""DNS resource record model.

A light-weight representation of the record types the measurement pipeline
uses: NS (presence in a zone / delegation to a parking provider), A
(activeness), MX (mail capability of phishing domains, Table 11) and CNAME
(redirect infrastructure).  Records are value objects; the stores live in
:mod:`repro.dns.zonefile` and :mod:`repro.dns.resolver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

__all__ = ["RRType", "ResourceRecord", "RecordSet", "DEFAULT_TTL"]

DEFAULT_TTL = 3600


class RRType(str, Enum):
    """Resource record types used by the pipeline."""

    NS = "NS"
    A = "A"
    AAAA = "AAAA"
    MX = "MX"
    CNAME = "CNAME"
    TXT = "TXT"
    SOA = "SOA"

    @classmethod
    def parse(cls, token: str) -> "RRType":
        """Parse a record type token (case-insensitive)."""
        try:
            return cls(token.strip().upper())
        except ValueError:
            raise ValueError(f"unsupported record type: {token!r}") from None


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: str
    rtype: RRType
    rdata: str
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower().rstrip("."))
        object.__setattr__(self, "rdata", self.rdata.rstrip(".") if self.rtype in (
            RRType.NS, RRType.CNAME, RRType.MX) else self.rdata)
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")

    def to_zone_line(self) -> str:
        """Render in zone-file presentation format."""
        rdata = self.rdata
        if self.rtype in (RRType.NS, RRType.CNAME):
            rdata = rdata + "."
        return f"{self.name}.\t{self.ttl}\tIN\t{self.rtype.value}\t{rdata}"

    @classmethod
    def from_zone_line(cls, line: str) -> "ResourceRecord":
        """Parse a zone-file presentation line (name ttl IN type rdata)."""
        parts = line.split()
        if len(parts) < 5 or parts[2].upper() != "IN":
            raise ValueError(f"malformed zone line: {line!r}")
        name, ttl, _klass, rtype = parts[0], parts[1], parts[2], parts[3]
        rdata = " ".join(parts[4:])
        return cls(name.rstrip("."), RRType.parse(rtype), rdata, int(ttl))


class RecordSet:
    """A multiset of records grouped by ``(name, type)``.

    Every mutation bumps :attr:`generation`, so views computed over the set
    (the sorted domain list of a :class:`~repro.dns.zonefile.ZoneFile`) can
    be memoized and invalidated without observing individual mutations —
    the same idiom as :class:`~repro.dns.resolver.AuthoritativeStore`.
    """

    def __init__(self, records: Iterable[ResourceRecord] = ()) -> None:
        self._by_key: dict[tuple[str, RRType], list[ResourceRecord]] = {}
        self._types_by_name: dict[str, set[RRType]] = {}
        self._generation = 0
        for record in records:
            self.add(record)

    @property
    def generation(self) -> int:
        """Monotonic counter incremented by every mutation."""
        return self._generation

    def add(self, record: ResourceRecord) -> None:
        """Add a record (duplicates are ignored)."""
        bucket = self._by_key.setdefault((record.name, record.rtype), [])
        if record not in bucket:
            bucket.append(record)
            self._types_by_name.setdefault(record.name, set()).add(record.rtype)
            self._generation += 1

    def remove_name(self, name: str) -> int:
        """Delete every record of an owner name; returns how many were removed.

        O(record types of that name) thanks to the owner-name index, so
        expiring many domains from a large set stays linear overall.
        """
        name = name.lower().rstrip(".")
        removed = 0
        for rtype in self._types_by_name.pop(name, ()):
            removed += len(self._by_key.pop((name, rtype), ()))
        if removed:
            self._generation += 1
        return removed

    def lookup(self, name: str, rtype: RRType) -> list[ResourceRecord]:
        """All records of a type for a name (empty list when none)."""
        return list(self._by_key.get((name.lower().rstrip("."), rtype), ()))

    def names(self) -> set[str]:
        """All owner names present in the set."""
        return set(self._types_by_name)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_key.values())

    def __iter__(self) -> Iterator[ResourceRecord]:
        for key in sorted(self._by_key, key=lambda k: (k[0], k[1].value)):
            yield from self._by_key[key]

    def __contains__(self, record: ResourceRecord) -> bool:
        return record in self._by_key.get((record.name, record.rtype), ())
