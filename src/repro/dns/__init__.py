"""DNS substrate: records, zone files, simulated resolution, passive DNS, port scans."""

from .passive_dns import ClientPopulation, PassiveDNSCollector
from .portscan import PortScanner, PortScanResult, PortScanSummary
from .records import DEFAULT_TTL, RecordSet, ResourceRecord, RRType
from .resolver import AuthoritativeStore, DNSResponse, ResponseCode, StubResolver
from .zonediff import (
    DelegationChange,
    ZoneDelta,
    ZoneDeltaError,
    apply_delta,
    diff_delegations,
    diff_zones,
    read_delegations,
)
from .zonefile import ZoneFile

__all__ = [
    "DelegationChange",
    "ZoneDelta",
    "ZoneDeltaError",
    "apply_delta",
    "diff_delegations",
    "diff_zones",
    "read_delegations",
    "ClientPopulation",
    "PassiveDNSCollector",
    "PortScanner",
    "PortScanResult",
    "PortScanSummary",
    "DEFAULT_TTL",
    "RecordSet",
    "ResourceRecord",
    "RRType",
    "AuthoritativeStore",
    "DNSResponse",
    "ResponseCode",
    "StubResolver",
    "ZoneFile",
]
