"""DNS substrate: records, zone files, simulated resolution, passive DNS, port scans."""

from .passive_dns import ClientPopulation, PassiveDNSCollector
from .portscan import PortScanner, PortScanResult, PortScanSummary
from .records import DEFAULT_TTL, RecordSet, ResourceRecord, RRType
from .resolver import AuthoritativeStore, DNSResponse, ResponseCode, StubResolver
from .zonefile import ZoneFile

__all__ = [
    "ClientPopulation",
    "PassiveDNSCollector",
    "PortScanner",
    "PortScanResult",
    "PortScanSummary",
    "DEFAULT_TTL",
    "RecordSet",
    "ResourceRecord",
    "RRType",
    "AuthoritativeStore",
    "DNSResponse",
    "ResponseCode",
    "StubResolver",
    "ZoneFile",
]
