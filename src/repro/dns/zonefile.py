"""TLD zone files.

The paper's primary data source is the Verisign ``.com`` zone file: the
list of every delegated domain name with its NS records.  This module
models a zone file as an ordered collection of delegations, supports the
standard presentation format (parse/serialise), and offers the "extract
registered domain names" and "extract IDNs" views the measurement pipeline
needs (paper Section 5, Table 6).

The sorted domain and IDN views are memoized against the record set's
:attr:`~repro.dns.records.RecordSet.generation` counter, so ``len(zone)``
and repeated iteration are O(1) after the first computation instead of
re-sorting the whole record set on every call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..idn.idna_codec import is_ace_label
from .records import RRType, RecordSet, ResourceRecord

__all__ = ["ZoneFile"]


@dataclass
class ZoneFile:
    """A (possibly synthetic) DNS zone for one TLD."""

    tld: str
    records: RecordSet = field(default_factory=RecordSet)
    _view_generation: int = field(default=-1, init=False, repr=False, compare=False)
    _domains_view: list[str] = field(default_factory=list, init=False, repr=False, compare=False)
    _idns_view: list[str] = field(default_factory=list, init=False, repr=False, compare=False)

    # -- building -----------------------------------------------------------

    def add_delegation(self, domain: str, nameservers: Iterable[str], *, ttl: int = 172800) -> None:
        """Add NS records delegating *domain* to *nameservers*.

        Nameserver names are normalized (lowercased, trailing dot stripped)
        and deduplicated, so case-variant NS targets cannot create duplicate
        records or make :meth:`nameservers_of` return inconsistent data.
        """
        domain = domain.lower().rstrip(".")
        if not domain.endswith("." + self.tld):
            raise ValueError(f"{domain!r} does not belong to the .{self.tld} zone")
        seen: set[str] = set()
        for ns in nameservers:
            ns = ns.lower().rstrip(".")
            if not ns or ns in seen:
                continue
            seen.add(ns)
            self.records.add(ResourceRecord(domain, RRType.NS, ns, ttl))

    def add_record(self, record: ResourceRecord) -> None:
        """Add an arbitrary record (used for glue A records)."""
        self.records.add(record)

    # -- views ---------------------------------------------------------------

    def _refresh_views(self) -> None:
        """Recompute the memoized domain/IDN views when the records changed."""
        generation = self.records.generation
        if generation == self._view_generation:
            return
        self._domains_view = sorted(
            name for name in self.records.names()
            if name.endswith("." + self.tld) and self.records.lookup(name, RRType.NS)
        )
        suffix_length = len(self.tld) + 1
        self._idns_view = [
            domain for domain in self._domains_view
            if is_ace_label(domain[:-suffix_length].split(".")[-1])
        ]
        self._view_generation = generation

    def domains(self) -> list[str]:
        """All delegated (registered) domain names, sorted."""
        self._refresh_views()
        return list(self._domains_view)

    def domain_count(self) -> int:
        """Number of delegated domains (Table 6 "Number of domain names")."""
        self._refresh_views()
        return len(self._domains_view)

    def idns(self) -> list[str]:
        """Delegated domains whose registrable label is an A-label (Table 6 IDNs)."""
        self._refresh_views()
        return list(self._idns_view)

    def idn_fraction(self) -> float:
        """Fraction of delegated domains that are IDNs."""
        self._refresh_views()
        count = len(self._domains_view)
        return len(self._idns_view) / count if count else 0.0

    def nameservers_of(self, domain: str) -> list[str]:
        """NS targets of a delegated domain."""
        return [record.rdata for record in self.records.lookup(domain, RRType.NS)]

    def delegations(self) -> Iterator[tuple[str, tuple[str, ...]]]:
        """Sorted ``(domain, nameservers)`` pairs of every delegation.

        Nameserver tuples are sorted and deduplicated, so two zones with the
        same delegations compare equal regardless of insertion order — the
        canonical stream :mod:`repro.dns.zonediff` merges over.
        """
        self._refresh_views()
        for domain in self._domains_view:
            yield domain, tuple(sorted({ns.lower() for ns in self.nameservers_of(domain)}))

    def __contains__(self, domain: str) -> bool:
        return bool(self.records.lookup(domain.lower().rstrip("."), RRType.NS))

    def __len__(self) -> int:
        return self.domain_count()

    def __iter__(self) -> Iterator[str]:
        return iter(self.domains())

    # -- serialisation ----------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Serialise all records in presentation format."""
        return [record.to_zone_line() for record in self.records]

    def save(self, path: str | os.PathLike) -> None:
        """Write the zone to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"; zone file for .{self.tld}\n")
            for line in self.to_lines():
                handle.write(line + "\n")

    @classmethod
    def from_lines(cls, tld: str, lines: Iterable[str]) -> "ZoneFile":
        """Parse presentation-format lines into a zone."""
        zone = cls(tld=tld.lower().lstrip("."))
        for raw in lines:
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            record = ResourceRecord.from_zone_line(line)
            zone.records.add(record)
        return zone

    @classmethod
    def load(cls, tld: str, path: str | os.PathLike) -> "ZoneFile":
        """Load a zone from a file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_lines(tld, handle)
