"""TLD zone files.

The paper's primary data source is the Verisign ``.com`` zone file: the
list of every delegated domain name with its NS records.  This module
models a zone file as an ordered collection of delegations, supports the
standard presentation format (parse/serialise), and offers the "extract
registered domain names" and "extract IDNs" views the measurement pipeline
needs (paper Section 5, Table 6).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..idn.idna_codec import is_ace_label
from .records import RRType, RecordSet, ResourceRecord

__all__ = ["ZoneFile"]


@dataclass
class ZoneFile:
    """A (possibly synthetic) DNS zone for one TLD."""

    tld: str
    records: RecordSet = field(default_factory=RecordSet)

    # -- building -----------------------------------------------------------

    def add_delegation(self, domain: str, nameservers: Iterable[str], *, ttl: int = 172800) -> None:
        """Add NS records delegating *domain* to *nameservers*."""
        domain = domain.lower().rstrip(".")
        if not domain.endswith("." + self.tld):
            raise ValueError(f"{domain!r} does not belong to the .{self.tld} zone")
        for ns in nameservers:
            self.records.add(ResourceRecord(domain, RRType.NS, ns, ttl))

    def add_record(self, record: ResourceRecord) -> None:
        """Add an arbitrary record (used for glue A records)."""
        self.records.add(record)

    # -- views ---------------------------------------------------------------

    def domains(self) -> list[str]:
        """All delegated (registered) domain names, sorted."""
        return sorted(
            name for name in self.records.names()
            if name.endswith("." + self.tld) and self.records.lookup(name, RRType.NS)
        )

    def domain_count(self) -> int:
        """Number of delegated domains (Table 6 "Number of domain names")."""
        return len(self.domains())

    def idns(self) -> list[str]:
        """Delegated domains whose registrable label is an A-label (Table 6 IDNs)."""
        result = []
        for domain in self.domains():
            label = domain[: -(len(self.tld) + 1)].split(".")[-1]
            if is_ace_label(label):
                result.append(domain)
        return result

    def idn_fraction(self) -> float:
        """Fraction of delegated domains that are IDNs."""
        count = self.domain_count()
        return len(self.idns()) / count if count else 0.0

    def nameservers_of(self, domain: str) -> list[str]:
        """NS targets of a delegated domain."""
        return [record.rdata for record in self.records.lookup(domain, RRType.NS)]

    def __contains__(self, domain: str) -> bool:
        return bool(self.records.lookup(domain.lower().rstrip("."), RRType.NS))

    def __len__(self) -> int:
        return self.domain_count()

    def __iter__(self) -> Iterator[str]:
        return iter(self.domains())

    # -- serialisation ----------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Serialise all records in presentation format."""
        return [record.to_zone_line() for record in self.records]

    def save(self, path: str | os.PathLike) -> None:
        """Write the zone to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"; zone file for .{self.tld}\n")
            for line in self.to_lines():
                handle.write(line + "\n")

    @classmethod
    def from_lines(cls, tld: str, lines: Iterable[str]) -> "ZoneFile":
        """Parse presentation-format lines into a zone."""
        zone = cls(tld=tld.lower().lstrip("."))
        for raw in lines:
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            record = ResourceRecord.from_zone_line(line)
            zone.records.add(record)
        return zone

    @classmethod
    def load(cls, tld: str, path: str | os.PathLike) -> "ZoneFile":
        """Load a zone from a file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_lines(tld, handle)
