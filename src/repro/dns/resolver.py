"""Simulated DNS resolution.

The measurement pipeline needs three DNS behaviours the paper obtains from
the real Internet:

* checking whether a detected homograph still has NS records (registered),
* checking whether it resolves to an address (A record, "active"), and
* feeding a passive-DNS system with the lookups of a client population.

:class:`AuthoritativeStore` holds the records of the simulated Internet
(populated by the measurement synthesiser), and :class:`StubResolver`
answers queries against it with a cache, optionally notifying observers
(the passive-DNS collector registers itself as one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable

from .records import RRType, RecordSet, ResourceRecord

__all__ = ["ResponseCode", "DNSResponse", "AuthoritativeStore", "StubResolver"]


class ResponseCode(str, Enum):
    """Subset of DNS RCODEs the pipeline distinguishes."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"


@dataclass(frozen=True)
class DNSResponse:
    """Answer to a single query."""

    name: str
    rtype: RRType
    rcode: ResponseCode
    records: tuple[ResourceRecord, ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when the answer section is empty (NXDOMAIN or NODATA)."""
        return not self.records


class AuthoritativeStore:
    """Record store for every simulated authoritative server.

    Every mutation bumps :attr:`generation`, so caches layered on top (the
    :class:`StubResolver` answer cache, the enrichment pipeline's probe
    memo) can detect that previously cached answers may be stale.
    """

    def __init__(self) -> None:
        self._records = RecordSet()
        self._names: set[str] = set()
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic counter incremented by every mutation."""
        return self._generation

    def add(self, record: ResourceRecord) -> None:
        """Publish a record."""
        self._records.add(record)
        self._names.add(record.name)
        self._generation += 1

    def add_many(self, records: Iterable[ResourceRecord]) -> None:
        """Publish several records."""
        for record in records:
            self.add(record)

    def remove_name(self, name: str) -> None:
        """Delete every record of a name (domain expiration)."""
        name = name.lower().rstrip(".")
        if name not in self._names:
            return
        self._names.discard(name)
        self._records.remove_name(name)
        self._generation += 1

    def exists(self, name: str) -> bool:
        """True when any record exists for the name."""
        return name.lower().rstrip(".") in self._names

    def lookup(self, name: str, rtype: RRType) -> list[ResourceRecord]:
        """Records of a type for a name."""
        return self._records.lookup(name, rtype)

    def names(self) -> set[str]:
        """All published owner names."""
        return set(self._names)

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class StubResolver:
    """Caching resolver over an :class:`AuthoritativeStore`.

    ``observers`` are callables invoked for every (cache-missing) query with
    the query name, type and response; the passive-DNS collector uses this
    hook.
    """

    store: AuthoritativeStore
    observers: list[Callable[[str, RRType, DNSResponse], None]] = field(default_factory=list)
    _cache: dict[tuple[str, RRType], DNSResponse] = field(default_factory=dict, repr=False)
    _cache_generation: int = field(default=-1, repr=False)
    queries_sent: int = 0
    cache_hits: int = 0

    def add_observer(self, observer: Callable[[str, RRType, DNSResponse], None]) -> None:
        """Register a query observer (e.g. a passive DNS sensor)."""
        self.observers.append(observer)

    def query(self, name: str, rtype: RRType | str = RRType.A, *, use_cache: bool = True) -> DNSResponse:
        """Resolve a name, consulting the cache first.

        Cached answers are only served while the authoritative store is
        unchanged: any store mutation (expiration, new delegation) bumps its
        generation and invalidates the whole cache, so an expire-then-reprobe
        sequence sees the post-mutation truth.
        """
        rtype = RRType.parse(rtype) if isinstance(rtype, str) else rtype
        generation = self.store.generation
        if generation != self._cache_generation:
            self._cache.clear()
            self._cache_generation = generation
        key = (name.lower().rstrip("."), rtype)
        if use_cache and key in self._cache:
            self.cache_hits += 1
            return self._cache[key]

        self.queries_sent += 1
        records = tuple(self.store.lookup(key[0], rtype))
        if records:
            response = DNSResponse(key[0], rtype, ResponseCode.NOERROR, records)
        elif self.store.exists(key[0]):
            response = DNSResponse(key[0], rtype, ResponseCode.NOERROR, ())
        else:
            response = DNSResponse(key[0], rtype, ResponseCode.NXDOMAIN, ())

        self._cache[key] = response
        for observer in self.observers:
            observer(key[0], rtype, response)
        return response

    # -- convenience predicates used by the measurement pipeline ------------------

    def has_ns(self, domain: str) -> bool:
        """True when the domain has NS records (still delegated)."""
        return not self.query(domain, RRType.NS).is_empty

    def has_a(self, domain: str) -> bool:
        """True when the domain resolves to an address."""
        return not self.query(domain, RRType.A).is_empty

    def has_mx(self, domain: str) -> bool:
        """True when the domain currently publishes an MX record."""
        return not self.query(domain, RRType.MX).is_empty

    # -- batch APIs used by the enrichment pipeline -------------------------------

    def query_many(self, names: Iterable[str], rtype: RRType | str = RRType.A) -> list[DNSResponse]:
        """Resolve a batch of names for one record type, in input order."""
        rtype = RRType.parse(rtype) if isinstance(rtype, str) else rtype
        return [self.query(name, rtype) for name in names]

    def registration_status(self, domains: Iterable[str]) -> list[tuple[bool, bool]]:
        """Batched ``(has_ns, has_a)`` probe, in input order.

        The A record is only queried for delegated domains, matching the
        paper's Section 6.1 probing funnel (an expired domain is never
        address-probed).
        """
        status: list[tuple[bool, bool]] = []
        for domain in domains:
            delegated = self.has_ns(domain)
            status.append((delegated, self.has_a(domain) if delegated else False))
        return status

    def clear_cache(self) -> None:
        """Drop every cached answer."""
        self._cache.clear()
