"""Simulated TCP port scanning (paper Section 6.1, Table 10).

After resolving the detected homographs, the paper scans TCP/80 and
TCP/443 to find which of them actually run a web server.  The scanner here
asks the hosting model (``repro.web.hosting``) which ports a host listens
on instead of opening sockets, but reports results in the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

__all__ = ["PortScanResult", "PortScanSummary", "PortScanner", "HostModel"]

HTTP_PORT = 80
HTTPS_PORT = 443
DEFAULT_PORTS = (HTTP_PORT, HTTPS_PORT)


class HostModel(Protocol):
    """Anything that can tell which TCP ports a domain's host listens on."""

    def open_ports(self, domain: str) -> set[int]:
        """Return the set of open TCP ports for the host serving *domain*."""


@dataclass(frozen=True)
class PortScanResult:
    """Scan outcome for one domain."""

    domain: str
    open_ports: frozenset[int]

    @property
    def reachable(self) -> bool:
        """True when at least one scanned port is open."""
        return bool(self.open_ports)

    @property
    def http(self) -> bool:
        """True when TCP/80 answered."""
        return HTTP_PORT in self.open_ports

    @property
    def https(self) -> bool:
        """True when TCP/443 answered."""
        return HTTPS_PORT in self.open_ports


@dataclass
class PortScanSummary:
    """Aggregate of a scan campaign (rows of Table 10)."""

    results: list[PortScanResult] = field(default_factory=list)

    def count_open(self, port: int) -> int:
        """Domains with the given port open."""
        return sum(1 for r in self.results if port in r.open_ports)

    @property
    def http_count(self) -> int:
        """Domains answering on TCP/80."""
        return self.count_open(HTTP_PORT)

    @property
    def https_count(self) -> int:
        """Domains answering on TCP/443."""
        return self.count_open(HTTPS_PORT)

    @property
    def both_count(self) -> int:
        """Domains answering on both TCP/80 and TCP/443."""
        return sum(1 for r in self.results if r.http and r.https)

    @property
    def reachable_count(self) -> int:
        """Domains answering on at least one scanned port (Table 10 "Total")."""
        return sum(1 for r in self.results if r.reachable)

    def reachable_domains(self) -> list[str]:
        """Names of the reachable domains."""
        return [r.domain for r in self.results if r.reachable]

    def as_table_rows(self) -> list[tuple[str, int]]:
        """Rows in the shape of the paper's Table 10."""
        return [
            ("TCP/80", self.http_count),
            ("TCP/443", self.https_count),
            ("TCP/80 & TCP/443", self.both_count),
            ("Total (unique)", self.reachable_count),
        ]


@dataclass
class PortScanner:
    """Scanner over a :class:`HostModel`."""

    host_model: HostModel
    ports: Sequence[int] = DEFAULT_PORTS

    def scan(self, domain: str) -> PortScanResult:
        """Scan one domain."""
        open_ports = self.host_model.open_ports(domain)
        return PortScanResult(domain, frozenset(p for p in open_ports if p in set(self.ports)))

    def scan_many(self, domains: Iterable[str]) -> list[PortScanResult]:
        """Batched scan, results in input order (enrichment-pipeline API)."""
        wanted = set(self.ports)
        return [
            PortScanResult(domain, frozenset(self.host_model.open_ports(domain) & wanted))
            for domain in domains
        ]

    def scan_all(self, domains: Iterable[str]) -> PortScanSummary:
        """Scan a set of domains and aggregate the results."""
        return PortScanSummary(self.scan_many(domains))
