"""Font registry.

The homoglyph pipeline is font-agnostic: any object exposing ``covers``,
``render`` and ``glyph_size`` can be used (GNU Unifont loaded from a
``.hex`` file, the deterministic synthetic font, or a user-supplied font).
This module provides a tiny registry plus the "give me the best available
font" helper that prefers a real ``unifont*.hex`` file when one is present
in the data directory and falls back to the synthetic font otherwise, as
documented in DESIGN.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Protocol, runtime_checkable

from .glyph import GLYPH_SIZE, Glyph
from .hexfont import HexFont
from .synthetic import SyntheticFont

__all__ = ["FontProtocol", "FontRegistry", "default_font", "DATA_DIR"]

#: Directory searched for ``unifont*.hex`` files.
DATA_DIR = Path(os.environ.get("SHAMFINDER_DATA_DIR", Path(__file__).resolve().parents[3] / "data"))


@runtime_checkable
class FontProtocol(Protocol):
    """Minimal interface the homoglyph pipeline needs from a font."""

    name: str
    glyph_size: int

    def covers(self, codepoint: int) -> bool:
        """True when the font can render the code point."""

    def render(self, codepoint: int) -> Glyph:
        """Render the code point as a binary glyph."""


class FontRegistry:
    """Named collection of fonts with a configurable default."""

    def __init__(self) -> None:
        self._fonts: dict[str, FontProtocol] = {}
        self._default: str | None = None

    def register(self, font: FontProtocol, *, default: bool = False) -> FontProtocol:
        """Register *font* under its ``name`` (optionally as the default)."""
        self._fonts[font.name] = font
        if default or self._default is None:
            self._default = font.name
        return font

    def get(self, name: str) -> FontProtocol:
        """Look up a registered font by name."""
        try:
            return self._fonts[name]
        except KeyError:
            raise KeyError(
                f"no font named {name!r}; registered: {sorted(self._fonts)}"
            ) from None

    def names(self) -> list[str]:
        """Names of all registered fonts."""
        return sorted(self._fonts)

    @property
    def default(self) -> FontProtocol:
        """The default font (raises if the registry is empty)."""
        if self._default is None:
            raise LookupError("font registry is empty")
        return self._fonts[self._default]

    def __contains__(self, name: str) -> bool:
        return name in self._fonts

    def __len__(self) -> int:
        return len(self._fonts)


_GLOBAL_REGISTRY: FontRegistry | None = None


def _find_hex_file() -> Path | None:
    if not DATA_DIR.is_dir():
        return None
    candidates = sorted(DATA_DIR.glob("unifont*.hex"))
    return candidates[0] if candidates else None


def default_font(*, glyph_size: int = GLYPH_SIZE, refresh: bool = False) -> FontProtocol:
    """Return the best available font.

    A real GNU Unifont ``.hex`` file in the data directory wins; otherwise
    the deterministic synthetic font is used.  The result is cached in a
    module-level registry so repeated calls share glyph caches.
    """
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is not None and not refresh:
        return _GLOBAL_REGISTRY.default

    registry = FontRegistry()
    hex_path = _find_hex_file()
    if hex_path is not None:
        registry.register(HexFont.from_file(hex_path, glyph_size=glyph_size), default=True)
        registry.register(SyntheticFont(glyph_size))
    else:
        registry.register(SyntheticFont(glyph_size), default=True)
    _GLOBAL_REGISTRY = registry
    return registry.default
