"""Deterministic synthetic bitmap font ("SynthFont").

GNU Unifont itself is not redistributable inside this offline reproduction,
so the pipeline falls back to a synthetic font whose glyphs preserve the
*structure* the SimChar construction relies on (see DESIGN.md):

* code points that genuinely look alike render to bitmaps that differ by
  only a few pixels (Δ ≤ 4), and
* unrelated code points render to bitmaps that differ by dozens of pixels.

The rendering model:

1. Every code point is reduced to a *shape key*:

   * the curated cross-script equivalences in
     :mod:`repro.fonts.equivalences` map lookalikes (Cyrillic ``о``,
     Greek ``ο``, Armenian ``օ`` …) onto a canonical shape with a small
     ``extra_delta``;
   * otherwise, the NFKD decomposition splits a character into its base
     character plus combining marks, so every accented variant of ``o``
     shares ``o``'s shape; Hangul syllables decompose into jamo the same
     way;
   * otherwise the character is its own shape.

2. The base bitmap of a shape is a deterministic pseudo-random pattern
   (seeded by SHA-256 of the shape key) drawn inside the *body region* of a
   32x32 canvas, with an ink density chosen by general category (CJK
   ideographs are denser than Latin letters; combining marks and
   punctuation are sparse, which is what the paper's Step III filter
   removes).

3. Combining marks flip two dedicated pixels each in the *mark band* (top
   rows), and ``extra_delta`` flips pixels in the *variation band* (bottom
   rows), so Δ between a variant and its base equals exactly
   ``2 x #marks + extra_delta``.

Because every band is disjoint, Δ values compose predictably and the font
is fully deterministic across processes and platforms.
"""

from __future__ import annotations

import hashlib
import unicodedata
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator

import numpy as np

from ..unicode.blocks import block_name
from ..unicode.ucd import is_assigned
from .equivalences import shape_equivalence
from .glyph import GLYPH_SIZE, Glyph

__all__ = ["SyntheticFont", "ShapeSpec", "SPARSE_CATEGORIES"]


#: General categories rendered as sparse glyphs (few ink pixels).  These are
#: the characters the paper's Step III eliminates.
SPARSE_CATEGORIES = frozenset({"Mn", "Me", "Cf", "Zs", "Po", "Pc", "Pd", "Ps", "Pe", "Sk", "Lm"})

# Canvas layout: rows [0, _MARK_ROWS) hold combining-mark pixels, rows
# [_MARK_ROWS, _BODY_END) hold the shape body, rows [_BODY_END, size) hold
# variation pixels.
_MARK_ROWS = 4
_VARIATION_ROWS = 3


@dataclass(frozen=True)
class ShapeSpec:
    """Decomposition of a code point into shape key, marks, and extra delta."""

    codepoint: int
    shape_key: str
    marks: tuple[str, ...] = ()
    extra_delta: int = 0

    @property
    def total_delta_from_base(self) -> int:
        """Δ between this glyph and the bare base shape glyph."""
        return 2 * len(self.marks) + self.extra_delta


def _digest(seed: str) -> np.random.Generator:
    """Deterministic RNG derived from a string seed."""
    digest = hashlib.sha256(seed.encode("utf-8")).digest()
    return np.random.default_rng(np.frombuffer(digest[:16], dtype=np.uint64))


def _category(codepoint: int) -> str:
    return unicodedata.category(chr(codepoint))


def _density_for(codepoint: int) -> int:
    """Target number of ink pixels in the body region for a code point."""
    category = _category(codepoint)
    block = block_name(codepoint)
    if category in SPARSE_CATEGORIES:
        # Sparse: below the Step III threshold of 10 pixels.
        return 4 + (codepoint % 5)
    if "CJK" in block or block in ("Kangxi Radicals", "CJK Radicals Supplement"):
        return 150
    if block in ("Hangul Syllables", "Hangul Jamo", "Hangul Compatibility Jamo"):
        return 120
    if category.startswith("N"):
        return 70
    if category.startswith("L"):
        return 90
    if category.startswith("S"):
        return 40
    return 30


class SyntheticFont:
    """Deterministic Unifont substitute implementing the font protocol.

    Parameters
    ----------
    glyph_size:
        Edge length of rendered glyphs (32 as in the paper).
    name:
        Registry name of the font.
    coverage_planes:
        Unicode planes the font claims to cover (Unifont covers the BMP and
        parts of the SMP; the default mirrors that).
    """

    def __init__(
        self,
        glyph_size: int = GLYPH_SIZE,
        *,
        name: str = "synthfont",
        coverage_planes: Iterable[int] = (0, 1),
    ) -> None:
        if glyph_size < 16:
            raise ValueError("glyph_size must be at least 16")
        self.name = name
        self.glyph_size = int(glyph_size)
        self.coverage_planes = frozenset(int(p) for p in coverage_planes)
        self._base_cache: dict[str, np.ndarray] = {}

    # -- coverage ---------------------------------------------------------

    def covers(self, codepoint: int) -> bool:
        """True when the font has a glyph for the code point.

        Mirrors Unifont's coverage profile: assigned code points in the BMP
        plus the configured supplementary planes, excluding surrogates and
        private use areas.
        """
        if codepoint < 0 or codepoint > 0x10FFFF:
            return False
        if 0xD800 <= codepoint <= 0xDFFF:
            return False
        if 0xE000 <= codepoint <= 0xF8FF:
            return False
        if (codepoint >> 16) not in self.coverage_planes:
            return False
        return is_assigned(codepoint)

    def __contains__(self, codepoint: int) -> bool:
        return self.covers(codepoint)

    def coverage(self, codepoints: Iterable[int]) -> list[int]:
        """Filter *codepoints* down to those the font covers."""
        return [cp for cp in codepoints if self.covers(cp)]

    # -- shape decomposition ------------------------------------------------

    @lru_cache(maxsize=65536)
    def shape_spec(self, codepoint: int) -> ShapeSpec:
        """Decompose a code point into its :class:`ShapeSpec`."""
        char = chr(codepoint)
        equivalence = shape_equivalence(codepoint)
        if equivalence is not None:
            shape_key, extra = equivalence
            return ShapeSpec(codepoint, shape_key, (), extra)

        decomposition = unicodedata.normalize("NFKD", char)
        if decomposition != char and decomposition:
            base_chars = [c for c in decomposition if not unicodedata.combining(c)]
            marks = tuple(c for c in decomposition if unicodedata.combining(c))
            if base_chars:
                base = base_chars[0]
                extra = 0
                # A decomposition with several base characters (ligatures,
                # Hangul with multiple jamo) keeps the first as the shape and
                # adds the remainder as pseudo-marks.
                pseudo_marks = tuple(base_chars[1:])
                base_equiv = shape_equivalence(ord(base))
                if base_equiv is not None:
                    shape_key, extra = base_equiv
                else:
                    shape_key = base
                return ShapeSpec(codepoint, shape_key, marks + pseudo_marks, extra)

        return ShapeSpec(codepoint, char, (), 0)

    # -- rendering -----------------------------------------------------------

    def _base_bitmap(self, shape_key: str, density: int) -> np.ndarray:
        cache_key = f"{shape_key}|{density}"
        cached = self._base_cache.get(cache_key)
        if cached is not None:
            return cached
        size = self.glyph_size
        body_rows = range(_MARK_ROWS, size - _VARIATION_ROWS)
        body_cols = range(2, size - 2)
        positions = [(r, c) for r in body_rows for c in body_cols]
        rng = _digest(f"shape:{shape_key}")
        count = min(density, len(positions))
        chosen = rng.choice(len(positions), size=count, replace=False)
        bitmap = np.zeros((size, size), dtype=np.uint8)
        for idx in chosen:
            row, col = positions[int(idx)]
            bitmap[row, col] = 1
        bitmap.setflags(write=False)
        self._base_cache[cache_key] = bitmap
        return bitmap

    def _mark_pixels(self, mark: str, count: int = 2) -> list[tuple[int, int]]:
        """Deterministic pixels in the mark band for a combining mark or jamo."""
        rng = _digest(f"mark:{mark}")
        size = self.glyph_size
        pixels = []
        taken: set[tuple[int, int]] = set()
        while len(pixels) < count:
            row = int(rng.integers(0, _MARK_ROWS))
            col = int(rng.integers(0, size))
            if (row, col) in taken:
                continue
            taken.add((row, col))
            pixels.append((row, col))
        return pixels

    def _variation_pixels(self, codepoint: int, count: int) -> list[tuple[int, int]]:
        """``count`` deterministic pixels in the variation band for a code point."""
        rng = _digest(f"variation:{codepoint:06X}")
        size = self.glyph_size
        pixels: list[tuple[int, int]] = []
        taken: set[tuple[int, int]] = set()
        while len(pixels) < count:
            row = int(rng.integers(size - _VARIATION_ROWS, size))
            col = int(rng.integers(0, size))
            if (row, col) in taken:
                continue
            taken.add((row, col))
            pixels.append((row, col))
        return pixels

    def render(self, codepoint: int) -> Glyph:
        """Render a covered code point as a :class:`Glyph`."""
        if not self.covers(codepoint):
            raise KeyError(f"font {self.name!r} has no glyph for U+{codepoint:04X}")
        spec = self.shape_spec(codepoint)
        density = _density_for(codepoint)
        bitmap = self._base_bitmap(spec.shape_key, density).copy()
        bitmap.setflags(write=True)
        for mark in spec.marks:
            # Combining marks (accents) differ from the base by two pixels;
            # structural components (extra base characters from ligature or
            # Hangul jamo decompositions) contribute three, so that syllables
            # sharing all but their final jamo stay within the Δ threshold
            # while syllables differing in a vowel fall outside it.
            count = 2 if unicodedata.combining(mark) else 3
            for row, col in self._mark_pixels(mark, count):
                bitmap[row, col] = 1
        if spec.extra_delta:
            for row, col in self._variation_pixels(codepoint, spec.extra_delta):
                bitmap[row, col] = 1
        return Glyph(codepoint, bitmap)

    def render_text(self, text: str) -> list[Glyph]:
        """Render every character of *text*."""
        return [self.render(ord(ch)) for ch in text]

    def render_many(self, codepoints: Iterable[int]) -> dict[int, Glyph]:
        """Render a batch of code points, skipping uncovered ones."""
        result: dict[int, Glyph] = {}
        for cp in codepoints:
            if self.covers(cp):
                result[cp] = self.render(cp)
        return result

    # -- introspection ------------------------------------------------------------

    def codepoints(self, candidates: Iterable[int]) -> Iterator[int]:
        """Yield the candidates covered by this font (fonts have no global list)."""
        for cp in candidates:
            if self.covers(cp):
                yield cp

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SyntheticFont(name={self.name!r}, glyph_size={self.glyph_size})"
