"""GNU Unifont ``.hex`` format support.

GNU Unifont ships its glyphs in a simple text format: one line per code
point, ``XXXX:HEXDATA`` where ``HEXDATA`` encodes either an 8x16 cell
(32 hex digits) or a 16x16 cell (64 hex digits).  The paper renders these
cells onto a 32x32 canvas before computing the pixel-difference metric.

This module parses and writes that format so that a real ``unifont.hex``
file dropped into the data directory is used verbatim by the pipeline; the
synthetic font (:mod:`repro.fonts.synthetic`) is only the fallback when no
``.hex`` file is available (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from .glyph import GLYPH_SIZE, Glyph

__all__ = ["HexFont", "parse_hex_line", "format_hex_line"]


def parse_hex_line(line: str) -> tuple[int, np.ndarray]:
    """Parse one ``.hex`` line into ``(codepoint, bitmap)``.

    The bitmap is returned in its native cell size: ``(16, 8)`` for narrow
    glyphs and ``(16, 16)`` for wide glyphs.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        raise ValueError("not a glyph line")
    if ":" not in stripped:
        raise ValueError(f"malformed .hex line: {line!r}")
    code_part, data_part = stripped.split(":", 1)
    codepoint = int(code_part, 16)
    data_part = data_part.strip()
    if len(data_part) == 32:
        width = 8
    elif len(data_part) == 64:
        width = 16
    else:
        raise ValueError(
            f"unsupported .hex glyph data length {len(data_part)} for U+{codepoint:04X}"
        )
    raw = bytes.fromhex(data_part)
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
    bitmap = bits.reshape(16, width).astype(np.uint8)
    return codepoint, bitmap


def format_hex_line(codepoint: int, bitmap: np.ndarray) -> str:
    """Format a native-cell bitmap back into a ``.hex`` line."""
    bitmap = np.asarray(bitmap, dtype=np.uint8)
    if bitmap.shape not in ((16, 8), (16, 16)):
        raise ValueError(f"bitmap must be 16x8 or 16x16, got {bitmap.shape}")
    packed = np.packbits(bitmap, axis=None)
    return f"{codepoint:04X}:{packed.tobytes().hex().upper()}"


def _cell_to_canvas(bitmap: np.ndarray, size: int) -> np.ndarray:
    """Place a 16x8 / 16x16 Unifont cell onto a centered square canvas."""
    height, width = bitmap.shape
    scale = max(1, size // 16)
    scaled = np.kron(bitmap, np.ones((scale, scale), dtype=np.uint8))
    canvas = np.zeros((size, size), dtype=np.uint8)
    h, w = scaled.shape
    h = min(h, size)
    w = min(w, size)
    top = (size - h) // 2
    left = (size - w) // 2
    canvas[top:top + h, left:left + w] = scaled[:h, :w]
    return canvas


@dataclass
class HexFont:
    """A bitmap font loaded from (or writable to) the GNU Unifont ``.hex`` format."""

    name: str = "unifont"
    glyph_size: int = GLYPH_SIZE
    _cells: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _digest: str | None = field(default=None, repr=False, compare=False)

    # -- loading -------------------------------------------------------------

    @classmethod
    def from_lines(cls, lines: Iterable[str], *, name: str = "unifont",
                   glyph_size: int = GLYPH_SIZE) -> "HexFont":
        """Build a font from an iterable of ``.hex`` lines."""
        font = cls(name=name, glyph_size=glyph_size)
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            codepoint, bitmap = parse_hex_line(stripped)
            font._cells[codepoint] = bitmap
        return font

    @classmethod
    def from_file(cls, path: str | os.PathLike, *, name: str | None = None,
                  glyph_size: int = GLYPH_SIZE) -> "HexFont":
        """Load a ``.hex`` file from disk."""
        font_name = name if name is not None else os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_lines(handle, name=font_name, glyph_size=glyph_size)

    @classmethod
    def from_glyphs(cls, glyphs: Mapping[int, np.ndarray], *, name: str = "custom",
                    glyph_size: int = GLYPH_SIZE) -> "HexFont":
        """Build directly from a mapping of code point to native cell bitmaps."""
        font = cls(name=name, glyph_size=glyph_size)
        for codepoint, bitmap in glyphs.items():
            array = np.asarray(bitmap, dtype=np.uint8)
            if array.shape not in ((16, 8), (16, 16)):
                raise ValueError(f"cell for U+{codepoint:04X} must be 16x8 or 16x16")
            font._cells[int(codepoint)] = array
        return font

    # -- font API --------------------------------------------------------------

    def content_digest(self) -> str:
        """Hex digest over every cell bitmap (identifies the exact glyph set).

        Consumers that cache artifacts derived from the font (the SimChar
        build cache) use this to invalidate when any glyph changes, not
        just the sampled probe glyphs.  The digest is memoized and
        invalidated by :meth:`add_cell`; mutating ``_cells`` directly
        bypasses that and would serve a stale digest.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            for codepoint in sorted(self._cells):
                hasher.update(codepoint.to_bytes(4, "big"))
                cell = self._cells[codepoint]
                hasher.update(bytes(cell.shape))
                hasher.update(np.packbits(cell, axis=None).tobytes())
            self._digest = hasher.hexdigest()[:16]
        return self._digest

    def __contains__(self, codepoint: int) -> bool:
        return codepoint in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def codepoints(self) -> Iterator[int]:
        """Iterate over covered code points in ascending order."""
        return iter(sorted(self._cells))

    def covers(self, codepoint: int) -> bool:
        """True when the font has a glyph for the code point."""
        return codepoint in self._cells

    def render(self, codepoint: int) -> Glyph:
        """Render a covered code point onto the square canvas as a :class:`Glyph`."""
        try:
            cell = self._cells[codepoint]
        except KeyError:
            raise KeyError(f"font {self.name!r} has no glyph for U+{codepoint:04X}") from None
        return Glyph(codepoint, _cell_to_canvas(cell, self.glyph_size))

    def render_text(self, text: str) -> list[Glyph]:
        """Render every character of *text* (raises if any is uncovered)."""
        return [self.render(ord(ch)) for ch in text]

    # -- writing ---------------------------------------------------------------

    def add_cell(self, codepoint: int, bitmap: np.ndarray) -> None:
        """Add or replace the native cell for a code point."""
        array = np.asarray(bitmap, dtype=np.uint8)
        if array.shape not in ((16, 8), (16, 16)):
            raise ValueError("cell must be 16x8 or 16x16")
        self._cells[int(codepoint)] = array
        self._digest = None   # glyph set changed; recompute on next request

    def to_lines(self) -> list[str]:
        """Serialise to ``.hex`` lines in code point order."""
        return [format_hex_line(cp, self._cells[cp]) for cp in sorted(self._cells)]

    def save(self, path: str | os.PathLike) -> None:
        """Write the font to a ``.hex`` file."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_lines():
                handle.write(line + "\n")
