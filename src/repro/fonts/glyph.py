"""Binary glyph bitmaps.

The SimChar pipeline represents every character as a square binary bitmap
(the paper uses 32x32 pixels rendered from GNU Unifont).  Pillow is not a
dependency: glyphs are plain numpy arrays of 0/1 values with the handful of
operations the pipeline needs (difference metric, scaling, packing, ASCII
rendering for reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Glyph", "GLYPH_SIZE"]

#: Default glyph edge length in pixels (the paper renders 32x32 bitmaps).
GLYPH_SIZE = 32


@dataclass(frozen=True)
class Glyph:
    """A square binary bitmap for one code point.

    Attributes
    ----------
    codepoint:
        The Unicode code point this glyph renders.
    bitmap:
        ``(N, N)`` numpy array of dtype ``uint8`` holding 0 (background) and
        1 (ink) values.  The array is made read-only at construction time so
        glyphs can be shared and hashed safely.
    """

    codepoint: int
    bitmap: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        bitmap = np.asarray(self.bitmap, dtype=np.uint8)
        if bitmap.ndim != 2 or bitmap.shape[0] != bitmap.shape[1]:
            raise ValueError(f"glyph bitmap must be square, got shape {bitmap.shape}")
        if not np.isin(bitmap, (0, 1)).all():
            raise ValueError("glyph bitmap must be binary (0/1)")
        bitmap = bitmap.copy()
        bitmap.setflags(write=False)
        object.__setattr__(self, "bitmap", bitmap)

    # -- basic properties --------------------------------------------------

    @property
    def size(self) -> int:
        """Edge length in pixels."""
        return int(self.bitmap.shape[0])

    @property
    def pixel_count(self) -> int:
        """Number of ink (black) pixels; the paper's sparse filter uses this."""
        return int(self.bitmap.sum())

    @property
    def is_blank(self) -> bool:
        """True when the glyph has no ink at all."""
        return self.pixel_count == 0

    # -- comparisons ---------------------------------------------------------

    def delta(self, other: "Glyph") -> int:
        """Pixel-difference metric Δ from the paper (count of differing pixels)."""
        if self.size != other.size:
            raise ValueError(
                f"cannot compare glyphs of different sizes: {self.size} vs {other.size}"
            )
        return int(np.count_nonzero(self.bitmap != other.bitmap))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Glyph):
            return NotImplemented
        return self.codepoint == other.codepoint and np.array_equal(self.bitmap, other.bitmap)

    def __hash__(self) -> int:
        return hash((self.codepoint, self.bitmap.tobytes()))

    # -- transformations -----------------------------------------------------

    def scaled(self, size: int) -> "Glyph":
        """Return a nearest-neighbour scaled copy with edge length *size*.

        Used to bring the 8x16 / 16x16 Unifont cells up to the 32x32 canvas
        the paper's Δ metric is defined on.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if size == self.size:
            return self
        src = self.size
        rows = (np.arange(size) * src) // size
        cols = (np.arange(size) * src) // size
        scaled = self.bitmap[np.ix_(rows, cols)]
        return Glyph(self.codepoint, scaled)

    def centered(self, size: int) -> "Glyph":
        """Return a copy padded (or cropped) to *size*, ink kept centered."""
        if size == self.size:
            return self
        result = np.zeros((size, size), dtype=np.uint8)
        copy = min(size, self.size)
        src_off = (self.size - copy) // 2
        dst_off = (size - copy) // 2
        result[dst_off:dst_off + copy, dst_off:dst_off + copy] = self.bitmap[
            src_off:src_off + copy, src_off:src_off + copy
        ]
        return Glyph(self.codepoint, result)

    def with_pixels(self, pixels: Iterable[tuple[int, int]], value: int = 1) -> "Glyph":
        """Return a copy with the given ``(row, col)`` pixels set to *value*."""
        bitmap = self.bitmap.copy()
        bitmap.setflags(write=True)
        for row, col in pixels:
            bitmap[row % self.size, col % self.size] = 1 if value else 0
        return Glyph(self.codepoint, bitmap)

    def inverted(self) -> "Glyph":
        """Return a copy with ink and background swapped."""
        return Glyph(self.codepoint, 1 - self.bitmap)

    # -- serialisation --------------------------------------------------------

    def packed(self) -> bytes:
        """Pack the bitmap into bytes (row-major, 8 pixels per byte)."""
        return np.packbits(self.bitmap, axis=None).tobytes()

    @classmethod
    def unpack(cls, codepoint: int, data: bytes, size: int = GLYPH_SIZE) -> "Glyph":
        """Inverse of :meth:`packed`."""
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=size * size)
        return cls(codepoint, bits.reshape(size, size))

    def to_hex_row_strings(self) -> list[str]:
        """Rows as hex strings (GNU Unifont ``.hex`` style, one row per string)."""
        packed_rows = np.packbits(self.bitmap, axis=1)
        return ["".join(f"{byte:02X}" for byte in row) for row in packed_rows]

    def to_ascii_art(self, ink: str = "#", background: str = ".") -> str:
        """Render the glyph as ASCII art (used in reports and Figure benches)."""
        lines = []
        for row in self.bitmap:
            lines.append("".join(ink if px else background for px in row))
        return "\n".join(lines)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def blank(cls, codepoint: int, size: int = GLYPH_SIZE) -> "Glyph":
        """An all-background glyph."""
        return cls(codepoint, np.zeros((size, size), dtype=np.uint8))

    @classmethod
    def from_rows(cls, codepoint: int, rows: Iterable[str]) -> "Glyph":
        """Build from strings of ``0``/``1`` or ``.``/``#`` characters."""
        matrix = []
        for row in rows:
            matrix.append([1 if ch in ("1", "#", "X", "*") else 0 for ch in row])
        array = np.array(matrix, dtype=np.uint8)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError("rows must form a square bitmap")
        return cls(codepoint, array)
