"""Curated visual-shape equivalences used by the synthetic font.

The synthetic font (see :mod:`repro.fonts.synthetic` and DESIGN.md) needs to
know which code points *look like* which others so that it can render them
with nearly identical bitmaps, the way GNU Unifont draws a Cyrillic ``о``
with exactly the same pixels as a Latin ``o``.

The table below maps a code point to ``(shape_key, extra_delta)``:

* ``shape_key`` — the canonical shape this code point is drawn as (usually a
  Basic Latin letter or a representative character of its group);
* ``extra_delta`` — how many pixels the glyph differs from the canonical
  shape (0 = pixel-identical, 1-4 = visually confusable but not identical,
  larger values = noticeably different).

The entries are genuine visual confusions taken from the homograph
literature (Cyrillic/Greek/Armenian lookalikes of Latin letters, fullwidth
forms, dotless/stroked variants, CJK-vs-Katakana shapes).  Accented
characters are *not* listed here: the font derives those automatically from
their NFKD decomposition.
"""

from __future__ import annotations

__all__ = ["SHAPE_EQUIVALENCES", "shape_equivalence", "equivalence_groups"]

# codepoint -> (shape key, extra pixel delta from that shape)
SHAPE_EQUIVALENCES: dict[int, tuple[str, int]] = {
    # --- Cyrillic lookalikes of Basic Latin lowercase ---------------------
    0x0430: ("a", 0),   # CYRILLIC SMALL LETTER A
    0x0435: ("e", 0),   # CYRILLIC SMALL LETTER IE
    0x043E: ("o", 0),   # CYRILLIC SMALL LETTER O
    0x0440: ("p", 0),   # CYRILLIC SMALL LETTER ER
    0x0441: ("c", 0),   # CYRILLIC SMALL LETTER ES
    0x0443: ("y", 1),   # CYRILLIC SMALL LETTER U
    0x0445: ("x", 0),   # CYRILLIC SMALL LETTER HA
    0x0455: ("s", 0),   # CYRILLIC SMALL LETTER DZE
    0x0456: ("i", 0),   # CYRILLIC SMALL LETTER BYELORUSSIAN-UKRAINIAN I
    0x0458: ("j", 0),   # CYRILLIC SMALL LETTER JE
    0x0475: ("v", 1),   # CYRILLIC SMALL LETTER IZHITSA
    0x049B: ("k", 2),   # CYRILLIC SMALL LETTER KA WITH DESCENDER
    0x04BB: ("h", 1),   # CYRILLIC SMALL LETTER SHHA
    0x043C: ("m", 3),   # CYRILLIC SMALL LETTER EM (small caps m)
    0x043D: ("h", 4),   # CYRILLIC SMALL LETTER EN (looks like small-caps H)
    0x043F: ("n", 4),   # CYRILLIC SMALL LETTER PE
    0x0442: ("t", 4),   # CYRILLIC SMALL LETTER TE
    0x044A: ("b", 3),   # CYRILLIC SMALL LETTER HARD SIGN
    0x044C: ("b", 2),   # CYRILLIC SMALL LETTER SOFT SIGN
    0x044E: ("io", 0),  # CYRILLIC SMALL LETTER YU (o with bar) — own group
    0x0491: ("r", 4),   # CYRILLIC SMALL LETTER GHE WITH UPTURN
    0x04CF: ("l", 1),   # CYRILLIC SMALL LETTER PALOCHKA
    0x051B: ("q", 1),   # CYRILLIC SMALL LETTER QA
    0x051D: ("w", 0),   # CYRILLIC SMALL LETTER WE
    0x0501: ("d", 1),   # CYRILLIC SMALL LETTER KOMI DE
    0x0461: ("w", 2),   # CYRILLIC SMALL LETTER OMEGA
    # --- Greek lookalikes ---------------------------------------------------
    0x03B1: ("a", 2),   # GREEK SMALL LETTER ALPHA
    0x03B3: ("y", 2),   # GREEK SMALL LETTER GAMMA
    0x03B5: ("e", 3),   # GREEK SMALL LETTER EPSILON
    0x03B9: ("i", 1),   # GREEK SMALL LETTER IOTA (dotless)
    0x03BA: ("k", 1),   # GREEK SMALL LETTER KAPPA
    0x03BD: ("v", 1),   # GREEK SMALL LETTER NU
    0x03BF: ("o", 0),   # GREEK SMALL LETTER OMICRON
    0x03C1: ("p", 1),   # GREEK SMALL LETTER RHO
    0x03C3: ("o", 3),   # GREEK SMALL LETTER SIGMA
    0x03C4: ("t", 3),   # GREEK SMALL LETTER TAU
    0x03C5: ("u", 1),   # GREEK SMALL LETTER UPSILON
    0x03C7: ("x", 1),   # GREEK SMALL LETTER CHI
    0x03C9: ("w", 1),   # GREEK SMALL LETTER OMEGA
    0x03F2: ("c", 0),   # GREEK LUNATE SIGMA SYMBOL
    # --- Armenian lookalikes -------------------------------------------------
    0x0561: ("w", 3),   # ARMENIAN SMALL LETTER AYB
    0x0563: ("q", 2),   # ARMENIAN SMALL LETTER GIM
    0x0564: ("n", 3),   # ARMENIAN SMALL LETTER DA
    0x0565: ("t", 5),   # ARMENIAN SMALL LETTER ECH
    0x0566: ("q", 3),   # ARMENIAN SMALL LETTER ZA
    0x056A: ("d", 4),   # ARMENIAN SMALL LETTER ZHE
    0x056B: ("h", 3),   # ARMENIAN SMALL LETTER INI
    0x056C: ("l", 3),   # ARMENIAN SMALL LETTER LIWN
    0x0570: ("h", 2),   # ARMENIAN SMALL LETTER HO
    0x0578: ("n", 2),   # ARMENIAN SMALL LETTER VO
    0x057C: ("n", 4),   # ARMENIAN SMALL LETTER RA
    0x057D: ("u", 2),   # ARMENIAN SMALL LETTER SEH
    0x0581: ("g", 2),   # ARMENIAN SMALL LETTER CO
    0x0584: ("f", 3),   # ARMENIAN SMALL LETTER KEH
    0x0585: ("o", 1),   # ARMENIAN SMALL LETTER OH
    0x0587: ("u", 3),   # ARMENIAN SMALL LIGATURE ECH YIWN
    0x0572: ("n", 5),   # ARMENIAN SMALL LETTER GHAD
    0x10E7: ("y", 2),   # GEORGIAN LETTER QAR (paper Figure 5, pairs with 'y')
    0x10FF: ("o", 3),   # GEORGIAN LETTER LABIAL SIGN
    # --- Latin additions / IPA ------------------------------------------------
    0x0131: ("i", 2),   # LATIN SMALL LETTER DOTLESS I
    0x0237: ("j", 2),   # LATIN SMALL LETTER DOTLESS J
    0x0251: ("a", 1),   # LATIN SMALL LETTER ALPHA
    0x0253: ("b", 1),   # LATIN SMALL LETTER B WITH HOOK (paper Figure 5)
    0x0255: ("c", 2),   # LATIN SMALL LETTER C WITH CURL
    0x0256: ("d", 2),   # LATIN SMALL LETTER D WITH TAIL
    0x0257: ("d", 1),   # LATIN SMALL LETTER D WITH HOOK
    0x025B: ("e", 4),   # LATIN SMALL LETTER OPEN E
    0x025F: ("j", 3),   # LATIN SMALL LETTER DOTLESS J WITH STROKE
    0x0260: ("g", 1),   # LATIN SMALL LETTER G WITH HOOK
    0x0261: ("g", 0),   # LATIN SMALL LETTER SCRIPT G
    0x0265: ("u", 4),   # LATIN SMALL LETTER TURNED H
    0x0268: ("i", 3),   # LATIN SMALL LETTER I WITH STROKE
    0x026A: ("i", 4),   # LATIN LETTER SMALL CAPITAL I
    0x026B: ("l", 2),   # LATIN SMALL LETTER L WITH MIDDLE TILDE
    0x026F: ("w", 4),   # LATIN SMALL LETTER TURNED M
    0x0271: ("m", 2),   # LATIN SMALL LETTER M WITH HOOK
    0x0272: ("n", 1),   # LATIN SMALL LETTER N WITH LEFT HOOK
    0x0273: ("n", 2),   # LATIN SMALL LETTER N WITH RETROFLEX HOOK
    0x0274: ("n", 5),   # LATIN LETTER SMALL CAPITAL N
    0x0275: ("o", 4),   # LATIN SMALL LETTER BARRED O
    0x0279: ("r", 5),   # LATIN SMALL LETTER TURNED R
    0x027E: ("r", 3),   # LATIN SMALL LETTER R WITH FISHHOOK
    0x0282: ("s", 2),   # LATIN SMALL LETTER S WITH HOOK
    0x0288: ("t", 2),   # LATIN SMALL LETTER T WITH RETROFLEX HOOK
    0x0289: ("u", 3),   # LATIN SMALL LETTER U BAR
    0x028B: ("v", 2),   # LATIN SMALL LETTER V WITH HOOK
    0x028F: ("y", 5),   # LATIN LETTER SMALL CAPITAL Y
    0x0290: ("z", 2),   # LATIN SMALL LETTER Z WITH RETROFLEX HOOK
    0x0291: ("z", 1),   # LATIN SMALL LETTER Z WITH CURL
    0x029C: ("h", 5),   # LATIN LETTER SMALL CAPITAL H
    0x029F: ("l", 5),   # LATIN LETTER SMALL CAPITAL L
    0x02A0: ("q", 1),   # LATIN SMALL LETTER Q WITH HOOK
    0x0180: ("b", 2),   # LATIN SMALL LETTER B WITH STROKE
    0x0183: ("b", 3),   # LATIN SMALL LETTER B WITH TOPBAR
    0x0188: ("c", 1),   # LATIN SMALL LETTER C WITH HOOK
    0x018D: ("g", 3),   # LATIN SMALL LETTER TURNED DELTA
    0x0199: ("k", 1),   # LATIN SMALL LETTER K WITH HOOK
    0x019A: ("l", 1),   # LATIN SMALL LETTER L WITH BAR
    0x019B: ("l", 4),   # LATIN SMALL LETTER LAMBDA WITH STROKE
    0x019E: ("n", 3),   # LATIN SMALL LETTER N WITH LONG RIGHT LEG
    0x01A5: ("p", 1),   # LATIN SMALL LETTER P WITH HOOK
    0x01AB: ("t", 1),   # LATIN SMALL LETTER T WITH PALATAL HOOK
    0x01AD: ("t", 2),   # LATIN SMALL LETTER T WITH HOOK
    0x01B4: ("y", 3),   # LATIN SMALL LETTER Y WITH HOOK
    0x01B6: ("z", 3),   # LATIN SMALL LETTER Z WITH STROKE
    0x01BF: ("p", 4),   # LATIN LETTER WYNN
    0x021D: ("y", 4),   # LATIN SMALL LETTER YOGH
    0x0167: ("t", 3),   # LATIN SMALL LETTER T WITH STROKE
    0x0142: ("l", 2),   # LATIN SMALL LETTER L WITH STROKE
    0x0127: ("h", 1),   # LATIN SMALL LETTER H WITH STROKE
    0x0111: ("d", 2),   # LATIN SMALL LETTER D WITH STROKE
    0x0249: ("j", 3),   # LATIN SMALL LETTER J WITH STROKE
    0x024D: ("r", 2),   # LATIN SMALL LETTER R WITH STROKE
    0x0247: ("e", 5),   # LATIN SMALL LETTER E WITH STROKE
    0x024F: ("y", 2),   # LATIN SMALL LETTER Y WITH STROKE
    0x01DD: ("e", 6),   # LATIN SMALL LETTER TURNED E
    0x0259: ("e", 6),   # LATIN SMALL LETTER SCHWA
    # --- Fullwidth forms --------------------------------------------------------
    0xFF41: ("a", 1), 0xFF42: ("b", 1), 0xFF43: ("c", 1), 0xFF44: ("d", 1),
    0xFF45: ("e", 1), 0xFF46: ("f", 1), 0xFF47: ("g", 1), 0xFF48: ("h", 1),
    0xFF49: ("i", 1), 0xFF4A: ("j", 1), 0xFF4B: ("k", 1), 0xFF4C: ("l", 1),
    0xFF4D: ("m", 1), 0xFF4E: ("n", 1), 0xFF4F: ("o", 1), 0xFF50: ("p", 1),
    0xFF51: ("q", 1), 0xFF52: ("r", 1), 0xFF53: ("s", 1), 0xFF54: ("t", 1),
    0xFF55: ("u", 1), 0xFF56: ("v", 1), 0xFF57: ("w", 1), 0xFF58: ("x", 1),
    0xFF59: ("y", 1), 0xFF5A: ("z", 1),
    # --- Cherokee / Lisu / Vai shapes that mimic Latin ----------------------------
    0x13A2: ("d", 5),   # CHEROKEE LETTER E
    0x13A5: ("i", 5),   # CHEROKEE LETTER V (looks like i-ish)
    0x13C7: ("z", 5),   # CHEROKEE LETTER QUE
    0xA4D1: ("b", 2),   # LISU LETTER PA
    0xA4D3: ("d", 2),   # LISU LETTER DA
    0xA4DF: ("e", 2),   # LISU LETTER E... (approximation)
    0xA4E8: ("w", 2),   # LISU LETTER WA
    0xA4F3: ("u", 2),   # LISU LETTER U... (approximation)
    0xA52B: ("o", 2),   # VAI SYLLABLE O-like shape
    0xA55B: ("s", 3),   # VAI SYLLABLE shape
    0xA579: ("g", 4),   # VAI SYLLABLE shape
    0xA5A8: ("c", 3),   # VAI SYLLABLE shape
    # --- Lao / Thai round shapes resembling 'o' (paper Figure 12 uses Lao digit) ---
    0x0ED0: ("o", 1),   # LAO DIGIT ZERO
    0x0E4F: ("o", 3),   # THAI CHARACTER FONGMAN
    0x0E50: ("o", 2),   # THAI DIGIT ZERO
    0x0966: ("o", 2),   # DEVANAGARI DIGIT ZERO
    0x0A66: ("o", 2),   # GURMUKHI DIGIT ZERO
    0x0AE6: ("o", 2),   # GUJARATI DIGIT ZERO
    0x0B66: ("o", 2),   # ORIYA DIGIT ZERO
    0x0C66: ("o", 2),   # TELUGU DIGIT ZERO
    0x0CE6: ("o", 2),   # KANNADA DIGIT ZERO
    0x0D66: ("o", 2),   # MALAYALAM DIGIT ZERO
    0x0B20: ("o", 4),   # ORIYA LETTER TTHA
    0x0B13: ("o", 5),   # ORIYA LETTER O
    # --- Oriya pair from paper Figure 5 (U+0B32 / U+0B33) ---------------------------
    0x0B32: ("oriya-la", 0),   # ORIYA LETTER LA
    0x0B33: ("oriya-la", 2),   # ORIYA LETTER LLA
    # --- Hebrew / Arabic shapes ------------------------------------------------------
    0x05D5: ("i", 5),   # HEBREW LETTER VAV
    0x05DF: ("l", 5),   # HEBREW LETTER FINAL NUN
    0x0647: ("o", 5),   # ARABIC LETTER HEH
    0x0665: ("o", 3),   # ARABIC-INDIC DIGIT FIVE (round)
    0x06F5: ("o", 3),   # EXTENDED ARABIC-INDIC DIGIT FIVE
    0x0661: ("l", 6),   # ARABIC-INDIC DIGIT ONE
    # --- CJK Unified Ideographs vs Katakana / each other ------------------------------
    0x5DE5: ("cjk-kou", 0),    # 工 (paper: 工 vs エ)
    0x30A8: ("cjk-kou", 1),    # エ KATAKANA LETTER E
    0x529B: ("cjk-chikara", 0),  # 力
    0x30AB: ("cjk-chikara", 2),  # カ KATAKANA LETTER KA
    0x53E3: ("cjk-kuchi", 0),  # 口
    0x30ED: ("cjk-kuchi", 1),  # ロ KATAKANA LETTER RO
    0x56D7: ("cjk-kuchi", 2),  # 囗 enclosure
    0x5915: ("cjk-yuu", 0),    # 夕
    0x30BF: ("cjk-yuu", 2),    # タ KATAKANA LETTER TA
    0x4E8C: ("cjk-ni", 0),     # 二
    0x30CB: ("cjk-ni", 1),     # ニ KATAKANA LETTER NI
    0x516B: ("cjk-hachi", 0),  # 八
    0x30CF: ("cjk-hachi", 1),  # ハ KATAKANA LETTER HA
    0x4E00: ("cjk-ichi", 0),   # 一
    0x30FC: ("cjk-ichi", 1),   # ー KATAKANA-HIRAGANA PROLONGED SOUND MARK
    0x624D: ("cjk-sai", 0),    # 才
    0x30AA: ("cjk-sai", 3),    # オ KATAKANA LETTER O
    0x5343: ("cjk-sen", 0),    # 千
    0x30C1: ("cjk-sen", 2),    # チ KATAKANA LETTER TI
    0x4E0B: ("cjk-shita", 0),  # 下
    0x30C8: ("cjk-shita", 4),  # ト KATAKANA LETTER TO
    0x672A: ("cjk-mi", 0),     # 未
    0x672B: ("cjk-mi", 2),     # 末
    0x571F: ("cjk-tsuchi", 0), # 土
    0x58EB: ("cjk-tsuchi", 2), # 士
    0x65E5: ("cjk-hi", 0),     # 日
    0x66F0: ("cjk-hi", 3),     # 曰
    0x4EBA: ("cjk-hito", 0),   # 人
    0x5165: ("cjk-hito", 2),   # 入
    0x5DF1: ("cjk-ki", 0),     # 己
    0x5DF2: ("cjk-ki", 2),     # 已
    0x5DF3: ("cjk-ki", 3),     # 巳
    0x91CC: ("cjk-ri", 0),     # 里 (paper Figure 5 pairs 里 with 甼-like char)
    0x573C: ("cjk-ri", 3),     # 圼 (paper Figure 5)
    0x5DE6: ("cjk-hidari", 0), # 左
    0x5728: ("cjk-hidari", 4), # 在
    0x5927: ("cjk-dai", 0),    # 大
    0x592A: ("cjk-dai", 2),    # 太
    0x72AC: ("cjk-dai", 3),    # 犬
    0x738B: ("cjk-ou", 0),     # 王
    0x7389: ("cjk-ou", 2),     # 玉
    0x5E72: ("cjk-kan", 0),    # 干
    0x5E73: ("cjk-kan", 4),    # 平
    0x76EE: ("cjk-me", 0),     # 目
    0x81EA: ("cjk-me", 3),     # 自
    0x7530: ("cjk-ta", 0),     # 田
    0x7531: ("cjk-ta", 2),     # 由
    0x7532: ("cjk-ta", 2),     # 甲
    0x7533: ("cjk-ta", 3),     # 申
    # --- Hangul syllable lookalike seeds (paper Figure 5: U+BFC8 vs U+BF58) ------------
    0xBFC8: ("hangul-bf", 0),
    0xBF58: ("hangul-bf", 2),
}

def shape_equivalence(codepoint: int) -> tuple[str, int] | None:
    """Return the curated ``(shape_key, extra_delta)`` for a code point, if any."""
    return SHAPE_EQUIVALENCES.get(codepoint)


def equivalence_groups() -> dict[str, list[int]]:
    """Group the curated code points by shape key (useful for tests/reports)."""
    groups: dict[str, list[int]] = {}
    for codepoint, (key, _delta) in SHAPE_EQUIVALENCES.items():
        groups.setdefault(key, []).append(codepoint)
    for members in groups.values():
        members.sort()
    return groups
