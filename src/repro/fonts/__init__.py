"""Font/glyph substrate: bitmap glyphs, Unifont .hex parsing, synthetic font."""

from .equivalences import SHAPE_EQUIVALENCES, equivalence_groups, shape_equivalence
from .glyph import GLYPH_SIZE, Glyph
from .hexfont import HexFont, format_hex_line, parse_hex_line
from .registry import DATA_DIR, FontProtocol, FontRegistry, default_font
from .synthetic import SPARSE_CATEGORIES, ShapeSpec, SyntheticFont

__all__ = [
    "SHAPE_EQUIVALENCES",
    "equivalence_groups",
    "shape_equivalence",
    "GLYPH_SIZE",
    "Glyph",
    "HexFont",
    "format_hex_line",
    "parse_hex_line",
    "DATA_DIR",
    "FontProtocol",
    "FontRegistry",
    "default_font",
    "SPARSE_CATEGORIES",
    "ShapeSpec",
    "SyntheticFont",
]
