"""Vectorized batch fold/skeleton kernel for the detection hot path.

The scalar query path folds and skeletonizes one label at a time — a
Python loop per character through :func:`~repro.idn.idna_codec.fold_label`
and :meth:`~.skeleton.CharacterClasses.skeletonize` — then probes one
bucket.  At serving batch sizes that per-character work dominates.  This
module runs the same pipeline over a whole batch with numpy:

1. **translation table** (:class:`FoldTable`) — the composed mapping
   ``m(c) = representative(fold(c))`` is precomputed once per database as
   two parallel sorted ``uint32`` arrays and applied to the batch's code
   point array with one ``np.searchsorted`` pass;
2. **bucket join** (:class:`BatchFoldKernel`) — the folded skeletons are
   probed against the :class:`~.skeleton.SkeletonIndex` keys with a
   vectorized hash join: positional polynomial ``uint64`` hashes computed
   segment-wise over the batch (``np.add.reduceat``), membership via
   ``np.searchsorted`` against the pre-hashed sorted key array.  A hash
   collision can only create a false bucket *hit* — which routes the label
   to the scalar re-check — never a false miss;
3. **scalar re-check** — only labels whose skeleton *hits* a bucket (or
   that the table cannot decide) run the exact scalar Algorithm 1 path, so
   verdicts stay byte-identical to the scalar loop.

For whole *domains* (the ``query_many`` hot path) the kernel goes one step
further: :meth:`BatchFoldKernel.domain_certain_miss` runs the entire
fast-parse — lowercase LDH shape checks, label splitting, registrable
label extraction — as numpy passes over one concatenated code point
array, so a 20k-domain batch costs ~25 numpy operations instead of 20k
regex matches and string slices.  The eligibility rules are exactly
:data:`FAST_DOMAIN_RE` (the executable oracle the property suite compares
against); ineligible domains are simply left to the scalar path.

Why the table is exact: CPython's ``str.lower()`` has exactly one
context-sensitive mapping — Final_Sigma for U+03A3 — so for every other
code point the whole-string branch of ``fold_label`` agrees with the
per-character branch, and characters whose lowercase *expands* (U+0130)
are kept as-is by both.  Labels containing an out-of-table code point
(U+03A3, or a lone surrogate) are flagged and take the scalar path
unharmed.

With the ``invisible`` source selected, a bucket miss alone does not prove
"no match": the strip-and-rematch check can still fire.  The kernel
therefore also computes a conservative per-label *invisible risk* mask
(any table code point or any combining mark, classified once per distinct
code point in the batch) and only declares a certain miss when the label
carries no risk.

The table depends only on the homoglyph database (and the running
interpreter's Unicode version), not on the reference list, so it is
persisted as a small sidecar artifact next to the ``refindex-*.idx`` files
and re-validated on load against both fingerprints.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import unicodedata
import weakref
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..homoglyph.invisible import _MARK_CATEGORIES, InvisibleTable
from .skeleton import CharacterClasses

if TYPE_CHECKING:   # pragma: no cover - typing only
    from .algorithm import HomographMatcher

__all__ = [
    "FOLD_TABLE_VERSION",
    "FOLD_TABLE_MAGIC",
    "FAST_DOMAIN_RE",
    "MAX_FAST_DOMAIN",
    "FoldTable",
    "BatchFoldKernel",
    "fold_table_for",
    "kernel_for",
]

#: Bump when the table layout or the mapping semantics change; old sidecar
#: files then read as misses and are rebuilt (a ~100ms cost).
FOLD_TABLE_VERSION = 1

FOLD_TABLE_MAGIC = "shamfinder-fold-table"

#: Chunk size of the full-code-space ``str.lower()`` enumeration.  0x110000
#: is an exact multiple, so no tail handling is needed.
_SCAN_CHUNK = 0x2000

#: Code points the per-character table cannot decide:
#: U+03A3 (CPython's only context-sensitive lower mapping, Final_Sigma)
#: and the surrogate range (kept out of the vectorized path so no
#: downstream step ever has to reason about lone surrogates).  Labels
#: containing any of these fall back to the scalar path, which handles
#: them exactly.
_UNSAFE_CODES = (0x03A3, *range(0xD800, 0xE000))

#: Domains the batch path can parse without :class:`~repro.idn.domain
#: .DomainName`: at least two lowercase LDH labels, each obeying the
#: hyphen rules (no leading/trailing hyphen, no ``--`` in positions 3-4 —
#: which also excludes every ``xn--`` label, so a fast-parsed domain is
#: never an IDN) and the 63-octet cap; anything else takes the scalar
#: parse.  Matches exactly the inputs for which ``DomainName(text).ascii
#: == text`` with ``registrable_unicode == labels[-2]``.  This regex is
#: the executable *oracle*; :meth:`BatchFoldKernel.domain_certain_miss`
#: implements the same predicate with numpy passes and the property suite
#: asserts they agree.
_FAST_LABEL = r"(?!-)(?![a-z0-9_-]{2}--)[a-z0-9_-]{1,63}(?<!-)"
FAST_DOMAIN_RE = re.compile(rf"{_FAST_LABEL}(?:\.{_FAST_LABEL})+")

MAX_FAST_DOMAIN = 253

#: Per-ASCII-code lookup of the fast-parse label alphabet ``[a-z0-9_-]``.
_LDH_LOOKUP = np.zeros(128, dtype=bool)
for _char in "abcdefghijklmnopqrstuvwxyz0123456789-_":
    _LDH_LOOKUP[ord(_char)] = True
del _char

#: Polynomial hash base (the FNV-1a prime) and a length-mixing constant
#: (the 64-bit golden ratio).  ``hash(label) = Σ code_i · P^i + len · G``
#: over wrapping ``uint64`` arithmetic — equal strings always hash equal,
#: and a collision between different strings only costs a scalar re-check.
_HASH_PRIME = np.uint64(1099511628211)
_HASH_LEN_MIX = np.uint64(0x9E3779B97F4A7C15)

_POW: np.ndarray = np.ones(1, dtype=np.uint64)


def _powers(count: int) -> np.ndarray:
    """``[P^0, P^1, ..., P^(count-1)]`` as wrapping uint64, grown on demand."""
    global _POW
    if _POW.size < count:
        table = np.ones(count, dtype=np.uint64)
        np.multiply.accumulate(
            np.full(count - 1, _HASH_PRIME, dtype=np.uint64), out=table[1:])
        _POW = table
    return _POW


_LOWER_MAP: dict[int, int] | None = None


def _lower_map() -> dict[int, int]:
    """Non-identity single-character ``str.lower()`` mappings, full code space.

    Enumerated with chunked whole-string ``.lower()`` calls (C level) and a
    vectorized compare; a chunk whose lowercase changes length (it contains
    an expanding mapping such as U+0130) falls back to a per-character pass.
    Mappings that expand are *excluded* — ``fold_label`` keeps those
    characters as-is, and so does the table.
    """
    global _LOWER_MAP
    if _LOWER_MAP is None:
        mapping: dict[int, int] = {}
        for start in range(0, 0x110000, _SCAN_CHUNK):
            block = "".join(map(chr, range(start, start + _SCAN_CHUNK)))
            lowered = block.lower()
            if len(lowered) == len(block):
                codes = np.frombuffer(
                    block.encode("utf-32-le", "surrogatepass"), dtype="<u4")
                lows = np.frombuffer(
                    lowered.encode("utf-32-le", "surrogatepass"), dtype="<u4")
                for i in np.nonzero(codes != lows)[0]:
                    mapping[int(codes[i])] = int(lows[i])
            else:
                for code in range(start, start + _SCAN_CHUNK):
                    low = chr(code).lower()
                    if len(low) == 1 and ord(low) != code:
                        mapping[code] = ord(low)
        _LOWER_MAP = mapping
    return _LOWER_MAP


def _sparse_apply(keys: np.ndarray, values: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Map *codes* through the sorted sparse ``keys → values`` table
    (identity for code points not listed).

    The range guard skips the ``searchsorted`` pass when the batch cannot
    intersect the table at all — the common case for all-ASCII batches
    against tables whose entries are all non-ASCII.
    """
    if not len(keys) or not len(codes):
        return codes
    if codes.max() < keys[0] or codes.min() > keys[-1]:
        return codes
    pos = np.minimum(np.searchsorted(keys, codes), len(keys) - 1)
    hit = keys[pos] == codes
    return np.where(hit, values[pos], codes)


def _membership(sorted_keys: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Boolean mask: which of *codes* appear in *sorted_keys* (range-guarded
    like :func:`_sparse_apply`)."""
    if not len(sorted_keys) or not len(codes):
        return np.zeros(len(codes), dtype=bool)
    if codes.max() < sorted_keys[0] or codes.min() > sorted_keys[-1]:
        return np.zeros(len(codes), dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_keys, codes), len(sorted_keys) - 1)
    return sorted_keys[pos] == codes


class FoldTable:
    """Sparse code point translation tables for one homoglyph database.

    ``keys``/``values`` hold the non-identity entries of the *composed*
    mapping ``representative(fold(c))`` — one ``np.searchsorted`` pass
    folds and skeletonizes a batch at once.  ``fold_keys``/``fold_values``
    hold the fold-only mapping, used to reconstruct the folded (pre-
    skeleton) code points when the invisible-risk mask needs them.
    ``unsafe`` lists the code points the table cannot decide
    (:data:`_UNSAFE_CODES`).  All arrays are sorted ``uint32``.
    """

    __slots__ = ("keys", "values", "fold_keys", "fold_values", "unsafe",
                 "database_digest", "_ascii_map")

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        fold_keys: np.ndarray,
        fold_values: np.ndarray,
        unsafe: np.ndarray,
        database_digest: str = "",
    ) -> None:
        self.keys = keys
        self.values = values
        self.fold_keys = fold_keys
        self.fold_values = fold_values
        self.unsafe = unsafe
        self.database_digest = database_digest
        self._ascii_map: np.ndarray | None = None

    @classmethod
    def build(cls, classes: CharacterClasses, *, database_digest: str = "") -> "FoldTable":
        """Compose the lower-case scan with *classes*' representative map."""
        unsafe_set = set(_UNSAFE_CODES)
        fold = {
            code: low for code, low in _lower_map().items()
            if code not in unsafe_set
        }
        rep = {
            ord(char): ord(target)
            for char, target in classes.representatives().items()
            if char != target
        }
        composed: dict[int, int] = {}
        for code in fold.keys() | rep.keys():
            mapped = fold.get(code, code)
            mapped = rep.get(mapped, mapped)
            if mapped != code:
                composed[code] = mapped

        def _pair(mapping: dict[int, int]) -> tuple[np.ndarray, np.ndarray]:
            keys = np.array(sorted(mapping), dtype=np.uint32)
            values = np.array([mapping[int(k)] for k in keys], dtype=np.uint32)
            return keys, values

        keys, values = _pair(composed)
        fold_keys, fold_values = _pair(fold)
        unsafe = np.array(sorted(unsafe_set), dtype=np.uint32)
        return cls(keys, values, fold_keys, fold_values, unsafe, database_digest)

    # -- batch primitives ---------------------------------------------------

    def map_codes(self, codes: np.ndarray) -> np.ndarray:
        """Apply the composed fold+representative mapping to *codes*.

        All-ASCII batches (the ``domain_certain_miss`` hot path) go
        through a dense 128-entry lookup instead of the sparse
        ``searchsorted`` — one fancy-index take instead of a binary search
        per code point.
        """
        if codes.size and codes.max() < 0x80:
            if self._ascii_map is None:
                self._ascii_map = _sparse_apply(
                    self.keys, self.values, np.arange(0x80, dtype=np.uint32))
            return self._ascii_map[codes]
        return _sparse_apply(self.keys, self.values, codes)

    def fold_codes(self, codes: np.ndarray) -> np.ndarray:
        """Apply the fold-only mapping to *codes*."""
        return _sparse_apply(self.fold_keys, self.fold_values, codes)

    def unsafe_mask(self, codes: np.ndarray) -> np.ndarray:
        """Which of *codes* the table cannot decide (→ scalar fallback)."""
        return _membership(self.unsafe, codes)

    # -- persistence --------------------------------------------------------

    def _header(self) -> dict:
        return {
            "magic": FOLD_TABLE_MAGIC,
            "version": FOLD_TABLE_VERSION,
            "database_digest": self.database_digest,
            "unicode_version": unicodedata.unidata_version,
            "counts": [len(self.keys), len(self.fold_keys), len(self.unsafe)],
        }

    def _body(self) -> bytes:
        parts = [arr.astype("<u4").tobytes() for arr in
                 (self.keys, self.values, self.fold_keys, self.fold_values, self.unsafe)]
        return b"".join(parts)

    def save(self, path: str | os.PathLike) -> Path:
        """Persist as a sidecar artifact (JSON header line + raw arrays).

        Written through a temp-file rename, same discipline as the
        ``refindex-*.idx`` store: readers never see a partial file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = self._body()
        header = self._header()
        header["body_sha256"] = hashlib.sha256(body).hexdigest()
        fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(json.dumps(header).encode("utf-8") + b"\n")
                handle.write(body)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | os.PathLike, *, database_digest: str) -> "FoldTable | None":
        """Load a sidecar table; any mismatch or damage reads as ``None``.

        The header pins the database digest *and* the interpreter's Unicode
        version — a table written by a Python with a different Unicode
        database would disagree with the running ``str.lower()``, so it
        reads as a miss and is rebuilt.
        """
        try:
            with open(path, "rb") as handle:
                header = json.loads(handle.readline().decode("utf-8"))
                if not isinstance(header, dict):
                    return None
                if header.get("magic") != FOLD_TABLE_MAGIC:
                    return None
                if header.get("version") != FOLD_TABLE_VERSION:
                    return None
                if header.get("database_digest") != database_digest:
                    return None
                if header.get("unicode_version") != unicodedata.unidata_version:
                    return None
                counts = header.get("counts")
                if (not isinstance(counts, list) or len(counts) != 3
                        or not all(isinstance(n, int) and n >= 0 for n in counts)):
                    return None
                body = handle.read()
                if hashlib.sha256(body).hexdigest() != header.get("body_sha256"):
                    return None
                pair_count, fold_count, unsafe_count = counts
                expected = 4 * (2 * pair_count + 2 * fold_count + unsafe_count)
                if len(body) != expected:
                    return None
                flat = np.frombuffer(body, dtype="<u4")
                bounds = np.cumsum([pair_count, pair_count, fold_count,
                                    fold_count, unsafe_count])
                keys, values, fold_keys, fold_values, unsafe = np.split(flat, bounds[:-1])
                return cls(keys.astype(np.uint32), values.astype(np.uint32),
                           fold_keys.astype(np.uint32), fold_values.astype(np.uint32),
                           unsafe.astype(np.uint32), database_digest)
        except (OSError, ValueError, KeyError, TypeError):
            return None


def _sidecar_path(directory: str | os.PathLike, database_digest: str) -> Path:
    version = unicodedata.unidata_version.replace(".", "_")
    return Path(directory) / f"foldtable-{database_digest}-u{version}.bin"


def fold_table_for(
    classes: CharacterClasses,
    *,
    database_digest: str = "",
    cache_dir: str | os.PathLike | None = None,
) -> FoldTable:
    """The fold table for *classes*, memoized on the instance.

    With *cache_dir* (typically the reference-index store directory) and a
    digest, the sidecar artifact is tried first and refreshed on miss —
    skipping the ~100ms full-code-space scan on warm starts.
    """
    cached = getattr(classes, "_fold_table", None)
    if cached is not None and cached.database_digest == database_digest:
        return cached
    table = None
    if cache_dir is not None and database_digest:
        path = _sidecar_path(cache_dir, database_digest)
        table = FoldTable.load(path, database_digest=database_digest)
        if table is None:
            table = FoldTable.build(classes, database_digest=database_digest)
            try:
                table.save(path)
            except OSError:
                pass   # the sidecar is an optimisation, never lose the build
    if table is None:
        table = FoldTable.build(classes, database_digest=database_digest)
    classes._fold_table = table
    return table


class BatchFoldKernel:
    """Vectorized fold → skeletonize → bucket-probe over label batches.

    Bound to one prepared reference index: ``key_hashes`` is the sorted
    array of that index's bucket skeleton hashes.  The kernel never
    *produces* matches — it proves non-matches.  :meth:`certain_miss_mask`
    returns True exactly where the scalar skeleton join is guaranteed to
    return no match; everything else (bucket hits, out-of-table labels,
    invisible-risk labels) must run the scalar path, which keeps verdicts
    byte-identical by construction.
    """

    def __init__(self, table: FoldTable, skeleton_keys: Sequence[str]) -> None:
        self.table = table
        keys = list(skeleton_keys)
        self.bucket_count = len(keys)
        codes, starts, lengths = self._encode(keys)
        self.key_hashes = np.sort(self._segment_hash(codes, starts, lengths))
        # Lazily-built ASCII invisible-risk lookup (see _invisible_risk);
        # keyed by table identity so a different InvisibleTable rebuilds it.
        self._risk_source: InvisibleTable | None = None
        self._ascii_risk: np.ndarray | None = None

    # -- batch encoding -----------------------------------------------------

    @staticmethod
    def _encode(labels: Sequence[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(codes, starts, lengths)`` for the concatenated batch."""
        lengths = np.fromiter((len(label) for label in labels),
                              dtype=np.int64, count=len(labels))
        joined = "".join(labels)
        codes = np.frombuffer(joined.encode("utf-32-le", "surrogatepass"), dtype="<u4")
        starts = np.zeros(len(labels), dtype=np.int64)
        if len(labels) > 1:
            np.cumsum(lengths[:-1], out=starts[1:])
        return codes, starts, lengths

    @staticmethod
    def _segment_any(flags: np.ndarray, starts: np.ndarray,
                     lengths: np.ndarray) -> np.ndarray:
        """Per-label ``any()`` over per-character *flags*.

        Empty labels contribute no characters; ``reduceat`` over the
        non-empty starts spans them correctly because their segments are
        zero-width.
        """
        out = np.zeros(len(lengths), dtype=bool)
        nonempty = lengths > 0
        if flags.size and nonempty.any():
            out[nonempty] = np.logical_or.reduceat(flags, starts[nonempty])
        return out

    @staticmethod
    def _segment_hash(codes: np.ndarray, starts: np.ndarray,
                      lengths: np.ndarray) -> np.ndarray:
        """Positional polynomial hash of each packed segment.

        ``Σ code_i · P^i + len · G`` over wrapping uint64 — computed for
        the whole batch with one ``np.add.reduceat``.  Empty segments hash
        to ``0`` (plus the zero length term), exactly like an empty key
        would, so equality is preserved for every input.
        """
        out = np.zeros(len(lengths), dtype=np.uint64)
        nonempty = lengths > 0
        if codes.size and nonempty.any():
            exponents = np.arange(codes.size, dtype=np.int64)
            exponents -= np.repeat(starts, lengths)
            terms = codes.astype(np.uint64) * _powers(int(lengths.max()))[exponents]
            out[nonempty] = np.add.reduceat(terms, starts[nonempty])
        return out + lengths.astype(np.uint64) * _HASH_LEN_MIX

    def skeletons(self, labels: Sequence[str]) -> tuple[list[str], np.ndarray]:
        """``(skeletons, decidable)`` for *labels* via the translation table.

        ``skeletons[i]`` equals ``classes.skeletonize(fold_label(labels[i]))``
        wherever ``decidable[i]`` is True; where False the label contains an
        out-of-table code point and the entry is unspecified.
        """
        codes, starts, lengths = self._encode(labels)
        undecidable = self._segment_any(self.table.unsafe_mask(codes), starts, lengths)
        mapped = self.table.map_codes(codes)
        joined = mapped.astype("<u4").tobytes().decode("utf-32-le", "surrogatepass")
        ends = starts + lengths
        skeletons = [joined[start:end] for start, end in zip(starts, ends)]
        return skeletons, ~undecidable

    def _invisible_risk(
        self,
        codes: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        invisible_table: InvisibleTable,
    ) -> np.ndarray:
        """Per-label mask: could the strip-and-rematch check possibly fire?

        Conservative superset of ``findings(folded) != ()``: any table code
        point or any combining mark (Mn/Me) — a *stack* needs two
        consecutive marks, so one mark alone can only over-trigger the
        scalar fallback, never miss a match.  Classification runs once per
        distinct code point in the batch, on the *folded* (pre-skeleton)
        code points the scalar check sees.

        All-ASCII batches (the ``domain_certain_miss`` hot path) skip the
        fold + ``np.unique`` passes via a 128-entry lookup of
        ``risk(fold(c))``, built once per invisible table.
        """
        if codes.size and int(codes.max()) < 0x80:
            if self._risk_source is not invisible_table:
                folded_ascii = self.table.fold_codes(
                    np.arange(0x80, dtype=np.uint32))
                self._ascii_risk = np.fromiter(
                    (
                        chr(int(code)) in invisible_table
                        or unicodedata.category(chr(int(code))) in _MARK_CATEGORIES
                        for code in folded_ascii
                    ),
                    dtype=bool, count=0x80,
                )
                self._risk_source = invisible_table
            return self._segment_any(self._ascii_risk[codes], starts, lengths)
        folded = self.table.fold_codes(codes)
        unique, inverse = np.unique(folded, return_inverse=True)
        risky = np.fromiter(
            (
                chr(code) in invisible_table
                or unicodedata.category(chr(code)) in _MARK_CATEGORIES
                for code in unique.tolist()
            ),
            dtype=bool, count=len(unique),
        )
        return self._segment_any(risky[inverse], starts, lengths)

    def certain_miss_mask(
        self,
        labels: Sequence[str],
        *,
        invisible_table: InvisibleTable | None = None,
    ) -> np.ndarray:
        """True where the scalar skeleton join is *guaranteed* matchless.

        A certain miss requires all of: every code point decidable by the
        table, the folded skeleton absent from the bucket keys, and — when
        an *invisible_table* is active — no invisible risk.  Labels failing
        any leg get False and must run the scalar path.
        """
        if not labels:
            return np.zeros(0, dtype=bool)
        codes, starts, lengths = self._encode(labels)
        return self._codes_certain_miss(codes, starts, lengths, invisible_table)

    def _codes_certain_miss(
        self,
        codes: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        invisible_table: InvisibleTable | None,
    ) -> np.ndarray:
        """:meth:`certain_miss_mask` over already-packed label segments."""
        undecidable = self._segment_any(self.table.unsafe_mask(codes), starts, lengths)
        mapped = self.table.map_codes(codes)
        hashes = self._segment_hash(mapped, starts, lengths)
        bucket_hit = _membership(self.key_hashes, hashes)
        miss = ~(undecidable | bucket_hit)
        if invisible_table is not None and miss.any():
            miss &= ~self._invisible_risk(codes, starts, lengths, invisible_table)
        return miss

    def domain_certain_miss(
        self,
        texts: Sequence[str],
        *,
        invisible_table: InvisibleTable | None = None,
    ) -> np.ndarray:
        """Certain-miss mask over whole domain strings, fully vectorized.

        True at position *i* exactly when ``texts[i]`` is fast-parseable
        (:data:`FAST_DOMAIN_RE`: lowercase LDH labels, never an IDN) *and*
        its registrable label is a certain miss — i.e. the scalar
        ``query`` is guaranteed to return an empty, error-free verdict
        whose canonical forms equal the input.  Everything else (IDNs,
        uppercase, junk, bucket hits) gets False and must run scalar.

        One concatenated code point pass replaces 20k regex matches and
        string slices: domain/label boundaries come from separator
        positions, per-label shape checks and the per-domain aggregation
        are ``reduceat`` calls, and the registrable labels are gathered
        into a packed segment array fed straight to the hash join.
        """
        count = len(texts)
        out = np.zeros(count, dtype=bool)
        if count == 0:
            return out
        blob = "\n".join(texts) + "\n"     # sentinel: every domain ends in \n
        codes = np.frombuffer(blob.encode("utf-32-le", "surrogatepass"), dtype="<u4")
        is_newline = codes == 0x0A
        newline_pos = np.flatnonzero(is_newline)
        if newline_pos.size != count:
            # Some text embeds the separator itself — blank those out (they
            # are ineligible anyway; "\n" is not an LDH character) and redo
            # the boundary scan.  Kept off the hot path: scanning every
            # text for "\n" up front costs more than this rare rebuild.
            blob = "\n".join(
                text if "\n" not in text else "" for text in texts) + "\n"
            codes = np.frombuffer(
                blob.encode("utf-32-le", "surrogatepass"), dtype="<u4")
            is_newline = codes == 0x0A
            newline_pos = np.flatnonzero(is_newline)
        is_dot = codes == 0x2E

        domain_starts = np.empty(count, dtype=np.int64)
        domain_starts[0] = 0
        domain_starts[1:] = newline_pos[:-1] + 1
        domain_lengths = newline_pos - domain_starts

        is_ldh = _LDH_LOOKUP[np.minimum(codes, 0x7F)] & (codes < 0x80)
        domain_char_bad = np.logical_or.reduceat(
            ~(is_ldh | is_dot | is_newline), domain_starts)

        # Label spans: separators are dots and newlines; every domain
        # contributes at least one (possibly empty) label, so the reduceat
        # index arrays below are strictly increasing.
        separator_pos = np.flatnonzero(is_dot | is_newline)
        label_starts = np.empty(separator_pos.size, dtype=np.int64)
        label_starts[0] = 0
        label_starts[1:] = separator_pos[:-1] + 1
        label_lengths = separator_pos - label_starts

        hyphen = np.uint32(0x2D)
        label_ok = (label_lengths >= 1) & (label_lengths <= 63)
        label_ok &= codes[label_starts] != hyphen
        label_ok &= codes[np.maximum(separator_pos - 1, 0)] != hyphen
        long_enough = label_lengths >= 4
        label_ok &= ~(
            long_enough
            & (codes[np.where(long_enough, label_starts + 2, 0)] == hyphen)
            & (codes[np.where(long_enough, label_starts + 3, 0)] == hyphen)
        )

        first_label = np.searchsorted(label_starts, domain_starts)
        label_counts = np.diff(np.append(first_label, label_starts.size))
        all_labels_ok = np.logical_and.reduceat(label_ok, first_label)

        eligible = (all_labels_ok & ~domain_char_bad & (label_counts >= 2)
                    & (domain_lengths <= MAX_FAST_DOMAIN))
        chosen = np.flatnonzero(eligible)
        if chosen.size == 0:
            return out

        # Gather the registrable (second-to-last) labels into one packed
        # segment array and reuse the label-level kernel on it.
        registrable = first_label[chosen] + label_counts[chosen] - 2
        source_starts = label_starts[registrable]
        packed_lengths = label_lengths[registrable]
        packed_starts = np.zeros(chosen.size, dtype=np.int64)
        if chosen.size > 1:
            np.cumsum(packed_lengths[:-1], out=packed_starts[1:])
        gather = np.arange(int(packed_lengths.sum()), dtype=np.int64)
        gather += np.repeat(source_starts - packed_starts, packed_lengths)
        out[chosen] = self._codes_certain_miss(
            codes[gather], packed_starts, packed_lengths, invisible_table)
        return out


#: Kernel registry keyed by ``id(prepared)`` with a weakref guard: the
#: weakref both keeps the entry honest (an id reused after GC cannot alias
#: a stale kernel) and evicts the entry when the prepared object dies.
#: Deliberately *not* an attribute on the prepared object — that would ride
#: along when spawn pools pickle it, shipping megabytes of key arrays.
_KERNELS: dict[int, tuple[weakref.ref, BatchFoldKernel]] = {}


def kernel_for(
    matcher: "HomographMatcher",
    prepared,
    *,
    cache_dir: str | os.PathLike | None = None,
) -> BatchFoldKernel | None:
    """The batch kernel for *prepared* under *matcher*, built once and cached.

    Returns ``None`` when the prepared index cannot supply its skeleton
    keys (an exotic duck-typed index) — callers then just run the scalar
    path.  *cache_dir* is forwarded to the fold-table sidecar lookup.
    """
    entry = _KERNELS.get(id(prepared))
    if entry is not None:
        ref, kernel = entry
        if ref() is prepared:
            return kernel
    index = getattr(prepared, "index", None)
    skeletons = getattr(index, "skeletons", None)
    if skeletons is None:
        return None
    table = fold_table_for(
        matcher.classes,
        database_digest=matcher.database.content_digest(),
        cache_dir=cache_dir,
    )
    kernel = BatchFoldKernel(table, skeletons())
    try:
        ref = weakref.ref(prepared, lambda _, key=id(prepared): _KERNELS.pop(key, None))
    except TypeError:
        return kernel   # not weakref-able: still usable, just not cached
    _KERNELS[id(prepared)] = (ref, kernel)
    return kernel
