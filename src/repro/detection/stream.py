"""Streaming zone-scale homograph scan (the paper's Step III as a pipeline).

The paper's framework runs in three steps: collect registered domains for a
TLD (Step I), extract the IDNs (Step II), and compare each IDN against the
reference list through the homoglyph database (Step III).  The measurement
study applies that to ~967M registered domains across 1,400+ TLDs — far
more than fits in one in-memory :meth:`ShamFinder.detect` call.  This
module streams it instead:

* **chunked iteration** — the input (a zone-file domain dump, one name per
  line) is consumed in fixed-size chunks, so memory stays bounded no matter
  how large the zone is;
* **sharded matching** — chunks are fanned out over worker processes that
  share one :class:`~.shamfinder.PreparedReferences` (case-folded labels +
  skeleton hash-join index).  Pools come from :mod:`repro.parallel.pool`:
  fork/forkserver children inherit the prepared state, spawn children
  rebuild it from a picklable spec (an mmap-backed index re-attaches from
  its artifact path), so every start method runs parallel;
* **JSONL result sink** — each detection is appended as one JSON object
  per line (:meth:`HomographDetection.as_dict`), flushed chunk by chunk;
* **checkpoint/resume** — after every chunk a small checkpoint file records
  how much input was consumed and how many result lines are durable.  A
  killed scan restarts with ``resume=True``: the sink is validated
  (truncated or corrupt trailing lines are dropped and reported), the
  consumed input is skipped, and counters continue where they left off.

Steps II and III happen inside the workers: each chunk is filtered to the
``xn--`` names (Step II) and matched against the prepared references
(Step III), with unparsable junk counted in ``skipped_count`` exactly as
the in-memory path does.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..parallel.pool import pool_context
from .report import DetectionReport, HomographDetection
from .shamfinder import PreparedReferences, ShamFinder

__all__ = [
    "CHECKPOINT_VERSION",
    "ScanStats",
    "ScanCheckpoint",
    "SinkRecovery",
    "ScanResumeError",
    "SinkError",
    "StreamingScanner",
    "recover_sink",
    "read_sink",
    "iter_sink",
    "file_fingerprint",
    "is_idn_candidate",
]

#: Bump when the checkpoint layout changes; old checkpoints then refuse to resume.
CHECKPOINT_VERSION = 1


class ScanResumeError(RuntimeError):
    """Resuming is unsafe (input changed or the checkpoint is incompatible)."""


class SinkError(ValueError):
    """A result sink contains lines that do not parse as detections."""


@dataclass
class ScanStats:
    """Progress counters of one streaming scan."""

    domains_seen: int = 0          # non-blank, non-comment input names
    idn_count: int = 0             # candidates that parsed and were matched
    skipped_count: int = 0         # candidates dropped as unparsable junk
    detection_count: int = 0       # result lines written (or collected)
    chunks_done: int = 0
    lines_done: int = 0            # raw input lines consumed
    resumed_lines: int = 0         # raw input lines skipped by resume
    recovered_drop: int = 0        # sink lines dropped during recovery
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        """JSON-friendly representation (printed by the ``scan`` CLI)."""
        return asdict(self)


@dataclass(frozen=True)
class ScanCheckpoint:
    """Durable progress marker written after every completed chunk."""

    lines_done: int
    chunks_done: int
    detections_written: int
    domains_seen: int
    idn_count: int
    skipped_count: int
    input_fingerprint: str | None = None
    version: int = CHECKPOINT_VERSION

    def save(self, path: str | os.PathLike) -> None:
        """Atomically persist (write to a temp name, then rename)."""
        path = Path(path)
        temp = path.with_name(path.name + ".tmp")
        temp.write_text(json.dumps(asdict(self), sort_keys=True), encoding="utf-8")
        os.replace(temp, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ScanCheckpoint | None":
        """Read a checkpoint; missing or corrupt files read as ``None``."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
            if not isinstance(payload, dict):
                return None
            if payload.get("version") != CHECKPOINT_VERSION:
                return None
            return cls(**payload)
        except (OSError, ValueError, TypeError):
            return None


@dataclass(frozen=True)
class SinkRecovery:
    """Outcome of validating an existing JSONL sink before resuming."""

    valid_count: int               # detection lines kept
    dropped_corrupt: int           # truncated/unparsable lines removed
    dropped_uncheckpointed: int    # valid lines past the checkpoint removed
    keep_bytes: int = 0            # byte length of the kept prefix

    @property
    def dropped(self) -> int:
        """Total lines removed from the sink."""
        return self.dropped_corrupt + self.dropped_uncheckpointed


def _is_valid_sink_line(line: bytes) -> bool:
    if not line.endswith(b"\n"):
        return False               # partial write — the scan died mid-line
    try:
        payload = json.loads(line)
    except ValueError:
        return False
    return isinstance(payload, dict) and "idn" in payload and "reference" in payload


def recover_sink(
    path: str | os.PathLike,
    *,
    expected_lines: int | None = None,
    dry_run: bool = False,
    line_validator: Callable[[bytes], bool] | None = None,
) -> SinkRecovery:
    """Validate a sink file, truncating trailing damage (unless *dry_run*).

    Keeps the longest prefix of well-formed detection lines, capped at
    *expected_lines* (the checkpoint's durable count) when given — valid
    lines past the checkpoint belong to a chunk that was flushed but never
    checkpointed and would be re-emitted by the resumed scan.  With
    ``dry_run=True`` the file is only inspected, never modified, so a
    caller can refuse to proceed before any data is discarded.

    *line_validator* overrides the well-formedness test, so other JSONL
    sinks with the same durability discipline (the longitudinal timeline
    store) can share the recovery logic.
    """
    path = Path(path)
    if line_validator is None:
        line_validator = _is_valid_sink_line
    if not path.exists():
        return SinkRecovery(0, 0, 0)
    valid = 0
    keep_bytes = 0
    dropped_corrupt = 0
    dropped_uncheckpointed = 0
    with open(path, "rb") as handle:
        for line in handle:
            if not line_validator(line):
                dropped_corrupt += 1
                break
            if expected_lines is not None and valid >= expected_lines:
                dropped_uncheckpointed += 1
                continue
            valid += 1
            keep_bytes += len(line)
        # Anything after a corrupt line is unaccounted for; count it too.
        if dropped_corrupt:
            dropped_corrupt += sum(1 for _ in handle)
    total_bytes = path.stat().st_size
    if not dry_run and keep_bytes != total_bytes:
        with open(path, "r+b") as handle:
            handle.truncate(keep_bytes)
    return SinkRecovery(valid, dropped_corrupt, dropped_uncheckpointed, keep_bytes)


def iter_sink(
    path: str | os.PathLike,
    *,
    chunk_size: int = 2000,
) -> Iterator[list[HomographDetection]]:
    """Stream a completed sink chunk-by-chunk without loading it whole.

    Yields lists of at most *chunk_size* detections in file order — the
    memory-bounded way the enrichment pipeline consumes zone-scale scan
    results.  Raises :class:`SinkError` naming the first offending line when
    the file contains truncated or corrupt entries.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunk: list[HomographDetection] = []
    with open(path, "rb") as handle:
        for number, line in enumerate(handle, start=1):
            if not _is_valid_sink_line(line):
                raise SinkError(f"{path}: corrupt or truncated sink line {number}")
            try:
                chunk.append(HomographDetection.from_dict(json.loads(line)))
            except (KeyError, TypeError) as exc:
                raise SinkError(
                    f"{path}: sink line {number} is not a detection: {exc}"
                ) from exc
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
    if chunk:
        yield chunk


def read_sink(path: str | os.PathLike) -> DetectionReport:
    """Load a completed sink back into a :class:`DetectionReport`.

    Raises :class:`SinkError` naming the first offending line when the file
    contains truncated or corrupt entries — a completed scan's sink must be
    fully well-formed, so damage here means the scan needs a resume pass.
    """
    report = DetectionReport()
    for chunk in iter_sink(path):
        report.extend(chunk)
    return report


def file_fingerprint(path: str | os.PathLike) -> str:
    """Cheap input identity: size plus a digest of the leading bytes."""
    path = Path(path)
    hasher = hashlib.sha256()
    hasher.update(str(path.stat().st_size).encode("ascii"))
    with open(path, "rb") as handle:
        hasher.update(handle.read(65536))
    return hasher.hexdigest()[:16]


# Worker-side state: the finder and prepared references are shipped once per
# worker through the pool initializer, not once per chunk.
_WORKER_STATE: dict = {}

#: Spec tag marking a prepared-references value that must be re-attached
#: from the artifact path instead of arriving ready-made: an mmap-backed
#: index cannot be pickled into a spawned worker, but the file it maps can
#: be re-opened there (one O(header) open against the shared page cache).
_MMAP_SPEC = "__mmap_index__"


def _attach_prepared(prepared):
    """Resolve a worker's prepared-references value (spec or ready state)."""
    if isinstance(prepared, tuple) and len(prepared) == 2 and prepared[0] == _MMAP_SPEC:
        from .index import ReferenceIndexStore

        path = Path(prepared[1])
        finder = _WORKER_STATE["finder"]
        index = ReferenceIndexStore(path.parent).load_path(path, finder)
        if index is None:
            raise RuntimeError(f"scan worker could not attach reference index {path}")
        return index.prepared
    return prepared


def _scan_worker_init(
    finder: ShamFinder,
    prepared,
    idn_only: bool,
    batch_kernel: bool = True,
) -> None:
    _WORKER_STATE["finder"] = finder
    _WORKER_STATE["args"] = (finder, _attach_prepared(prepared), idn_only, batch_kernel)


def _scan_worker(chunk: list[str]) -> tuple[list[HomographDetection], int, int, int, int]:
    finder, prepared, idn_only, batch_kernel = _WORKER_STATE["args"]
    return _process_chunk(finder, prepared, chunk, idn_only, batch_kernel)


def is_idn_candidate(domain: str) -> bool:
    """Cheap Step II test: is the *registrable* label an A-label?

    Matching happens on the registrable label (the paper's Figure 2), so
    this mirrors ``ShamFinder.extract_idns``/``has_idn_registrable_label``
    without paying a full parse — an ASCII name under an IDN TLD
    (``example.xn--p1ai``) is *not* a candidate.
    """
    # Cheap substring reject for the ~99% non-IDN zone bulk, sparing them
    # the rstrip/split label dissection below.
    if "xn--" not in domain.lower():
        return False
    labels = domain.lower().rstrip(".").split(".")
    registrable = labels[-2] if len(labels) >= 2 else labels[0]
    return registrable.startswith("xn--")


def _process_chunk(
    finder: ShamFinder,
    prepared: PreparedReferences,
    lines: Sequence[str],
    idn_only: bool,
    batch_kernel: bool = True,
) -> tuple[list[HomographDetection], int, int, int, int]:
    """Steps II + III over one chunk of raw input lines."""
    domains = []
    for raw in lines:
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        domains.append(text)
    if idn_only:
        candidates = [d for d in domains if is_idn_candidate(d)]
    else:
        candidates = domains
    detections, idn_count, skipped = finder.detect_prepared(
        candidates, prepared, batch_kernel=batch_kernel)
    return detections, len(lines), len(domains), idn_count, skipped


def _chunked(lines: Iterable[str], chunk_size: int) -> Iterator[list[str]]:
    chunk: list[str] = []
    for line in lines:
        chunk.append(line)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class StreamingScanner:
    """Chunked, sharded, resumable Step III scan over a domain stream.

    Built for zone-scale inputs that don't fit one in-memory report:
    domains are consumed in ``chunk_size`` slices, matched against the
    prepared reference index (optionally across ``jobs`` worker shards,
    parallel under every start method including spawn), and appended to a
    JSONL sink with an atomic per-chunk checkpoint.  :meth:`scan` resumes an interrupted run byte-identically:
    trailing damage past the checkpoint is truncated and reported, while
    damage inside the checkpointed prefix, a changed input file, or a lost
    checkpoint against a non-empty sink refuse with
    :class:`ScanResumeError` rather than risk silent double-counting (the
    recovery matrix is tabulated in ``docs/OPERATIONS.md``).

    Pass ``prepared=`` (e.g. from a loaded
    :class:`~repro.detection.index.ReferenceIndex`) to skip the per-run
    reference warm-up; ``idn_only=True`` applies the paper's Step II
    filter so only IDN candidates reach the matcher.
    """

    def __init__(
        self,
        finder: ShamFinder,
        reference: Sequence[str],
        *,
        chunk_size: int = 2000,
        jobs: int = 1,
        idn_only: bool = True,
        prepared: PreparedReferences | None = None,
        batch_kernel: bool = True,
        start_method: str | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.finder = finder
        # A caller holding a prebuilt index (a loaded ReferenceIndex
        # artifact) passes its prepared state to skip the per-run warm-up.
        self.prepared = prepared if prepared is not None else finder.prepare_references(reference)
        self.chunk_size = chunk_size
        self.jobs = jobs
        self.idn_only = idn_only
        self.batch_kernel = batch_kernel
        #: Multiprocessing start method for the worker pool: ``None``
        #: honours the host/platform choice (fork where available, spawn
        #: elsewhere — both parallel); an explicit value forces one.
        self.start_method = start_method

    # -- in-memory scan (used by the measurement study) ------------------------

    def scan_to_report(
        self,
        domains: Iterable[str],
        *,
        progress: Callable[[ScanStats], None] | None = None,
    ) -> tuple[DetectionReport, ScanStats]:
        """Stream *domains* and collect every detection in memory.

        Same chunking and sharding as :meth:`scan`, without the sink and
        checkpoint — the study-scale entry point.
        """
        report = DetectionReport()
        stats = ScanStats()
        started = time.perf_counter()
        for detections, raw_lines in self._chunk_results(iter(domains), stats):
            report.extend(detections)
            stats.detection_count += len(detections)
            stats.lines_done += raw_lines
            stats.elapsed_seconds = time.perf_counter() - started
            if progress is not None:
                progress(stats)
        stats.elapsed_seconds = time.perf_counter() - started
        return report, stats

    # -- sink-backed scan (the zone-scale entry point) -------------------------

    def scan_file(
        self,
        input_path: str | os.PathLike,
        output_path: str | os.PathLike,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        resume: bool = False,
        progress: Callable[[ScanStats], None] | None = None,
    ) -> ScanStats:
        """Scan a domain-list file (one name per line) into a JSONL sink."""
        fingerprint = file_fingerprint(input_path)
        with open(input_path, "r", encoding="utf-8", errors="replace") as handle:
            return self.scan(
                handle,
                output_path,
                checkpoint_path=checkpoint_path,
                resume=resume,
                input_fingerprint=fingerprint,
                progress=progress,
            )

    def scan(
        self,
        domains: Iterable[str],
        output_path: str | os.PathLike,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        resume: bool = False,
        input_fingerprint: str | None = None,
        progress: Callable[[ScanStats], None] | None = None,
    ) -> ScanStats:
        """Stream *domains* into the JSONL sink at *output_path*.

        With ``resume=True`` and a usable checkpoint, already-consumed
        input is skipped and the sink is validated and extended; otherwise
        the sink is started fresh.  The checkpoint lives next to the sink
        (``<output>.checkpoint``) unless *checkpoint_path* says otherwise.
        """
        output_path = Path(output_path)
        if checkpoint_path is None:
            checkpoint_path = output_path.with_name(output_path.name + ".checkpoint")
        checkpoint_path = Path(checkpoint_path)

        stats = ScanStats()
        started = time.perf_counter()
        lines = iter(domains)

        checkpoint = ScanCheckpoint.load(checkpoint_path) if resume else None
        if resume and checkpoint is None and output_path.exists() and output_path.stat().st_size:
            # No usable checkpoint but durable results exist: starting fresh
            # would silently destroy them, so make the user decide.
            raise ScanResumeError(
                f"no usable checkpoint at {checkpoint_path} but {output_path} is "
                "non-empty; re-run without --resume to overwrite it"
            )
        if checkpoint is not None:
            if (
                checkpoint.input_fingerprint is not None
                and input_fingerprint is not None
                and checkpoint.input_fingerprint != input_fingerprint
            ):
                raise ScanResumeError(
                    f"input changed since the checkpoint at {checkpoint_path} was "
                    "written; re-run without --resume to start over"
                )
            # Inspect read-only first: refuse (file untouched) when the
            # damage reaches into the checkpointed prefix, truncate only
            # when the resume actually proceeds.
            recovery = recover_sink(
                output_path, expected_lines=checkpoint.detections_written, dry_run=True,
            )
            if recovery.valid_count < checkpoint.detections_written:
                raise ScanResumeError(
                    f"sink {output_path} holds {recovery.valid_count} intact detections "
                    f"but the checkpoint recorded {checkpoint.detections_written}; the "
                    "sink was damaged inside the checkpointed prefix — re-run without "
                    "--resume to start over"
                )
            if recovery.keep_bytes != output_path.stat().st_size:
                with open(output_path, "r+b") as handle:
                    handle.truncate(recovery.keep_bytes)
            stats.recovered_drop = recovery.dropped
            stats.lines_done = checkpoint.lines_done
            stats.chunks_done = checkpoint.chunks_done
            stats.detection_count = checkpoint.detections_written
            stats.domains_seen = checkpoint.domains_seen
            stats.idn_count = checkpoint.idn_count
            stats.skipped_count = checkpoint.skipped_count
            for _ in range(checkpoint.lines_done):
                if next(lines, None) is None:
                    break
                stats.resumed_lines += 1
            sink = open(output_path, "a", encoding="utf-8")
        else:
            sink = open(output_path, "w", encoding="utf-8")
            try:
                checkpoint_path.unlink()
            except OSError:
                pass

        try:
            for detections, raw_lines in self._chunk_results(lines, stats):
                for detection in detections:
                    sink.write(json.dumps(detection.as_dict(), ensure_ascii=False) + "\n")
                sink.flush()
                stats.detection_count += len(detections)
                stats.lines_done += raw_lines
                ScanCheckpoint(
                    lines_done=stats.lines_done,
                    chunks_done=stats.chunks_done,
                    detections_written=stats.detection_count,
                    domains_seen=stats.domains_seen,
                    idn_count=stats.idn_count,
                    skipped_count=stats.skipped_count,
                    input_fingerprint=input_fingerprint,
                ).save(checkpoint_path)
                stats.elapsed_seconds = time.perf_counter() - started
                if progress is not None:
                    progress(stats)
        finally:
            sink.close()
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    # -- shared chunk pipeline -------------------------------------------------

    def _chunk_results(
        self,
        lines: Iterator[str],
        stats: ScanStats,
    ) -> Iterator[tuple[list[HomographDetection], int]]:
        """Yield ``(detections, raw_line_count)`` per chunk, in input order.

        Updates the seen/idn/skipped/chunk counters on *stats* as results
        arrive; callers account for lines and detections themselves (the
        sink path must only count a chunk's lines once its results are
        durable).
        """
        chunks = _chunked(lines, self.chunk_size)
        if self.jobs == 1:
            for chunk in chunks:
                result = _process_chunk(self.finder, self.prepared, chunk,
                                        self.idn_only, self.batch_kernel)
                yield self._account(result, stats)
        else:
            context = pool_context(self.start_method)
            with context.Pool(
                processes=self.jobs,
                initializer=_scan_worker_init,
                initargs=(self.finder, self._worker_prepared(context.get_start_method()),
                          self.idn_only, self.batch_kernel),
            ) as pool:
                # imap keeps results in submission order, which checkpoint
                # consistency depends on.
                for result in pool.imap(_scan_worker, chunks):
                    yield self._account(result, stats)

    def _worker_prepared(self, method: str):
        """What the pool initializer ships as the prepared references.

        Under fork/forkserver the initializer arguments are inherited, not
        pickled, so the in-process object (mmap-backed or not) goes as-is.
        Under spawn they are pickled: an mmap-backed index is replaced by a
        re-attach spec (its artifact path) and each worker re-opens the
        same inode; dict-backed state pickles directly.
        """
        if method in ("fork", "forkserver"):
            return self.prepared
        path = getattr(self.prepared, "path", None)
        if path is not None:
            return (_MMAP_SPEC, str(path))
        return self.prepared

    @staticmethod
    def _account(
        result: tuple[list[HomographDetection], int, int, int, int],
        stats: ScanStats,
    ) -> tuple[list[HomographDetection], int]:
        detections, raw_lines, domains_seen, idn_count, skipped = result
        stats.domains_seen += domains_seen
        stats.idn_count += idn_count
        stats.skipped_count += skipped
        stats.chunks_done += 1
        return detections, raw_lines
