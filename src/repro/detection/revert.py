"""Reverting IDN homographs to their original domains (paper Section 6.4).

When a malicious IDN is found outside the reference list, the homoglyph
database can be used in reverse: replace every confusable character with
its Basic Latin (or otherwise ASCII) counterpart to recover the domain the
attacker imitated.  Because a character can be the homoglyph of several
letters, the reverter returns every plausible original, ranked by how many
substitutions map to Basic Latin.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from ..homoglyph.database import HomoglyphDatabase
from .algorithm import fold_label

__all__ = ["RevertedDomain", "HomographReverter"]

_ASCII_LOWER = set("abcdefghijklmnopqrstuvwxyz0123456789-")


@dataclass(frozen=True)
class RevertedDomain:
    """One candidate original label recovered from a homograph label."""

    original_label: str
    substituted_positions: tuple[int, ...]

    @property
    def substitution_count(self) -> int:
        """How many characters had to be replaced."""
        return len(self.substituted_positions)

    @property
    def is_fully_ascii(self) -> bool:
        """True when every character of the recovered label is LDH."""
        return all(ch in _ASCII_LOWER for ch in self.original_label)


class HomographReverter:
    """Maps homograph labels back to the domains they imitate."""

    def __init__(self, database: HomoglyphDatabase, *, max_candidates: int = 64) -> None:
        self.database = database
        self.max_candidates = max_candidates

    def ascii_alternatives(self, char: str) -> list[str]:
        """ASCII characters that *char* can stand in for (empty when none)."""
        if char in _ASCII_LOWER:
            return [char]
        partners = self.database.homoglyphs_of(char)
        return sorted(p for p in partners if p in _ASCII_LOWER)

    def revert_label(self, label: str) -> list[RevertedDomain]:
        """All plausible ASCII originals of a (Unicode) label, best first.

        The best candidates are those where every non-ASCII character could
        be mapped to an ASCII homoglyph; labels containing characters with
        no ASCII counterpart keep those characters unchanged.

        Case is folded with the same length-preserving
        :func:`~repro.idn.idna_codec.fold_label` the matcher uses:
        ``str.lower()`` can change the label's length (U+0130 "İ" lowers to
        "i" plus a combining dot), which would misalign every subsequent
        ``substituted_positions`` entry relative to the original label.
        """
        label = fold_label(label)
        per_position: list[list[str]] = []
        substituted: list[int] = []
        for position, char in enumerate(label):
            alternatives = self.ascii_alternatives(char)
            if char not in _ASCII_LOWER and alternatives:
                substituted.append(position)
                per_position.append(alternatives)
            elif alternatives:
                per_position.append([char])
            else:
                per_position.append([char])

        candidates: list[RevertedDomain] = []
        for combination in itertools.islice(itertools.product(*per_position), self.max_candidates):
            candidate = "".join(combination)
            if candidate == label:
                continue
            candidates.append(RevertedDomain(candidate, tuple(substituted)))
        candidates.sort(key=lambda c: (not c.is_fully_ascii, c.original_label))
        return candidates

    def best_original(self, label: str) -> str | None:
        """The single most plausible original label (``None`` when no mapping exists)."""
        candidates = self.revert_label(label)
        for candidate in candidates:
            if candidate.is_fully_ascii:
                return candidate.original_label
        return candidates[0].original_label if candidates else None

    def best_originals(self, labels: Iterable[str]) -> list[str | None]:
        """Batched :meth:`best_original`, in input order (pipeline API)."""
        return [self.best_original(label) for label in labels]

    def targets_outside_reference(
        self,
        labels: list[str],
        reference_labels: set[str],
    ) -> dict[str, str]:
        """Recovered originals that are *not* in the reference list (Section 6.4).

        Returns a mapping of homograph label to recovered original label for
        the labels whose best original falls outside the reference set.
        """
        result: dict[str, str] = {}
        for label, original in zip(labels, self.best_originals(labels)):
            if original is not None and original not in reference_labels:
                result[label] = original
        return result
