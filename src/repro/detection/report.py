"""Detection results and reporting.

A :class:`HomographDetection` records that one registered IDN is a
homograph of one reference domain, including the exact character
substitutions — the property the paper highlights as ShamFinder's advantage
over image-only approaches (it can *pinpoint the differential characters*).
:class:`DetectionReport` aggregates detections into the statistics the
measurement section reports (detections per database, most-targeted
reference domains).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..homoglyph.database import SOURCE_INVISIBLE, SOURCE_SIMCHAR, SOURCE_UC
from ..homoglyph.invisible import InvisibleFinding
from .algorithm import CharacterSubstitution

__all__ = ["HomographDetection", "DetectionReport"]


@dataclass(frozen=True)
class HomographDetection:
    """One detected IDN homograph."""

    idn: str                 # registered domain, ASCII/A-label form (e.g. xn--gogle-0ta.com)
    idn_unicode: str         # the same domain in Unicode form
    reference: str           # the targeted reference domain (e.g. google.com)
    substitutions: tuple[CharacterSubstitution, ...] = ()
    sources: frozenset[str] = frozenset()
    #: Invisible characters stripped before the match (empty on the classic
    #: equal-length path; see :mod:`repro.homoglyph.invisible`).
    invisibles: tuple[InvisibleFinding, ...] = ()

    @property
    def uses_uc(self) -> bool:
        """True when at least one substitution is covered by UC."""
        return SOURCE_UC in self.sources

    @property
    def uses_simchar(self) -> bool:
        """True when at least one substitution is covered by SimChar."""
        return SOURCE_SIMCHAR in self.sources

    @property
    def uses_invisible(self) -> bool:
        """True when the match went through invisible-character stripping."""
        return SOURCE_INVISIBLE in self.sources

    def describe(self) -> str:
        """One-line human readable summary."""
        parts = [s.describe() for s in self.substitutions]
        parts.extend(f.describe() for f in self.invisibles)
        subs = "; ".join(parts) or "identical rendering"
        return f"{self.idn_unicode} imitates {self.reference} ({subs})"

    def as_dict(self) -> dict:
        """JSON-friendly representation (one streaming-sink/golden line).

        The ``invisibles`` key is only present when there are findings, so
        classic detections serialise byte-identically to before the
        invisible source existed (golden fixtures enforce this).
        """
        payload = {
            "idn": self.idn,
            "unicode": self.idn_unicode,
            "reference": self.reference,
            "substitutions": [
                {
                    "position": s.position,
                    "candidate": s.candidate_char,
                    "reference": s.reference_char,
                }
                for s in self.substitutions
            ],
            "sources": sorted(self.sources),
        }
        if self.invisibles:
            payload["invisibles"] = [f.as_dict() for f in self.invisibles]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HomographDetection":
        """Inverse of :meth:`as_dict`."""
        return cls(
            idn=payload["idn"],
            idn_unicode=payload["unicode"],
            reference=payload["reference"],
            substitutions=tuple(
                CharacterSubstitution(s["position"], s["candidate"], s["reference"])
                for s in payload.get("substitutions", ())
            ),
            sources=frozenset(payload.get("sources", ())),
            invisibles=tuple(
                InvisibleFinding.from_dict(f) for f in payload.get("invisibles", ())
            ),
        )


@dataclass
class DetectionReport:
    """Aggregated homograph detections for one measurement run."""

    detections: list[HomographDetection] = field(default_factory=list)

    def add(self, detection: HomographDetection) -> None:
        """Record a detection."""
        self.detections.append(detection)

    def extend(self, detections: Iterable[HomographDetection]) -> None:
        """Record several detections."""
        self.detections.extend(detections)

    def __len__(self) -> int:
        return len(self.detections)

    def __iter__(self):
        return iter(self.detections)

    # -- views used by the evaluation tables ------------------------------------

    def detected_idns(self) -> list[str]:
        """Unique detected IDN domains (a single IDN may target several references)."""
        return sorted({d.idn for d in self.detections})

    def references_targeted(self) -> list[str]:
        """Unique reference domains that have at least one homograph."""
        return sorted({d.reference for d in self.detections})

    def top_targets(self, limit: int = 5) -> list[tuple[str, int]]:
        """Reference domains with the most homographs (Table 9)."""
        counts = Counter()
        for detection in self.detections:
            counts[detection.reference] += 1
        return counts.most_common(limit)

    def count_by_database(self) -> dict[str, int]:
        """Unique IDNs detected per database source (Table 8).

        The ``Invisible`` row only appears when the invisible source
        contributed, keeping the classic three-row table byte-stable for
        runs on the default SimChar∪UC selection.
        """
        uc_idns = {d.idn for d in self.detections if d.uses_uc}
        simchar_idns = {d.idn for d in self.detections if d.uses_simchar}
        counts = {
            "UC": len(uc_idns),
            "SimChar": len(simchar_idns),
            "UC ∪ SimChar": len(uc_idns | simchar_idns),
        }
        invisible_idns = {d.idn for d in self.detections if d.uses_invisible}
        if invisible_idns:
            counts["Invisible"] = len(invisible_idns)
        return counts

    def detections_for_reference(self, reference: str) -> list[HomographDetection]:
        """All homographs of one reference domain."""
        return [d for d in self.detections if d.reference == reference]

    def homograph_map(self) -> dict[str, str]:
        """Mapping of detected IDN to (one of) its targeted reference domains."""
        mapping: dict[str, str] = {}
        for detection in self.detections:
            mapping.setdefault(detection.idn, detection.reference)
        return mapping

    def as_dicts(self) -> list[dict]:
        """Every detection as a JSON-friendly dict, in insertion order."""
        return [detection.as_dict() for detection in self.detections]

    def summary(self) -> dict:
        """Compact dictionary for benches and the CLI."""
        return {
            "detections": len(self.detections),
            "unique_idns": len(self.detected_idns()),
            "targeted_references": len(self.references_targeted()),
            "by_database": self.count_by_database(),
            "top_targets": self.top_targets(),
        }
