"""Detection core: Algorithm 1 matcher, skeleton index, streaming scan,
ShamFinder framework, persistable reference index, online query service,
reverting, reports."""

from .algorithm import CharacterSubstitution, HomographMatcher, MatchResult, fold_label
from .index import (
    IndexKey,
    MmapPreparedReferences,
    MmapSkeletonIndex,
    ReferenceIndex,
    ReferenceIndexStore,
    build_reference_index,
    cached_reference_index,
)
from .report import DetectionReport, HomographDetection
from .revert import HomographReverter, RevertedDomain
from .service import OnlineDetector, QueryVerdict
from .shamfinder import DetectionTiming, PreparedReferences, ShamFinder
from .skeleton import CharacterClasses, SkeletonIndex
from .stream import (
    ScanCheckpoint,
    ScanResumeError,
    ScanStats,
    SinkError,
    StreamingScanner,
    read_sink,
    recover_sink,
)

__all__ = [
    "CharacterSubstitution",
    "HomographMatcher",
    "MatchResult",
    "fold_label",
    "DetectionReport",
    "HomographDetection",
    "HomographReverter",
    "RevertedDomain",
    "IndexKey",
    "MmapPreparedReferences",
    "MmapSkeletonIndex",
    "ReferenceIndex",
    "ReferenceIndexStore",
    "build_reference_index",
    "cached_reference_index",
    "OnlineDetector",
    "QueryVerdict",
    "DetectionTiming",
    "PreparedReferences",
    "ShamFinder",
    "CharacterClasses",
    "SkeletonIndex",
    "ScanCheckpoint",
    "ScanResumeError",
    "ScanStats",
    "SinkError",
    "StreamingScanner",
    "read_sink",
    "recover_sink",
]
