"""Detection core: Algorithm 1 matcher, skeleton index, streaming scan,
ShamFinder framework, reverting, reports."""

from .algorithm import CharacterSubstitution, HomographMatcher, MatchResult, fold_label
from .report import DetectionReport, HomographDetection
from .revert import HomographReverter, RevertedDomain
from .shamfinder import DetectionTiming, PreparedReferences, ShamFinder
from .skeleton import CharacterClasses, SkeletonIndex
from .stream import (
    ScanCheckpoint,
    ScanResumeError,
    ScanStats,
    SinkError,
    StreamingScanner,
    read_sink,
    recover_sink,
)

__all__ = [
    "CharacterSubstitution",
    "HomographMatcher",
    "MatchResult",
    "fold_label",
    "DetectionReport",
    "HomographDetection",
    "HomographReverter",
    "RevertedDomain",
    "DetectionTiming",
    "PreparedReferences",
    "ShamFinder",
    "CharacterClasses",
    "SkeletonIndex",
    "ScanCheckpoint",
    "ScanResumeError",
    "ScanStats",
    "SinkError",
    "StreamingScanner",
    "read_sink",
    "recover_sink",
]
