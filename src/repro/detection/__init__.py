"""Detection core: Algorithm 1 matcher, ShamFinder framework, reverting, reports."""

from .algorithm import CharacterSubstitution, HomographMatcher, MatchResult
from .report import DetectionReport, HomographDetection
from .revert import HomographReverter, RevertedDomain
from .shamfinder import DetectionTiming, ShamFinder

__all__ = [
    "CharacterSubstitution",
    "HomographMatcher",
    "MatchResult",
    "DetectionReport",
    "HomographDetection",
    "HomographReverter",
    "RevertedDomain",
    "DetectionTiming",
    "ShamFinder",
]
