"""Skeleton index — hash-join candidate generation for Algorithm 1.

The paper's Step III compares every extracted IDN against every same-length
reference domain.  At zone scale (~967M registered domains, 1,400+ TLDs)
that pairwise inner loop dominates; this module replaces it with a
*skeleton* hash-join:

1. compute the transitive closure of the homoglyph database's confusable
   pairs with a union-find (:class:`CharacterClasses`);
2. map every label to its canonical **skeleton** — each character replaced
   by its class representative (the lowest code point in the class), so two
   labels that Algorithm 1 could ever match fold to the same string;
3. bucket the reference labels by skeleton and look candidates up by hash
   instead of scanning the length bucket.

Because skeletonisation is per-character it preserves length, so equal
skeletons imply equal length — the paper's length pruning comes for free.

The closure is deliberately *coarser* than the database: confusability is
not transitive (``a~b`` and ``b~c`` do not imply ``a~c``), so one bucket
can contain references the candidate does **not** match.  Every bucket hit
is therefore re-checked with the exact Algorithm 1 position-wise test,
which makes the match sets byte-identical to the legacy pairwise scan
while doing orders of magnitude fewer comparisons.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..homoglyph.database import HomoglyphDatabase

__all__ = ["CharacterClasses", "SkeletonIndex"]


def _find(parent: dict[str, str], char: str) -> str:
    """Union-find root lookup with path compression."""
    root = char
    while parent[root] != root:
        root = parent[root]
    while parent[char] != root:
        parent[char], char = root, parent[char]
    return root


class CharacterClasses:
    """Union-find closure over a homoglyph database's confusable pairs.

    Each connected component of the pair graph becomes one class; the
    representative is the member with the lowest code point, so the mapping
    is deterministic regardless of the order pairs were inserted in.
    """

    def __init__(self, database: HomoglyphDatabase) -> None:
        parent: dict[str, str] = {}
        for pair in database:
            for char in (pair.first, pair.second):
                parent.setdefault(char, char)
            root_a = _find(parent, pair.first)
            root_b = _find(parent, pair.second)
            if root_a != root_b:
                parent[root_b] = root_a

        # Re-canonicalise every class to its min-code-point member so the
        # representative does not depend on union order.
        lowest: dict[str, str] = {}
        for char in parent:
            root = _find(parent, char)
            best = lowest.get(root)
            if best is None or ord(char) < ord(best):
                lowest[root] = char
        self._representative: dict[str, str] = {
            char: lowest[_find(parent, char)] for char in parent
        }

    def representative(self, char: str) -> str:
        """Canonical representative of *char* (itself when not in any pair)."""
        return self._representative.get(char, char)

    def skeletonize(self, label: str) -> str:
        """Replace every character by its class representative.

        Length-preserving and idempotent: representatives map to
        themselves, so ``skeletonize(skeletonize(x)) == skeletonize(x)``.
        """
        rep = self._representative
        return "".join(rep.get(char, char) for char in label)

    def class_of(self, char: str) -> frozenset[str]:
        """All characters sharing *char*'s class (including itself)."""
        target = self.representative(char)
        members = {c for c, r in self._representative.items() if r == target}
        members.add(char)
        return frozenset(members)

    def representatives(self) -> Mapping[str, str]:
        """The full character → representative mapping (read-only view)."""
        return dict(self._representative)

    def __len__(self) -> int:
        return len(self._representative)


#: Separator for lazily-unpacked bucket members (see
#: :meth:`SkeletonIndex.from_packed`).  Folded labels are domain labels, so
#: a C0 control can never collide with content.
PACK_SEPARATOR = "\x1f"


class SkeletonIndex:
    """Reference labels bucketed by skeleton for O(1) candidate lookup.

    Labels are stored pre-case-folded in insertion order, preserving the
    multiplicity and relative order of the legacy length-bucket scan so
    both paths return identical match lists.

    A bucket value is either a ``list`` of labels or — for an index loaded
    from a packed artifact (:mod:`.index`) — a :data:`PACK_SEPARATOR`-joined
    string that is split on first access.  Unpacking is idempotent, so the
    index stays safe for concurrent readers; mutation (``add``) is not
    concurrency-safe, same as before.
    """

    def __init__(self, classes: CharacterClasses) -> None:
        self.classes = classes
        self._buckets: dict[str, list[str] | str] = {}
        self._size = 0

    @classmethod
    def from_packed(
        cls,
        classes: CharacterClasses,
        packed_buckets: dict[str, str],
        size: int,
    ) -> "SkeletonIndex":
        """Adopt artifact-loaded buckets wholesale (trusted input).

        *packed_buckets* maps each skeleton to its members joined with
        :data:`PACK_SEPARATOR`; *size* is the total member count.  Buckets
        stay packed until first probed, so a warm start pays two C-level
        ``dict`` builds instead of a Python loop over every label.
        """
        index = cls(classes)
        index._buckets = packed_buckets
        index._size = size
        return index

    def _bucket(self, skeleton: str) -> list[str] | None:
        bucket = self._buckets.get(skeleton)
        if type(bucket) is str:
            # Lazily unpack an artifact bucket.  The replacement is
            # idempotent, so a concurrent-reader race is benign.
            bucket = bucket.split(PACK_SEPARATOR)
            self._buckets[skeleton] = bucket
        return bucket

    def add(self, folded_label: str) -> None:
        """Index one (already case-folded) reference label."""
        skeleton = self.classes.skeletonize(folded_label)
        bucket = self._bucket(skeleton)
        if bucket is None:
            self._buckets[skeleton] = [folded_label]
        else:
            bucket.append(folded_label)
        self._size += 1

    def extend(self, folded_labels: Iterable[str]) -> None:
        """Index several (already case-folded) reference labels."""
        for label in folded_labels:
            self.add(label)

    def candidates_for(self, folded_label: str) -> list[str]:
        """References that could match *folded_label* (superset of matches)."""
        bucket = self._bucket(self.classes.skeletonize(folded_label))
        return bucket if bucket is not None else []

    def buckets(self) -> Iterator[tuple[str, list[str]]]:
        """Yield ``(skeleton, members)`` in insertion order (serialisation view)."""
        for skeleton in list(self._buckets):
            yield skeleton, list(self._bucket(skeleton))

    def skeletons(self) -> list[str]:
        """All bucket keys, without unpacking any members.

        The batch kernel (:mod:`.batchfold`) sorts these into its probe
        array; unlike :meth:`buckets` this leaves packed artifact buckets
        packed.
        """
        return list(self._buckets)

    @property
    def bucket_count(self) -> int:
        """Number of distinct skeletons indexed."""
        return len(self._buckets)

    def __len__(self) -> int:
        return self._size
