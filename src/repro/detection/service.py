"""Online homograph query service (the paper's "IdentifyHomographs" API).

Batch scans answer "which of these millions of domains are homographs?";
a serving layer answers "is *this* domain a homograph?" — many times, from
many threads, in microseconds.  :class:`OnlineDetector` layers that on the
skeleton hash-join:

* the reference state is a load-once :class:`~.index.ReferenceIndex`
  (built in-process, loaded from a :class:`~.index.ReferenceIndexStore`
  artifact, or ``mmap``-attached zero-copy), shared read-only by every
  query;
* per-label match results are memoised in a small thread-safe LRU keyed by
  the *folded* registrable label, so repeated queries for the same label —
  the common case for a service fronting live traffic — skip the join
  entirely; the cache is invalidated when the index fingerprint changes;
* verdicts are exactly what the batch path produces: the detection list is
  byte-identical to :meth:`ShamFinder.detect_prepared` over the same
  references (``benchmarks/bench_query.py`` asserts this against
  :meth:`HomographMatcher.find_homographs`), with the optional Section 6.4
  revert target inlined.

The network layer on top of this class lives in :mod:`repro.serving`; the
hooks it relies on are :meth:`OnlineDetector.reload_index` /
:meth:`~OnlineDetector.reload_from_store` (hot index swap without
dropping in-flight queries) and :meth:`~OnlineDetector.drain` (graceful
shutdown barrier).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..idn.domain import DomainName
from ..idn.idna_codec import IDNAError, fold_label
from .batchfold import kernel_for
from .index import (
    ReferenceIndex,
    ReferenceIndexStore,
    build_reference_index,
    cached_reference_index,
)
from .report import HomographDetection
from .shamfinder import ShamFinder

__all__ = ["QueryVerdict", "OnlineDetector"]

#: Below this batch size the kernel's fixed costs beat its savings; the
#: scalar loop is used instead.
_MIN_BATCH_SIZE = 8

#: Cached per-label join outcome: each match paired with the reference
#: domains (all TLDs) carrying the matched label.
_LabelMatches = tuple


@dataclass(frozen=True)
class QueryVerdict:
    """The answer to one ``query(domain)`` call."""

    domain: str                     # input as given
    ascii: str | None = None        # canonical ASCII form (None when unparsable)
    unicode: str | None = None      # Unicode form
    is_idn: bool = False            # registrable label is an A-label
    detections: tuple[HomographDetection, ...] = ()
    revert: str | None = None       # Section 6.4 recovered original (optional)
    error: str | None = None        # parse failure, when the input was junk

    @property
    def is_homograph(self) -> bool:
        """True when the domain imitates at least one reference domain."""
        return bool(self.detections)

    def as_dict(self) -> dict:
        """JSON-friendly representation (one ``serve`` output line)."""
        payload: dict = {
            "domain": self.domain,
            "is_homograph": self.is_homograph,
        }
        if self.error is not None:
            payload["error"] = self.error
            return payload
        payload["ascii"] = self.ascii
        payload["unicode"] = self.unicode
        payload["is_idn"] = self.is_idn
        payload["detections"] = [d.as_dict() for d in self.detections]
        if self.revert is not None:
            payload["revert"] = self.revert
        return payload


def _fast_miss_verdict(text: str) -> QueryVerdict:
    """Exactly what :meth:`OnlineDetector.query` returns for a fast-parse
    domain with no matches: canonical forms equal the input, no detections,
    no revert.

    Built by writing the three non-default fields straight into the
    instance dict — the dataclass machinery (seven ``object.__setattr__``
    calls through the frozen guard) costs ~1.2µs per verdict, which at
    batch-kernel throughput would dominate the whole pipeline.  Every
    dataclass protocol still works: the remaining fields resolve to the
    class-level defaults, so equality, ``as_dict`` and pickling are
    indistinguishable from a normally-constructed verdict.
    """
    verdict = QueryVerdict.__new__(QueryVerdict)
    state = verdict.__dict__
    state["domain"] = text
    state["ascii"] = text
    state["unicode"] = text
    return verdict


@dataclass
class _ServiceStats:
    """Shared counters; every field below is guarded by :attr:`lock`.

    The ``_GUARDED_BY`` map is the machine-readable form of that
    sentence: ``repro-lint``'s lock-discipline rule flags any
    ``<stats>.queries``-style access outside a ``with <stats>.lock:``
    block (see ``docs/LINT.md#lock-discipline``).
    """

    queries: int = 0
    cache_hits: int = 0
    errors: int = 0
    reloads: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    _GUARDED_BY = {
        "queries": "lock", "cache_hits": "lock",
        "errors": "lock", "reloads": "lock",
    }


class OnlineDetector:
    """Load-once, query-many homograph detector, safe for concurrent readers.

    The underlying index is immutable after construction; the only mutable
    state is the LRU cache, the counters, and the in-flight gauge — all
    lock-protected — so one detector instance can back a thread pool (or
    the :mod:`repro.serving` asyncio frontend) serving live traffic.

    Hot reload: :meth:`reload_index` swaps the index atomically.  A query
    pins whichever :class:`~.index.ReferenceIndex` object it started with,
    so every verdict is computed against exactly one index generation —
    never a torn mix — and the LRU is cleared when the fingerprint
    changes.  :meth:`drain` waits for in-flight queries, which is what a
    graceful server shutdown sequences on.
    """

    def __init__(
        self,
        finder: ShamFinder,
        index: ReferenceIndex,
        *,
        cache_size: int = 4096,
        include_revert: bool = False,
        fold_table_dir: str | Path | None = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.finder = finder
        self.index = index
        self.cache_size = cache_size
        self.include_revert = include_revert
        #: Where the batch kernel's fold-table sidecar artifact lives
        #: (usually the reference-index store directory); ``None`` builds
        #: the table in memory.
        self.fold_table_dir = fold_table_dir
        # The `# guarded-by:` annotations are enforced by repro-lint's
        # lock-discipline rule: accessing an annotated attribute outside a
        # `with <lock>:` block is a lint error (docs/LINT.md#lock-discipline).
        self._cache: OrderedDict[str, _LabelMatches] = OrderedDict()  # guarded-by: _cache_lock
        self._cache_lock = threading.Lock()
        self._stats = _ServiceStats()
        self._inflight = 0  # guarded-by: _idle
        self._idle = threading.Condition()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_references(
        cls,
        finder: ShamFinder,
        reference: Sequence[str | DomainName],
        *,
        store: ReferenceIndexStore | None = None,
        force_rebuild: bool = False,
        cache_size: int = 4096,
        include_revert: bool = False,
        mmap_load: bool = False,
    ) -> "OnlineDetector":
        """Build a detector, going through the artifact *store* when given.

        With a store, a warm start loads the prepared index from disk
        instead of re-running ``prepare_references`` — the cold-start path
        ``benchmarks/bench_query.py`` measures.  ``mmap_load=True``
        additionally prefers the zero-copy ``mmap`` attach (the serving
        worker path; requires a store).
        """
        if store is None:
            index = build_reference_index(finder, reference)
            fold_table_dir = None
        else:
            index, _hit = cached_reference_index(
                finder, reference, store, force=force_rebuild, mmap_load=mmap_load,
            )
            fold_table_dir = store.index_dir
        return cls(finder, index, cache_size=cache_size, include_revert=include_revert,
                   fold_table_dir=fold_table_dir)

    # -- queries ------------------------------------------------------------

    def query(
        self,
        domain: str | DomainName,
        *,
        index: ReferenceIndex | None = None,
    ) -> QueryVerdict:
        """Answer "is this one domain a homograph?" for a single domain.

        *index* pins the query to a specific index generation (the serving
        layer uses this to keep a whole batch on one fingerprint across a
        concurrent :meth:`reload_index`); by default the current index is
        snapshotted once at entry.
        """
        text = str(domain)
        snapshot = index if index is not None else self.index
        with self._idle:
            self._inflight += 1
        try:
            with self._stats.lock:
                self._stats.queries += 1
            try:
                name = domain if isinstance(domain, DomainName) else DomainName(text)
                label = name.registrable_unicode
            except (IDNAError, ValueError) as exc:
                with self._stats.lock:
                    self._stats.errors += 1
                return QueryVerdict(domain=text, error=str(exc))

            matches = self._matches_for(label, snapshot)
            detections = []
            for match, refs in matches:
                for ref in refs:
                    if ref.rpartition(".")[2] != name.tld:
                        continue
                    detections.append(self.finder._detection_from_match(name, ref, match))

            revert = None
            if self.include_revert and name.has_idn_registrable_label:
                original = self.finder.reverter.best_original(label)
                if original is not None and original != label:
                    revert = f"{original}.{name.tld}"

            return QueryVerdict(
                domain=text,
                ascii=name.ascii,
                unicode=name.unicode,
                is_idn=name.has_idn_registrable_label,
                detections=tuple(detections),
                revert=revert,
            )
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def query_many(
        self,
        domains: Iterable[str | DomainName],
        *,
        index: ReferenceIndex | None = None,
        batch_kernel: bool = True,
    ) -> list[QueryVerdict]:
        """Batched :meth:`query`, in input order.

        With *index* pinned, every verdict in the batch comes from the same
        index generation even if :meth:`reload_index` runs mid-batch — the
        consistency contract the micro-batching server relies on.

        By default the batch runs through the vectorized kernel
        (:mod:`.batchfold`): fast-parsable LDH domains whose folded
        skeleton provably misses every reference bucket get their (empty)
        verdict built directly, and only the rest — bucket hits, IDNs,
        junk — pay the full scalar :meth:`query`.  Verdicts are
        byte-identical either way (the property suite and
        ``benchmarks/bench_query.py`` assert it); ``batch_kernel=False``
        opts out.
        """
        snapshot = index if index is not None else self.index
        items = domains if isinstance(domains, list) else list(domains)
        if not batch_kernel or len(items) < _MIN_BATCH_SIZE:
            return [self.query(domain, index=snapshot) for domain in items]
        kernel = kernel_for(self.finder.matcher, snapshot.prepared,
                            cache_dir=self.fold_table_dir)
        if kernel is None:
            return [self.query(domain, index=snapshot) for domain in items]

        # str() on a str returns it untouched, so one C-level map covers
        # both plain strings and DomainName items.
        texts = list(map(str, items))
        miss = kernel.domain_certain_miss(
            texts, invisible_table=self.finder.invisible_table)
        fast = int(miss.sum())
        if fast == 0:
            return [self.query(item, index=snapshot) for item in items]
        # Build a fast verdict for *every* slot, then overwrite the few
        # scalar-path ones — cheaper than a conditional per item when the
        # batch is mostly misses (and the wasted objects are just GC'd).
        verdicts = list(map(_fast_miss_verdict, texts))
        with self._stats.lock:
            self._stats.queries += fast
        if fast != len(items):
            for i in np.flatnonzero(~miss).tolist():
                verdicts[i] = self.query(items[i], index=snapshot)
        return verdicts

    # -- the per-label join cache -------------------------------------------

    def _matches_for(self, label: str, index: ReferenceIndex) -> _LabelMatches:
        """Skeleton-join outcome for one registrable label, memoised.

        Keyed by the *folded* label: two labels differing only in case fold
        to the same key and — because the matcher folds before joining —
        produce identical match lists, so sharing the entry is sound.  The
        LRU only serves and admits entries for the *current* index: a query
        pinned to a retired generation bypasses it entirely.
        """
        folded = fold_label(label)
        current = index.fingerprint == self.index.fingerprint
        if self.cache_size and current:
            with self._cache_lock:
                cached = self._cache.get(folded)
                if cached is not None:
                    self._cache.move_to_end(folded)
            if cached is not None:
                # Counter taken outside the cache lock: stats() grabs the two
                # locks in the opposite order, so nesting them would deadlock.
                with self._stats.lock:
                    self._stats.cache_hits += 1
                return cached
        prepared = index.prepared
        matches = tuple(
            (match, prepared.references_for(match.reference))
            for match in self.finder.matcher.match_with_skeleton_index(label, prepared.index)
        )
        if self.cache_size and current:
            with self._cache_lock:
                # A reload_index() may have swapped the index (and cleared the
                # cache) while this join ran; inserting would then re-seed the
                # cache with a retired index's results, so drop the entry.
                if self.index.fingerprint == index.fingerprint:
                    self._cache[folded] = matches
                    self._cache.move_to_end(folded)
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        return matches

    # -- index lifecycle ----------------------------------------------------

    def reload_index(self, index: ReferenceIndex) -> bool:
        """Swap in a new index; clears the result cache when it changed.

        Returns True when the fingerprint differed (cache invalidated).
        Queries running concurrently keep using whichever index object they
        pinned — the swap is atomic from their point of view, and none are
        dropped or torn across generations.
        """
        changed = index.fingerprint != self.index.fingerprint
        self.index = index
        if changed:
            with self._cache_lock:
                self._cache.clear()
            with self._stats.lock:
                self._stats.reloads += 1
        return changed

    def reload_from_store(
        self,
        store: ReferenceIndexStore,
        reference: Sequence[str | DomainName],
        *,
        force_rebuild: bool = False,
        mmap_load: bool = False,
    ) -> bool:
        """Rebuild/reload the index for *reference* through *store* and swap.

        The hot-reload hook the server's SIGHUP / admin endpoint calls: the
        new index is fully built or loaded **before** the swap, so queries
        keep being served from the old generation until the new one is
        ready.  Returns True when the fingerprint changed.
        """
        index, _hit = cached_reference_index(
            self.finder, reference, store, force=force_rebuild, mmap_load=mmap_load,
        )
        return self.reload_index(index)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until no queries are in flight; True when idle was reached.

        New queries are *not* blocked — the caller (e.g. the serving layer
        on shutdown) is expected to stop submitting first, then drain.
        """
        with self._idle:
            return self._idle.wait_for(lambda: self._inflight == 0, timeout=timeout)

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Service counters plus index identity (the ``--stats`` payload)."""
        with self._stats.lock:
            queries, hits, errors, reloads = (
                self._stats.queries, self._stats.cache_hits,
                self._stats.errors, self._stats.reloads,
            )
        with self._cache_lock:
            cached = len(self._cache)
        return {
            "queries": queries,
            "cache_hits": hits,
            "errors": errors,
            "reloads": reloads,
            "cached_labels": cached,
            "cache_size": self.cache_size,
            # lint: allow-lock-discipline(racy int read for a stats gauge; torn values are impossible under the GIL)
            "inflight": self._inflight,
            "index_fingerprint": self.index.fingerprint,
            "index_from_cache": self.index.from_cache,
            "index_mapped": self.index.mapped,
            "reference_domains": self.index.domain_count,
            "reference_labels": self.index.label_count,
        }
