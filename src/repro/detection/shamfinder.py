"""The ShamFinder framework (paper Section 3.1, Figure 1).

ShamFinder ties the pieces together:

* **Step 1** — collect registered domain names for a TLD (zone file or
  domain lists);
* **Step 2** — extract the IDNs (labels with the ``xn--`` prefix);
* **Step 3** — compare every IDN against a reference list of popular
  domains using the homoglyph database (UC ∪ SimChar) and report the
  homographs with their differential characters.

The class also exposes the per-detection source attribution (which database
covered the substitutions), the reverting helper (Section 6.4), and a
timing probe used by the Section 4.2 computational-cost bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..homoglyph.database import (
    SOURCE_INVISIBLE,
    SOURCE_SIMCHAR,
    SOURCE_UC,
    HomoglyphDatabase,
)
from ..homoglyph.invisible import InvisibleTable
from ..homoglyph.registry import BuildContext, DatabaseRegistry, default_registry
from ..homoglyph.simchar import SimCharBuilder
from ..idn.domain import DomainName
from ..idn.idna_codec import IDNAError
from .algorithm import HomographMatcher, MatchResult, fold_label
from .batchfold import kernel_for
from .report import DetectionReport, HomographDetection
from .revert import HomographReverter
from .skeleton import PACK_SEPARATOR, SkeletonIndex

__all__ = ["ShamFinder", "DetectionTiming", "PreparedReferences", "REFERENCE_SEPARATOR"]

#: Below this many parsed candidates the kernel's fixed costs beat its
#: savings; :meth:`ShamFinder.detect_prepared` stays scalar.
_MIN_KERNEL_BATCH = 8

#: Separator packing a label's reference domains into one string — the
#: same C0 byte the skeleton buckets pack with, imported so the artifact
#: layout has a single load-bearing constant.  Domains are LDH ASCII, so
#: the separator can never collide with content; packed groups load from
#: the index artifact with C-level ``str.split`` instead of per-entry
#: object construction.
REFERENCE_SEPARATOR = PACK_SEPARATOR


@dataclass(frozen=True)
class PreparedReferences:
    """Reference list preprocessed for repeated/streamed detection.

    Built once per scan by :meth:`ShamFinder.prepare_references` (or loaded
    from a :mod:`.index` artifact) and shipped to every worker: the
    case-folded registrable label of each reference mapped back to the
    domains carrying it, plus the skeleton hash-join index over those
    labels.
    """

    #: case-folded registrable label → that label's reference domains in
    #: canonical ASCII form, packed with :data:`REFERENCE_SEPARATOR` (use
    #: :meth:`references_for` rather than reading this directly)
    labels: dict[str, str]
    #: skeleton hash-join index over the label keys
    index: SkeletonIndex
    #: number of reference domains that parsed (the paper's |M|)
    domain_count: int

    def references_for(self, folded_label: str) -> tuple[str, ...]:
        """The reference domains (canonical ASCII) carrying *folded_label*."""
        group = self.labels.get(folded_label)
        if not group:
            return ()
        return tuple(group.split(REFERENCE_SEPARATOR))


@dataclass(frozen=True)
class DetectionTiming:
    """Timing of a detection run (paper Section 4.2)."""

    reference_count: int
    idn_count: int
    total_seconds: float
    #: Candidate IDNs dropped because they could not be parsed or their
    #: registrable label failed to decode — junk tolerated in zone data, but
    #: counted so a run over dirty input is auditable.
    skipped_count: int = 0

    @property
    def seconds_per_reference(self) -> float:
        """Average time spent per reference domain."""
        if self.reference_count == 0:
            return 0.0
        return self.total_seconds / self.reference_count


class ShamFinder:
    """End-to-end IDN homograph detector (the paper's framework object).

    Binds one homoglyph database (usually UC ∪ SimChar, see
    :meth:`with_default_databases`) to the Step III matcher and the
    Section 6.4 reverter.  The two detection idioms are:

    * one-shot: :meth:`detect` / :meth:`detect_with_timing` — prepare the
      reference list and match candidates in a single call;
    * prepared: :meth:`prepare_references` once, then
      :meth:`detect_prepared` per batch — the shape every higher layer
      (``StreamingScanner``, ``OnlineDetector``, the serving workers)
      builds on, and the state the ``refindex-*.idx`` artifact persists
      (:mod:`repro.detection.index`).

    All detection paths produce byte-identical
    :class:`~.report.HomographDetection` results; the subsystem map in
    ``docs/ARCHITECTURE.md`` shows how they relate.
    """

    def __init__(
        self,
        database: HomoglyphDatabase,
        *,
        uc_database: HomoglyphDatabase | None = None,
        simchar_database: HomoglyphDatabase | None = None,
        invisible_table: InvisibleTable | None = None,
        source_config: str = "",
    ) -> None:
        self.database = database
        self.uc_database = uc_database
        self.simchar_database = simchar_database
        #: Curated invisible-character table, set when the ``invisible``
        #: source is selected; enables the strip-and-rematch check in the
        #: matcher's skeleton path.
        self.invisible_table = invisible_table
        #: Fingerprint component naming the selected database sources —
        #: ``""`` for the historical default (SimChar ∪ UC), so existing
        #: reference-index artifacts keep their digests (see
        #: :mod:`repro.homoglyph.registry`).
        self.source_config = source_config
        self.matcher = HomographMatcher(database, invisible_table=invisible_table)
        self.reverter = HomographReverter(database)

    # -- construction ----------------------------------------------------------

    @classmethod
    def with_default_databases(
        cls,
        *,
        font=None,
        simchar_builder: SimCharBuilder | None = None,
        cache_dir=None,
        force_rebuild: bool = False,
        databases: Sequence[str] | None = None,
        registry: DatabaseRegistry | None = None,
    ) -> "ShamFinder":
        """Build a finder from registered database sources (default UC ∪ SimChar).

        *databases* selects the sources by name (``simchar``, ``uc``,
        ``invisible`` in the default registry; ``None`` means the historical
        SimChar ∪ UC).  When *cache_dir* is given (or
        ``SHAMFINDER_CACHE_DIR`` is set) the SimChar build goes through the
        persistent artifact cache, so a warm call loads the database in
        milliseconds instead of re-running the pairwise scan.
        ``force_rebuild=True`` ignores an existing entry but still
        refreshes it.
        """
        registry = registry if registry is not None else default_registry()
        built = registry.build(databases, context=BuildContext(
            font=font,
            simchar_builder=simchar_builder,
            cache_dir=cache_dir,
            force_rebuild=force_rebuild,
        ))
        return cls(
            built.database,
            uc_database=built.per_source.get("uc"),
            simchar_database=built.per_source.get("simchar"),
            invisible_table=built.invisible,
            source_config=built.source_config,
        )

    @classmethod
    def from_databases(cls, *databases: HomoglyphDatabase) -> "ShamFinder":
        """Build a finder from the union of arbitrary databases."""
        if not databases:
            raise ValueError("at least one database is required")
        union = databases[0]
        for other in databases[1:]:
            union = union.union(other)
        return cls(union)

    # -- Step 2: IDN extraction ---------------------------------------------------

    @staticmethod
    def extract_idns(domains: Iterable[str | DomainName]) -> list[DomainName]:
        """Extract the IDNs from a collection of registered domain names.

        Invalid names (undecodable Punycode, bad labels) are skipped, which
        mirrors how the paper's pipeline tolerates junk in zone data.
        """
        idns: list[DomainName] = []
        for item in domains:
            try:
                name = item if isinstance(item, DomainName) else DomainName(str(item))
            except (IDNAError, ValueError):
                continue
            if name.has_idn_registrable_label:
                idns.append(name)
        return idns

    # -- Step 3: homograph detection -------------------------------------------------

    def detect(
        self,
        idns: Sequence[str | DomainName],
        reference: Sequence[str | DomainName],
    ) -> DetectionReport:
        """Detect which IDNs are homographs of which reference domains.

        Both inputs are full domain names; comparison happens on the
        registrable label with the TLD removed, per the paper's Figure 2.
        """
        report, _timing = self.detect_with_timing(idns, reference)
        return report

    def detect_with_timing(
        self,
        idns: Sequence[str | DomainName],
        reference: Sequence[str | DomainName],
    ) -> tuple[DetectionReport, DetectionTiming]:
        """Like :meth:`detect` but also returns the wall-clock timing."""
        started = time.perf_counter()

        prepared = self.prepare_references(reference)
        detections, idn_count, skipped = self.detect_prepared(idns, prepared)
        report = DetectionReport()
        report.extend(detections)

        timing = DetectionTiming(
            reference_count=prepared.domain_count,
            idn_count=idn_count,
            total_seconds=time.perf_counter() - started,
            skipped_count=skipped,
        )
        return report, timing

    def prepare_references(
        self,
        reference: Sequence[str | DomainName],
    ) -> PreparedReferences:
        """Parse and index a reference list for repeated detection calls.

        Invalid reference domains are dropped (as in :meth:`detect`);
        labels are case-folded once and bucketed by skeleton so matching a
        candidate is a hash lookup instead of a length-bucket scan.
        """
        reference_names: list[DomainName] = []
        for item in reference:
            try:
                reference_names.append(item if isinstance(item, DomainName) else DomainName(str(item)))
            except (IDNAError, ValueError):
                continue

        labels: dict[str, list[str]] = {}
        for ref in reference_names:
            try:
                label = fold_label(ref.registrable_unicode)
            except IDNAError:
                continue
            labels.setdefault(label, []).append(ref.ascii)
        index = self.matcher.build_skeleton_index(labels)
        return PreparedReferences(
            labels={label: REFERENCE_SEPARATOR.join(refs) for label, refs in labels.items()},
            index=index,
            domain_count=len(reference_names),
        )

    def detect_prepared(
        self,
        idns: Iterable[str | DomainName],
        prepared: PreparedReferences,
        *,
        batch_kernel: bool = True,
    ) -> tuple[list[HomographDetection], int, int]:
        """Detection core over pre-indexed references.

        Returns ``(detections, idn_count, skipped_count)`` — the unit of
        work one streaming-scan chunk performs (:mod:`.stream`).

        By default the parsed labels run through the vectorized batch
        kernel (:mod:`.batchfold`) first: labels whose folded skeleton
        provably misses every bucket skip the scalar join entirely, and
        only the rest run it — detections are byte-identical either way.
        ``batch_kernel=False`` opts out.
        """
        detections: list[HomographDetection] = []
        parsed: list[tuple[DomainName, str]] = []
        idn_count = 0
        skipped = 0
        for item in idns:
            try:
                idn = item if isinstance(item, DomainName) else DomainName(str(item))
            except (IDNAError, ValueError):
                skipped += 1
                continue
            idn_count += 1
            try:
                label = idn.registrable_unicode
            except IDNAError:
                skipped += 1
                continue
            parsed.append((idn, label))

        miss = None
        if batch_kernel and len(parsed) >= _MIN_KERNEL_BATCH:
            kernel = kernel_for(self.matcher, prepared)
            if kernel is not None:
                miss = kernel.certain_miss_mask(
                    [label for _, label in parsed],
                    invisible_table=self.invisible_table,
                )
        for position, (idn, label) in enumerate(parsed):
            if miss is not None and miss[position]:
                continue
            for match in self.matcher.match_with_skeleton_index(label, prepared.index):
                for ref in prepared.references_for(match.reference):
                    if ref.rpartition(".")[2] != idn.tld:
                        continue
                    detections.append(self._detection_from_match(idn, ref, match))
        return detections, idn_count, skipped

    def _detection_from_match(
        self,
        idn: DomainName,
        reference: str,
        match: MatchResult,
    ) -> HomographDetection:
        """Materialise one detection; *reference* is a canonical ASCII domain."""
        sources: set[str] = set()
        for substitution in match.substitutions:
            pair = self.database.get(substitution.candidate_char, substitution.reference_char)
            if pair is not None:
                sources.update(pair.sources)
        if match.invisibles:
            sources.add(SOURCE_INVISIBLE)
        elif not match.substitutions:
            sources.add(SOURCE_SIMCHAR)
        return HomographDetection(
            idn=idn.ascii,
            idn_unicode=idn.unicode,
            reference=reference,
            substitutions=match.substitutions,
            sources=frozenset(sources),
            invisibles=match.invisibles,
        )

    # -- filtered views (Table 8 compares detection with UC only / SimChar only) -------

    def detect_with_database(
        self,
        idns: Sequence[str | DomainName],
        reference: Sequence[str | DomainName],
        database: HomoglyphDatabase,
    ) -> DetectionReport:
        """Run detection using a specific database (used for the Table 8 comparison)."""
        finder = ShamFinder(database)
        return finder.detect(idns, reference)

    # -- Section 6.4: reverting --------------------------------------------------------

    def revert_to_original(self, idn: str | DomainName) -> str | None:
        """Recover the most plausible original domain a homograph imitates."""
        name = idn if isinstance(idn, DomainName) else DomainName(str(idn))
        original_label = self.reverter.best_original(name.registrable_unicode)
        if original_label is None:
            return None
        return f"{original_label}.{name.tld}"

    # -- source attribution helpers ------------------------------------------------------

    def databases(self) -> dict[str, HomoglyphDatabase]:
        """The underlying databases keyed by their role."""
        result = {"union": self.database}
        if self.uc_database is not None:
            result[SOURCE_UC] = self.uc_database
        if self.simchar_database is not None:
            result[SOURCE_SIMCHAR] = self.simchar_database
        return result
