"""Homograph detection algorithm (paper Algorithm 1).

Given a reference label ``r`` and a candidate IDN label ``x`` of the same
length, the candidate is a homograph of the reference when, at every
position, the characters either match exactly or form a pair in the
homoglyph database — and at least one position differs (otherwise the two
labels are simply identical).

The matcher indexes reference labels by length so that a candidate is only
compared against same-length references, which is the paper's main
complexity reduction (|N||M||L| worst case, with the length restriction in
practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..homoglyph.database import HomoglyphDatabase

__all__ = ["CharacterSubstitution", "MatchResult", "HomographMatcher"]


@dataclass(frozen=True)
class CharacterSubstitution:
    """One differing position between a candidate and its reference."""

    position: int
    candidate_char: str
    reference_char: str

    def describe(self) -> str:
        """Human-readable description used by reports and the warning UI."""
        return (
            f"position {self.position}: U+{ord(self.candidate_char):04X} "
            f"{self.candidate_char!r} stands in for U+{ord(self.reference_char):04X} "
            f"{self.reference_char!r}"
        )


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one candidate label against one reference label."""

    candidate: str
    reference: str
    is_homograph: bool
    substitutions: tuple[CharacterSubstitution, ...] = ()

    @property
    def substitution_count(self) -> int:
        """Number of positions where a homoglyph substitution occurred."""
        return len(self.substitutions)


class HomographMatcher:
    """Implements Algorithm 1 over a homoglyph database."""

    def __init__(self, database: HomoglyphDatabase) -> None:
        self.database = database

    # -- single-pair matching --------------------------------------------------

    def match(self, candidate: str, reference: str) -> MatchResult:
        """Match one candidate label against one reference label.

        Both labels are expected in Unicode (U-label) form with the TLD
        already removed, as in the paper's Figure 2.
        """
        candidate = candidate.lower()
        reference = reference.lower()
        if len(candidate) != len(reference) or not candidate:
            return MatchResult(candidate, reference, False)
        if candidate == reference:
            return MatchResult(candidate, reference, False)

        substitutions: list[CharacterSubstitution] = []
        for position, (cand_char, ref_char) in enumerate(zip(candidate, reference)):
            if cand_char == ref_char:
                continue
            if self.database.are_homoglyphs(cand_char, ref_char):
                substitutions.append(CharacterSubstitution(position, cand_char, ref_char))
                continue
            return MatchResult(candidate, reference, False)
        return MatchResult(candidate, reference, True, tuple(substitutions))

    def is_homograph(self, candidate: str, reference: str) -> bool:
        """True when *candidate* is an IDN homograph of *reference*."""
        return self.match(candidate, reference).is_homograph

    # -- one-vs-many matching ------------------------------------------------------

    def match_against(
        self,
        candidate: str,
        references: Iterable[str],
    ) -> list[MatchResult]:
        """All references the candidate is a homograph of."""
        index = self.build_reference_index(references)
        return self.match_with_index(candidate, index)

    @staticmethod
    def build_reference_index(references: Iterable[str]) -> dict[int, list[str]]:
        """Group reference labels by length (the paper's pruning step)."""
        index: dict[int, list[str]] = {}
        for reference in references:
            reference = reference.lower()
            index.setdefault(len(reference), []).append(reference)
        return index

    def match_with_index(
        self,
        candidate: str,
        reference_index: dict[int, list[str]],
    ) -> list[MatchResult]:
        """Match a candidate against a pre-built length index."""
        candidate = candidate.lower()
        matches: list[MatchResult] = []
        for reference in reference_index.get(len(candidate), ()):
            result = self.match(candidate, reference)
            if result.is_homograph:
                matches.append(result)
        return matches

    # -- many-vs-many matching --------------------------------------------------------

    def find_homographs(
        self,
        candidates: Sequence[str],
        references: Sequence[str],
    ) -> list[MatchResult]:
        """All (candidate, reference) homograph matches (Algorithm 1's loops)."""
        index = self.build_reference_index(references)
        results: list[MatchResult] = []
        for candidate in candidates:
            results.extend(self.match_with_index(candidate, index))
        return results
