"""Homograph detection algorithm (paper Algorithm 1).

Given a reference label ``r`` and a candidate IDN label ``x`` of the same
length, the candidate is a homograph of the reference when, at every
position, the characters either match exactly or form a pair in the
homoglyph database — and at least one position differs (otherwise the two
labels are simply identical).

Two one-vs-many strategies are provided:

* the **legacy length index** — compare the candidate against every
  reference of the same length (the paper's pruning step);
* the **skeleton index** (:mod:`.skeleton`) — map labels to canonical
  skeletons via the union-find closure of the database and hash-join on
  the skeleton, re-checking bucket hits with the exact position-wise test.
  Byte-identical results, orders of magnitude fewer comparisons.

Case is folded with :func:`fold_label`, a *length-preserving* lowercase:
``str.lower()`` can change a label's length (U+0130 "İ" lowers to "i" plus
a combining dot), which would make length pruning and reported substitution
positions refer to the folded string instead of the original.  Characters
whose lowercase expands are kept as-is, so positions in a
:class:`MatchResult` are always valid indices into the original label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..homoglyph.database import HomoglyphDatabase
from ..homoglyph.invisible import InvisibleFinding, InvisibleTable
from ..idn.idna_codec import fold_label
from .skeleton import CharacterClasses, SkeletonIndex

# fold_label moved to repro.idn.idna_codec (so the IDNA layer can use it
# without importing detection); re-exported here for compatibility.
__all__ = ["CharacterSubstitution", "MatchResult", "HomographMatcher", "fold_label"]


@dataclass(frozen=True)
class CharacterSubstitution:
    """One differing position between a candidate and its reference."""

    position: int
    candidate_char: str
    reference_char: str

    def describe(self) -> str:
        """Human-readable description used by reports and the warning UI."""
        return (
            f"position {self.position}: U+{ord(self.candidate_char):04X} "
            f"{self.candidate_char!r} stands in for U+{ord(self.reference_char):04X} "
            f"{self.reference_char!r}"
        )


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one candidate label against one reference label."""

    candidate: str
    reference: str
    is_homograph: bool
    substitutions: tuple[CharacterSubstitution, ...] = ()
    #: Invisible characters found in (and stripped from) the candidate
    #: before it matched — empty for the classic equal-length path.
    #: Positions index into the folded candidate label.
    invisibles: tuple[InvisibleFinding, ...] = ()

    @property
    def substitution_count(self) -> int:
        """Number of positions where a homoglyph substitution occurred."""
        return len(self.substitutions)


class HomographMatcher:
    """Implements Algorithm 1 over a homoglyph database.

    With an *invisible_table* (the ``invisible`` database source selected),
    the skeleton-index path additionally runs the strip-and-rematch check:
    candidates carrying zero-width/bidi/combining-stack payloads are
    stripped and compared again, so a label that *renders* as a reference
    is caught even though its code point length differs.  The legacy
    pairwise paths (:meth:`match`, :meth:`match_with_index`) implement the
    paper's equal-length Algorithm 1 only and never consult the table.
    """

    def __init__(
        self,
        database: HomoglyphDatabase,
        *,
        invisible_table: InvisibleTable | None = None,
    ) -> None:
        self.database = database
        self.invisible_table = invisible_table
        self._classes: CharacterClasses | None = None

    @property
    def classes(self) -> CharacterClasses:
        """Union-find closure of the database (built lazily, then cached)."""
        if self._classes is None:
            self._classes = CharacterClasses(self.database)
        return self._classes

    # -- single-pair matching --------------------------------------------------

    def match(self, candidate: str, reference: str) -> MatchResult:
        """Match one candidate label against one reference label.

        Both labels are expected in Unicode (U-label) form with the TLD
        already removed, as in the paper's Figure 2.  Case is folded once,
        length-preservingly, so substitution positions refer to the
        original labels.
        """
        return self._match_folded(fold_label(candidate), fold_label(reference))

    def _match_folded(self, candidate: str, reference: str) -> MatchResult:
        """Algorithm 1 core over labels that are already case-folded."""
        if len(candidate) != len(reference) or not candidate:
            return MatchResult(candidate, reference, False)
        if candidate == reference:
            return MatchResult(candidate, reference, False)

        substitutions: list[CharacterSubstitution] = []
        for position, (cand_char, ref_char) in enumerate(zip(candidate, reference)):
            if cand_char == ref_char:
                continue
            if self.database.are_homoglyphs(cand_char, ref_char):
                substitutions.append(CharacterSubstitution(position, cand_char, ref_char))
                continue
            return MatchResult(candidate, reference, False)
        return MatchResult(candidate, reference, True, tuple(substitutions))

    def is_homograph(self, candidate: str, reference: str) -> bool:
        """True when *candidate* is an IDN homograph of *reference*."""
        return self.match(candidate, reference).is_homograph

    # -- one-vs-many matching ------------------------------------------------------

    def match_against(
        self,
        candidate: str,
        references: Iterable[str],
    ) -> list[MatchResult]:
        """All references the candidate is a homograph of."""
        index = self.build_skeleton_index(references)
        return self.match_with_skeleton_index(candidate, index)

    # -- skeleton-index path (the fast one) -------------------------------------

    def build_skeleton_index(self, references: Iterable[str]) -> SkeletonIndex:
        """Bucket reference labels by their canonical skeleton."""
        index = SkeletonIndex(self.classes)
        for reference in references:
            index.add(fold_label(reference))
        return index

    def match_with_skeleton_index(
        self,
        candidate: str,
        index: SkeletonIndex,
    ) -> list[MatchResult]:
        """Match a candidate via skeleton hash-join + exact re-check.

        The union-find closure is coarser than the database (confusability
        is not transitive), so every bucket hit is confirmed with
        :meth:`_match_folded` before being reported.
        """
        folded = fold_label(candidate)
        matches: list[MatchResult] = []
        for reference in index.candidates_for(folded):
            result = self._match_folded(folded, reference)
            if result.is_homograph:
                matches.append(result)
        if self.invisible_table is not None:
            matches.extend(self._match_invisible(folded, index))
        return matches

    def _match_invisible(self, folded: str, index: SkeletonIndex) -> list[MatchResult]:
        """Strip-and-rematch check for invisible-character homographs.

        The candidate's invisible payload (zero-width characters, bidi
        controls, combining stacks) is removed and the stripped form is
        re-joined against the index.  A stripped form *equal* to a
        reference is a homograph with no substitutions — the pure-payload
        attack; a stripped form matching through the database combines
        both vectors.  Substitution positions are mapped back onto the
        original folded label, and the findings ride on the result.

        No overlap with the classic path is possible: stripping removes at
        least one character, so the stripped form only matches references
        shorter than the ones the equal-length comparison considered.
        """
        findings = self.invisible_table.findings(folded)
        if not findings:
            return []
        stripped, positions = self.invisible_table.strip_with_positions(folded)
        if not stripped:
            return []
        matches: list[MatchResult] = []
        for reference in index.candidates_for(stripped):
            if reference == stripped:
                matches.append(MatchResult(folded, reference, True, (), findings))
                continue
            result = self._match_folded(stripped, reference)
            if not result.is_homograph:
                continue
            remapped = tuple(
                CharacterSubstitution(positions[s.position], s.candidate_char,
                                      s.reference_char)
                for s in result.substitutions
            )
            matches.append(MatchResult(folded, reference, True, remapped, findings))
        return matches

    # -- legacy length-index path ---------------------------------------------

    @staticmethod
    def build_reference_index(references: Iterable[str]) -> dict[int, list[str]]:
        """Group reference labels by length (the paper's pruning step)."""
        index: dict[int, list[str]] = {}
        for reference in references:
            reference = fold_label(reference)
            index.setdefault(len(reference), []).append(reference)
        return index

    def match_with_index(
        self,
        candidate: str,
        reference_index: dict[int, list[str]],
    ) -> list[MatchResult]:
        """Match a candidate against a pre-built length index (legacy scan)."""
        candidate = fold_label(candidate)
        matches: list[MatchResult] = []
        for reference in reference_index.get(len(candidate), ()):
            result = self._match_folded(candidate, reference)
            if result.is_homograph:
                matches.append(result)
        return matches

    # -- many-vs-many matching --------------------------------------------------------

    def find_homographs(
        self,
        candidates: Sequence[str],
        references: Sequence[str],
    ) -> list[MatchResult]:
        """All (candidate, reference) homograph matches, skeleton-indexed."""
        index = self.build_skeleton_index(references)
        results: list[MatchResult] = []
        for candidate in candidates:
            results.extend(self.match_with_skeleton_index(candidate, index))
        return results

    def find_homographs_pairwise(
        self,
        candidates: Sequence[str],
        references: Sequence[str],
    ) -> list[MatchResult]:
        """Legacy pairwise scan (Algorithm 1's loops, length pruning only).

        Kept as the ground truth the skeleton path is verified against by
        the property suite and ``benchmarks/bench_scan.py``.
        """
        index = self.build_reference_index(references)
        results: list[MatchResult] = []
        for candidate in candidates:
            results.extend(self.match_with_index(candidate, index))
        return results
