"""Persistable reference index — the serving-side artifact of Step III.

The paper frames ShamFinder as a framework others can *query*
("IdentifyHomographs"), but a query is only cheap once the reference list
has been prepared: parsed, case-folded, and bucketed by skeleton
(:class:`~.shamfinder.PreparedReferences`).  Re-running that warm-up per
process is what makes "is this one domain a homograph?" cost a full build.

This module snapshots the prepared state to disk with the same artifact
idiom as the SimChar cache (:mod:`repro.homoglyph.cache`): the index is
fingerprinted by everything that determines its content, corrupt or
mismatched files read as misses (the caller rebuilds), and writes go
through a temp-file rename so readers never see a partial artifact.

The fingerprint covers:

* the **homoglyph database** content digest — which transitively covers the
  font digest, build threshold, and UC table that produced the database
  (two databases with equal digests yield identical detection results);
* the **reference list** (hash of the exact domains, in order — a
  reordered list reads as a miss and rebuilds, which only costs time);
* the artifact **format version**, bumped whenever the layout changes.

On-disk layout (one file per fingerprint, ``refindex-<digest>.idx``):
line 1 is a JSON header (magic, version, fingerprint fields, counts, and a
checksum of the body); the body is four packed lines — folded labels,
their reference-domain groups, bucket skeletons, bucket members — using
C0 separators that cannot occur in IDNA labels.  The packed layout is what
makes the cold start a *single load*: rebuilding the prepared state is two
C-level ``dict(zip(str.split(...)))`` passes instead of a Python loop with
IDNA parsing per reference (≥10x faster at 100k references;
``benchmarks/bench_query.py`` asserts it).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..idn.domain import DomainName
from .shamfinder import PreparedReferences, ShamFinder
from .skeleton import PACK_SEPARATOR, SkeletonIndex

__all__ = [
    "INDEX_FORMAT_VERSION",
    "INDEX_MAGIC",
    "IndexKey",
    "ReferenceIndex",
    "ReferenceIndexStore",
    "reference_list_hash",
    "key_for",
    "build_reference_index",
    "cached_reference_index",
]

#: Bump when the on-disk layout changes; old files then read as misses.
INDEX_FORMAT_VERSION = 1

INDEX_MAGIC = "shamfinder-reference-index"

#: Separates the members of one body section (labels, skeletons) — the
#: same byte the bucket/reference groups pack with, so the format has one
#: load-bearing separator constant (change it only with a version bump).
_FIELD_SEPARATOR = PACK_SEPARATOR
#: Separates the groups of one body section (reference groups, buckets).
_GROUP_SEPARATOR = "\x1e"


def reference_list_hash(reference: Iterable[str | DomainName]) -> str:
    """Stable identity of a raw reference list (order-sensitive).

    Hashing in input order keeps the warm path linear with a single C-level
    join; a reordered list therefore fingerprints differently and rebuilds,
    which is always safe — just not free.
    """
    joined = "\n".join(str(item) for item in reference)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class IndexKey:
    """Everything that determines the content of a prepared reference index."""

    database_digest: str
    reference_hash: str
    format_version: int = INDEX_FORMAT_VERSION

    @property
    def digest(self) -> str:
        """Stable hex digest used as the artifact file name."""
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]

    def as_dict(self) -> dict:
        return asdict(self)


def key_for(finder: ShamFinder, reference: Sequence[str | DomainName]) -> IndexKey:
    """Compute the artifact key for *finder*'s database over *reference*."""
    return IndexKey(
        database_digest=finder.database.content_digest(),
        reference_hash=reference_list_hash(reference),
    )


@dataclass(frozen=True)
class ReferenceIndex:
    """A prepared reference set bound to the fingerprint that produced it."""

    prepared: PreparedReferences
    key: IndexKey
    #: True when this instance came off disk rather than a fresh build.
    from_cache: bool = False

    @property
    def fingerprint(self) -> str:
        """The artifact digest — what the query cache invalidates on."""
        return self.key.digest

    @property
    def label_count(self) -> int:
        """Number of distinct folded reference labels."""
        return len(self.prepared.labels)

    @property
    def domain_count(self) -> int:
        """Number of reference domains that parsed (the paper's |M|)."""
        return self.prepared.domain_count


def build_reference_index(
    finder: ShamFinder,
    reference: Sequence[str | DomainName],
) -> ReferenceIndex:
    """Prepare *reference* and bind the result to its fingerprint."""
    prepared = finder.prepare_references(reference)
    return ReferenceIndex(prepared=prepared, key=key_for(finder, reference))


class ReferenceIndexStore:
    """Directory of persisted reference indexes keyed by :class:`IndexKey`."""

    def __init__(self, index_dir: str | os.PathLike) -> None:
        self.index_dir = Path(index_dir)

    def path_for(self, key: IndexKey) -> Path:
        """Artifact file path for *key* (the file may not exist yet)."""
        return self.index_dir / f"refindex-{key.digest}.idx"

    # -- store --------------------------------------------------------------

    def store(self, index: ReferenceIndex) -> Path:
        """Persist a prepared index; returns the written path.

        The file is written to a temp name and renamed so a concurrently
        cold-starting reader never sees a partially written artifact.
        """
        self.index_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(index.key)
        prepared = index.prepared

        labels = list(prepared.labels)                       # insertion order
        groups = [prepared.labels[label] for label in labels]  # already packed
        bucket_keys: list[str] = []
        bucket_values: list[str] = []
        for skeleton, members in prepared.index.buckets():
            bucket_keys.append(skeleton)
            bucket_values.append(PACK_SEPARATOR.join(members))
        body = "\n".join([
            _FIELD_SEPARATOR.join(labels),
            _GROUP_SEPARATOR.join(groups),
            _FIELD_SEPARATOR.join(bucket_keys),
            _GROUP_SEPARATOR.join(bucket_values),
        ])
        header = {
            "magic": INDEX_MAGIC,
            "version": INDEX_FORMAT_VERSION,
            "key": index.key.as_dict(),
            "label_count": len(labels),
            "bucket_count": len(bucket_keys),
            "entry_count": len(prepared.index),
            "domain_count": prepared.domain_count,
            "body_sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
        }
        fd, temp_name = tempfile.mkstemp(dir=self.index_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header, ensure_ascii=False) + "\n")
                handle.write(body)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # -- load ---------------------------------------------------------------

    def load(self, key: IndexKey, finder: ShamFinder) -> ReferenceIndex | None:
        """Load the artifact for *key*, or ``None`` on miss/corruption.

        The character classes are rebuilt from *finder*'s database (cheap —
        one union-find pass); everything per-reference — IDNA parse, case
        fold, skeletonisation, bucketing — is adopted from the packed body
        with C-level splits, which is where the cold-start win comes from.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                if header.get("magic") != INDEX_MAGIC:
                    return None
                if header.get("version") != INDEX_FORMAT_VERSION:
                    return None
                if header.get("key") != key.as_dict():
                    return None
                label_count = header["label_count"]
                bucket_count = header["bucket_count"]
                entry_count = header["entry_count"]
                domain_count = header["domain_count"]
                if not all(isinstance(n, int) for n in
                           (label_count, bucket_count, entry_count, domain_count)):
                    return None

                body = handle.read()
                digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
                if digest != header.get("body_sha256"):
                    return None   # truncated or bit-rotted body
                sections = body.split("\n")
                if len(sections) != 4:
                    return None
                labels = sections[0].split(_FIELD_SEPARATOR) if sections[0] else []
                groups = sections[1].split(_GROUP_SEPARATOR) if sections[1] else []
                bucket_keys = sections[2].split(_FIELD_SEPARATOR) if sections[2] else []
                bucket_values = sections[3].split(_GROUP_SEPARATOR) if sections[3] else []
                if len(labels) != label_count or len(groups) != label_count:
                    return None
                if len(bucket_keys) != bucket_count or len(bucket_values) != bucket_count:
                    return None

                label_map = dict(zip(labels, groups))
                packed_buckets = dict(zip(bucket_keys, bucket_values))
                if len(label_map) != label_count or len(packed_buckets) != bucket_count:
                    return None   # duplicate keys: not something store() writes
                # Each bucket holds (separator count + 1) members, so the
                # total is one C-level count over the whole section.
                if sections[3].count(PACK_SEPARATOR) + bucket_count != entry_count:
                    return None

                index = SkeletonIndex.from_packed(
                    finder.matcher.classes, packed_buckets, entry_count,
                )
                prepared = PreparedReferences(
                    labels=label_map, index=index, domain_count=domain_count,
                )
                return ReferenceIndex(prepared=prepared, key=key, from_cache=True)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Missing file, undecodable bytes, bad JSON, wrong field types —
            # all read as a miss so the caller rebuilds.
            return None

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        """Existing artifact files, newest first."""
        if not self.index_dir.is_dir():
            return []

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:   # deleted concurrently — sort it last
                return 0.0

        return sorted(self.index_dir.glob("refindex-*.idx"), key=mtime, reverse=True)

    def clear(self) -> int:
        """Delete all artifacts; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def cached_reference_index(
    finder: ShamFinder,
    reference: Sequence[str | DomainName],
    store: ReferenceIndexStore | None,
    *,
    force: bool = False,
) -> tuple[ReferenceIndex, bool]:
    """Prepare through the store: ``(index, was_cache_hit)``.

    ``force=True`` skips the read (but still writes), and ``store=None``
    degrades to a plain in-memory build — the same contract as the SimChar
    cache's :func:`~repro.homoglyph.cache.cached_build`.
    """
    if store is None:
        return build_reference_index(finder, reference), False
    key = key_for(finder, reference)
    if not force:
        cached = store.load(key, finder)
        if cached is not None:
            return cached, True
    index = build_reference_index(finder, reference)
    try:
        store.store(index)
    except OSError as exc:
        # The store is an optimisation — never lose a completed build to an
        # unwritable/full index directory.
        warnings.warn(f"could not persist reference index to {store.index_dir}: {exc}",
                      stacklevel=2)
    return index, False
