"""Persistable reference index — the serving-side artifact of Step III.

The paper frames ShamFinder as a framework others can *query*
("IdentifyHomographs"), but a query is only cheap once the reference list
has been prepared: parsed, case-folded, and bucketed by skeleton
(:class:`~.shamfinder.PreparedReferences`).  Re-running that warm-up per
process is what makes "is this one domain a homograph?" cost a full build.

This module snapshots the prepared state to disk with the same artifact
idiom as the SimChar cache (:mod:`repro.homoglyph.cache`): the index is
fingerprinted by everything that determines its content, corrupt or
mismatched files read as misses (the caller rebuilds), and writes go
through a temp-file rename so readers never see a partial artifact.

The fingerprint covers:

* the **homoglyph database** content digest — which transitively covers the
  font digest, build threshold, and UC table that produced the database
  (two databases with equal digests yield identical detection results);
* the **reference list** (hash of the exact domains, in order — a
  reordered list reads as a miss and rebuilds, which only costs time);
* the artifact **format version**, bumped whenever the layout changes.

On-disk layout (one file per fingerprint, ``refindex-<digest>.idx``):
line 1 is a JSON header (magic, version, fingerprint fields, counts,
per-section byte lengths, and a checksum of the body); the body is eight
packed sections — folded labels, their reference-domain groups, bucket
skeletons, bucket members, plus four fixed-width offset directories —
using C0 separators that cannot occur in IDNA labels.  The whole file is
UTF-8 text.

Two load paths share that one artifact:

* :meth:`ReferenceIndexStore.load` — the *dict build*: two C-level
  ``dict(zip(str.split(...)))`` passes over sections 0-3 instead of a
  Python loop with IDNA parsing per reference (≥10x faster than
  ``prepare_references`` at 100k references; ``benchmarks/bench_query.py``
  asserts it).  The body checksum is always verified.
* :meth:`ReferenceIndexStore.load_mmap` — the *zero-copy map*: the file is
  ``mmap``-ed and sections 0-3 are probed in place by binary search over
  the sorted keys, using the offset directories (sections 4-7) for O(1)
  record addressing.  Opening costs one header parse, not an O(n) body
  scan, so N serving worker processes share one page-cache copy of the
  index instead of each paying the dict build
  (``benchmarks/bench_serve.py`` asserts the per-worker win).

Format version 1 files (the pre-mmap four-section layout) are still read:
:meth:`ReferenceIndexStore.load` falls back to the version-1 artifact for
the same database/reference fingerprint and
:func:`cached_reference_index` transparently rewrites it in the current
format, so an existing store upgrades in place without a rebuild.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..idn.domain import DomainName
from .shamfinder import PreparedReferences, ShamFinder
from .skeleton import PACK_SEPARATOR, CharacterClasses, SkeletonIndex

__all__ = [
    "INDEX_FORMAT_VERSION",
    "INDEX_MAGIC",
    "IndexKey",
    "ReferenceIndex",
    "ReferenceIndexStore",
    "MmapPreparedReferences",
    "MmapSkeletonIndex",
    "reference_list_hash",
    "key_for",
    "build_reference_index",
    "cached_reference_index",
]

#: Bump when the on-disk layout changes; old files then read as misses
#: (version 1 is grandfathered through the explicit fallback parser).
INDEX_FORMAT_VERSION = 2

INDEX_MAGIC = "shamfinder-reference-index"

#: Separates the members of one body section (labels, skeletons) — the
#: same byte the bucket/reference groups pack with, so the format has one
#: load-bearing separator constant (change it only with a version bump).
_FIELD_SEPARATOR = PACK_SEPARATOR
#: Separates the groups of one body section (reference groups, buckets).
_GROUP_SEPARATOR = "\x1e"

#: Width of one offset-directory entry: a zero-padded decimal byte offset.
#: Fixed width keeps the file pure text while giving the mmap reader O(1)
#: random access into the directories (10 digits cover bodies up to ~10GB).
_OFFSET_WIDTH = 10


def reference_list_hash(reference: Iterable[str | DomainName]) -> str:
    """Stable identity of a raw reference list (order-sensitive).

    Hashing in input order keeps the warm path linear with a single C-level
    join; a reordered list therefore fingerprints differently and rebuilds,
    which is always safe — just not free.
    """
    joined = "\n".join(str(item) for item in reference)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class IndexKey:
    """Everything that determines the content of a prepared reference index."""

    database_digest: str
    reference_hash: str
    # lint: fingerprint-exempt(format constant bumped by hand, not a config input)
    format_version: int = INDEX_FORMAT_VERSION
    #: Source-selection config (:attr:`ShamFinder.source_config`): ``""``
    #: for the historical SimChar∪UC default and then **omitted** from the
    #: canonical form, so every digest and artifact header produced before
    #: source selection existed stays byte-identical; any other selection
    #: (e.g. enabling ``invisible``) fingerprints — and caches —
    #: differently.
    sources: str = ""

    @property
    def digest(self) -> str:
        """Stable hex digest used as the artifact file name.

        Memoized on the instance: the query hot path reads the index
        fingerprint (= this digest) on every cache probe, and recomputing
        the canonical JSON + SHA-256 per query used to cost nearly half
        the per-query time.  The fields are frozen, so the memo can never
        go stale.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            canonical = json.dumps(self.as_dict(), sort_keys=True)
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]
            object.__setattr__(self, "_digest", cached)
        return cached

    # lint: fingerprint(IndexKey)
    def as_dict(self) -> dict:
        payload = asdict(self)
        if not payload["sources"]:
            del payload["sources"]
        return payload


# lint: fingerprint(IndexKey)
def key_for(finder: ShamFinder, reference: Sequence[str | DomainName]) -> IndexKey:
    """Compute the artifact key for *finder*'s database over *reference*.

    Marked ``# lint: fingerprint(IndexKey)``: repro-lint's
    fingerprint-completeness rule fails the build if a field added to
    :class:`IndexKey` is not threaded through here (docs/LINT.md) — the
    machine-checked form of PR 7's hand-threading of ``source_config``.
    """
    return IndexKey(
        database_digest=finder.database.content_digest(),
        reference_hash=reference_list_hash(reference),
        sources=getattr(finder, "source_config", "") or "",
    )


@dataclass(frozen=True)
class ReferenceIndex:
    """A prepared reference set bound to the fingerprint that produced it."""

    prepared: "PreparedReferences | MmapPreparedReferences"
    key: IndexKey
    #: True when this instance came off disk rather than a fresh build.
    from_cache: bool = False
    #: True when the prepared state is an :class:`MmapPreparedReferences`
    #: probing the artifact in place rather than materialised dicts.
    mapped: bool = False

    @property
    def fingerprint(self) -> str:
        """The artifact digest — what the query cache invalidates on."""
        return self.key.digest

    @property
    def label_count(self) -> int:
        """Number of distinct folded reference labels."""
        return len(self.prepared.labels)

    @property
    def domain_count(self) -> int:
        """Number of reference domains that parsed (the paper's |M|)."""
        return self.prepared.domain_count


def build_reference_index(
    finder: ShamFinder,
    reference: Sequence[str | DomainName],
) -> ReferenceIndex:
    """Prepare *reference* and bind the result to its fingerprint."""
    prepared = finder.prepare_references(reference)
    return ReferenceIndex(prepared=prepared, key=key_for(finder, reference))


# -- mmap readers -------------------------------------------------------------


class _PackedSection:
    """One sorted, separator-joined artifact section probed in place.

    Records live in ``buf[start:start+length]`` joined by *separator*; the
    offset directory at ``dir_start`` holds each record's END byte offset
    (relative to the section start) as a fixed-width decimal, so record
    *i* is ``buf[off(i-1)+1 : off(i)]`` — O(1) addressing, no
    materialisation.  Keys compare as raw UTF-8 bytes, whose order equals
    code-point order, so binary search agrees with the writer's
    ``sorted()``.
    """

    __slots__ = ("buf", "start", "length", "dir_start", "count")

    def __init__(self, buf, start: int, length: int, dir_start: int, count: int) -> None:
        self.buf = buf
        self.start = start
        self.length = length
        self.dir_start = dir_start
        self.count = count

    def _end_offset(self, i: int) -> int:
        pos = self.dir_start + i * _OFFSET_WIDTH
        return int(self.buf[pos:pos + _OFFSET_WIDTH])

    def record_bytes(self, i: int) -> bytes:
        lo = 0 if i == 0 else self._end_offset(i - 1) + 1
        return bytes(self.buf[self.start + lo:self.start + self._end_offset(i)])

    def find(self, key: bytes) -> int:
        """Index of *key*, or -1 — binary search over the sorted records."""
        lo, hi = 0, self.count - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            record = self.record_bytes(mid)
            if record == key:
                return mid
            if record < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return -1

    def records(self) -> Iterator[str]:
        for i in range(self.count):
            yield self.record_bytes(i).decode("utf-8")


class _MmapLabelView:
    """Read-only mapping view over the label section of a mapped artifact.

    Supports what the query path and the store actually use of
    ``PreparedReferences.labels``: ``len``, ``get``, containment, and
    iteration — each ``get`` is one binary search on the mapped file.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self, keys: _PackedSection, values: _PackedSection) -> None:
        self._keys = keys
        self._values = values

    def __len__(self) -> int:
        return self._keys.count

    def __iter__(self) -> Iterator[str]:
        return self._keys.records()

    def __contains__(self, label: object) -> bool:
        return isinstance(label, str) and self._keys.find(label.encode("utf-8")) >= 0

    def get(self, label: str, default=None):
        i = self._keys.find(label.encode("utf-8"))
        if i < 0:
            return default
        return self._values.record_bytes(i).decode("utf-8")


class MmapSkeletonIndex:
    """Read-only skeleton hash-join index probing a mapped artifact.

    Duck-types the probe surface of :class:`~.skeleton.SkeletonIndex`
    (``classes``, :meth:`candidates_for`, ``buckets``, ``len``); mutation
    is not supported — rebuild and store a fresh artifact instead.
    """

    def __init__(
        self,
        classes: CharacterClasses,
        keys: _PackedSection,
        values: _PackedSection,
        size: int,
    ) -> None:
        self.classes = classes
        self._keys = keys
        self._values = values
        self._size = size

    def candidates_for(self, folded_label: str) -> list[str]:
        """References that could match *folded_label* (superset of matches)."""
        skeleton = self.classes.skeletonize(folded_label)
        i = self._keys.find(skeleton.encode("utf-8"))
        if i < 0:
            return []
        return self._values.record_bytes(i).decode("utf-8").split(PACK_SEPARATOR)

    def buckets(self) -> Iterator[tuple[str, list[str]]]:
        """Yield ``(skeleton, members)`` in stored (sorted) order."""
        for i in range(self._keys.count):
            yield (
                self._keys.record_bytes(i).decode("utf-8"),
                self._values.record_bytes(i).decode("utf-8").split(PACK_SEPARATOR),
            )

    def skeletons(self) -> list[str]:
        """All bucket keys, decoded once, without touching any members."""
        return list(self._keys.records())

    @property
    def bucket_count(self) -> int:
        return self._keys.count

    def __len__(self) -> int:
        return self._size


class MmapPreparedReferences:
    """Prepared references probing the artifact through ``mmap`` in place.

    Duck-types the query surface of
    :class:`~.shamfinder.PreparedReferences` (``labels``, ``index``,
    ``domain_count``, :meth:`references_for`) without materialising any
    dict: opening is one header parse, every probe is a binary search on
    the shared page-cache copy of the file.  This is what lets N serving
    worker processes attach to one index with no per-worker build
    (:mod:`repro.serving`).

    Instances hold the underlying map open for their lifetime; they are
    safe for concurrent readers and fork-inherited children, and
    :meth:`close` (or GC) releases the map.
    """

    def __init__(
        self,
        buf: mmap.mmap,
        labels: _MmapLabelView,
        index: MmapSkeletonIndex,
        domain_count: int,
        path: Path,
    ) -> None:
        self._buf = buf
        self.labels = labels
        self.index = index
        self.domain_count = domain_count
        #: The artifact file backing the map (what serving workers reopen).
        self.path = path

    def references_for(self, folded_label: str) -> tuple[str, ...]:
        """The reference domains (canonical ASCII) carrying *folded_label*."""
        group = self.labels.get(folded_label)
        if not group:
            return ()
        return tuple(group.split(PACK_SEPARATOR))

    def close(self) -> None:
        """Release the underlying map (idempotent)."""
        try:
            self._buf.close()
        except (BufferError, ValueError):  # still referenced / already closed
            pass


# -- the artifact store -------------------------------------------------------


class ReferenceIndexStore:
    """Directory of persisted reference indexes keyed by :class:`IndexKey`."""

    def __init__(self, index_dir: str | os.PathLike) -> None:
        self.index_dir = Path(index_dir)

    def path_for(self, key: IndexKey) -> Path:
        """Artifact file path for *key* (the file may not exist yet)."""
        return self.index_dir / f"refindex-{key.digest}.idx"

    # -- store --------------------------------------------------------------

    def store(self, index: ReferenceIndex) -> Path:
        """Persist a prepared index; returns the written path.

        The file is written to a temp name and renamed so a concurrently
        cold-starting reader never sees a partially written artifact.
        Sections are sorted by key so the mmap reader can binary search;
        per-bucket member order is preserved, so detection results are
        byte-identical whichever way the artifact is loaded.
        """
        self.index_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(index.key)
        prepared = index.prepared

        label_view = prepared.labels
        labels = sorted(label_view)
        groups = [label_view.get(label) for label in labels]
        buckets = {skeleton: members for skeleton, members in prepared.index.buckets()}
        bucket_keys = sorted(buckets)
        bucket_values = [PACK_SEPARATOR.join(buckets[key]) for key in bucket_keys]
        entry_count = sum(len(members) for members in buckets.values())

        sections = [
            _FIELD_SEPARATOR.join(labels),
            _GROUP_SEPARATOR.join(groups),
            _FIELD_SEPARATOR.join(bucket_keys),
            _GROUP_SEPARATOR.join(bucket_values),
            _offset_directory(labels),
            _offset_directory(groups),
            _offset_directory(bucket_keys),
            _offset_directory(bucket_values),
        ]
        body = "\n".join(sections)
        header = {
            "magic": INDEX_MAGIC,
            "version": INDEX_FORMAT_VERSION,
            "key": index.key.as_dict(),
            "label_count": len(labels),
            "bucket_count": len(bucket_keys),
            "entry_count": entry_count,
            "domain_count": prepared.domain_count,
            "section_bytes": [len(s.encode("utf-8")) for s in sections],
            "body_sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
        }
        fd, temp_name = tempfile.mkstemp(dir=self.index_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header, ensure_ascii=False) + "\n")
                handle.write(body)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # -- load ---------------------------------------------------------------

    def load(self, key: IndexKey, finder: ShamFinder) -> ReferenceIndex | None:
        """Load the artifact for *key*, or ``None`` on miss/corruption.

        The character classes are rebuilt from *finder*'s database (cheap —
        one union-find pass); everything per-reference — IDNA parse, case
        fold, skeletonisation, bucketing — is adopted from the packed body
        with C-level splits, which is where the cold-start win comes from.
        When the current-format artifact is missing, the version-1 file for
        the same database/reference fingerprint is tried as a fallback.
        """
        loaded = self._load_current(key, finder)
        if loaded is not None:
            return loaded
        return self._load_v1(key, finder)

    def _load_current(self, key: IndexKey, finder: ShamFinder) -> ReferenceIndex | None:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                header = _checked_header(json.loads(handle.readline()), key)
                if header is None:
                    return None

                body = handle.read()
                digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
                if digest != header["body_sha256"]:
                    return None   # truncated or bit-rotted body
                sections = body.split("\n")
                if len(sections) != 8:
                    return None
                label_count = header["label_count"]
                bucket_count = header["bucket_count"]
                entry_count = header["entry_count"]
                labels = sections[0].split(_FIELD_SEPARATOR) if sections[0] else []
                groups = sections[1].split(_GROUP_SEPARATOR) if sections[1] else []
                bucket_keys = sections[2].split(_FIELD_SEPARATOR) if sections[2] else []
                bucket_values = sections[3].split(_GROUP_SEPARATOR) if sections[3] else []
                if len(labels) != label_count or len(groups) != label_count:
                    return None
                if len(bucket_keys) != bucket_count or len(bucket_values) != bucket_count:
                    return None

                label_map = dict(zip(labels, groups))
                packed_buckets = dict(zip(bucket_keys, bucket_values))
                if len(label_map) != label_count or len(packed_buckets) != bucket_count:
                    return None   # duplicate keys: not something store() writes
                # Each bucket holds (separator count + 1) members, so the
                # total is one C-level count over the whole section.
                if sections[3].count(PACK_SEPARATOR) + bucket_count != entry_count:
                    return None

                index = SkeletonIndex.from_packed(
                    finder.matcher.classes, packed_buckets, entry_count,
                )
                prepared = PreparedReferences(
                    labels=label_map, index=index, domain_count=header["domain_count"],
                )
                return ReferenceIndex(prepared=prepared, key=key, from_cache=True)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Missing file, undecodable bytes, bad JSON, wrong field types —
            # all read as a miss so the caller rebuilds.
            return None

    def load_mmap(
        self,
        key: IndexKey,
        finder: ShamFinder,
        *,
        verify: bool = False,
    ) -> ReferenceIndex | None:
        """Map the artifact for *key* in place, or ``None`` on miss.

        Unlike :meth:`load`, nothing per-reference is materialised: the
        file is ``mmap``-ed and probed by binary search, so opening costs a
        header parse regardless of index size.  The body checksum is only
        recomputed under ``verify=True`` (an O(n) pass) — a serving parent
        typically verifies once and lets its forked/reattached workers
        trust the same inode.  Structural invariants (section lengths,
        directory widths, terminal offsets) are always checked, so a
        truncated file still reads as a miss.
        """
        return self._open_mmap(self.path_for(key), finder, expect_key=key, verify=verify)

    def load_path(
        self,
        path: str | os.PathLike,
        finder: ShamFinder,
        *,
        verify: bool = False,
    ) -> ReferenceIndex | None:
        """Map an artifact by file path, taking the key from its header.

        The serving worker-pool attach path: the parent hands workers the
        artifact *path* plus the expected fingerprint, and each worker maps
        the same inode zero-copy (:mod:`repro.serving.server`).
        """
        return self._open_mmap(Path(path), finder, expect_key=None, verify=verify)

    def _open_mmap(
        self,
        path: Path,
        finder: ShamFinder,
        *,
        expect_key: IndexKey | None,
        verify: bool,
    ) -> ReferenceIndex | None:
        try:
            with open(path, "rb") as handle:
                buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):   # missing file or empty file
            return None
        try:
            newline = buf.find(b"\n")
            if newline < 0:
                buf.close()
                return None
            header = json.loads(buf[:newline].decode("utf-8"))
            key = expect_key
            if key is None:
                key = IndexKey(**header.get("key", {}))
            header = _checked_header(header, key)
            if header is None:
                buf.close()
                return None
            section_bytes = header["section_bytes"]
            if (not isinstance(section_bytes, list) or len(section_bytes) != 8
                    or not all(isinstance(n, int) and n >= 0 for n in section_bytes)):
                buf.close()
                return None
            body_start = newline + 1
            # 8 sections + 7 joining newlines must exactly cover the body.
            if body_start + sum(section_bytes) + 7 != len(buf):
                buf.close()
                return None
            if verify:
                digest = hashlib.sha256(buf[body_start:]).hexdigest()
                if digest != header["body_sha256"]:
                    buf.close()
                    return None

            starts = []
            position = body_start
            for length in section_bytes:
                starts.append(position)
                position += length + 1
            label_count = header["label_count"]
            bucket_count = header["bucket_count"]
            for count, data_i, dir_i in ((label_count, 0, 4), (label_count, 1, 5),
                                         (bucket_count, 2, 6), (bucket_count, 3, 7)):
                if section_bytes[dir_i] != count * _OFFSET_WIDTH:
                    buf.close()
                    return None
                if count and int(
                    buf[starts[dir_i] + (count - 1) * _OFFSET_WIDTH:
                        starts[dir_i] + count * _OFFSET_WIDTH]
                ) != section_bytes[data_i]:
                    buf.close()   # directory disagrees with its section
                    return None

            def section(count: int, data_i: int, dir_i: int) -> _PackedSection:
                return _PackedSection(buf, starts[data_i], section_bytes[data_i],
                                      starts[dir_i], count)

            labels = _MmapLabelView(section(label_count, 0, 4), section(label_count, 1, 5))
            index = MmapSkeletonIndex(
                finder.matcher.classes,
                section(bucket_count, 2, 6),
                section(bucket_count, 3, 7),
                header["entry_count"],
            )
            prepared = MmapPreparedReferences(
                buf, labels, index, header["domain_count"], path,
            )
            return ReferenceIndex(prepared=prepared, key=key, from_cache=True, mapped=True)
        except (ValueError, KeyError, TypeError, AttributeError):
            buf.close()
            return None

    def _load_v1(self, key: IndexKey, finder: ShamFinder) -> ReferenceIndex | None:
        """Backward-compat read of a format-version-1 artifact.

        Version 1 used the same fingerprint fields with ``format_version:
        1`` (hence a different file name) and a four-section body with no
        offset directories.  A hit returns the index under the *v1* key;
        :func:`cached_reference_index` rewrites it in the current format so
        the fallback is paid at most once per store.
        """
        if key.sources:
            # Version-1 artifacts predate source selection: only the default
            # SimChar∪UC composition may adopt one.
            return None
        v1_key = IndexKey(database_digest=key.database_digest,
                          reference_hash=key.reference_hash, format_version=1)
        path = self.path_for(v1_key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                if header.get("magic") != INDEX_MAGIC or header.get("version") != 1:
                    return None
                if header.get("key") != v1_key.as_dict():
                    return None
                label_count = header["label_count"]
                bucket_count = header["bucket_count"]
                entry_count = header["entry_count"]
                domain_count = header["domain_count"]
                if not all(isinstance(n, int) for n in
                           (label_count, bucket_count, entry_count, domain_count)):
                    return None
                body = handle.read()
                if hashlib.sha256(body.encode("utf-8")).hexdigest() != header.get("body_sha256"):
                    return None
                sections = body.split("\n")
                if len(sections) != 4:
                    return None
                labels = sections[0].split(_FIELD_SEPARATOR) if sections[0] else []
                groups = sections[1].split(_GROUP_SEPARATOR) if sections[1] else []
                bucket_keys = sections[2].split(_FIELD_SEPARATOR) if sections[2] else []
                bucket_values = sections[3].split(_GROUP_SEPARATOR) if sections[3] else []
                if len(labels) != label_count or len(groups) != label_count:
                    return None
                if len(bucket_keys) != bucket_count or len(bucket_values) != bucket_count:
                    return None
                label_map = dict(zip(labels, groups))
                packed_buckets = dict(zip(bucket_keys, bucket_values))
                if len(label_map) != label_count or len(packed_buckets) != bucket_count:
                    return None
                if sections[3].count(PACK_SEPARATOR) + bucket_count != entry_count:
                    return None
                index = SkeletonIndex.from_packed(
                    finder.matcher.classes, packed_buckets, entry_count,
                )
                prepared = PreparedReferences(
                    labels=label_map, index=index, domain_count=domain_count,
                )
                return ReferenceIndex(prepared=prepared, key=v1_key, from_cache=True)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        """Existing artifact files, newest first."""
        if not self.index_dir.is_dir():
            return []

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:   # deleted concurrently — sort it last
                return 0.0

        return sorted(self.index_dir.glob("refindex-*.idx"), key=mtime, reverse=True)

    def clear(self) -> int:
        """Delete all artifacts; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _offset_directory(records: list[str]) -> str:
    """Fixed-width END byte offsets of *records* within their joined section."""
    parts: list[str] = []
    position = 0
    for record in records:
        position += len(record.encode("utf-8"))
        parts.append(f"{position:0{_OFFSET_WIDTH}d}")
        position += 1   # the joining separator byte
    return "".join(parts)


def _checked_header(header: dict, key: IndexKey) -> dict | None:
    """Validate a current-format header against *key*; None on any mismatch."""
    if not isinstance(header, dict):
        return None
    if header.get("magic") != INDEX_MAGIC:
        return None
    if header.get("version") != INDEX_FORMAT_VERSION:
        return None
    if header.get("key") != key.as_dict():
        return None
    for field in ("label_count", "bucket_count", "entry_count", "domain_count"):
        if not isinstance(header.get(field), int) or header[field] < 0:
            return None
    if not isinstance(header.get("body_sha256"), str):
        return None
    return header


def cached_reference_index(
    finder: ShamFinder,
    reference: Sequence[str | DomainName],
    store: ReferenceIndexStore | None,
    *,
    force: bool = False,
    mmap_load: bool = False,
) -> tuple[ReferenceIndex, bool]:
    """Prepare through the store: ``(index, was_cache_hit)``.

    ``force=True`` skips the read (but still writes), and ``store=None``
    degrades to a plain in-memory build — the same contract as the SimChar
    cache's :func:`~repro.homoglyph.cache.cached_build`.  A hit served by
    the version-1 fallback is transparently rewritten in the current
    format.  ``mmap_load=True`` prefers the zero-copy map (with a full
    checksum verification, since this is the first open) and falls back to
    the dict build when only a v1 artifact exists.
    """
    if store is None:
        return build_reference_index(finder, reference), False
    key = key_for(finder, reference)
    if not force:
        if mmap_load:
            mapped = store.load_mmap(key, finder, verify=True)
            if mapped is not None:
                return mapped, True
        cached = store.load(key, finder)
        if cached is not None:
            if cached.key.format_version != INDEX_FORMAT_VERSION:
                upgraded = ReferenceIndex(prepared=cached.prepared, key=key, from_cache=True)
                try:
                    store.store(upgraded)
                except OSError as exc:
                    warnings.warn(
                        f"could not upgrade reference index in {store.index_dir}: {exc}",
                        stacklevel=2,
                    )
                cached = upgraded
            if mmap_load:
                mapped = store.load_mmap(key, finder, verify=True)
                if mapped is not None:
                    return mapped, True
            return cached, True
    index = build_reference_index(finder, reference)
    try:
        store.store(index)
    except OSError as exc:
        # The store is an optimisation — never lose a completed build to an
        # unwritable/full index directory.
        warnings.warn(f"could not persist reference index to {store.index_dir}: {exc}",
                      stacklevel=2)
        return index, False
    if mmap_load:
        mapped = store.load_mmap(key, finder, verify=True)
        if mapped is not None:
            return mapped, False
    return index, False
