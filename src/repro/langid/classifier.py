"""Language identification for IDN labels (langid.py substitute).

The paper runs langid.py over the Unicode form of every registered IDN to
build the language histogram of Table 7.  The identifier here scores a
string against the profiles in :mod:`repro.langid.profiles`:

* script evidence — the fraction of the label's characters belonging to
  each profile's scripts (decisive for Han/Hangul/Kana/Cyrillic/Arabic
  labels);
* marker characters — diacritics and letters unique to a language within a
  shared script (``ß`` → German, ``ğ`` → Turkish, ``ñ`` → Spanish …);
* common substrings — weak n-gram-style evidence for Latin-script labels
  without diacritics;
* a Japanese refinement — Han-only labels are Chinese, Han+Kana labels are
  Japanese, mirroring how langid separates the two in practice.

The output is a ``(language code, confidence)`` pair like langid.py's
``classify``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..unicode.scripts import script_of
from .profiles import PROFILES, LanguageProfile

__all__ = ["LanguageIdentifier", "LanguageGuess", "identify", "language_histogram"]


@dataclass(frozen=True)
class LanguageGuess:
    """A ranked language guess."""

    code: str
    name: str
    confidence: float


class LanguageIdentifier:
    """Scores text against the embedded language profiles."""

    def __init__(self, profiles: Sequence[LanguageProfile] = PROFILES) -> None:
        self.profiles = tuple(profiles)
        self._by_code = {p.code: p for p in self.profiles}

    # -- public API ------------------------------------------------------------

    def classify(self, text: str) -> LanguageGuess:
        """Best guess for *text* (mirrors ``langid.classify``)."""
        ranked = self.rank(text)
        return ranked[0]

    def rank(self, text: str, *, limit: int = 5) -> list[LanguageGuess]:
        """Ranked guesses, best first."""
        text = text.strip().lower()
        if not text:
            return [LanguageGuess("en", "English", 0.0)]
        script_histogram = self._script_histogram(text)
        scores: dict[str, float] = {}
        for profile in self.profiles:
            scores[profile.code] = self._score(text, script_histogram, profile)
        self._apply_cjk_refinement(scores, script_histogram)
        total = sum(value for value in scores.values() if value > 0) or 1.0
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])[:limit]
        return [
            LanguageGuess(code, self._by_code[code].name, max(score, 0.0) / total)
            for code, score in ranked
        ]

    def supported_languages(self) -> list[str]:
        """Codes of every supported language."""
        return sorted(self._by_code)

    # -- scoring internals ---------------------------------------------------------

    @staticmethod
    def _script_histogram(text: str) -> Counter:
        histogram: Counter = Counter()
        for char in text:
            script = script_of(char)
            if script in ("Common", "Inherited", "Unknown"):
                continue
            histogram[script] += 1
        return histogram

    def _score(self, text: str, scripts: Counter, profile: LanguageProfile) -> float:
        total_scripted = sum(scripts.values())
        if total_scripted == 0:
            # Pure ASCII/digits: weak evidence, favour English via base weight.
            script_evidence = 0.2 if "Latin" in profile.scripts else 0.0
        else:
            in_profile = sum(count for script, count in scripts.items() if script in profile.scripts)
            script_evidence = in_profile / total_scripted
        if script_evidence == 0.0:
            return 0.0
        marker_evidence = sum(1 for ch in text if ch in profile.marker_chars)
        substring_evidence = sum(1 for token in profile.common_substrings if token in text)
        return profile.base_weight * (
            script_evidence + 0.8 * marker_evidence + 0.15 * substring_evidence
        )

    @staticmethod
    def _apply_cjk_refinement(scores: dict[str, float], scripts: Counter) -> None:
        han = scripts.get("Han", 0)
        kana = scripts.get("Hiragana", 0) + scripts.get("Katakana", 0)
        hangul = scripts.get("Hangul", 0)
        if kana > 0:
            scores["ja"] = scores.get("ja", 0.0) + 1.0 + 0.2 * han
            scores["zh"] = scores.get("zh", 0.0) * 0.3
        elif han > 0 and hangul == 0:
            scores["zh"] = scores.get("zh", 0.0) + 0.5
        if hangul > 0:
            scores["ko"] = scores.get("ko", 0.0) + 1.0


_DEFAULT_IDENTIFIER = LanguageIdentifier()


def identify(text: str) -> LanguageGuess:
    """Module-level convenience wrapper around the default identifier."""
    return _DEFAULT_IDENTIFIER.classify(text)


def language_histogram(texts: Iterable[str]) -> Counter:
    """Histogram of best-guess language names over many labels (Table 7)."""
    histogram: Counter = Counter()
    for text in texts:
        histogram[_DEFAULT_IDENTIFIER.classify(text).name] += 1
    return histogram
