"""Language identification substrate (langid.py substitute)."""

from .classifier import LanguageGuess, LanguageIdentifier, identify, language_histogram
from .profiles import PROFILES, LanguageProfile

__all__ = [
    "LanguageGuess",
    "LanguageIdentifier",
    "identify",
    "language_histogram",
    "PROFILES",
    "LanguageProfile",
]
