"""Language profiles for the script/character based language identifier.

Each profile names a language (ISO 639-1 code plus English name), the
scripts it is written in, and the characteristic characters that separate
it from other languages sharing the same script (e.g. ``ß`` for German,
dotless ``ı``/``ğ`` for Turkish, ``ñ`` for Spanish).  The identifier in
:mod:`repro.langid.classifier` scores a string against every profile.

The inventory covers the languages that dominate real IDN registrations
(paper Table 7: Chinese, Korean, Japanese, German, Turkish at the top)
plus the other languages langid.py distinguishes that plausibly appear in
``.com`` IDN labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LanguageProfile", "PROFILES"]


@dataclass(frozen=True)
class LanguageProfile:
    """Evidence used to recognise one language."""

    code: str
    name: str
    scripts: frozenset[str]
    marker_chars: frozenset[str] = field(default_factory=frozenset)
    common_substrings: tuple[str, ...] = ()
    base_weight: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "scripts", frozenset(self.scripts))
        object.__setattr__(self, "marker_chars", frozenset(self.marker_chars))


def _profile(code: str, name: str, scripts: set[str], markers: str = "",
             substrings: tuple[str, ...] = (), weight: float = 1.0) -> LanguageProfile:
    return LanguageProfile(code, name, frozenset(scripts), frozenset(markers), substrings, weight)


PROFILES: tuple[LanguageProfile, ...] = (
    # East Asian languages — dominant in .com IDNs.
    _profile("zh", "Chinese", {"Han", "Bopomofo"}, weight=1.15),
    _profile("ja", "Japanese", {"Hiragana", "Katakana"}, weight=1.1),
    _profile("ko", "Korean", {"Hangul"}, weight=1.1),
    # European Latin-script languages.
    _profile("de", "German", {"Latin"}, "äöüß", ("sch", "che", "ung", "str", "ein")),
    _profile("tr", "Turkish", {"Latin"}, "ğışçöüİ", ("lar", "ler", "lik", "oğlu")),
    _profile("fr", "French", {"Latin"}, "àâçèêëîïôûœ", ("eau", "oux", "tion", "aire")),
    _profile("es", "Spanish", {"Latin"}, "ñáíóú¿", ("cion", "illa", "ería")),
    _profile("pt", "Portuguese", {"Latin"}, "ãõçáâê", ("ção", "inho", "eira")),
    _profile("it", "Italian", {"Latin"}, "àèìòù", ("zione", "ella", "ino")),
    _profile("sv", "Swedish", {"Latin"}, "åäö", ("ning", "ska", "bolag")),
    _profile("da", "Danish", {"Latin"}, "æøå", ("eri", "gaard")),
    _profile("no", "Norwegian", {"Latin"}, "æøå", ("ing", "sen")),
    _profile("fi", "Finnish", {"Latin"}, "äö", ("inen", "lla", "kka")),
    _profile("pl", "Polish", {"Latin"}, "ąćęłńóśźż", ("ski", "owa", "czy")),
    _profile("cs", "Czech", {"Latin"}, "čďěňřšťůž", ("ova", "sky")),
    _profile("hu", "Hungarian", {"Latin"}, "őűö", ("szt", "egy")),
    _profile("nl", "Dutch", {"Latin"}, "ij", ("ijk", "aan", "ver")),
    _profile("vi", "Vietnamese", {"Latin"}, "ăâđêôơưạảấầẩẫậắằẳẵặẹẻẽếềểễệỉịọỏốồổỗộớờởỡợụủứừửữựỳỵỷỹ"),
    _profile("ro", "Romanian", {"Latin"}, "ăâîșț", ("ul", "escu")),
    _profile("en", "English", {"Latin"}, "", ("the", "ing", "shop", "online"), weight=0.6),
    # Cyrillic-script languages.
    _profile("ru", "Russian", {"Cyrillic"}, "ыъэё", ("ов", "ский", "ние"), weight=1.05),
    _profile("uk", "Ukrainian", {"Cyrillic"}, "їєґі", ("ськ", "ння")),
    _profile("bg", "Bulgarian", {"Cyrillic"}, "ъщ", ("ите", "ият")),
    _profile("sr", "Serbian", {"Cyrillic"}, "ђћџљњ", ()),
    # Other scripts.
    _profile("ar", "Arabic", {"Arabic"}, "", (), 1.05),
    _profile("fa", "Persian", {"Arabic"}, "پچژگ", ()),
    _profile("he", "Hebrew", {"Hebrew"}),
    _profile("el", "Greek", {"Greek"}),
    _profile("hy", "Armenian", {"Armenian"}),
    _profile("ka", "Georgian", {"Georgian"}),
    _profile("th", "Thai", {"Thai"}),
    _profile("lo", "Lao", {"Lao"}),
    _profile("hi", "Hindi", {"Devanagari"}),
    _profile("bn", "Bengali", {"Bengali"}),
    _profile("ta", "Tamil", {"Tamil"}),
    _profile("te", "Telugu", {"Telugu"}),
    _profile("kn", "Kannada", {"Kannada"}),
    _profile("ml", "Malayalam", {"Malayalam"}),
    _profile("or", "Odia", {"Oriya"}),
    _profile("pa", "Punjabi", {"Gurmukhi"}),
    _profile("gu", "Gujarati", {"Gujarati"}),
    _profile("si", "Sinhala", {"Sinhala"}),
    _profile("my", "Burmese", {"Myanmar"}),
    _profile("km", "Khmer", {"Khmer"}),
    _profile("am", "Amharic", {"Ethiopic"}),
    _profile("mn", "Mongolian", {"Mongolian", "Cyrillic"}, "өү"),
)
