"""Process-pool plumbing shared by every parallel path in the repo."""

from .pool import fork_pool_context, pool_context, resolve_start_method, worker_pids

__all__ = ["fork_pool_context", "pool_context", "resolve_start_method", "worker_pids"]
