"""Start-method-aware worker-pool plumbing (fork fast path, spawn correct path).

Every parallel engine in the repo — the SimChar build shards
(:mod:`repro.metrics.pixel`), the streaming scan (:mod:`repro.detection.stream`),
and the serving worker pool (:mod:`repro.serving.server`) — creates its
process pool through this module instead of deciding per call site.

History: the original discipline was *fork-only* — where the platform start
method was ``spawn`` (macOS, Windows), :func:`fork_pool_context` returned
``None`` and callers silently ran serial.  That avoided two spawn hazards:

* an unguarded host script (no ``if __name__ == "__main__"``) re-imports
  ``__main__`` in every spawned child;
* pool initializers that lean on fork inheritance (closures over unpicklable
  state such as an ``mmap``-backed index) cannot be shipped to a spawned
  child at all.

Both hazards are now handled instead of dodged.  CPython's spawn bootstrap
detects the unguarded-``__main__`` case and raises a clear ``RuntimeError``
rather than fork-bombing, and every initializer in the repo now takes
*picklable specs* (the artifact path for an mmap re-attach, plain dicts and
numpy arrays otherwise) rather than inherited closures.  So the policy is:

* ``fork``/``forkserver`` stay the fast path — children inherit the parent's
  prepared state by page sharing, and initializer arguments are not pickled;
* ``spawn`` is *correct* instead of serial — workers rebuild their state
  from the pickled spec, so macOS/Windows (and an explicit
  ``set_start_method("spawn")``) get real parallelism.

:func:`fork_pool_context` survives as a deprecated shim with its historical
"``None`` on spawn" contract for external callers; nothing in the repo
branches on it any more.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

__all__ = [
    "resolve_start_method",
    "pool_context",
    "fork_pool_context",
    "worker_pids",
]


def resolve_start_method(start_method: str | None = None) -> str:
    """The start method a pool created now would use.

    An explicit *start_method* wins (validated against the platform's
    supported set); otherwise the host application's globally-set method is
    honoured, falling back to the platform default — all without pinning
    the global context, so a library call never forecloses the host's
    choice (``tests/test_simchar_cache.py`` asserts this stays true).
    """
    if start_method is not None:
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not supported here; "
                f"available: {multiprocessing.get_all_start_methods()}"
            )
        return start_method
    method = multiprocessing.get_start_method(allow_none=True)
    if method is None:
        method = multiprocessing.get_all_start_methods()[0]
    return method


def pool_context(start_method: str | None = None):
    """A multiprocessing context for *start_method* (resolved as above).

    Always returns a context — spawn platforms get a spawn context rather
    than ``None``.  Callers that must ship worker state decide *what* to
    ship by inspecting ``context.get_start_method()``: under fork the
    initializer arguments are inherited, under spawn they are pickled, so
    unpicklable state (an mmap-backed index) must be replaced by a
    re-attach spec.
    """
    return multiprocessing.get_context(resolve_start_method(start_method))


def fork_pool_context():
    """Deprecated: a fork/forkserver context, or ``None`` under spawn.

    The historical fork-only gate.  Library code no longer skips
    parallelism on spawn platforms — use :func:`pool_context`, which
    returns a usable context for every start method.
    """
    warnings.warn(
        "fork_pool_context() is deprecated; use repro.parallel.pool_context(), "
        "which supports spawn platforms instead of returning None",
        DeprecationWarning,
        stacklevel=2,
    )
    method = resolve_start_method()
    if method in ("fork", "forkserver"):
        return multiprocessing.get_context(method)
    return None


def _pid_probe(hold_seconds: float) -> int:
    """Report this worker's PID, holding the slot so probes spread out."""
    time.sleep(hold_seconds)
    return os.getpid()


def worker_pids(pool, samples: int, *, hold_seconds: float = 0.2) -> list[int]:
    """PIDs that served *samples* probe tasks on *pool* (one task per slot).

    Each probe sleeps *hold_seconds* so a fast worker cannot drain the whole
    probe queue before its siblings finish bootstrapping — under spawn a
    child takes ~100ms to come up.  ``len(set(...))`` of the result is the
    demonstrable-parallelism check the spawn benches and tests assert on.
    """
    return list(pool.map(_pid_probe, [hold_seconds] * samples, chunksize=1))
