"""Peak signal-to-noise ratio for binary glyph images.

The paper relates its Δ metric to PSNR as::

    MSE  = Δ / N²
    PSNR = 10 log10(1 / MSE) = 20 log10(N) - 10 log10(Δ)

PSNR is infinite for identical images (Δ = 0).
"""

from __future__ import annotations

import math

import numpy as np

from ..fonts.glyph import Glyph
from .pixel import delta as _delta

__all__ = ["psnr", "psnr_from_delta"]


def psnr_from_delta(delta_value: int, size: int) -> float:
    """PSNR in decibels from a Δ value and image edge length.

    Returns ``math.inf`` when Δ is 0 (identical images).
    """
    if delta_value < 0:
        raise ValueError("delta must be non-negative")
    if size <= 0:
        raise ValueError("size must be positive")
    if delta_value == 0:
        return math.inf
    return 20.0 * math.log10(size) - 10.0 * math.log10(delta_value)


def psnr(first: Glyph | np.ndarray, second: Glyph | np.ndarray) -> float:
    """PSNR between two binary images."""
    a = first.bitmap if isinstance(first, Glyph) else np.asarray(first)
    size = int(a.shape[0])
    return psnr_from_delta(_delta(first, second), size)
