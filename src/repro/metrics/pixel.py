"""Pixel-difference metric Δ (the paper's Section 3.3 metric).

For two binary images ``I1`` and ``I2`` of size ``N x N``::

    Δ = Σ_i Σ_j | I1(i, j) - I2(i, j) |

``Δ = 0`` means the glyphs are pixel-identical.  The mean square error used
to relate Δ to PSNR is ``MSE = Δ / N²`` because the pixels are binary.

Besides the scalar metric, this module provides vectorised helpers used by
the SimChar builder to evaluate millions of candidate pairs quickly:
glyph stacking, blockwise pairwise distance computation, the ink-count
pruning bound (two glyphs whose ink counts differ by more than θ cannot
have Δ ≤ θ), and a bit-packed scan engine.

The packed engine stores each bitmap as a row of ``uint64`` words (64 pixels
per word) so the inner Δ loop is ``popcount(a XOR b)`` — one machine word
covers 64 pixels instead of one ``int16`` per pixel, which cuts per-pair
cost by roughly 8x.  The scan is sharded over contiguous ranges of the
ink-sorted glyph order so it can be fanned out across worker processes
(the paper ran Step II on 15 workers for 10.9 hours; see
:func:`packed_candidate_pairs`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..fonts.glyph import Glyph

# fork_pool_context historically lived here; it is now a deprecated shim in
# repro.parallel.pool (pools run parallel under spawn too) and is
# re-exported for compatibility.
from ..parallel.pool import fork_pool_context, pool_context  # noqa: F401

__all__ = [
    "delta",
    "mse",
    "delta_matrix",
    "pairwise_deltas",
    "stack_glyphs",
    "candidate_pairs_within",
    "pack_bitmap_rows",
    "pack_glyphs",
    "popcount_rows",
    "packed_candidate_pairs",
    "fork_pool_context",
]


def delta(first: Glyph | np.ndarray, second: Glyph | np.ndarray) -> int:
    """Number of differing pixels between two binary images."""
    a = first.bitmap if isinstance(first, Glyph) else np.asarray(first, dtype=np.uint8)
    b = second.bitmap if isinstance(second, Glyph) else np.asarray(second, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def mse(first: Glyph | np.ndarray, second: Glyph | np.ndarray) -> float:
    """Mean square error for binary images: Δ divided by the pixel count."""
    a = first.bitmap if isinstance(first, Glyph) else np.asarray(first, dtype=np.uint8)
    return delta(first, second) / a.size


def stack_glyphs(glyphs: Sequence[Glyph]) -> np.ndarray:
    """Stack glyph bitmaps into an ``(n, size*size)`` uint8 matrix."""
    if not glyphs:
        return np.zeros((0, 0), dtype=np.uint8)
    size = glyphs[0].size
    flat = np.empty((len(glyphs), size * size), dtype=np.uint8)
    for index, glyph in enumerate(glyphs):
        if glyph.size != size:
            raise ValueError("all glyphs must share the same size")
        flat[index] = glyph.bitmap.reshape(-1)
    return flat


def delta_matrix(glyphs: Sequence[Glyph], *, block: int = 256) -> np.ndarray:
    """Full pairwise Δ matrix for a glyph list.

    Computed blockwise so memory stays bounded at ``block x n`` int32.
    Suitable for repertoires up to a few thousand glyphs; the SimChar
    builder uses :func:`candidate_pairs_within` with pruning for larger
    inputs.
    """
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    result = np.zeros((n, n), dtype=np.int32)
    for start in range(0, n, block):
        stop = min(start + block, n)
        chunk = flat[start:stop]
        # |a-b| summed over pixels == xor count for binary images.
        diffs = np.abs(chunk[:, None, :] - flat[None, :, :]).sum(axis=2)
        result[start:stop] = diffs.astype(np.int32)
    return result


def pairwise_deltas(glyphs: Sequence[Glyph]) -> Iterator[tuple[int, int, int]]:
    """Yield ``(i, j, Δ)`` for every unordered pair of glyphs (i < j)."""
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    for i in range(n):
        if i + 1 >= n:
            break
        diffs = np.abs(flat[i + 1:] - flat[i]).sum(axis=1)
        for offset, value in enumerate(diffs):
            yield i, i + 1 + offset, int(value)


def candidate_pairs_within(
    glyphs: Sequence[Glyph],
    threshold: int,
    *,
    block: int = 512,
) -> Iterator[tuple[int, int, int]]:
    """Yield ``(i, j, Δ)`` for pairs with ``Δ <= threshold``.

    Uses the ink-count bound for pruning: since
    ``Δ(a, b) >= |ink(a) - ink(b)|``, glyphs are bucketed by ink count and
    only pairs whose counts are within ``threshold`` of each other are
    compared exactly.  This turns the quadratic scan of the full repertoire
    into a near-linear pass for realistic glyph populations, which is how
    the default SimChar build stays laptop-sized (DESIGN.md §2).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    if n == 0:
        return
    ink = flat.sum(axis=1)
    order = np.argsort(ink, kind="stable")
    sorted_ink = ink[order]

    for position in range(n):
        i = int(order[position])
        # Find the window of candidates whose ink count is within threshold.
        upper_value = sorted_ink[position] + threshold
        end = int(np.searchsorted(sorted_ink, upper_value, side="right"))
        candidate_positions = order[position + 1:end]
        if candidate_positions.size == 0:
            continue
        for start in range(0, candidate_positions.size, block):
            chunk = candidate_positions[start:start + block]
            diffs = np.abs(flat[chunk] - flat[i]).sum(axis=1)
            hits = np.nonzero(diffs <= threshold)[0]
            for hit in hits:
                j = int(chunk[hit])
                a, b = (i, j) if i < j else (j, i)
                yield a, b, int(diffs[hit])


# -- bit-packed scan engine ---------------------------------------------------

# numpy >= 2.0 exposes a hardware popcount; older versions fall back to a
# byte-wise lookup table.
_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)


def pack_bitmap_rows(flat: np.ndarray) -> np.ndarray:
    """Pack ``(n, pixels)`` binary rows into ``(n, words)`` uint64 rows.

    Rows are padded with zero bits up to a multiple of 64, so XOR popcounts
    over packed rows equal the pixel-difference Δ exactly.
    """
    flat = np.asarray(flat, dtype=np.uint8)
    if flat.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {flat.shape}")
    if flat.shape[0] == 0 or flat.shape[1] == 0:
        return np.zeros((flat.shape[0], 0), dtype=np.uint64)
    packed = np.packbits(flat, axis=1)
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed).view(np.uint64)


def pack_glyphs(glyphs: Sequence[Glyph]) -> np.ndarray:
    """Pack glyph bitmaps into an ``(n, words)`` uint64 matrix."""
    return pack_bitmap_rows(stack_glyphs(glyphs))


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Total set-bit count of each row of a uint64 matrix."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    as_bytes = words.view(np.uint8)
    return _POPCOUNT_LUT[as_bytes].sum(axis=1, dtype=np.int64)


def scan_packed_shard(
    packed_sorted: np.ndarray,
    ink_sorted: np.ndarray,
    order: np.ndarray,
    threshold: int,
    start: int,
    stop: int,
) -> list[tuple[int, int, int]]:
    """Scan positions ``[start, stop)`` of the ink-sorted glyph order.

    Arguments are the bit-packed bitmaps and ink counts *already permuted*
    into ascending-ink order, plus ``order`` mapping sorted position back to
    the original glyph index.  Each position is compared (popcount of XOR)
    only against later positions whose ink count lies within ``threshold``,
    i.e. the same pruning window as :func:`candidate_pairs_within`.  The
    function is self-contained so worker processes can run shards
    independently; the union of all shards is the exact pair set.
    """
    pairs: list[tuple[int, int, int]] = []
    n = len(ink_sorted)
    for position in range(start, min(stop, n)):
        end = int(np.searchsorted(ink_sorted, ink_sorted[position] + threshold, side="right"))
        if end <= position + 1:
            continue
        diffs = popcount_rows(packed_sorted[position + 1:end] ^ packed_sorted[position])
        hits = np.nonzero(diffs <= threshold)[0]
        i = int(order[position])
        for hit in hits:
            j = int(order[position + 1 + int(hit)])
            a, b = (i, j) if i < j else (j, i)
            pairs.append((a, b, int(diffs[hit])))
    return pairs


# Worker-side state for the multiprocessing pool: the packed arrays are
# shipped once per worker through the initializer instead of once per shard.
_WORKER_STATE: dict = {}


def _shard_worker_init(packed_sorted, ink_sorted, order, threshold) -> None:
    _WORKER_STATE["args"] = (packed_sorted, ink_sorted, order, threshold)


def _shard_worker(bounds: tuple[int, int]) -> list[tuple[int, int, int]]:
    packed_sorted, ink_sorted, order, threshold = _WORKER_STATE["args"]
    return scan_packed_shard(packed_sorted, ink_sorted, order, threshold, *bounds)


def packed_candidate_pairs(
    glyphs: Sequence[Glyph],
    threshold: int,
    *,
    jobs: int = 1,
    min_parallel_size: int = 256,
    start_method: str | None = None,
) -> list[tuple[int, int, int]]:
    """All ``(i, j, Δ)`` pairs with ``Δ <= threshold``, bit-packed scan.

    Produces exactly the same pair set as :func:`candidate_pairs_within`
    but with uint64/popcount arithmetic in the inner loop, and optionally
    sharded across ``jobs`` worker processes.  The result is sorted by
    ``(i, j)`` so serial and parallel runs are byte-identical.

    The shard state shipped to workers is plain numpy arrays (picklable),
    so the pool runs parallel under every start method — fork inherits the
    arrays, spawn pickles them (a few hundred KB for the default
    repertoire).  *start_method* forces one; ``None`` honours the
    host/platform choice.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    flat = stack_glyphs(glyphs)
    n = flat.shape[0]
    if n < 2:
        return []
    ink = flat.sum(axis=1, dtype=np.int64)
    order = np.argsort(ink, kind="stable")
    ink_sorted = ink[order]
    packed_sorted = pack_bitmap_rows(flat[order])

    if jobs == 1 or n < min_parallel_size:
        pairs = scan_packed_shard(packed_sorted, ink_sorted, order, threshold, 0, n)
    else:
        context = pool_context(start_method)
        # Contiguous shards, several per worker so uneven pruning windows
        # balance out.
        shard_count = min(n, jobs * 8)
        bounds = []
        step = -(-n // shard_count)
        for start in range(0, n, step):
            bounds.append((start, min(start + step, n)))
        with context.Pool(
            processes=jobs,
            initializer=_shard_worker_init,
            initargs=(packed_sorted, ink_sorted, order, threshold),
        ) as pool:
            pairs = []
            for shard_pairs in pool.imap_unordered(_shard_worker, bounds):
                pairs.extend(shard_pairs)
    pairs.sort()
    return pairs


def nearest_neighbours(
    glyphs: Sequence[Glyph],
    *,
    limit: int = 5,
) -> dict[int, list[tuple[int, int]]]:
    """For each glyph index return its *limit* closest other glyphs by Δ.

    Helper used by reports and the Figure 6 bench (showing the closest
    candidates of a letter at increasing Δ).
    """
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    result: dict[int, list[tuple[int, int]]] = {}
    for i in range(n):
        diffs = np.abs(flat - flat[i]).sum(axis=1)
        diffs[i] = np.iinfo(np.int32).max
        order = np.argsort(diffs, kind="stable")[:limit]
        result[i] = [(int(j), int(diffs[j])) for j in order]
    return result
