"""Pixel-difference metric Δ (the paper's Section 3.3 metric).

For two binary images ``I1`` and ``I2`` of size ``N x N``::

    Δ = Σ_i Σ_j | I1(i, j) - I2(i, j) |

``Δ = 0`` means the glyphs are pixel-identical.  The mean square error used
to relate Δ to PSNR is ``MSE = Δ / N²`` because the pixels are binary.

Besides the scalar metric, this module provides vectorised helpers used by
the SimChar builder to evaluate millions of candidate pairs quickly:
glyph stacking, blockwise pairwise distance computation, and the ink-count
pruning bound (two glyphs whose ink counts differ by more than θ cannot
have Δ ≤ θ).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..fonts.glyph import Glyph

__all__ = [
    "delta",
    "mse",
    "delta_matrix",
    "pairwise_deltas",
    "stack_glyphs",
    "candidate_pairs_within",
]


def delta(first: Glyph | np.ndarray, second: Glyph | np.ndarray) -> int:
    """Number of differing pixels between two binary images."""
    a = first.bitmap if isinstance(first, Glyph) else np.asarray(first, dtype=np.uint8)
    b = second.bitmap if isinstance(second, Glyph) else np.asarray(second, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def mse(first: Glyph | np.ndarray, second: Glyph | np.ndarray) -> float:
    """Mean square error for binary images: Δ divided by the pixel count."""
    a = first.bitmap if isinstance(first, Glyph) else np.asarray(first, dtype=np.uint8)
    return delta(first, second) / a.size


def stack_glyphs(glyphs: Sequence[Glyph]) -> np.ndarray:
    """Stack glyph bitmaps into an ``(n, size*size)`` uint8 matrix."""
    if not glyphs:
        return np.zeros((0, 0), dtype=np.uint8)
    size = glyphs[0].size
    flat = np.empty((len(glyphs), size * size), dtype=np.uint8)
    for index, glyph in enumerate(glyphs):
        if glyph.size != size:
            raise ValueError("all glyphs must share the same size")
        flat[index] = glyph.bitmap.reshape(-1)
    return flat


def delta_matrix(glyphs: Sequence[Glyph], *, block: int = 256) -> np.ndarray:
    """Full pairwise Δ matrix for a glyph list.

    Computed blockwise so memory stays bounded at ``block x n`` int32.
    Suitable for repertoires up to a few thousand glyphs; the SimChar
    builder uses :func:`candidate_pairs_within` with pruning for larger
    inputs.
    """
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    result = np.zeros((n, n), dtype=np.int32)
    for start in range(0, n, block):
        stop = min(start + block, n)
        chunk = flat[start:stop]
        # |a-b| summed over pixels == xor count for binary images.
        diffs = np.abs(chunk[:, None, :] - flat[None, :, :]).sum(axis=2)
        result[start:stop] = diffs.astype(np.int32)
    return result


def pairwise_deltas(glyphs: Sequence[Glyph]) -> Iterator[tuple[int, int, int]]:
    """Yield ``(i, j, Δ)`` for every unordered pair of glyphs (i < j)."""
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    for i in range(n):
        if i + 1 >= n:
            break
        diffs = np.abs(flat[i + 1:] - flat[i]).sum(axis=1)
        for offset, value in enumerate(diffs):
            yield i, i + 1 + offset, int(value)


def candidate_pairs_within(
    glyphs: Sequence[Glyph],
    threshold: int,
    *,
    block: int = 512,
) -> Iterator[tuple[int, int, int]]:
    """Yield ``(i, j, Δ)`` for pairs with ``Δ <= threshold``.

    Uses the ink-count bound for pruning: since
    ``Δ(a, b) >= |ink(a) - ink(b)|``, glyphs are bucketed by ink count and
    only pairs whose counts are within ``threshold`` of each other are
    compared exactly.  This turns the quadratic scan of the full repertoire
    into a near-linear pass for realistic glyph populations, which is how
    the default SimChar build stays laptop-sized (DESIGN.md §2).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    if n == 0:
        return
    ink = flat.sum(axis=1)
    order = np.argsort(ink, kind="stable")
    sorted_ink = ink[order]

    for position in range(n):
        i = int(order[position])
        # Find the window of candidates whose ink count is within threshold.
        upper_value = sorted_ink[position] + threshold
        end = int(np.searchsorted(sorted_ink, upper_value, side="right"))
        candidate_positions = order[position + 1:end]
        if candidate_positions.size == 0:
            continue
        for start in range(0, candidate_positions.size, block):
            chunk = candidate_positions[start:start + block]
            diffs = np.abs(flat[chunk] - flat[i]).sum(axis=1)
            hits = np.nonzero(diffs <= threshold)[0]
            for hit in hits:
                j = int(chunk[hit])
                a, b = (i, j) if i < j else (j, i)
                yield a, b, int(diffs[hit])


def nearest_neighbours(
    glyphs: Sequence[Glyph],
    *,
    limit: int = 5,
) -> dict[int, list[tuple[int, int]]]:
    """For each glyph index return its *limit* closest other glyphs by Δ.

    Helper used by reports and the Figure 6 bench (showing the closest
    candidates of a letter at increasing Δ).
    """
    flat = stack_glyphs(glyphs).astype(np.int16)
    n = flat.shape[0]
    result: dict[int, list[tuple[int, int]]] = {}
    for i in range(n):
        diffs = np.abs(flat - flat[i]).sum(axis=1)
        diffs[i] = np.iinfo(np.int32).max
        order = np.argsort(diffs, kind="stable")[:limit]
        result[i] = [(int(j), int(diffs[j])) for j in order]
    return result
