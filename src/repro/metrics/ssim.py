"""Structural similarity index (SSIM).

The paper mentions SSIM as the standard perceptual similarity metric before
settling on the simpler pixel-difference Δ.  A windowed SSIM implementation
is provided so that the ablation benches can compare the two metrics on the
same glyph pairs.
"""

from __future__ import annotations

import numpy as np

from ..fonts.glyph import Glyph

__all__ = ["ssim"]

_K1 = 0.01
_K2 = 0.03


def _as_float(image: Glyph | np.ndarray) -> np.ndarray:
    array = image.bitmap if isinstance(image, Glyph) else np.asarray(image)
    return array.astype(np.float64)


def _windows(image: np.ndarray, window: int) -> np.ndarray:
    """Return all non-overlapping ``window x window`` tiles of an image."""
    size = image.shape[0]
    tiles = []
    for row in range(0, size - window + 1, window):
        for col in range(0, size - window + 1, window):
            tiles.append(image[row:row + window, col:col + window])
    return np.stack(tiles) if tiles else image[None, :, :]


def ssim(
    first: Glyph | np.ndarray,
    second: Glyph | np.ndarray,
    *,
    window: int = 8,
    data_range: float = 1.0,
) -> float:
    """Mean SSIM over non-overlapping windows.

    Both images must be the same square size.  Binary glyph images use a
    data range of 1.0.  The result lies in ``[-1, 1]`` with 1 meaning
    identical images.
    """
    a = _as_float(first)
    b = _as_float(second)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.shape[0] < window:
        window = a.shape[0]

    c1 = (_K1 * data_range) ** 2
    c2 = (_K2 * data_range) ** 2

    tiles_a = _windows(a, window)
    tiles_b = _windows(b, window)

    scores = []
    for tile_a, tile_b in zip(tiles_a, tiles_b):
        mu_a = tile_a.mean()
        mu_b = tile_b.mean()
        var_a = tile_a.var()
        var_b = tile_b.var()
        cov = ((tile_a - mu_a) * (tile_b - mu_b)).mean()
        numerator = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
        denominator = (mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)
        scores.append(numerator / denominator)
    return float(np.mean(scores))
