"""Image similarity metrics: Δ pixel difference, MSE, PSNR, SSIM."""

from .pixel import delta, delta_matrix, mse, pairwise_deltas
from .psnr import psnr, psnr_from_delta
from .ssim import ssim

__all__ = [
    "delta",
    "delta_matrix",
    "mse",
    "pairwise_deltas",
    "psnr",
    "psnr_from_delta",
    "ssim",
]
