"""ShamFinder reproduction: automated detection of IDN homographs.

The package reproduces the full system of the IMC 2019 paper "ShamFinder:
An Automated Framework for Detecting IDN Homographs": the SimChar homoglyph
database construction, the UC (Unicode confusables) database, the IDN
homograph detection algorithm, and the measurement/evaluation pipeline,
together with the substrates they need (Unicode properties, glyph
rendering, Punycode/IDNA, DNS, web classification, blacklists, language
identification, and a simulated human-perception study).

Quickstart::

    from repro import ShamFinder

    finder = ShamFinder.with_default_databases()
    report = finder.detect(["xn--ggle-55da.com"], reference=["google.com"])
    for detection in report:
        print(detection.describe())
"""

from .detection.report import DetectionReport, HomographDetection
from .detection.shamfinder import ShamFinder
from .homoglyph.cache import SimCharCache, cached_build
from .homoglyph.confusables import load_confusables
from .homoglyph.database import HomoglyphDatabase, HomoglyphPair
from .homoglyph.simchar import SimCharBuilder
from .idn.domain import DomainName

__version__ = "1.1.0"

__all__ = [
    "DetectionReport",
    "HomographDetection",
    "ShamFinder",
    "load_confusables",
    "HomoglyphDatabase",
    "HomoglyphPair",
    "SimCharBuilder",
    "SimCharCache",
    "cached_build",
    "DomainName",
    "__version__",
]
