"""The committed baseline of grandfathered findings.

``lint-baseline.json`` holds findings that predate a rule (or are
accepted as-is) together with a one-line justification each, so a new
rule can land strict without first rewriting every historical call site.
A finding matching a baseline entry is reported but does not fail the
run; entries that stop matching anything are flagged as stale so the
baseline only ever shrinks.

Matching is on ``(rule, path, message)`` — never the line number — so
ordinary edits that move code around do not invalidate entries.

Format::

    {
      "version": 1,
      "entries": [
        {"rule": ..., "path": ..., "message": ..., "justification": ...},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.lint.engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for a malformed baseline file (refuse, never overwrite)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    def covers(self, key: tuple[str, str, str]) -> bool:
        return key in self.keys

    @property
    def keys(self) -> set[tuple[str, str, str]]:
        return {entry.key for entry in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
            )
        raw_entries = payload.get("entries")
        if not isinstance(raw_entries, list):
            raise BaselineError(f"baseline {path} lacks an 'entries' list")
        entries: list[BaselineEntry] = []
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise BaselineError(f"baseline {path} has a non-object entry: {raw!r}")
            try:
                entry = BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    justification=str(raw["justification"]),
                )
            except KeyError as exc:
                raise BaselineError(
                    f"baseline {path} entry missing field {exc}: {raw!r}"
                ) from exc
            if not entry.justification.strip():
                raise BaselineError(
                    f"baseline {path} entry for [{entry.rule}] {entry.path} "
                    "has an empty justification"
                )
            entries.append(entry)
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: list["Finding"], justification: str = "TODO: justify or fix"
    ) -> "Baseline":
        """A baseline grandfathering *findings* (``--write-baseline``)."""
        seen: set[tuple[str, str, str]] = set()
        entries: list[BaselineEntry] = []
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            if finding.key in seen:
                continue
            seen.add(finding.key)
            entries.append(BaselineEntry(
                rule=finding.rule, path=finding.path, message=finding.message,
                justification=justification,
            ))
        return cls(entries=entries)

    def merged_with(self, previous: "Baseline") -> "Baseline":
        """This baseline, but keeping *previous* justifications.

        ``--write-baseline`` re-runs never revert a hand-written
        justification to the TODO placeholder: for every ``(rule, path,
        message)`` key that already existed, the previous entry's
        justification wins; keys new in this baseline keep theirs.
        """
        justifications = {
            entry.key: entry.justification for entry in previous.entries
        }
        return Baseline(entries=[
            BaselineEntry(
                rule=entry.rule, path=entry.path, message=entry.message,
                justification=justifications.get(entry.key,
                                                 entry.justification),
            )
            for entry in self.entries
        ])

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.as_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
