"""The ``repro-lint`` command line (also ``python -m repro.lint``).

Exit codes: 0 clean (pragma-suppressed and baselined findings are
clean), 1 new findings, 2 usage error.  ``--json`` writes the
machine-readable report whose schema is pinned by a golden-fixture test;
CI uploads it as the ``lint-report.json`` artifact.

The incremental cache (``.lint-cache.json``) is on by default: per-file
analysis is keyed on content sha256 + engine version, so a warm run
re-analyses only changed files.  ``--no-cache`` forces a full run;
``--cache FILE`` relocates the cache (CI persists it across runs).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.lint.engine import all_rules, render_human, render_json, run_lint
from repro.lint.project import DEFAULT_CACHE_NAME

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-aware static analysis: machine-checks the fold-safety, "
            "fingerprint, atomic-write, spawn-safety, lock-discipline, "
            "broad-except, import-layering, exception-contract and "
            "dead-export invariants (docs/LINT.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding as new)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current new findings to the baseline file and exit 0 "
             "(merges with an existing baseline: hand-written justifications "
             "for unchanged findings are preserved, new entries start as TODO)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--exclude", metavar="PATH", action="append", default=[],
        help="skip files under PATH (repeatable; e.g. --exclude tests/data "
             "keeps intentionally-bad fixtures out of a tests/ lint)",
    )
    parser.add_argument(
        "--cache", metavar="FILE", default=DEFAULT_CACHE_NAME,
        help=f"incremental cache file (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache (re-analyse every file)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable report (exit code still set)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(all_rules().values(), key=lambda r: r.name):
            print(f"{rule.name}: {rule.description}")
        return 0

    selected: list[str] | None = None
    if args.select is not None:
        selected = [token.strip() for token in args.select.split(",")
                    if token.strip()]
        if not selected:
            print("repro-lint: --select given but names no rules",
                  file=sys.stderr)
            return USAGE_ERROR

    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return USAGE_ERROR

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    baseline = Baseline()
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return USAGE_ERROR

    cache_path = None if args.no_cache else Path(args.cache)
    exclude = [Path(raw) for raw in args.exclude]

    try:
        result = run_lint(paths, rules=selected, baseline=baseline,
                          cache_path=cache_path, exclude=exclude)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return USAGE_ERROR

    if args.write_baseline:
        new_baseline = Baseline.from_findings(result.new)
        if baseline_path.exists():
            try:
                previous = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"repro-lint: refusing to overwrite: {exc}",
                      file=sys.stderr)
                return USAGE_ERROR
            preserved = len(new_baseline.keys & previous.keys)
            new_baseline = new_baseline.merged_with(previous)
        else:
            preserved = 0
        new_baseline.save(baseline_path)
        print(f"repro-lint: wrote {len(new_baseline.entries)} finding(s) to "
              f"{baseline_path} ({preserved} justification(s) preserved) — "
              "fill in any TODOs")
        return 0

    if args.json is not None:
        payload = render_json(result)
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")

    if not args.quiet:
        print(render_human(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
