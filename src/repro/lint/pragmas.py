"""Suppression pragmas and rule markers parsed from comments.

Three comment namespaces, all documented in ``docs/LINT.md``:

* ``# lint: allow-<rule>(<reason>)`` — suppresses findings of ``<rule>``
  on the pragma's line or the line directly below (so a pragma can sit
  on its own line above a statement that is too long to carry it).  The
  reason is mandatory: a pragma without one is itself reported, because
  the whole point is that the justification lives next to the code.
* ``# lint: fingerprint(<ClassName>)`` — marks a function as the
  fingerprint of dataclass ``<ClassName>`` (fingerprint-completeness
  rule); ``# lint: fingerprint-exempt(<reason>)`` on a field line
  excludes that field from the completeness check.
* ``# guarded-by: <lock>`` / ``# guarded-by: <lock> [writes]`` — declares
  the attribute assigned on that line lock-guarded (lock-discipline
  rule).

Comments are extracted with :mod:`tokenize` so pragma-shaped text inside
string literals is never mistaken for a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA = re.compile(r"^#+\s*lint:\s*(?P<body>.*)$")
_ALLOW = re.compile(r"allow-(?P<rule>[A-Za-z0-9-]+)\s*\(\s*(?P<reason>[^)]*?)\s*\)")
_FINGERPRINT = re.compile(r"fingerprint\s*\(\s*(?P<cls>\w+)\s*\)")
_FINGERPRINT_EXEMPT = re.compile(r"fingerprint-exempt\s*\(\s*(?P<reason>[^)]*?)\s*\)")
_GUARDED_BY = re.compile(
    r"^#+\s*guarded-by:\s*(?P<lock>[A-Za-z_][\w.]*)\s*(?P<writes>\[writes\])?\s*$"
)


@dataclass(frozen=True)
class Allow:
    """One ``allow-<rule>(<reason>)`` suppression."""

    rule: str
    reason: str
    line: int


@dataclass(frozen=True)
class GuardDecl:
    """One ``# guarded-by:`` declaration (consumed by lock-discipline)."""

    lock: str
    writes_only: bool
    line: int


@dataclass
class PragmaMap:
    """Everything comment-borne that the engine and rules consume."""

    #: line -> raw comment text (every comment in the file).
    comments: dict[int, str] = field(default_factory=dict)
    #: line -> suppressions declared on that line.
    allows: dict[int, list[Allow]] = field(default_factory=dict)
    #: line -> class fingerprinted by the function defined at/under it.
    fingerprints: dict[int, str] = field(default_factory=dict)
    #: lines carrying a ``fingerprint-exempt`` marker.
    fingerprint_exempt: dict[int, str] = field(default_factory=dict)
    #: line -> guarded-by declaration on that line.
    guards: dict[int, GuardDecl] = field(default_factory=dict)
    #: (line, message) pairs for malformed ``# lint:`` comments.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def allow_for(self, rule: str, line: int) -> Allow | None:
        """The suppression covering a finding of *rule* at *line*, if any.

        A pragma covers its own line and the line directly below it.
        """
        for candidate in (line, line - 1):
            for allow in self.allows.get(candidate, ()):
                if allow.rule == rule:
                    return allow
        return None

    def marker_for_def(self, def_line: int) -> str | None:
        """Fingerprint marker attached to a ``def`` at *def_line*.

        The marker may trail the ``def`` line or sit on the line above.
        """
        for candidate in (def_line, def_line - 1):
            cls = self.fingerprints.get(candidate)
            if cls is not None:
                return cls
        return None


def extract_comments(source: str) -> dict[int, str]:
    """line -> comment text for every comment token in *source*."""
    comments: dict[int, str] = {}
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except tokenize.TokenError:
        # A file that parses with ast but trips tokenize is pathological;
        # treat it as comment-free rather than crashing the whole run.
        return comments
    return comments


def parse_pragmas(source: str) -> PragmaMap:
    """Parse every pragma/marker comment in *source* into a :class:`PragmaMap`."""
    pragmas = PragmaMap(comments=extract_comments(source))
    for line, text in pragmas.comments.items():
        guard = _GUARDED_BY.search(text)
        if guard is not None:
            pragmas.guards[line] = GuardDecl(
                lock=guard.group("lock"),
                writes_only=guard.group("writes") is not None,
                line=line,
            )
            continue
        pragma = _PRAGMA.search(text)
        if pragma is None:
            continue
        body = pragma.group("body")
        matched = False
        for allow in _ALLOW.finditer(body):
            matched = True
            reason = allow.group("reason")
            if not reason:
                pragmas.malformed.append(
                    (line, f"allow-{allow.group('rule')} pragma requires a reason")
                )
                continue
            pragmas.allows.setdefault(line, []).append(
                Allow(rule=allow.group("rule"), reason=reason, line=line)
            )
        exempt = _FINGERPRINT_EXEMPT.search(body)
        if exempt is not None:
            matched = True
            reason = exempt.group("reason")
            if not reason:
                pragmas.malformed.append((line, "fingerprint-exempt requires a reason"))
            else:
                pragmas.fingerprint_exempt[line] = reason
        else:
            fingerprint = _FINGERPRINT.search(body)
            if fingerprint is not None:
                matched = True
                pragmas.fingerprints[line] = fingerprint.group("cls")
        if not matched:
            pragmas.malformed.append(
                (line, f"unrecognised lint pragma: {body.strip()!r}")
            )
    return pragmas
