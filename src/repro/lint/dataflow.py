"""Intraprocedural forward taint dataflow over a three-point lattice.

The fold-safety rule's v1 heuristic matched identifier *names* at the
sink (``candidate_label.lower()``), so a rename (``s = candidate_label;
s.lower()``) escaped it and genuinely-safe hostname normalization had to
be pragma-suppressed.  This module replaces the heuristic with a small
abstract interpreter: values are classified on the lattice

    CLEAN  ⊑  UNKNOWN  ⊑  TAINTED

where TAINTED means "label-valued" — the class of strings that
substitution positions, revert alignment, and skeleton joins index into,
for which a length-changing fold (U+0130, ß) silently corrupts verdicts.
``join`` is the pointwise maximum, so the analysis is a classic
monotone framework: transfer functions only ever move facts up the
lattice and every loop reaches a fixpoint (``tests/test_lint_dataflow.py``
pins commutativity, idempotence, monotonicity, and termination on
randomly generated control-flow graphs via hypothesis).

Taint is seeded from

* parameters (and free variables) whose identifier words name a label
  (``label``, ``ulabel``, ``alabel``, ``idn``, ...);
* calls to the label producers (``fold_label``, ``to_unicode_label``)
  and the domain-split helpers that yield labels;
* attribute reads spelled like label containers (``.labels``,
  ``.label``);

and propagated through assignments, tuple unpacks, augmented
assignments, conditionals, loops (to a fixpoint), ``with``/``try``
blocks, string-method chains, concatenation, f-strings, subscripts of
tainted containers, and comprehensions.  The interpreter is purely
intraprocedural: each function body (and the module body, and each class
body) is one scope, analysed independently, with no call-graph
propagation — cross-function taint enters through the parameter seeds.

Every ``.lower()``/``.casefold()``/``.title()`` call observed during
interpretation is recorded with the taint of its receiver *value*; the
fold-safety rule decides which observations become findings (and proves
compare-only sinks safe).  The module is deliberately independent of the
engine so it can be property-tested in isolation.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

_SNAKE_SPLIT = re.compile(r"[^A-Za-z0-9]+")


class Taint(enum.IntEnum):
    """The three-point taint lattice, ordered CLEAN ⊑ UNKNOWN ⊑ TAINTED."""

    CLEAN = 0
    UNKNOWN = 1
    TAINTED = 2


def join(first: Taint, second: Taint) -> Taint:
    """Least upper bound of two lattice points (the maximum)."""
    return first if first >= second else second


def join_all(values: Iterable[Taint]) -> Taint:
    """Least upper bound of any number of points (CLEAN for none)."""
    result = Taint.CLEAN
    for value in values:
        result = join(result, value)
    return result


#: One abstract store: variable name -> lattice point.  Missing names are
#: implicitly CLEAN (bottom), which makes ``join_states`` a true
#: pointwise join.
State = dict[str, Taint]


def join_states(first: Mapping[str, Taint], second: Mapping[str, Taint]) -> State:
    """Pointwise join of two abstract stores."""
    result: State = dict(first)
    for name, taint in second.items():
        result[name] = join(result.get(name, Taint.CLEAN), taint)
    return result


def states_equal(first: Mapping[str, Taint], second: Mapping[str, Taint]) -> bool:
    """Equality modulo implicit-CLEAN entries."""
    names = set(first) | set(second)
    return all(
        first.get(name, Taint.CLEAN) == second.get(name, Taint.CLEAN)
        for name in names
    )


def worklist_fixpoint(
    successors: Mapping[int, Sequence[int]],
    transfer: Mapping[int, Callable[[State], State]],
    entry: int,
    entry_state: Mapping[str, Taint],
) -> dict[int, State]:
    """Kildall's worklist algorithm over an explicit control-flow graph.

    ``successors`` maps each node to its successor nodes; ``transfer``
    maps each node to a *monotone* transfer function from in-state to
    out-state.  Returns the least-fixpoint out-state of every node.
    Termination holds because the lattice is finite and states only move
    up: the hypothesis suite drives this with randomly generated graphs
    (cycles included) and randomly composed monotone transfers.
    """
    in_states: dict[int, State] = {node: {} for node in successors}
    in_states[entry] = dict(entry_state)
    out_states: dict[int, State] = {node: {} for node in successors}
    pending: list[int] = sorted(successors)
    while pending:
        node = pending.pop()
        new_out = transfer[node](dict(in_states[node]))
        if states_equal(new_out, out_states[node]):
            continue
        out_states[node] = new_out
        for successor in successors[node]:
            merged = join_states(in_states.get(successor, {}), new_out)
            if not states_equal(merged, in_states.get(successor, {})):
                in_states[successor] = merged
                if successor not in pending:
                    pending.append(successor)
    return out_states


# ---------------------------------------------------------------------------
# seeds and observations


def identifier_words(name: str) -> set[str]:
    """Lower-cased word fragments of an identifier (camelCase split too)."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    return {part.lower() for part in _SNAKE_SPLIT.split(spaced) if part}


@dataclass(frozen=True)
class TaintSettings:
    """What seeds taint and what counts as a fold sink."""

    #: identifier words that mark a parameter/free variable/attribute as
    #: label-valued.  Deliberately narrower than fold-safety v1's word
    #: list: hostname/owner-name normalization is *not* label handling.
    seed_words: frozenset[str] = frozenset({
        "label", "labels", "ulabel", "alabel", "idn", "idns",
    })
    #: callees (matched on the last dotted component) whose result is a
    #: label: the canonical fold, the IDNA decoder, and the domain-split
    #: helpers that hand out per-label views.
    seed_callees: frozenset[str] = frozenset({
        "fold_label", "to_unicode_label", "to_ascii_label", "split_labels",
    })
    #: ``.lower()``-family methods whose result can change length.
    sink_methods: frozenset[str] = frozenset({"lower", "casefold", "title"})
    #: string methods that preserve "this is (derived from) a label".
    propagating_methods: frozenset[str] = frozenset({
        "strip", "lstrip", "rstrip", "removeprefix", "removesuffix",
        "replace", "upper", "lower", "casefold", "title", "split", "rsplit",
        "partition", "rpartition", "splitlines", "encode", "decode",
    })
    #: builtins that pass their argument elements through.
    passthrough_callees: frozenset[str] = frozenset({
        "sorted", "list", "tuple", "set", "frozenset", "reversed", "iter",
        "next", "min", "max", "str",
    })

    def is_seed_name(self, name: str) -> bool:
        return bool(identifier_words(name) & self.seed_words)


DEFAULT_SETTINGS = TaintSettings()


@dataclass
class SinkObservation:
    """One fold-method call with the joined taint of its receiver value."""

    node: ast.Call
    taint: Taint


@dataclass
class ModuleTaint:
    """All sink observations of one module, keyed by call node."""

    sinks: dict[ast.Call, SinkObservation] = field(default_factory=dict)

    def observe(self, node: ast.Call, taint: Taint) -> None:
        existing = self.sinks.get(node)
        if existing is None:
            self.sinks[node] = SinkObservation(node=node, taint=taint)
        else:
            existing.taint = join(existing.taint, taint)


# ---------------------------------------------------------------------------
# the abstract interpreter


class _Interpreter:
    """Structural abstract interpretation of one scope at a time."""

    def __init__(self, settings: TaintSettings, result: ModuleTaint) -> None:
        self.settings = settings
        self.result = result

    # -- scope driving ------------------------------------------------------

    def run_module(self, tree: ast.Module) -> None:
        self._exec_block(tree.body, {})
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._exec_block(node.body, self._entry_state(node))
            elif isinstance(node, ast.ClassDef):
                body = [
                    statement for statement in node.body
                    if not isinstance(statement, (ast.FunctionDef,
                                                  ast.AsyncFunctionDef,
                                                  ast.ClassDef))
                ]
                self._exec_block(body, {})

    def _entry_state(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> State:
        state: State = {}
        arguments = node.args
        parameters = list(arguments.posonlyargs) + list(arguments.args) \
            + list(arguments.kwonlyargs)
        for extra in (arguments.vararg, arguments.kwarg):
            if extra is not None:
                parameters.append(extra)
        for parameter in parameters:
            annotation = ""
            if parameter.annotation is not None:
                annotation = ast.unparse(parameter.annotation)
            if self.settings.is_seed_name(parameter.arg) or "Label" in annotation:
                state[parameter.arg] = Taint.TAINTED
            else:
                state[parameter.arg] = Taint.UNKNOWN
        return state

    # -- statements ---------------------------------------------------------

    def _exec_block(self, statements: Sequence[ast.stmt], state: State) -> State:
        for statement in statements:
            state = self._exec(statement, state)
        return state

    def _exec(self, statement: ast.stmt, state: State) -> State:
        if isinstance(statement, ast.Assign):
            taint = self._eval(statement.value, state)
            for target in statement.targets:
                self._bind(target, taint, statement.value, state)
            return state
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                taint = self._eval(statement.value, state)
                self._bind(statement.target, taint, statement.value, state)
            return state
        if isinstance(statement, ast.AugAssign):
            taint = self._eval(statement.value, state)
            if isinstance(statement.target, ast.Name):
                name = statement.target.id
                state[name] = join(state.get(name, Taint.UNKNOWN), taint)
            return state
        if isinstance(statement, ast.If):
            self._eval(statement.test, state)
            branch_true = self._exec_block(statement.body, dict(state))
            branch_false = self._exec_block(statement.orelse, dict(state))
            return join_states(branch_true, branch_false)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            element = self._eval(statement.iter, state)
            return self._loop(
                statement.body, statement.orelse, state,
                bind=lambda s: self._bind(statement.target, element, None, s),
            )
        if isinstance(statement, ast.While):
            self._eval(statement.test, state)
            return self._loop(statement.body, statement.orelse, state, bind=None)
        if isinstance(statement, ast.Try):
            after_body = self._exec_block(statement.body, dict(state))
            merged = join_states(state, after_body)
            for handler in statement.handlers:
                handler_state = dict(merged)
                if handler.name is not None:
                    handler_state[handler.name] = Taint.UNKNOWN
                merged = join_states(
                    merged, self._exec_block(handler.body, handler_state)
                )
            merged = self._exec_block(statement.orelse, merged)
            return self._exec_block(statement.finalbody, merged)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                taint = self._eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, None, state)
            return self._exec_block(statement.body, state)
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            for decorator in statement.decorator_list:
                self._eval(decorator, state)
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in (list(statement.args.defaults)
                                + [d for d in statement.args.kw_defaults
                                   if d is not None]):
                    self._eval(default, state)
            state[statement.name] = Taint.CLEAN
            return state
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            for alias in statement.names:
                bound = alias.asname or alias.name.split(".")[0]
                state[bound] = Taint.CLEAN
            return state
        if isinstance(statement, ast.Match):
            self._eval(statement.subject, state)
            merged = dict(state)
            for case in statement.cases:
                merged = join_states(
                    merged, self._exec_block(case.body, dict(state))
                )
            return merged
        # Return / Expr / Raise / Assert / Delete / Global / Nonlocal / Pass
        # and anything future: evaluate embedded expressions for sinks.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._eval(child, state)
        return state

    def _loop(
        self,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        state: State,
        bind: Callable[[State], None] | None,
    ) -> State:
        """Iterate a loop body to a fixpoint (monotone, so it terminates)."""
        current = dict(state)
        while True:
            iteration = dict(current)
            if bind is not None:
                bind(iteration)
            after = self._exec_block(body, iteration)
            merged = join_states(current, after)
            if states_equal(merged, current):
                break
            current = merged
        return self._exec_block(orelse, current)

    def _bind(
        self,
        target: ast.expr,
        taint: Taint,
        value: ast.expr | None,
        state: State,
    ) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = taint
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, None, state)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[ast.expr | None]
            if (isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(target.elts)):
                elements = value.elts
            else:
                elements = [None] * len(target.elts)
            for element_target, element_value in zip(target.elts, elements):
                element_taint = taint
                if element_value is not None:
                    element_taint = self._eval(element_value, state)
                self._bind(element_target, element_taint, element_value, state)
        # attribute / subscript stores: no local binding to track.

    # -- expressions --------------------------------------------------------

    def _eval(self, expression: ast.expr, state: State) -> Taint:
        if isinstance(expression, ast.Constant):
            return Taint.CLEAN
        if isinstance(expression, ast.Name):
            if expression.id in state:
                return state[expression.id]
            if self.settings.is_seed_name(expression.id):
                return Taint.TAINTED
            return Taint.UNKNOWN
        if isinstance(expression, ast.Attribute):
            self._eval(expression.value, state)
            if self.settings.is_seed_name(expression.attr):
                return Taint.TAINTED
            return Taint.UNKNOWN
        if isinstance(expression, ast.Call):
            return self._eval_call(expression, state)
        if isinstance(expression, ast.Subscript):
            container = self._eval(expression.value, state)
            self._eval(expression.slice, state)
            return container
        if isinstance(expression, ast.BinOp):
            return join(self._eval(expression.left, state),
                        self._eval(expression.right, state))
        if isinstance(expression, ast.BoolOp):
            return join_all(self._eval(value, state) for value in expression.values)
        if isinstance(expression, ast.Compare):
            self._eval(expression.left, state)
            for comparator in expression.comparators:
                self._eval(comparator, state)
            return Taint.CLEAN
        if isinstance(expression, ast.UnaryOp):
            self._eval(expression.operand, state)
            return Taint.CLEAN
        if isinstance(expression, ast.IfExp):
            self._eval(expression.test, state)
            return join(self._eval(expression.body, state),
                        self._eval(expression.orelse, state))
        if isinstance(expression, (ast.Tuple, ast.List, ast.Set)):
            return join_all(self._eval(element, state)
                            for element in expression.elts)
        if isinstance(expression, ast.Dict):
            taints = [self._eval(key, state)
                      for key in expression.keys if key is not None]
            taints.extend(self._eval(value, state) for value in expression.values)
            return join_all(taints)
        if isinstance(expression, ast.JoinedStr):
            return join_all(self._eval(value, state)
                            for value in expression.values)
        if isinstance(expression, ast.FormattedValue):
            return self._eval(expression.value, state)
        if isinstance(expression, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(expression, state)
        if isinstance(expression, ast.NamedExpr):
            taint = self._eval(expression.value, state)
            state[expression.target.id] = taint
            return taint
        if isinstance(expression, ast.Starred):
            return self._eval(expression.value, state)
        if isinstance(expression, ast.Await):
            return self._eval(expression.value, state)
        if isinstance(expression, (ast.Yield, ast.YieldFrom)):
            if expression.value is not None:
                self._eval(expression.value, state)
            return Taint.UNKNOWN
        if isinstance(expression, ast.Lambda):
            return Taint.CLEAN
        if isinstance(expression, ast.Slice):
            for part in (expression.lower, expression.upper, expression.step):
                if part is not None:
                    self._eval(part, state)
            return Taint.CLEAN
        # Unhandled expression kinds: evaluate children so nested sinks
        # are still observed, return UNKNOWN.
        for child in ast.iter_child_nodes(expression):
            if isinstance(child, ast.expr):
                self._eval(child, state)
        return Taint.UNKNOWN

    def _eval_call(self, call: ast.Call, state: State) -> Taint:
        argument_taints = [self._eval(argument, state) for argument in call.args]
        argument_taints.extend(
            self._eval(keyword.value, state) for keyword in call.keywords
        )
        callee = call.func
        if isinstance(callee, ast.Attribute):
            receiver = self._eval(callee.value, state)
            method = callee.attr
            if (method in self.settings.sink_methods
                    and not call.args and not call.keywords):
                self.result.observe(call, receiver)
                return receiver
            if method in self.settings.seed_callees:
                return Taint.TAINTED
            if method == "join":
                return join(receiver, join_all(argument_taints))
            if method in self.settings.propagating_methods:
                return receiver
            if self.settings.is_seed_name(method):
                return Taint.TAINTED
            return Taint.UNKNOWN
        self._eval(callee, state)
        if isinstance(callee, ast.Name):
            if callee.id in self.settings.seed_callees:
                return Taint.TAINTED
            if callee.id in self.settings.passthrough_callees:
                return join_all(argument_taints)
        return Taint.UNKNOWN

    def _eval_comprehension(
        self,
        expression: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
        state: State,
    ) -> Taint:
        local = dict(state)
        for generator in expression.generators:
            element = self._eval(generator.iter, local)
            self._bind(generator.target, element, None, local)
            for condition in generator.ifs:
                self._eval(condition, local)
        if isinstance(expression, ast.DictComp):
            return join(self._eval(expression.key, local),
                        self._eval(expression.value, local))
        return self._eval(expression.elt, local)


def analyse_module(
    tree: ast.Module, settings: TaintSettings = DEFAULT_SETTINGS
) -> ModuleTaint:
    """Run the taint interpreter over every scope of *tree*.

    Returns the joined sink observations; the caller (fold-safety)
    decides which observations are findings.
    """
    result = ModuleTaint()
    _Interpreter(settings, result).run_module(tree)
    return result
