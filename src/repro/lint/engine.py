"""The repro-lint engine: rule registry, per-file analysis, reporting.

One :class:`ModuleUnderLint` is built per Python file (source, AST,
parent links, comment pragmas); every registered rule's :meth:`Rule.check`
runs over it and yields :class:`Finding` objects.  The engine then
applies the two suppression layers:

* **pragmas** — ``# lint: allow-<rule>(<reason>)`` next to the code
  (see :mod:`repro.lint.pragmas`); suppressed findings vanish from the
  report but are counted;
* **baseline** — the committed ``lint-baseline.json`` of grandfathered
  findings (see :mod:`repro.lint.baseline`); baselined findings are
  reported but do not fail the run.

Only findings that survive both layers are *new* and make
:func:`run_lint` report failure — so CI goes red exactly when a change
introduces a violation that nobody wrote a justification for.

JSON output follows a versioned schema (``SCHEMA_VERSION``) that
``tests/test_lint_schema.py`` pins with a golden fixture, so downstream
tooling (the CI artifact consumer, ``scripts/roll_bench_history.py``
style roll-ups) can rely on it.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.lint.baseline import Baseline
from repro.lint.pragmas import PragmaMap, parse_pragmas

SCHEMA_VERSION = 1

#: Rule name used for engine-level findings about malformed pragmas.
PRAGMA_RULE = "pragma"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``(rule, path, message)`` is the stable identity used by the
    baseline, deliberately excluding the line number so unrelated edits
    that shift code do not invalidate grandfathered entries.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleUnderLint:
    """Parsed view of one file, shared by every rule."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        self.pragmas: PragmaMap = parse_pragmas(source)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child -> parent links over the whole AST (built lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """*node*'s enclosing nodes, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.rel_path, line=line, col=col + 1,
                       message=message)


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`."""

    name: str = ""
    description: str = ""

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``name``) to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """name -> rule instance for every registered rule (import-triggered)."""
    # Importing the rules package runs every @register decorator exactly once.
    import repro.lint.rules  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    pragma_suppressed: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    files_scanned: int = 0
    rules: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new

    def as_dict(self) -> dict[str, object]:
        """The ``--json`` payload (schema pinned by a golden-fixture test)."""
        findings: list[dict[str, object]] = []
        for finding in sorted(self.new, key=lambda f: (f.path, f.line, f.rule)):
            entry = finding.as_dict()
            entry["baselined"] = False
            findings.append(entry)
        for finding in sorted(self.baselined, key=lambda f: (f.path, f.line, f.rule)):
            entry = finding.as_dict()
            entry["baselined"] = True
            findings.append(entry)
        return {
            "tool": "repro-lint",
            "schema_version": SCHEMA_VERSION,
            "rules": [
                {"name": rule_name, "description": description}
                for rule_name, description in sorted(self.rules.items())
            ],
            "files_scanned": self.files_scanned,
            "findings": findings,
            "summary": {
                "total": len(self.new) + len(self.baselined),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "pragma_suppressed": self.pragma_suppressed,
                "stale_baseline": len(self.stale_baseline),
            },
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under *paths* (files or directories), sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def relative_display_path(path: Path, root: Path | None = None) -> str:
    """*path* relative to *root* (default cwd) when possible, POSIX-style."""
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[Path],
    *,
    rules: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
    on_file: Callable[[str], None] | None = None,
) -> LintResult:
    """Run the selected *rules* over every Python file under *paths*.

    *baseline* entries demote matching findings from "new" to
    "baselined"; *root* anchors the relative display paths (defaults to
    the current directory, which is what both CI and the tests use).
    """
    registry = all_rules()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        registry = {rule_name: registry[rule_name] for rule_name in rules}

    result = LintResult(
        rules={rule.name: rule.description for rule in registry.values()}
    )
    active_baseline = baseline if baseline is not None else Baseline()
    matched_keys: set[tuple[str, str, str]] = set()

    for file_path in iter_python_files(paths):
        rel = relative_display_path(file_path, root)
        if on_file is not None:
            on_file(rel)
        source = file_path.read_text(encoding="utf-8")
        try:
            module = ModuleUnderLint(file_path, rel, source)
        except SyntaxError as exc:
            result.new.append(Finding(
                rule=PRAGMA_RULE, path=rel, line=exc.lineno or 0, col=0,
                message=f"file does not parse: {exc.msg}",
            ))
            result.files_scanned += 1
            continue
        result.files_scanned += 1

        raw: list[Finding] = []
        for line, message in module.pragmas.malformed:
            raw.append(Finding(rule=PRAGMA_RULE, path=rel, line=line, col=1,
                               message=message))
        for rule in registry.values():
            raw.extend(rule.check(module))

        for finding in raw:
            if module.pragmas.allow_for(finding.rule, finding.line) is not None:
                result.pragma_suppressed += 1
                continue
            if active_baseline.covers(finding.key):
                matched_keys.add(finding.key)
                result.baselined.append(finding)
            else:
                result.new.append(finding)

    result.stale_baseline = sorted(active_baseline.keys - matched_keys)
    return result


def render_human(result: LintResult) -> str:
    """The human-readable report printed by the CLI."""
    lines: list[str] = []
    for finding in sorted(result.new, key=lambda f: (f.path, f.line, f.rule)):
        lines.append(finding.render())
    for finding in sorted(result.baselined, key=lambda f: (f.path, f.line, f.rule)):
        lines.append(f"{finding.render()} (baselined)")
    for rule_name, path, message in result.stale_baseline:
        lines.append(
            f"stale baseline entry: [{rule_name}] {path}: {message} "
            "(fixed? remove it from lint-baseline.json)"
        )
    lines.append(
        f"repro-lint: {result.files_scanned} files, "
        f"{len(result.new)} new finding(s), {len(result.baselined)} baselined, "
        f"{result.pragma_suppressed} pragma-suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n"
