"""The repro-lint engine: rule registry, analysis driver, reporting.

One :class:`ModuleUnderLint` is built per Python file (source, AST,
parent links, comment pragmas); every registered per-file rule's
:meth:`Rule.check` runs over it and yields :class:`Finding` objects.
Since v2 the engine also builds a whole-program view — a
:class:`~repro.lint.project.ProjectUnderLint` with the module graph and
symbol table — and runs :class:`ProjectRule` subclasses over it, so
cross-module invariants (import layering, the CLI exception contract,
dead exports) are checkable.  Per-file results are cached in
``.lint-cache.json`` keyed on file sha256 + engine version, so a warm
run re-analyses only changed files (see :mod:`repro.lint.project`).

Findings pass two suppression layers:

* **pragmas** — ``# lint: allow-<rule>(<reason>)`` next to the code
  (see :mod:`repro.lint.pragmas`); suppressed findings vanish from the
  report but are counted;
* **baseline** — the committed ``lint-baseline.json`` of grandfathered
  findings (see :mod:`repro.lint.baseline`); baselined findings are
  reported but do not fail the run.

Only findings that survive both layers are *new* and make
:func:`run_lint` report failure — so CI goes red exactly when a change
introduces a violation that nobody wrote a justification for.

JSON output follows a versioned schema (``SCHEMA_VERSION``) that
``tests/test_lint_schema.py`` pins with a golden fixture, so downstream
tooling (the CI artifact consumer, ``scripts/roll_bench_history.py``
style roll-ups) can rely on it.  Line and column numbers are 1-based
everywhere, including engine-level findings.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.lint.baseline import Baseline
from repro.lint.pragmas import PragmaMap, parse_pragmas

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.lint.project import ProjectUnderLint

SCHEMA_VERSION = 2

#: Rule name used for engine-level findings (malformed pragmas, files
#: that do not parse).
PRAGMA_RULE = "pragma"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``(rule, path, message)`` is the stable identity used by the
    baseline, deliberately excluding the line number so unrelated edits
    that shift code do not invalidate grandfathered entries.  ``line``
    and ``col`` are both 1-based.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleUnderLint:
    """Parsed view of one file, shared by every rule."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        self.pragmas: PragmaMap = parse_pragmas(source)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child -> parent links over the whole AST (built lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """*node*'s enclosing nodes, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.rel_path, line=max(line, 1),
                       col=col + 1, message=message)


class Rule:
    """Base class for per-file rules; subclasses register via :func:`register`."""

    name: str = ""
    description: str = ""

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule sees the :class:`~repro.lint.project.ProjectUnderLint`
    — every linted file's summary, the resolved module graph, the global
    referenced-name set — instead of one file at a time.  Its findings
    still target individual files, and pragma/baseline suppression works
    exactly as for per-file rules.  Project rules are re-evaluated on
    every run (their inputs span files, so a cache hit on one file
    cannot prove a cross-module finding unchanged); only the per-file
    summaries they read are cached.
    """

    #: Set true when the rule consumes referenced names from the
    #: reference roots (tests/benchmarks/...) — only ``dead-export``
    #: needs that harvest, so other runs skip it.
    uses_reference_roots: bool = False

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        return ()

    def check_project(self, project: "ProjectUnderLint") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``name``) to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """name -> rule instance for every registered rule (import-triggered)."""
    # Importing the rules package runs every @register decorator exactly once.
    import repro.lint.rules  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    pragma_suppressed: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    files_scanned: int = 0
    rules: dict[str, str] = field(default_factory=dict)
    cache_enabled: bool = False
    files_parsed: int = 0
    files_reused: int = 0
    reference_files_parsed: int = 0
    reference_files_reused: int = 0

    @property
    def ok(self) -> bool:
        return not self.new

    def as_dict(self) -> dict[str, object]:
        """The ``--json`` payload (schema pinned by a golden-fixture test)."""
        findings: list[dict[str, object]] = []
        for finding in sorted(self.new, key=lambda f: (f.path, f.line, f.rule)):
            entry = finding.as_dict()
            entry["baselined"] = False
            findings.append(entry)
        for finding in sorted(self.baselined, key=lambda f: (f.path, f.line, f.rule)):
            entry = finding.as_dict()
            entry["baselined"] = True
            findings.append(entry)
        return {
            "tool": "repro-lint",
            "schema_version": SCHEMA_VERSION,
            "rules": [
                {"name": rule_name, "description": description}
                for rule_name, description in sorted(self.rules.items())
            ],
            "files_scanned": self.files_scanned,
            "findings": findings,
            "summary": {
                "total": len(self.new) + len(self.baselined),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "pragma_suppressed": self.pragma_suppressed,
                "stale_baseline": len(self.stale_baseline),
            },
            "cache": {
                "enabled": self.cache_enabled,
                "files_parsed": self.files_parsed,
                "files_reused": self.files_reused,
                "reference_files_parsed": self.reference_files_parsed,
                "reference_files_reused": self.reference_files_reused,
            },
        }


def iter_python_files(
    paths: Sequence[Path],
    exclude: Sequence[Path] = (),
) -> Iterator[Path]:
    """Every ``.py`` file under *paths* (files or directories), sorted.

    *exclude* prunes files equal to or under any of the given paths
    (the CLI's ``--exclude``, used to skip intentionally-bad fixture
    trees when linting ``tests/``).
    """
    excluded = [path.resolve() for path in exclude]
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if any(resolved == ex or resolved.is_relative_to(ex)
                   for ex in excluded):
                continue
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def relative_display_path(path: Path, root: Path | None = None) -> str:
    """*path* relative to *root* (default cwd) when possible, POSIX-style."""
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[Path],
    *,
    rules: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
    on_file: Callable[[str], None] | None = None,
    cache_path: Path | None = None,
    reference_roots: Sequence[Path] | None = None,
    exclude: Sequence[Path] = (),
) -> LintResult:
    """Run the selected *rules* over every Python file under *paths*.

    *baseline* entries demote matching findings from "new" to
    "baselined"; *root* anchors the relative display paths (defaults to
    the current directory, which is what both CI and the tests use).
    *cache_path* enables the incremental cache (``None`` — the library
    default — disables it; the CLI enables it by default).
    *reference_roots* are extra trees harvested for referenced names by
    ``dead-export`` (``None`` auto-discovers ``tests``/``benchmarks``/
    ``examples``/``scripts`` under *root*; pass ``()`` for none).
    *exclude* prunes files under the given paths from both linting and
    harvesting.
    """
    from repro.lint import project as project_model

    registry = all_rules()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        registry = {rule_name: registry[rule_name] for rule_name in rules}
    file_rules = [rule for rule in registry.values()
                  if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in registry.values()
                     if isinstance(rule, ProjectRule)]

    result = LintResult(
        rules={rule.name: rule.description for rule in registry.values()}
    )
    root_path = root if root is not None else Path.cwd()
    active_baseline = baseline if baseline is not None else Baseline()
    matched_keys: set[tuple[str, str, str]] = set()

    cache = (project_model.LintCache.load(cache_path, sorted(registry))
             if cache_path is not None else project_model.LintCache.disabled())
    result.cache_enabled = cache.enabled

    records: list[project_model.FileRecord] = []
    for file_path in iter_python_files(paths, exclude=exclude):
        rel = relative_display_path(file_path, root)
        if on_file is not None:
            on_file(rel)
        data = file_path.read_bytes()
        sha256 = project_model.file_sha256(data)
        result.files_scanned += 1

        entry = cache.lookup(rel, sha256)
        if entry is not None:
            records.append(project_model.record_from_cache(
                file_path, rel, sha256, entry))
            result.files_reused += 1
            continue
        result.files_parsed += 1

        source = data.decode("utf-8")
        try:
            module = ModuleUnderLint(file_path, rel, source)
        except SyntaxError as exc:
            record = project_model.FileRecord(
                path=file_path, rel_path=rel, sha256=sha256,
                summary=project_model.ModuleSummary(module=None,
                                                    is_package=False),
                suppressions=project_model.SuppressionIndex(),
                findings=[Finding(
                    rule=PRAGMA_RULE, path=rel, line=max(exc.lineno or 1, 1),
                    col=1, message=f"file does not parse: {exc.msg}",
                )],
            )
            cache.store(rel, project_model.cache_entry_for(record))
            records.append(record)
            continue

        raw: list[Finding] = []
        for line, message in module.pragmas.malformed:
            raw.append(Finding(rule=PRAGMA_RULE, path=rel, line=line, col=1,
                               message=message))
        for rule in file_rules:
            raw.extend(rule.check(module))

        kept: list[Finding] = []
        suppressed = 0
        for finding in raw:
            if module.pragmas.allow_for(finding.rule, finding.line) is not None:
                suppressed += 1
            else:
                kept.append(finding)

        record = project_model.FileRecord(
            path=file_path, rel_path=rel, sha256=sha256,
            summary=project_model.summarise(
                module.tree, project_model.module_name_for(file_path),
                is_package=file_path.name == "__init__.py"),
            suppressions=project_model.SuppressionIndex.from_pragmas(
                module.pragmas),
            module_under_lint=module,
            findings=kept, pragma_suppressed=suppressed,
        )
        cache.store(rel, project_model.cache_entry_for(record))
        records.append(record)

    result.pragma_suppressed = sum(r.pragma_suppressed for r in records)

    # -- whole-program pass -------------------------------------------------
    project_findings: list[Finding] = []
    has_modules = any(record.summary.module is not None for record in records)
    if project_rules and has_modules:
        extra_referenced: frozenset[str] = frozenset()
        if any(rule.uses_reference_roots for rule in project_rules):
            extra_referenced = project_model.collect_reference_names(
                cache=cache, root_path=root_path, paths=paths,
                reference_roots=reference_roots, exclude=exclude,
                records=records, result=result, root=root)
        project = project_model.ProjectUnderLint(
            root_path, records, extra_referenced)
        for project_rule in project_rules:
            project_findings.extend(project_rule.check_project(project))

    by_rel = {record.rel_path: record for record in records}
    for finding in project_findings:
        record = by_rel.get(finding.path)
        if record is not None and record.suppressions.covers(
                finding.rule, finding.line):
            result.pragma_suppressed += 1
            continue
        if active_baseline.covers(finding.key):
            matched_keys.add(finding.key)
            result.baselined.append(finding)
        else:
            result.new.append(finding)

    for record in records:
        for finding in record.findings:
            if active_baseline.covers(finding.key):
                matched_keys.add(finding.key)
                result.baselined.append(finding)
            else:
                result.new.append(finding)

    result.stale_baseline = sorted(active_baseline.keys - matched_keys)
    cache.save()
    return result


def render_human(result: LintResult) -> str:
    """The human-readable report printed by the CLI."""
    lines: list[str] = []
    for finding in sorted(result.new, key=lambda f: (f.path, f.line, f.rule)):
        lines.append(finding.render())
    for finding in sorted(result.baselined, key=lambda f: (f.path, f.line, f.rule)):
        lines.append(f"{finding.render()} (baselined)")
    for rule_name, path, message in result.stale_baseline:
        lines.append(
            f"stale baseline entry: [{rule_name}] {path}: {message} "
            "(fixed? remove it from lint-baseline.json)"
        )
    lines.append(
        f"repro-lint: {result.files_scanned} files, "
        f"{len(result.new)} new finding(s), {len(result.baselined)} baselined, "
        f"{result.pragma_suppressed} pragma-suppressed"
    )
    if result.cache_enabled:
        lines.append(
            f"repro-lint: cache: {result.files_parsed} analysed, "
            f"{result.files_reused} reused"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n"
