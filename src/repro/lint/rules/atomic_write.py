"""atomic-write: artifact files are written temp-then-``os.replace``.

The bug class: readers of ``refindex-*.idx``, ``foldtable-*`` sidecars,
checkpoints, and sink/timeline stores tolerate a *missing* file but must
never observe a torn half-write — every store in the repo therefore
writes to a temp name in the destination directory and ``os.replace``\\ s
it into place (crash-safe on POSIX).  A direct ``open(path, "w")`` on an
artifact path would silently reintroduce torn-read corruption under the
exact crash the checkpoint machinery exists to survive.

Heuristic: a write-mode ``open``/``os.fdopen``/``Path.open``/
``write_text``/``write_bytes`` whose path expression mentions an
artifact-flavoured token (``idx``, ``checkpoint``, ``sink``,
``foldtable``, ``timeline``, ``state``) must sit in a function that also
calls ``os.replace`` (the temp+rename idiom), or name a temp path, or
carry ``# lint: allow-atomic-write(<reason>)``.  Append-only logs with
line-granular recovery (``recover_sink``) are the legitimate exception
and are grandfathered in ``lint-baseline.json`` with their rationale.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import (
    call_name,
    enclosing_function,
    expression_words,
    string_constants,
)

#: Identifier/literal words that mark a path expression as an artifact.
ARTIFACT_WORDS = frozenset({
    "idx", "checkpoint", "checkpoints", "foldtable", "sink", "sinks",
    "timeline", "state",
})

#: Words marking the temp half of the temp+rename idiom (always fine).
TEMP_WORDS = frozenset({"temp", "tmp", "fd"})

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _mode_can_write(mode: ast.expr | None) -> bool:
    """True when the mode argument can open for (over)write.

    A conditional mode like ``"a" if resumed else "w"`` counts: some
    executions truncate.
    """
    if mode is None:
        return False  # default "r"
    return any("w" in constant for constant in string_constants(mode))


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _written_path(node: ast.Call) -> ast.expr | None:
    """The path expression when *node* opens something for write."""
    callee = call_name(node)
    if isinstance(node.func, ast.Attribute):
        if node.func.attr in _WRITE_METHODS:
            return node.func.value
        if node.func.attr == "open" and callee != "os.fdopen":
            # Method-style Path.open: the receiver is the path and the
            # mode is the first argument.
            mode = node.args[0] if node.args else _keyword(node, "mode")
            return node.func.value if _mode_can_write(mode) else None
    if callee in ("open", "io.open", "os.fdopen") and node.args:
        mode = node.args[1] if len(node.args) >= 2 else _keyword(node, "mode")
        return node.args[0] if _mode_can_write(mode) else None
    return None


def _path_words(node: ast.AST) -> set[str]:
    words = expression_words(node)
    for constant in string_constants(node):
        lowered_constant = constant.lower()
        for word in ARTIFACT_WORDS | TEMP_WORDS:
            if word in lowered_constant:
                words.add(word)
    return words


@register
class AtomicWriteRule(Rule):
    name = "atomic-write"
    description = (
        "direct write-mode open() on artifact paths (*.idx, checkpoints, "
        "sinks, foldtables) without the temp+os.replace idiom"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path_expr = _written_path(node)
            if path_expr is None:
                continue
            words = _path_words(path_expr)
            words |= self._binding_words(node, module)
            if not (words & ARTIFACT_WORDS):
                continue
            if words & TEMP_WORDS:
                continue  # writing the temp half of temp+rename
            if self._scope_replaces(node, module):
                continue
            yield module.finding(
                self.name, node,
                f"write-mode open on artifact path {ast.unparse(path_expr)!r} "
                "without os.replace in the same function: a crash mid-write "
                "leaves a torn artifact for readers; write to a temp name "
                "and os.replace it into place, or justify with "
                "# lint: allow-atomic-write(<reason>)",
            )

    @staticmethod
    def _binding_words(node: ast.Call, module: ModuleUnderLint) -> set[str]:
        """Words of the name the opened handle is bound to.

        ``sink = open(output_path, "w")`` names the artifact on the left
        of the ``=``, not in the path expression — fold those in too.
        """
        parent = module.parents.get(node)
        if isinstance(parent, ast.Assign):
            words: set[str] = set()
            for target in parent.targets:
                words |= expression_words(target)
            return words
        if isinstance(parent, ast.withitem) and parent.optional_vars is not None:
            return expression_words(parent.optional_vars)
        return set()

    @staticmethod
    def _scope_replaces(node: ast.Call, module: ModuleUnderLint) -> bool:
        """True when the enclosing scope also calls ``os.replace``."""
        scope: ast.AST | None = enclosing_function(node, module.parents)
        if scope is None:
            scope = module.tree
        return any(
            isinstance(child, ast.Call) and call_name(child) == "os.replace"
            for child in ast.walk(scope)
        )
