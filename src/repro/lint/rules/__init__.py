"""Rule modules; importing this package registers every rule.

Each module holds one rule class decorated with
:func:`repro.lint.engine.register`.  Adding a rule = adding a module
here, importing it below, and documenting it in ``docs/LINT.md``.
Per-file rules subclass :class:`~repro.lint.engine.Rule`; whole-program
rules (import-layering, exception-contract, dead-export) subclass
:class:`~repro.lint.engine.ProjectRule` and see the module graph.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    atomic_write,
    broad_except,
    dead_export,
    exception_contract,
    fingerprint,
    fold_safety,
    import_layering,
    lock_discipline,
    spawn_safety,
)

__all__ = [
    "atomic_write",
    "broad_except",
    "dead_export",
    "exception_contract",
    "fingerprint",
    "fold_safety",
    "import_layering",
    "lock_discipline",
    "spawn_safety",
]
