"""Rule modules; importing this package registers every rule.

Each module holds one rule class decorated with
:func:`repro.lint.engine.register`.  Adding a rule = adding a module
here, importing it below, and documenting it in ``docs/LINT.md``.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    atomic_write,
    broad_except,
    fingerprint,
    fold_safety,
    lock_discipline,
    spawn_safety,
)

__all__ = [
    "atomic_write",
    "broad_except",
    "fingerprint",
    "fold_safety",
    "lock_discipline",
    "spawn_safety",
]
