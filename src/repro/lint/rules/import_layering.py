"""import-layering: the package DAG in docs/LINT.md is load-bearing.

The repo is layered — pure data layers (``unicode``, ``idn``,
``homoglyph``) feed the detection core, which feeds the measurement and
serving applications, which feed the CLI — and every subsystem doc
reasons in terms of that DAG.  Nothing enforced it: one convenience
import from ``idn`` into ``detection``'s reporting helpers would invert
the layering silently and make the lower layer untestable in isolation.

This project rule reads the layer map from the ```` ```layers ````
fenced block in ``docs/LINT.md`` (the single source of truth; a
byte-identical fallback is compiled in and a test pins the two against
each other) and flags, per import site:

* **upward imports** — a module importing a package at a higher layer;
* **imports of ``cli``** — nothing imports the CLI, ever (it is the
  top of the DAG and the only layer allowed to ``sys.exit``);
* **escapes from ``lint``** — the lint package is marked ``isolated``
  and imports nothing from the rest of the repo, so it stays runnable
  on a broken tree;
* **unmapped packages** — a top-level package missing from the map, so
  the map cannot silently rot as subsystems are added;
* **import cycles** — strongly connected components in the resolved
  module graph, reported once per cycle.

Same-layer and downward imports are free.  Only intra-repo imports are
considered (the module graph resolves ``repro.*`` absolute and relative
imports; stdlib and third-party imports are out of scope).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding, ProjectRule, register
from repro.lint.project import ProjectUnderLint

#: Fallback layer map, byte-equivalent to the ```layers block in
#: docs/LINT.md (``tests/test_lint_project.py`` pins the equivalence).
#: package -> layer number; ISOLATED packages import nothing else.
DEFAULT_LAYERS: dict[str, int] = {
    "parallel": 0, "unicode": 0,
    "fonts": 1, "idn": 1, "langid": 1,
    "dns": 2, "metrics": 2,
    "homoglyph": 3, "web": 3,
    "detection": 4,
    "applications": 5, "countermeasure": 5, "humanstudy": 5,
    "measurement": 6, "serving": 6,
    "repro": 7,
    "cli": 8,
}

DEFAULT_ISOLATED: frozenset[str] = frozenset({"lint"})

_LAYERS_BLOCK = re.compile(r"```layers\n(.*?)```", re.DOTALL)


def parse_layer_map(text: str) -> tuple[dict[str, int], frozenset[str]] | None:
    """Parse the ```layers fenced block out of a docs/LINT.md body.

    Lines are ``<layer-number>: pkg pkg ...`` or ``isolated: pkg ...``;
    returns ``None`` when no block is present (callers fall back to the
    compiled-in map).
    """
    match = _LAYERS_BLOCK.search(text)
    if match is None:
        return None
    layers: dict[str, int] = {}
    isolated: set[str] = set()
    for raw_line in match.group(1).splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, tail = line.partition(":")
        packages = tail.split()
        if head.strip() == "isolated":
            isolated.update(packages)
        elif head.strip().isdigit():
            for package in packages:
                layers[package] = int(head)
    return layers, frozenset(isolated)


def load_layer_map(root: Path) -> tuple[dict[str, int], frozenset[str]]:
    """The layer map from *root*'s docs/LINT.md, else the fallback."""
    doc_path = root / "docs" / "LINT.md"
    try:
        text = doc_path.read_text(encoding="utf-8")
    except OSError:
        return dict(DEFAULT_LAYERS), DEFAULT_ISOLATED
    parsed = parse_layer_map(text)
    if parsed is None:
        return dict(DEFAULT_LAYERS), DEFAULT_ISOLATED
    return parsed


def package_of(module: str) -> str:
    """Top-level package of a dotted repro module name.

    ``repro.detection.stream`` -> ``detection``; root modules
    (``repro``, ``repro.cli``) -> ``repro`` / ``cli``.
    """
    parts = module.split(".")
    if len(parts) == 1:
        return "repro"
    return parts[1]


@register
class ImportLayeringRule(ProjectRule):
    name = "import-layering"
    description = (
        "upward imports against the docs/LINT.md layer DAG, imports of "
        "cli, escapes from the isolated lint package, and import cycles"
    )

    def check_project(self, project: ProjectUnderLint) -> Iterable[Finding]:
        layers, isolated = load_layer_map(project.root)
        edges = project.resolved_imports()

        for module in sorted(edges):
            record = project.modules[module]
            source_package = package_of(module)
            source_layer = layers.get(source_package)
            if source_layer is None and source_package not in isolated:
                site = record.summary.imports[0] \
                    if record.summary.imports else None
                yield project.finding(
                    self.name, record,
                    site.line if site else 1, site.col if site else 1,
                    f"package '{source_package}' is not in the layer map "
                    "(docs/LINT.md ```layers block); add it at its layer "
                    "so the DAG stays enforced",
                )
                continue
            for target, site in edges[module]:
                target_package = package_of(target)
                if target_package == source_package:
                    continue
                if source_package in isolated:
                    yield project.finding(
                        self.name, record, site.line, site.col,
                        f"isolated package '{source_package}' imports "
                        f"'{target}': {source_package} must stay "
                        "self-contained (docs/LINT.md layer map)",
                    )
                    continue
                if target_package == "cli":
                    yield project.finding(
                        self.name, record, site.line, site.col,
                        f"'{module}' imports '{target}': nothing imports "
                        "the cli layer (it is the top of the DAG)",
                    )
                    continue
                if target_package in isolated:
                    continue
                target_layer = layers.get(target_package)
                if target_layer is None:
                    yield project.finding(
                        self.name, record, site.line, site.col,
                        f"package '{target_package}' is not in the layer "
                        "map (docs/LINT.md ```layers block); add it at its "
                        "layer so the DAG stays enforced",
                    )
                    continue
                if source_layer is not None and target_layer > source_layer:
                    yield project.finding(
                        self.name, record, site.line, site.col,
                        f"upward import: '{module}' (layer {source_layer}, "
                        f"{source_package}) imports '{target}' (layer "
                        f"{target_layer}, {target_package}); dependencies "
                        "must point down the docs/LINT.md layer DAG",
                    )

        for cycle in project.import_cycles():
            first = cycle[0]
            record = project.modules[first]
            site = next(
                (s for target, s in edges.get(first, []) if target in cycle),
                None,
            )
            yield project.finding(
                self.name, record,
                site.line if site else 1, site.col if site else 1,
                "import cycle: " + " -> ".join(cycle + [first]),
            )
