"""spawn-safety: worker-pool callables must be module-level and picklable.

The bug class (PR 8): under the ``spawn`` start method every pool
initializer, its ``initargs``, and every task function is *pickled* into
the child.  Lambdas, nested functions (closures), and bound methods
either fail to pickle outright or drag an unpicklable captured object
(an mmap-backed index, an open handle) with them — which is exactly why
the repo's pools take module-level functions plus picklable re-attach
specs (:mod:`repro.parallel.pool`).  A lambda initializer works fine on
a fork platform and then breaks macOS/Windows CI, so the mistake
survives local testing.

Flags, anywhere in the tree:

* ``initializer=`` / task-function arguments that are lambdas;
* names bound to a nested ``def`` or a local ``lambda`` assignment in
  the enclosing function;
* bound-method references (``self.worker``) — picklable only when the
  whole instance is, which pool call sites must not rely on.

Task-function positions are the first argument of
``map``/``imap``/``imap_unordered``/``starmap``/``apply_async``/
``map_async``/``starmap_async`` on a receiver whose name mentions
``pool`` (the repo idiom; thread executors use ``executor.submit`` and
are exempt because threads never pickle).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import call_name, enclosing_function, identifier_words

_POOL_METHODS = frozenset({
    "map", "imap", "imap_unordered", "starmap", "apply_async",
    "map_async", "starmap_async",
})


def _local_callables(
    scope: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names bound inside *scope* to defs or lambdas (i.e. closures)."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _candidate_callables(node: ast.Call) -> Iterator[tuple[ast.expr, str]]:
    """(expression, role) pairs shipped to workers by this call."""
    for keyword in node.keywords:
        if keyword.arg == "initializer":
            yield keyword.value, "initializer"
        elif keyword.arg == "initargs" and isinstance(keyword.value, ast.Tuple):
            for element in keyword.value.elts:
                yield element, "initargs element"
    if isinstance(node.func, ast.Attribute) and node.func.attr in _POOL_METHODS:
        receiver_words = identifier_words(ast.unparse(node.func.value))
        if "pool" in receiver_words and node.args:
            yield node.args[0], f"task function of .{node.func.attr}()"


def _unwrap_partial(expr: ast.expr) -> ast.expr:
    """``functools.partial(f, ...)`` ships ``f``; check that instead."""
    if isinstance(expr, ast.Call) and call_name(expr).rpartition(".")[2] == "partial":
        if expr.args:
            return _unwrap_partial(expr.args[0])
    return expr


@register
class SpawnSafetyRule(Rule):
    name = "spawn-safety"
    description = (
        "lambdas, closures, or bound methods shipped into worker pools "
        "(initializer=, initargs=, pool task functions) break under spawn"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        module_level: set[str] = {
            statement.name
            for statement in module.tree.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef))
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for expr, role in _candidate_callables(node):
                problem = self._problem(expr, node, module, module_level,
                                        callable_position="initargs" not in role)
                if problem is not None:
                    yield module.finding(
                        self.name, expr,
                        f"{problem} as {role}: under the spawn start method "
                        "this is pickled into the child and fails (or drags "
                        "unpicklable captured state); use a module-level "
                        "function plus a picklable re-attach spec "
                        "(see repro.parallel.pool), or justify with "
                        "# lint: allow-spawn-safety(<reason>)",
                    )

    @staticmethod
    def _problem(
        expr: ast.expr,
        call: ast.Call,
        module: ModuleUnderLint,
        module_level: set[str],
        *,
        callable_position: bool,
    ) -> str | None:
        """Why *expr* cannot be shipped to a spawned worker, or ``None``.

        ``initargs`` elements are pickled *data* (picklable instance
        attributes are the repo's re-attach-spec idiom), so only lambdas
        and closures are flagged there; in callable positions
        (``initializer=``, pool task functions) bound methods are
        flagged too.
        """
        expr = _unwrap_partial(expr)
        if isinstance(expr, ast.Lambda):
            return "lambda"
        if isinstance(expr, ast.Constant) and expr.value is None:
            return None
        if isinstance(expr, ast.Attribute):
            base = ast.unparse(expr.value)
            if callable_position and (base == "self" or base.startswith("self.")):
                return f"bound method {ast.unparse(expr)!r}"
            return None  # dotted module attribute: importable, picklable
        if isinstance(expr, ast.Name):
            if expr.id in module_level:
                return None
            scope = enclosing_function(call, module.parents)
            if scope is not None and expr.id in _local_callables(scope):
                return f"non-module-level callable {expr.id!r}"
            return None  # parameter / import / unresolvable: give benefit of doubt
        return None
