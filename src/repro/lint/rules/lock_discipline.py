"""lock-discipline: declared-guarded attributes are touched under their lock.

The bug class: :class:`OnlineDetector` backs a thread pool, so its LRU
cache, counters, and in-flight gauge are only correct because every
access happens inside ``with self._cache_lock:`` / ``with
self._stats.lock:`` blocks.  Nothing ties the lock to the data, though —
a refactor that adds one unguarded ``self._cache[...]`` read compiles,
passes single-threaded tests, and corrupts the OrderedDict under real
concurrency.

Two declaration forms make the association machine-checkable:

* a trailing ``# guarded-by: <lock>`` comment on the attribute's
  assignment (usually in ``__init__``); ``[writes]`` after the lock name
  relaxes the rule to guarded *writes* only (for state that is safe to
  read dirty — e.g. rebinding guarded by a reload lock while event-loop
  readers tolerate either generation);
* a ``_GUARDED_BY = {"attr": "lock", ...}`` class attribute on a class
  whose *instances* are shared (e.g. a stats dataclass); accesses are
  then checked through any ``self.<name> = ThatClass(...)`` alias in the
  same module (``self._stats.queries`` must sit under ``with
  self._stats.lock:``).

Accesses inside the owning class's ``__init__`` are exempt (the object
is not yet published).  Intentional dirty reads carry
``# lint: allow-lock-discipline(<reason>)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import call_name, enclosing_class, enclosing_function


@dataclass(frozen=True)
class _Guard:
    base: str        #: receiver expression text, e.g. "self" or "self._stats"
    attr: str
    lock_expr: str   #: required with-expression, e.g. "self._cache_lock"
    writes_only: bool
    owner: str       #: class whose methods are in scope (its __init__ exempt)


def _guarded_by_map(class_def: ast.ClassDef) -> dict[str, str]:
    """The ``_GUARDED_BY`` dict literal of *class_def*, if present."""
    for statement in class_def.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                if isinstance(value, ast.Dict):
                    mapping: dict[str, str] = {}
                    for key, lock in zip(value.keys, value.values):
                        if (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)
                                and isinstance(lock, ast.Constant)
                                and isinstance(lock.value, str)):
                            mapping[key.value] = lock.value
                    return mapping
    return {}


def _self_attr_assignments(
    scope: ast.AST,
) -> Iterable[tuple[ast.stmt, str, ast.expr | None]]:
    """(statement, attr-name, value) for every ``self.X = ...`` under *scope*."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    yield node, target.attr, node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                yield node, target.attr, node.value


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "attributes declared '# guarded-by: <lock>' (or via _GUARDED_BY) "
        "read/written outside a 'with <lock>:' block"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        guards = self._collect_guards(module)
        if not guards:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base_text = ast.unparse(node.value)
            for guard in guards:
                if node.attr != guard.attr or base_text != guard.base:
                    continue
                owner_class = enclosing_class(node, module.parents)
                if owner_class is None or owner_class.name != guard.owner:
                    continue
                function = enclosing_function(node, module.parents)
                if function is not None and function.name == "__init__":
                    continue
                is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                if guard.writes_only and not is_write:
                    continue
                if self._lock_held(node, guard.lock_expr, module):
                    continue
                access = "write to" if is_write else "read of"
                yield module.finding(
                    self.name, node,
                    f"{access} {guard.base}.{guard.attr} outside "
                    f"'with {guard.lock_expr}:' — the attribute is declared "
                    f"guarded-by {guard.lock_expr.rpartition('.')[2]}; hold "
                    "the lock or justify with "
                    "# lint: allow-lock-discipline(<reason>)",
                )

    @staticmethod
    def _lock_held(node: ast.AST, lock_expr: str, module: ModuleUnderLint) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if ast.unparse(item.context_expr) == lock_expr:
                        return True
        return False

    @staticmethod
    def _collect_guards(module: ModuleUnderLint) -> list[_Guard]:
        guards: list[_Guard] = []
        class_maps: dict[str, dict[str, str]] = {}
        classes = [node for node in ast.walk(module.tree)
                   if isinstance(node, ast.ClassDef)]
        for class_def in classes:
            mapping = _guarded_by_map(class_def)
            if mapping:
                class_maps[class_def.name] = mapping
                # Direct accesses inside the declaring class itself.
                for attr, lock in mapping.items():
                    guards.append(_Guard(
                        base="self", attr=attr, lock_expr=f"self.{lock}",
                        writes_only=False, owner=class_def.name,
                    ))
        for class_def in classes:
            for statement, attr, value in _self_attr_assignments(class_def):
                # Comment-declared guard on this assignment line.
                decl = module.pragmas.guards.get(statement.lineno)
                if decl is not None:
                    guards.append(_Guard(
                        base="self", attr=attr, lock_expr=f"self.{decl.lock}",
                        writes_only=decl.writes_only, owner=class_def.name,
                    ))
                # Alias to an instance of a _GUARDED_BY class.
                if isinstance(value, ast.Call):
                    callee = call_name(value).rpartition(".")[2]
                    mapping = class_maps.get(callee)
                    if mapping:
                        for guarded_attr, lock in mapping.items():
                            guards.append(_Guard(
                                base=f"self.{attr}", attr=guarded_attr,
                                lock_expr=f"self.{attr}.{lock}",
                                writes_only=False, owner=class_def.name,
                            ))
        return guards
