"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
import re
from typing import Iterator

_SNAKE_SPLIT = re.compile(r"[^A-Za-z0-9]+")


def identifier_words(name: str) -> set[str]:
    """Lower-cased word fragments of an identifier (``redirect_target`` ->
    ``{"redirect", "target"}``); camelCase is split too."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    return {part.lower() for part in _SNAKE_SPLIT.split(spaced) if part}


def expression_words(node: ast.AST) -> set[str]:
    """Every identifier word appearing anywhere in *node*'s subtree."""
    words: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            words |= identifier_words(child.id)
        elif isinstance(child, ast.Attribute):
            words |= identifier_words(child.attr)
        elif isinstance(child, ast.arg):
            words |= identifier_words(child.arg)
    return words


def string_constants(node: ast.AST) -> Iterator[str]:
    """Every string literal in *node*'s subtree (f-string parts included)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child.value


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee (``os.replace`` -> ``"os.replace"``)."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for nested Name/Attribute chains, ``""`` otherwise."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function definition containing *node*, if any."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def enclosing_class(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.ClassDef | None:
    """The innermost class definition containing *node*, if any."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = parents.get(current)
    return None


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """True when *node* carries a ``@dataclass``/``@dataclasses.dataclass``."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> list[ast.AnnAssign]:
    """The field declarations of a dataclass body (ClassVar excluded)."""
    fields: list[ast.AnnAssign] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(statement)
    return fields
