"""fold-safety: case folding on label-valued text must be length-preserving.

The bug class (PRs 2/4/5): ``str.lower()`` can change a label's length —
U+0130 "İ" lowers to "i" + U+0307, ß title-cases to "Ss" — so any code
that lowers a domain label and then indexes positions against the
original string (substitution positions, revert alignment) silently
corrupts verdicts.  The repo-wide fix routes label folding through
:func:`repro.idn.idna_codec.fold_label`, which folds only the
length-preserving mappings.

This rule flags ``.lower()`` / ``.casefold()`` / ``.title()`` calls whose
receiver expression mentions a label/domain-flavoured identifier
(``label``, ``domain``, ``host``, ``name``, ``ns``, ``tld``, ...).
Sites that are genuinely plain hostname normalization — fold-then-
compare, never position-indexed — carry
``# lint: allow-fold-safety(<reason>)`` pragmas, turning the PR 5
hand-audit's conclusions into machine-visible rationale next to the
code.  :mod:`repro.idn.idna_codec` itself is allowlisted: it is the one
module allowed to implement folding in terms of ``str.lower()``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import expression_words

#: Methods whose result can differ in length from their input.
FOLD_METHODS = frozenset({"lower", "casefold", "title"})

#: Identifier words that mark an expression as label/domain-valued.
LABEL_WORDS = frozenset({
    "label", "labels", "domain", "domains", "host", "hostname", "hosts",
    "name", "names", "ns", "nameserver", "nameservers", "tld", "tlds",
    "idn", "idns", "ulabel", "alabel", "reference", "references",
    "candidate", "candidates", "target", "targets",
})

#: Module paths (suffix-matched) allowed to implement folding directly.
ALLOWED_MODULES = ("repro/idn/idna_codec.py",)


@register
class FoldSafetyRule(Rule):
    name = "fold-safety"
    description = (
        "length-changing case folds (.lower/.casefold/.title) on "
        "label-valued expressions; use repro.idn.idna_codec.fold_label"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.rel_path.endswith(ALLOWED_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in FOLD_METHODS:
                continue
            if node.args or node.keywords:
                continue  # str fold methods take no arguments
            words = expression_words(func.value)
            hits = sorted(words & LABEL_WORDS)
            if not hits:
                continue
            receiver = ast.unparse(func.value)
            yield module.finding(
                self.name, node,
                f".{func.attr}() on label-valued expression {receiver!r} "
                f"(identifier {', '.join(hits)}): str.{func.attr}() can change "
                "the string's length (U+0130, ß), breaking position indexing; "
                "use repro.idn.idna_codec.fold_label or justify with "
                "# lint: allow-fold-safety(<reason>)",
            )
