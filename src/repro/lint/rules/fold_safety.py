"""fold-safety: case folding on label-valued text must be length-preserving.

The bug class (PRs 2/4/5): ``str.lower()`` can change a label's length —
U+0130 "İ" lowers to "i" + U+0307, ß title-cases to "Ss" — so any code
that lowers a domain label and then indexes positions against the
original string (substitution positions, revert alignment) silently
corrupts verdicts.  The repo-wide fix routes label folding through
:func:`repro.idn.idna_codec.fold_label`, which folds only the
length-preserving mappings.

v2 of this rule is built on the taint dataflow
(:mod:`repro.lint.dataflow`): a ``.lower()`` / ``.casefold()`` /
``.title()`` call is flagged when its receiver *value* is label-tainted
— seeded from label-named parameters, ``fold_label``-family producers,
and ``.labels``-style attributes, then propagated through assignments,
tuple unpacks, loops, and comprehensions to a fixpoint.  Two
consequences over the v1 identifier heuristic:

* renames no longer escape (``s = candidate_label; s.lower()`` is
  flagged: the *value* is tainted, whatever the variable is called);
* plain hostname/owner-name normalization no longer fires (hostnames
  are compared, not position-indexed), so the hand-written
  ``allow-fold-safety`` pragmas that PR 5's audit accumulated are
  deleted rather than suppressed.

Sinks whose folded result provably flows only into comparisons —
comparison operands, dict-lookup keys, ``startswith``/``endswith``
receivers, ``.get()`` arguments, or a name used exclusively in those
positions — are proven safe and not flagged even when tainted: a
compare-only fold cannot desynchronise position indexing.
:mod:`repro.idn.idna_codec` itself is allowlisted: it is the one module
allowed to implement folding in terms of ``str.lower()``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.dataflow import DEFAULT_SETTINGS, Taint, analyse_module
from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import enclosing_function

#: Module paths (suffix-matched) allowed to implement folding directly.
ALLOWED_MODULES = ("repro/idn/idna_codec.py",)

#: Methods whose receiver being a folded value proves compare-only use.
_COMPARE_RECEIVER_METHODS = frozenset({"startswith", "endswith"})

#: Callees whose *argument* being a folded value proves lookup-only use.
_LOOKUP_ARGUMENT_METHODS = frozenset({"get"})


@register
class FoldSafetyRule(Rule):
    name = "fold-safety"
    description = (
        "length-changing case folds (.lower/.casefold/.title) on "
        "label-tainted values; use repro.idn.idna_codec.fold_label"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.rel_path.endswith(ALLOWED_MODULES):
            return
        taint = analyse_module(module.tree, DEFAULT_SETTINGS)
        for call, observation in taint.sinks.items():
            if observation.taint is not Taint.TAINTED:
                continue
            if self._compare_only(module, call):
                continue
            func = call.func
            assert isinstance(func, ast.Attribute)  # sinks are method calls
            receiver = ast.unparse(func.value)
            yield module.finding(
                self.name, call,
                f".{func.attr}() on label-tainted value {receiver!r}: "
                f"str.{func.attr}() can change the string's length "
                "(U+0130, ß), breaking position indexing; fold with "
                "repro.idn.idna_codec.fold_label or justify with "
                "# lint: allow-fold-safety(<reason>)",
            )

    # -- compare-only proof -------------------------------------------------

    def _compare_only(self, module: ModuleUnderLint, call: ast.Call) -> bool:
        """True when the folded value provably never feeds back into
        position-indexed use: every consumer is a comparison-shaped
        context, directly or through one single-name assignment."""
        parent = module.parents.get(call)
        if self._is_compare_context(parent, call):
            return True
        if (isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
                and parent.value is call):
            return self._name_used_compare_only(
                module, parent, parent.targets[0].id)
        return False

    def _is_compare_context(self, parent: ast.AST | None,
                            node: ast.AST) -> bool:
        if isinstance(parent, ast.Compare):
            return True
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            # d[x.lower()] — a dict/set lookup key, not an indexed label.
            return True
        if (isinstance(parent, ast.Attribute)
                and parent.attr in _COMPARE_RECEIVER_METHODS):
            return True
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _LOOKUP_ARGUMENT_METHODS):
                return True
        return False

    def _name_used_compare_only(self, module: ModuleUnderLint,
                                assignment: ast.Assign, name: str) -> bool:
        """Flow-insensitive scan: every Load of *name* in the enclosing
        scope sits in a compare-shaped context."""
        scope: ast.AST | None = enclosing_function(assignment, module.parents)
        if scope is None:
            scope = module.tree
        used = False
        for node in ast.walk(scope):
            if (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                used = True
                if not self._is_compare_context(module.parents.get(node), node):
                    return False
        return used
