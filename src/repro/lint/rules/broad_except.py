"""broad-except: ``except Exception`` must re-raise, surface, or justify.

The bug class: a silent ``except Exception: pass`` around a probe or a
worker bootstrap converts every future bug in that path — including the
invariant violations the other rules exist for — into "detection
quietly returns nothing".  PR 1 already paid for one of these
(uncounted ``IDNAError`` drops skewing ``DetectionTiming``).

A broad handler (bare ``except:``, ``except Exception``, ``except
BaseException``) passes the rule when its body

* re-raises (any ``raise``), or
* surfaces the failure: calls ``warnings.warn`` or a logger-ish method
  (``.warning()``/``.error()``/``.exception()``/``.critical()``), or
* returns/yields an error payload that *names the caught exception*
  (``return {"error": f"... {exc}"}`` — the serving layer's
  error-reply idiom counts as surfacing, swallowing does not).

Anything else needs ``# lint: allow-broad-except(<reason>)`` on the
``except`` line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import call_name

_BROAD_NAMES = frozenset({"Exception", "BaseException"})
_SURFACE_METHODS = frozenset({"warn", "warning", "error", "exception", "critical"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BROAD_NAMES
    if isinstance(handler.type, ast.Tuple):
        return any(isinstance(element, ast.Name) and element.id in _BROAD_NAMES
                   for element in handler.type.elts)
    return False


def _handles(handler: ast.ExceptHandler) -> bool:
    """True when the body re-raises or surfaces the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            callee = call_name(node)
            if callee == "warnings.warn":
                return True
            if callee.rpartition(".")[2] in _SURFACE_METHODS and "." in callee:
                return True
        if isinstance(node, (ast.Return, ast.Yield)) and handler.name is not None:
            value = node.value
            if value is not None and any(
                isinstance(inner, ast.Name) and inner.id == handler.name
                for inner in ast.walk(value)
            ):
                return True
    return False


@register
class BroadExceptRule(Rule):
    name = "broad-except"
    description = (
        "except Exception/BaseException (or bare except) that neither "
        "re-raises nor surfaces the failure"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _handles(node):
                continue
            caught = ast.unparse(node.type) if node.type is not None else "everything"
            yield module.finding(
                self.name, node,
                f"broad handler catches {caught} without re-raising or "
                "surfacing it: future bugs in this path disappear silently; "
                "narrow the type, re-raise, emit a warning, or justify with "
                "# lint: allow-broad-except(<reason>)",
            )
