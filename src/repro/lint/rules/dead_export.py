"""dead-export: public symbols someone actually uses.

A public top-level symbol that nothing in ``src``, ``tests``, or
``benchmarks`` references is either dead code (delete it), an internal
helper wearing a public name (prefix it with ``_``), or a deliberate
extension surface (baseline it with a justification — the finding key
is ``(rule, path, message)``, so the baseline entry survives reshuffles).
Dead publics are how reproduction repos rot: the symbol keeps compiling,
keeps appearing in ``dir()``, and silently stops matching the paper's
pipeline.

The reference universe is the whole :class:`~repro.lint.project.
ProjectUnderLint` plus the harvested reference roots (``tests``,
``benchmarks``, ``examples``, ``scripts`` by default): every
Load-context name, attribute name, imported name, and identifier-valued
string constant (which covers ``__all__`` lists, ``getattr`` strings,
and registry keys).  Exempt:

* underscore-prefixed names (already private);
* decorated defs/classes — decoration is the registration idiom
  (``@register`` rule classes, hook tables): the symbol is consumed via
  the registry, not by name;
* re-exports — the importing ``__init__`` necessarily references the
  name it re-exports, so they are covered through their import site.

Only in-package modules (``repro.*``) are checked; fixtures and scripts
outside the package have no public-API contract.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import Finding, ProjectRule, register
from repro.lint.project import ProjectUnderLint


@register
class DeadExportRule(ProjectRule):
    name = "dead-export"
    description = (
        "public top-level symbols never referenced from src, tests, or "
        "benchmarks"
    )

    uses_reference_roots = True

    def check_project(self, project: ProjectUnderLint) -> Iterable[Finding]:
        referenced = project.referenced_names
        for module in sorted(project.modules):
            record = project.modules[module]
            for export in record.summary.exports:
                if export.decorated or export.kind == "re-export":
                    continue
                if export.name in referenced:
                    continue
                yield project.finding(
                    self.name, record, export.line, export.col,
                    f"public {export.kind} '{export.name}' is never "
                    "referenced from src, tests, or benchmarks; delete "
                    "it, rename it with a leading underscore, or "
                    "baseline it with a justification",
                )
