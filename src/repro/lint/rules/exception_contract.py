"""exception-contract: only the CLI layer talks to the terminal.

Library modules signal failure by raising library exceptions; the CLI
layer catches them, prints, and chooses the process exit code.  Three
historical leak patterns break that contract and each has bitten a
Python project shaped like this one:

* a library module raising ``CLIError`` couples deep internals to the
  command-line surface (and makes the error unrenderable when the same
  code runs under the asyncio serving layer);
* a library ``sys.exit()`` (or ``raise SystemExit`` / ``os._exit``)
  kills the embedding process — the server, a worker pool child, a
  pytest run — instead of reporting;
* a library ``print()`` to stdout corrupts machine-readable output
  (the JSON report, piped scan results) with stray prose.

This project rule consumes the contract sites collected per-module by
:func:`repro.lint.project.summarise` (which already skips anything
under ``if __name__ == "__main__":``) and flags them in every module
that is not CLI-shaped.  CLI-shaped means: the top-level ``cli``
module, any module whose last component is ``cli`` or ``__main__``
(each subsystem may own a CLI face, e.g. ``repro.lint.cli``), or a
module carrying stderr-only output.  ``print(file=sys.stderr)`` is
always fine — diagnostics belong on stderr.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import Finding, ProjectRule, register
from repro.lint.project import ProjectUnderLint

#: Module name components that mark a module as CLI-shaped.
_CLI_COMPONENTS = frozenset({"cli", "__main__"})

_MESSAGES = {
    "cli-error": (
        "library module raises {detail}: CLIError belongs to the cli "
        "layer; raise a library exception and let the CLI map it"
    ),
    "sys-exit": (
        "library module calls {detail}: exiting the process is the cli "
        "layer's decision; raise instead (this code also runs under the "
        "serving layer and worker pools)"
    ),
    "print-stdout": (
        "library module writes to stdout via {detail}: stdout belongs "
        "to the cli layer's machine-readable output; use logging or "
        "print(..., file=sys.stderr)"
    ),
}


def is_cli_module(module: str) -> bool:
    """True for modules allowed to print, exit, and raise CLIError."""
    return module.split(".")[-1] in _CLI_COMPONENTS


@register
class ExceptionContractRule(ProjectRule):
    name = "exception-contract"
    description = (
        "CLIError raises, sys.exit calls, and stdout prints outside "
        "the cli layer"
    )

    def check_project(self, project: ProjectUnderLint) -> Iterable[Finding]:
        for module in sorted(project.modules):
            if is_cli_module(module):
                continue
            record = project.modules[module]
            for site in record.summary.contracts:
                template = _MESSAGES.get(site.kind)
                if template is None:
                    continue
                yield project.finding(
                    self.name, record, site.line, site.col,
                    template.format(detail=site.detail),
                )
