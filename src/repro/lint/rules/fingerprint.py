"""fingerprint-completeness: cache keys must cover every config field.

The bug class (PR 7 hand-threaded the fix): artifact caches are keyed by
a fingerprint dataclass (:class:`CacheKey`, :class:`IndexKey`).  Add a
behaviour-changing field to the builder config and forget to thread it
into the fingerprint function, and two *different* configurations hash
to the same artifact — a silent verdict-identity bug, the worst kind.

A function is declared to be the fingerprint of a dataclass with a
``# lint: fingerprint(ClassName)`` marker on (or directly above) its
``def`` line.  The rule then requires every field of that dataclass to
be *covered* by the function body, where covered means any of:

* an attribute access with the field's name (``self.threshold``,
  ``key.sources``);
* a keyword argument of that name in a call to ``ClassName(...)``
  (the ``key_for``-style constructor idiom);
* a call to ``dataclasses.asdict`` anywhere in the body (covers all).

Fields that are deliberately *not* inputs (e.g. a format-version
constant bumped by hand) opt out with a trailing
``# lint: fingerprint-exempt(<reason>)`` on their declaration line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import Finding, ModuleUnderLint, Rule, register
from repro.lint.rules.common import call_name, dataclass_fields, is_dataclass_def


def _covered_names(body: list[ast.stmt], class_name: str) -> tuple[set[str], bool]:
    """(attribute/keyword names referenced, saw-asdict) over *body*."""
    covered: set[str] = set()
    saw_asdict = False
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Attribute):
                covered.add(node.attr)
            elif isinstance(node, ast.Call):
                callee = call_name(node)
                if callee in ("asdict", "dataclasses.asdict"):
                    saw_asdict = True
                if callee.rpartition(".")[2] == class_name:
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            covered.add(keyword.arg)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # `payload["sources"]` after an asdict() round-trip.
                covered.add(node.value)
    return covered, saw_asdict


@register
class FingerprintRule(Rule):
    name = "fingerprint-completeness"
    description = (
        "functions marked '# lint: fingerprint(Class)' must cover every "
        "field of that dataclass (missing field == cache-key collision)"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            class_name = module.pragmas.marker_for_def(node.lineno)
            if class_name is None:
                continue
            target = classes.get(class_name)
            if target is None:
                yield module.finding(
                    self.name, node,
                    f"fingerprint marker names unknown class {class_name!r} "
                    "(the dataclass must live in the same module)",
                )
                continue
            if not is_dataclass_def(target):
                yield module.finding(
                    self.name, node,
                    f"fingerprint marker target {class_name!r} is not a "
                    "dataclass",
                )
                continue
            required: dict[str, int] = {}
            for field_decl in dataclass_fields(target):
                assert isinstance(field_decl.target, ast.Name)
                # The exempt marker may trail the field line or sit above it.
                if (field_decl.lineno in module.pragmas.fingerprint_exempt
                        or field_decl.lineno - 1 in module.pragmas.fingerprint_exempt):
                    continue
                required[field_decl.target.id] = field_decl.lineno
            covered, saw_asdict = _covered_names(node.body, class_name)
            if saw_asdict:
                continue
            missing = sorted(set(required) - covered)
            if missing:
                yield module.finding(
                    self.name, node,
                    f"fingerprint function {node.name!r} does not cover "
                    f"field(s) {', '.join(missing)} of {class_name}: two "
                    "configs differing only there would collide on one "
                    "cached artifact; thread the field through or mark it "
                    "# lint: fingerprint-exempt(<reason>)",
                )
