"""``python -m repro.lint`` — same entry point as the ``repro-lint`` script."""

from __future__ import annotations

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
