"""Whole-project analysis: module graph, symbol table, incremental cache.

``repro-lint`` v1 analysed one file at a time, so every invariant that
spans modules — the import-layer DAG, the CLI exception contract, public
symbols nobody uses — was invisible to it.  This module adds the
project layer:

* :func:`summarise` extracts a :class:`ModuleSummary` from one parsed
  file in a single AST walk: resolved intra-repo imports (relative
  imports included), the top-level symbol table (defs, classes,
  constants, ``__init__`` re-exports), every referenced identifier,
  best-effort call edges, and the exception-contract facts
  (``CLIError`` raises, ``sys.exit``, stdout prints);
* :class:`ProjectUnderLint` holds one :class:`FileRecord` per linted
  file — a live :class:`~repro.lint.engine.ModuleUnderLint` when the
  file was (re-)parsed, or a summary restored from the cache when it
  was not — plus the cross-file indexes project rules consume
  (``modules`` by dotted name, resolved import edges, the global
  referenced-name set);
* :class:`LintCache` persists per-file results to ``.lint-cache.json``
  keyed on the file's sha256 **and** an engine key (cache format,
  analysis version, schema version, Python minor version, selected rule
  names), so a warm run re-analyses only files whose content — or whose
  engine — changed.  Any key mismatch or corruption degrades to an
  empty cache, never to stale results.

Project *rules* (subclasses of :class:`~repro.lint.engine.ProjectRule`)
are re-evaluated on every run from the summaries — only the per-file
parse and per-file rule results are cached, because a cross-module
finding can change when *other* files change.

The cache file format is documented in ``docs/LINT.md``.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.lint.engine import Finding, LintResult, ModuleUnderLint
from repro.lint.pragmas import PragmaMap

#: Bumped when analysis semantics change (new summary fields, different
#: rule behaviour on identical source): invalidates every cache entry.
ANALYSIS_VERSION = 2

#: Cache file format version (the on-disk JSON envelope).
CACHE_FORMAT_VERSION = 1

DEFAULT_CACHE_NAME = ".lint-cache.json"

#: Directories harvested for referenced names when they exist under the
#: project root (so ``repro-lint src`` knows a symbol is used by a test).
DEFAULT_REFERENCE_ROOT_NAMES = ("tests", "benchmarks", "examples", "scripts")


def file_sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def module_name_for(path: Path) -> str | None:
    """Dotted module name for *path* when it sits inside a ``repro`` tree.

    Works for the real ``src/repro`` layout and for fixture mini-projects
    (``.../project_demo/src/repro/...``); files outside any ``repro``
    directory — tests, benchmarks, standalone fixtures — return ``None``
    and participate only as reference providers and per-file rule
    targets.
    """
    parts = list(path.parts)
    package_index = -1
    for index, part in enumerate(parts[:-1]):
        if part == "repro":
            package_index = index
    if package_index < 0:
        return None
    module_parts = parts[package_index:-1]
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    if stem != "__init__":
        module_parts = module_parts + [stem]
    return ".".join(module_parts)


@dataclass(frozen=True)
class ImportSite:
    """One intra-repo import statement, already made absolute."""

    module: str
    names: tuple[str, ...]
    line: int
    col: int

    def as_dict(self) -> dict[str, object]:
        return {"module": self.module, "names": list(self.names),
                "line": self.line, "col": self.col}


@dataclass(frozen=True)
class ExportSite:
    """One public top-level symbol of a module."""

    name: str
    kind: str  # "function" | "class" | "constant" | "re-export"
    line: int
    col: int
    decorated: bool

    def as_dict(self) -> dict[str, object]:
        return {"name": self.name, "kind": self.kind, "line": self.line,
                "col": self.col, "decorated": self.decorated}


@dataclass(frozen=True)
class ContractSite:
    """One exception-contract fact (consumed by ``exception-contract``)."""

    kind: str  # "cli-error" | "sys-exit" | "print-stdout"
    detail: str
    line: int
    col: int

    def as_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line,
                "col": self.col}


@dataclass
class ModuleSummary:
    """Everything project rules need to know about one file."""

    module: str | None
    is_package: bool
    imports: list[ImportSite] = field(default_factory=list)
    exports: list[ExportSite] = field(default_factory=list)
    referenced: frozenset[str] = frozenset()
    contracts: list[ContractSite] = field(default_factory=list)
    #: best-effort call edges: (enclosing qualname, dotted callee).
    calls: list[tuple[str, str]] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "is_package": self.is_package,
            "imports": [site.as_dict() for site in self.imports],
            "exports": [site.as_dict() for site in self.exports],
            "referenced": sorted(self.referenced),
            "contracts": [site.as_dict() for site in self.contracts],
            "calls": [list(edge) for edge in self.calls],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "ModuleSummary":
        module = raw.get("module")
        imports = [
            ImportSite(module=_as_str(item.get("module")),
                       names=_as_str_tuple(item.get("names")),
                       line=_as_int(item.get("line")),
                       col=_as_int(item.get("col")))
            for item in _dict_items(raw.get("imports"))
        ]
        exports = [
            ExportSite(name=_as_str(item.get("name")),
                       kind=_as_str(item.get("kind")),
                       line=_as_int(item.get("line")),
                       col=_as_int(item.get("col")),
                       decorated=bool(item.get("decorated")))
            for item in _dict_items(raw.get("exports"))
        ]
        contracts = [
            ContractSite(kind=_as_str(item.get("kind")),
                         detail=_as_str(item.get("detail")),
                         line=_as_int(item.get("line")),
                         col=_as_int(item.get("col")))
            for item in _dict_items(raw.get("contracts"))
        ]
        referenced_raw = raw.get("referenced")
        referenced = frozenset(
            str(name) for name in referenced_raw
        ) if isinstance(referenced_raw, list) else frozenset()
        calls_raw = raw.get("calls")
        calls: list[tuple[str, str]] = []
        if isinstance(calls_raw, list):
            for edge in calls_raw:
                if isinstance(edge, list) and len(edge) == 2:
                    calls.append((str(edge[0]), str(edge[1])))
        return cls(
            module=str(module) if isinstance(module, str) else None,
            is_package=bool(raw.get("is_package")),
            imports=imports,
            exports=exports,
            referenced=referenced,
            contracts=contracts,
            calls=calls,
        )


def _dict_items(raw: object) -> Iterator[dict[str, object]]:
    if isinstance(raw, list):
        for item in raw:
            if isinstance(item, dict):
                yield item


def _as_int(value: object, default: int = 1) -> int:
    return value if isinstance(value, int) and not isinstance(value, bool) \
        else default


def _as_str(value: object) -> str:
    return value if isinstance(value, str) else ""


def _as_str_tuple(value: object) -> tuple[str, ...]:
    if isinstance(value, list):
        return tuple(str(item) for item in value)
    return ()


# ---------------------------------------------------------------------------
# summary extraction


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def _is_main_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
    )


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (
        (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING")
        or (isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
    )


class _SummaryVisitor:
    """One recursive walk collecting every summary fact."""

    def __init__(self, module: str | None, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.imports: list[ImportSite] = []
        self.exports: list[ExportSite] = []
        self.referenced: set[str] = set()
        self.contracts: list[ContractSite] = []
        self.calls: list[tuple[str, str]] = []

    def run(self, tree: ast.Module) -> ModuleSummary:
        for statement in tree.body:
            self._top_level_exports(statement)
        self._visit_body(tree.body, qualname="<module>", in_main_guard=False,
                         collect_imports=True)
        return ModuleSummary(
            module=self.module,
            is_package=self.is_package,
            imports=self.imports,
            exports=self.exports,
            referenced=frozenset(self.referenced),
            contracts=self.contracts,
            calls=self.calls,
        )

    # -- symbol table -------------------------------------------------------

    def _top_level_exports(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._export(statement.name, "function", statement,
                         decorated=bool(statement.decorator_list))
        elif isinstance(statement, ast.ClassDef):
            self._export(statement.name, "class", statement,
                         decorated=bool(statement.decorator_list))
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    self._export(target.id, "constant", statement,
                                 decorated=False)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                self._export(statement.target.id, "constant", statement,
                             decorated=False)
        elif isinstance(statement, ast.ImportFrom) and self.is_package:
            # A package __init__ re-exporting names is part of the
            # public symbol table (the repro/__init__.py idiom).
            for alias in statement.names:
                if alias.name == "*":
                    continue
                self._export(alias.asname or alias.name, "re-export",
                             statement, decorated=False)

    def _export(self, name: str, kind: str, node: ast.stmt,
                decorated: bool) -> None:
        if name.startswith("_"):
            return
        self.exports.append(ExportSite(
            name=name, kind=kind, line=node.lineno, col=node.col_offset + 1,
            decorated=decorated,
        ))

    # -- the walk -----------------------------------------------------------

    def _visit_body(self, statements: Sequence[ast.stmt], qualname: str,
                    in_main_guard: bool, collect_imports: bool) -> None:
        for statement in statements:
            self._visit_statement(statement, qualname, in_main_guard,
                                  collect_imports)

    def _visit_statement(self, statement: ast.stmt, qualname: str,
                         in_main_guard: bool, collect_imports: bool) -> None:
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                self.referenced.add(alias.name.split(".")[-1])
                if alias.asname:
                    self.referenced.add(alias.asname)
                if collect_imports and (alias.name == "repro"
                                        or alias.name.startswith("repro.")):
                    self.imports.append(ImportSite(
                        module=alias.name, names=(),
                        line=statement.lineno, col=statement.col_offset + 1,
                    ))
            return
        if isinstance(statement, ast.ImportFrom):
            names = tuple(alias.name for alias in statement.names)
            for alias in statement.names:
                self.referenced.add(alias.name.split(".")[-1])
                if alias.asname:
                    self.referenced.add(alias.asname)
            base = self._absolute_import_base(statement)
            if collect_imports and base is not None:
                self.imports.append(ImportSite(
                    module=base, names=names,
                    line=statement.lineno, col=statement.col_offset + 1,
                ))
            return
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = statement.name if qualname == "<module>" \
                else f"{qualname}.{statement.name}"
            for decorator in statement.decorator_list:
                self._visit_expression(decorator, qualname, in_main_guard)
            self._visit_signature(statement, qualname, in_main_guard)
            # Function bodies run later (or never): imports inside them
            # are the lazy cycle-breaking idiom, not graph edges.
            self._visit_body(statement.body, inner, in_main_guard,
                             collect_imports=False)
            return
        if isinstance(statement, ast.ClassDef):
            inner = statement.name if qualname == "<module>" \
                else f"{qualname}.{statement.name}"
            for decorator in statement.decorator_list:
                self._visit_expression(decorator, qualname, in_main_guard)
            for base_expr in statement.bases:
                self._visit_expression(base_expr, qualname, in_main_guard)
            self._visit_body(statement.body, inner, in_main_guard,
                             collect_imports)
            return
        if _is_type_checking_guard(statement) and isinstance(statement, ast.If):
            # `if TYPE_CHECKING:` imports never execute: names count as
            # references, but they are not runtime import edges.
            self._visit_expression(statement.test, qualname, in_main_guard)
            self._visit_body(statement.body, qualname, in_main_guard,
                             collect_imports=False)
            self._visit_body(statement.orelse, qualname, in_main_guard,
                             collect_imports)
            return
        if _is_main_guard(statement) and isinstance(statement, ast.If):
            self._visit_expression(statement.test, qualname, in_main_guard)
            self._visit_body(statement.body, qualname, in_main_guard=True,
                             collect_imports=False)
            self._visit_body(statement.orelse, qualname, in_main_guard,
                             collect_imports)
            return
        if isinstance(statement, ast.Raise):
            self._contract_for_raise(statement, in_main_guard)
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._visit_expression(child, qualname, in_main_guard)
            elif isinstance(child, ast.stmt):
                self._visit_statement(child, qualname, in_main_guard,
                                      collect_imports)
            elif isinstance(child, (ast.excepthandler, ast.withitem,
                                    ast.match_case)):
                for grandchild in ast.iter_child_nodes(child):
                    if isinstance(grandchild, ast.expr):
                        self._visit_expression(grandchild, qualname,
                                               in_main_guard)
                    elif isinstance(grandchild, ast.stmt):
                        self._visit_statement(grandchild, qualname,
                                              in_main_guard, collect_imports)

    def _visit_signature(self, statement: ast.FunctionDef | ast.AsyncFunctionDef,
                         qualname: str, in_main_guard: bool) -> None:
        """Defaults and annotations are evaluated at def time: the names
        they mention (DEFAULT_* constants, type aliases) are references."""
        arguments = statement.args
        for default in list(arguments.defaults) + [
                d for d in arguments.kw_defaults if d is not None]:
            self._visit_expression(default, qualname, in_main_guard)
        parameters = (list(arguments.posonlyargs) + list(arguments.args)
                      + list(arguments.kwonlyargs))
        for extra in (arguments.vararg, arguments.kwarg):
            if extra is not None:
                parameters.append(extra)
        for parameter in parameters:
            if parameter.annotation is not None:
                self._visit_expression(parameter.annotation, qualname,
                                       in_main_guard)
        if statement.returns is not None:
            self._visit_expression(statement.returns, qualname, in_main_guard)

    def _visit_expression(self, expression: ast.expr, qualname: str,
                          in_main_guard: bool) -> None:
        for node in ast.walk(expression):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    self.referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.referenced.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value.isidentifier():
                    self.referenced.add(node.value)
            elif isinstance(node, ast.Call):
                callee = _dotted(node.func)
                if callee:
                    self.calls.append((qualname, callee))
                self._contract_for_call(node, in_main_guard)
            elif isinstance(node, ast.Lambda):
                self._visit_expression(node.body, qualname, in_main_guard)

    # -- contract facts -----------------------------------------------------

    def _contract_for_raise(self, statement: ast.Raise,
                            in_main_guard: bool) -> None:
        if in_main_guard or statement.exc is None:
            return
        exc = statement.exc
        name = _dotted(exc.func) if isinstance(exc, ast.Call) else _dotted(exc)
        short = name.rpartition(".")[2]
        if short == "CLIError":
            self.contracts.append(ContractSite(
                kind="cli-error", detail=name,
                line=statement.lineno, col=statement.col_offset + 1,
            ))
        elif short == "SystemExit":
            self.contracts.append(ContractSite(
                kind="sys-exit", detail=f"raise {name}",
                line=statement.lineno, col=statement.col_offset + 1,
            ))

    def _contract_for_call(self, call: ast.Call, in_main_guard: bool) -> None:
        if in_main_guard:
            return
        callee = _dotted(call.func)
        if callee in ("sys.exit", "os._exit"):
            self.contracts.append(ContractSite(
                kind="sys-exit", detail=f"{callee}()",
                line=call.lineno, col=call.col_offset + 1,
            ))
            return
        if callee == "print":
            # print() with no file= (or an explicit file=sys.stdout)
            # writes stdout; print(file=sys.stderr) and friends do not.
            file_keyword = next(
                (kw for kw in call.keywords if kw.arg == "file"), None)
            if file_keyword is None:
                detail = "print()"
            elif ast.unparse(file_keyword.value) == "sys.stdout":
                detail = "print(file=sys.stdout)"
            else:
                return
            self.contracts.append(ContractSite(
                kind="print-stdout", detail=detail,
                line=call.lineno, col=call.col_offset + 1,
            ))

    def _absolute_import_base(self, statement: ast.ImportFrom) -> str | None:
        if statement.level == 0:
            module = statement.module or ""
            if module == "repro" or module.startswith("repro."):
                return module
            return None
        if self.module is None:
            return None
        parts = self.module.split(".")
        # Inside a package __init__, level 1 refers to the package itself.
        drop = statement.level - 1 if self.is_package else statement.level
        if drop > len(parts):
            return None
        base_parts = parts[:len(parts) - drop] if drop else parts
        if statement.module:
            base_parts = base_parts + statement.module.split(".")
        if not base_parts or base_parts[0] != "repro":
            return None
        return ".".join(base_parts)


def summarise(tree: ast.Module, module: str | None,
              is_package: bool) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed file."""
    return _SummaryVisitor(module, is_package).run(tree)


def harvest_referenced_names(tree: ast.Module) -> frozenset[str]:
    """The referenced-name set alone (for reference-root files)."""
    visitor = _SummaryVisitor(module=None, is_package=False)
    visitor._visit_body(tree.body, qualname="<module>", in_main_guard=False,
                        collect_imports=False)
    return frozenset(visitor.referenced)


# ---------------------------------------------------------------------------
# suppression view (live pragmas or cache)


@dataclass
class SuppressionIndex:
    """Which (rule, line) findings are pragma-suppressed in one file."""

    lines: dict[str, set[int]] = field(default_factory=dict)

    @classmethod
    def from_pragmas(cls, pragmas: PragmaMap) -> "SuppressionIndex":
        lines: dict[str, set[int]] = {}
        for line, allows in pragmas.allows.items():
            for allow in allows:
                lines.setdefault(allow.rule, set()).add(line)
        return cls(lines=lines)

    @classmethod
    def from_dict(cls, raw: object) -> "SuppressionIndex":
        lines: dict[str, set[int]] = {}
        if isinstance(raw, dict):
            for rule, values in raw.items():
                if isinstance(values, list):
                    lines[str(rule)] = {int(value) for value in values}
        return cls(lines=lines)

    def as_dict(self) -> dict[str, list[int]]:
        return {rule: sorted(values) for rule, values in sorted(self.lines.items())}

    def covers(self, rule: str, line: int) -> bool:
        """A pragma covers its own line and the line directly below."""
        covered = self.lines.get(rule)
        if not covered:
            return False
        return line in covered or (line - 1) in covered


# ---------------------------------------------------------------------------
# the incremental cache


class LintCache:
    """sha256-keyed per-file result cache behind ``.lint-cache.json``."""

    def __init__(self, path: Path | None, key: dict[str, object]) -> None:
        self.path = path
        self.key = key
        self.entries: dict[str, dict[str, object]] = {}
        self.references: dict[str, dict[str, object]] = {}
        self._dirty = False

    @classmethod
    def disabled(cls) -> "LintCache":
        return cls(path=None, key={})

    @property
    def enabled(self) -> bool:
        return self.path is not None

    @classmethod
    def engine_key(cls, rule_names: Sequence[str]) -> dict[str, object]:
        from repro.lint.engine import SCHEMA_VERSION

        return {
            "cache_format": CACHE_FORMAT_VERSION,
            "analysis": ANALYSIS_VERSION,
            "schema": SCHEMA_VERSION,
            "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
            "rules": sorted(rule_names),
        }

    @classmethod
    def load(cls, path: Path, rule_names: Sequence[str]) -> "LintCache":
        key = cls.engine_key(rule_names)
        cache = cls(path=path, key=key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cache
        if not isinstance(payload, dict) or payload.get("key") != key:
            # Different engine/rules/python: every entry is invalid.
            cache._dirty = True
            return cache
        files = payload.get("files")
        if isinstance(files, dict):
            cache.entries = {
                str(rel): entry for rel, entry in files.items()
                if isinstance(entry, dict)
            }
        references = payload.get("references")
        if isinstance(references, dict):
            cache.references = {
                str(rel): entry for rel, entry in references.items()
                if isinstance(entry, dict)
            }
        return cache

    def lookup(self, rel_path: str, sha256: str) -> dict[str, object] | None:
        entry = self.entries.get(rel_path)
        if entry is not None and entry.get("sha256") == sha256:
            return entry
        return None

    def store(self, rel_path: str, entry: dict[str, object]) -> None:
        self.entries[rel_path] = entry
        self._dirty = True

    def lookup_reference(self, rel_path: str, sha256: str) -> frozenset[str] | None:
        entry = self.references.get(rel_path)
        if entry is not None and entry.get("sha256") == sha256:
            referenced = entry.get("referenced")
            if isinstance(referenced, list):
                return frozenset(str(name) for name in referenced)
        return None

    def store_reference(self, rel_path: str, sha256: str,
                        referenced: frozenset[str]) -> None:
        self.references[rel_path] = {
            "sha256": sha256, "referenced": sorted(referenced),
        }
        self._dirty = True

    def save(self) -> None:
        """Atomic write (temp + ``os.replace``), best-effort on failure."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": self.key,
            "files": self.entries,
            "references": self.references,
        }
        temp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            temp_path.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(temp_path, self.path)
        except OSError:
            # An unwritable cache store must never fail the lint run.
            try:
                temp_path.unlink()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# the project


@dataclass
class FileRecord:
    """One linted file: live AST or cache-restored summary."""

    path: Path
    rel_path: str
    sha256: str
    summary: ModuleSummary
    suppressions: SuppressionIndex
    #: present only when the file was parsed this run.
    module_under_lint: ModuleUnderLint | None = None
    #: per-file rule findings, post-pragma (filled by the engine).
    findings: list[Finding] = field(default_factory=list)
    pragma_suppressed: int = 0
    from_cache: bool = False


class ProjectUnderLint:
    """Every linted file parsed (or cache-restored) once, plus indexes."""

    def __init__(self, root: Path, records: Sequence[FileRecord],
                 extra_referenced: frozenset[str] = frozenset()) -> None:
        self.root = root
        self.records = list(records)
        #: dotted module name -> record, for in-package files only.
        self.modules: dict[str, FileRecord] = {}
        for record in self.records:
            if record.summary.module is not None:
                self.modules[record.summary.module] = record
        self.extra_referenced = extra_referenced
        self._referenced: frozenset[str] | None = None
        self._edges: dict[str, list[tuple[str, ImportSite]]] | None = None

    # -- reference index ----------------------------------------------------

    @property
    def referenced_names(self) -> frozenset[str]:
        """Every identifier referenced anywhere in the project or the
        reference roots (tests/benchmarks/...)."""
        if self._referenced is None:
            names: set[str] = set(self.extra_referenced)
            for record in self.records:
                names |= record.summary.referenced
            self._referenced = frozenset(names)
        return self._referenced

    # -- module graph -------------------------------------------------------

    def resolved_imports(self) -> dict[str, list[tuple[str, ImportSite]]]:
        """module name -> [(imported module name, site), ...], resolved
        against the modules actually present in the project."""
        if self._edges is None:
            edges: dict[str, list[tuple[str, ImportSite]]] = {}
            for name, record in self.modules.items():
                targets: list[tuple[str, ImportSite]] = []
                for site in record.summary.imports:
                    targets.extend(
                        (target, site)
                        for target in self._resolve_site(site)
                        if target != name
                    )
                edges[name] = targets
            self._edges = edges
        return self._edges

    def _resolve_site(self, site: ImportSite) -> Iterator[str]:
        """Modules one import statement depends on.

        ``from pkg import submodule`` depends on ``pkg.submodule``, not
        on ``pkg`` itself — adding the parent ``__init__`` edge would
        report the standard re-export pattern (`__init__` imports
        ``.submodule``, siblings do ``from . import submodule``) as a
        cycle Python happily executes.  The ``pkg`` edge is kept only
        when a plain symbol is imported from it (or for bare
        ``import pkg``), because that does execute ``pkg/__init__``'s
        re-export machinery.
        """
        symbol_alias = not site.names
        for alias in site.names:
            submodule = f"{site.module}.{alias}"
            if submodule in self.modules:
                yield submodule
            else:
                symbol_alias = True
        if symbol_alias and site.module in self.modules:
            yield site.module

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 (true import cycles),
        each returned sorted with the alphabetically-first module first."""
        edges = self.resolved_imports()
        index_counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        indices: dict[str, int] = {}
        low_links: dict[str, int] = {}
        cycles: list[list[str]] = []

        def strongconnect(node: str) -> None:
            indices[node] = low_links[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for target, _site in edges.get(node, ()):
                if target not in indices:
                    strongconnect(target)
                    low_links[node] = min(low_links[node], low_links[target])
                elif target in on_stack:
                    low_links[node] = min(low_links[node], indices[target])
            if low_links[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))

        for node in sorted(self.modules):
            if node not in indices:
                strongconnect(node)
        return sorted(cycles)

    # -- findings -----------------------------------------------------------

    def finding(self, rule: str, record: FileRecord, line: int, col: int,
                message: str) -> Finding:
        return Finding(rule=rule, path=record.rel_path, line=max(line, 1),
                       col=max(col, 1), message=message)


def discover_reference_roots(root: Path,
                             linted: Iterable[Path]) -> list[Path]:
    """The default reference roots under *root* that are not already
    being linted (linted files contribute their references directly)."""
    linted_resolved = {path.resolve() for path in linted}
    roots: list[Path] = []
    for name in DEFAULT_REFERENCE_ROOT_NAMES:
        candidate = root / name
        if candidate.is_dir() and candidate.resolve() not in linted_resolved:
            roots.append(candidate)
    return roots


# ---------------------------------------------------------------------------
# engine glue


def cache_entry_for(record: FileRecord) -> dict[str, object]:
    """The JSON cache entry persisting one file's per-file results."""
    return {
        "sha256": record.sha256,
        "findings": [finding.as_dict() for finding in record.findings],
        "pragma_suppressed": record.pragma_suppressed,
        "allows": record.suppressions.as_dict(),
        "summary": record.summary.as_dict(),
    }


def record_from_cache(path: Path, rel_path: str, sha256: str,
                      entry: Mapping[str, object]) -> FileRecord:
    """Rebuild a :class:`FileRecord` from its cache entry (no parse)."""
    findings = [
        Finding(rule=_as_str(item.get("rule")), path=_as_str(item.get("path")),
                line=_as_int(item.get("line")), col=_as_int(item.get("col")),
                message=_as_str(item.get("message")))
        for item in _dict_items(entry.get("findings"))
    ]
    summary_raw = entry.get("summary")
    summary = ModuleSummary.from_dict(summary_raw) \
        if isinstance(summary_raw, Mapping) else ModuleSummary(None, False)
    return FileRecord(
        path=path, rel_path=rel_path, sha256=sha256,
        summary=summary,
        suppressions=SuppressionIndex.from_dict(entry.get("allows")),
        findings=findings,
        pragma_suppressed=_as_int(entry.get("pragma_suppressed"), default=0),
        from_cache=True,
    )


def collect_reference_names(
    *,
    cache: LintCache,
    root_path: Path,
    paths: Sequence[Path],
    reference_roots: Sequence[Path] | None,
    exclude: Sequence[Path],
    records: Sequence[FileRecord],
    result: LintResult,
    root: Path | None,
) -> frozenset[str]:
    """Referenced names from the reference roots, via the cache.

    Files already linted this run are skipped (their references are in
    the project itself); unparseable reference files contribute nothing
    but are cached so they are not re-attempted every run.
    """
    from repro.lint.engine import iter_python_files, relative_display_path

    if reference_roots is None:
        roots = discover_reference_roots(root_path, paths)
    else:
        roots = [Path(path) for path in reference_roots]
    linted = {record.path.resolve() for record in records}
    names: set[str] = set()
    for ref_root in roots:
        for ref_file in iter_python_files([ref_root], exclude=exclude):
            if ref_file.resolve() in linted:
                continue
            rel = relative_display_path(ref_file, root)
            data = ref_file.read_bytes()
            sha256 = file_sha256(data)
            cached = cache.lookup_reference(rel, sha256)
            if cached is not None:
                names |= cached
                result.reference_files_reused += 1
                continue
            result.reference_files_parsed += 1
            try:
                tree = ast.parse(data.decode("utf-8"))
            except (SyntaxError, UnicodeDecodeError):
                cache.store_reference(rel, sha256, frozenset())
                continue
            referenced = harvest_referenced_names(tree)
            cache.store_reference(rel, sha256, referenced)
            names |= referenced
    return frozenset(names)
