"""repro-lint: repo-aware static analysis for the invariants PRs 1-8 rely on.

Every fast path in this reproduction is only correct because of a handful
of invariants the code cannot express in types: length-preserving case
folding (the U+0130/ß bug class), config-complete cache/index
fingerprints, atomic temp+``os.replace`` artifact writes, spawn-picklable
worker-pool state, and lock-guarded shared state in the online detector.
PRs 1-8 enforced these by hand-audit; this package machine-checks them so
CI — not reviewer memory — holds the line.

Entry points: the ``repro-lint`` console script, ``python -m repro.lint``,
and :func:`repro.lint.engine.run_lint` for programmatic use.  Rule
catalogue, pragma syntax, and the baseline workflow are documented in
``docs/LINT.md``.

The package is intentionally self-contained (stdlib only, no imports
from the rest of :mod:`repro`) so it can lint a broken tree, and it is
the strict-mypy subset of the repo (see ``[tool.mypy]`` in
``pyproject.toml``).
"""

from __future__ import annotations

from repro.lint.engine import Finding, LintResult, run_lint

__all__ = ["Finding", "LintResult", "run_lint"]
